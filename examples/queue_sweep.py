#!/usr/bin/env python
"""Durable-queue sweep: submit once, drain with workers, survive a crash.

The sweep infrastructure of this checkpoint-recovery reproduction is
itself checkpointed and recoverable (:mod:`repro.queue`): a campaign
becomes an on-disk task store, independent worker processes claim
tasks through atomic lease files, and every completed record is
spooled durably before the task is marked done.  This demo

1. submits a campaign to a queue directory,
2. drains part of it with one worker, then "crashes" (simply stops),
3. resumes with two more workers that pick up exactly the remainder,
4. collects a result byte-identical to a serial run of the same spec.

Run:  python examples/queue_sweep.py
"""

import pathlib
import tempfile

from repro.campaign import CampaignSpec, ScenarioSpec, StrategySpec, execute_campaign
from repro.queue import QueueStore, collect, run_worker


def main() -> None:
    spec = CampaignSpec(
        name="queue-example",
        problems=(("emilia_923_like", "tiny"),),
        n_nodes=8,
        strategies=(
            StrategySpec("esr"),
            StrategySpec("esrp", (20,)),
            StrategySpec("imcr", (20,)),
        ),
        phis=(1, 2),
        scenarios=(
            ScenarioSpec.make("worst_case", location="start"),
            ScenarioSpec.make("mtbf", mtbf_fraction=0.4),
        ),
        repetitions=2,
    )

    with tempfile.TemporaryDirectory() as scratch:
        queue_dir = pathlib.Path(scratch) / "sweep.queue"

        # 1. Submit: one claimable JSON task per seeded run.
        store = QueueStore.submit(spec, queue_dir)
        print(f"submitted {store.n_tasks} tasks to {queue_dir}")
        print(f"  status: {store.status().render()}\n")

        # 2. A first worker handles part of the sweep, then stops —
        #    stand-in for a worker lost mid-campaign.  Its completed
        #    records are already spooled durably.
        crashed = run_worker(queue_dir, worker_id="doomed", max_tasks=5)
        print(f"worker {crashed.worker_id!r} did {crashed.done} tasks, then died")
        print(f"  status: {store.status().render()}\n")

        # 3. Recovery: fresh workers drain the remainder.  (On a real
        #    cluster these are `repro campaign worker --queue ...`
        #    processes on any host sharing the filesystem.)
        for name in ("rescuer-a", "rescuer-b"):
            summary = run_worker(queue_dir, worker_id=name)
            print(f"worker {name!r}: {summary.done} tasks "
                  f"({summary.busy_seconds:.2f}s busy)")
        print(f"  status: {store.status().render()}\n")

        # 4. Collect and verify the checkpoint-recovery contract: the
        #    merged result equals a serial run of the same spec, byte
        #    for byte, crash notwithstanding.
        merged = collect(queue_dir)
        serial = execute_campaign(spec, workers=0)
        merged_path = merged.to_json(pathlib.Path(scratch) / "merged.json")
        serial_path = serial.to_json(pathlib.Path(scratch) / "serial.json")
        identical = merged_path.read_bytes() == serial_path.read_bytes()
        print(f"collected {len(merged)} records; "
              f"byte-identical to a serial run: {identical}")
        assert identical, "queue execution must reproduce the serial bytes"

        print()
        print(merged.render_summary())


if __name__ == "__main__":
    main()
