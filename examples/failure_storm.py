#!/usr/bin/env python
"""Surviving an MTBF-driven failure storm.

The paper's experiments inject one failure per run (realistic for their
sub-minute runtimes vs. hours of MTBF).  At exascale the same solver
would face *repeated* events; this example drives ESRP with a Poisson
(exponential inter-arrival) failure schedule and shows it riding out
every event, and compares the measured overhead with the Young/Daly
analytic optimum for the checkpoint interval.

Run:  python examples/failure_storm.py
"""

import numpy as np

import repro
from repro.core.interval import optimal_interval_iterations, young_interval
from repro.events import EventKind

N_NODES = 8
PHI = 2


def main() -> None:
    matrix, b, meta = repro.matrices.load("emilia_923_like", scale="small")
    reference = repro.solve(matrix, b, n_nodes=N_NODES, strategy="reference")
    C, t0 = reference.iterations, reference.modeled_time
    print(f"problem: n = {meta.n}; undisturbed C = {C} iterations\n")

    # A storm: on average one 2-node failure event every C/4 iterations.
    mtbf_iterations = C / 4
    schedule = repro.poisson_schedule(
        mtbf_iterations=mtbf_iterations,
        horizon=C,
        width=PHI,
        n_nodes=N_NODES,
        seed=7,
        min_gap=25,
    )
    print(f"failure schedule (MTBF = {mtbf_iterations:.0f} iterations): "
          f"{[(e.iteration, e.ranks) for e in schedule]}")

    result = repro.solve(
        matrix, b, n_nodes=N_NODES, strategy="esrp", T=20, phi=PHI,
        failures=schedule,
    )
    assert result.converged
    error = np.linalg.norm(result.x - reference.x) / np.linalg.norm(reference.x)

    survived = len(result.events.of_kind(EventKind.NODE_FAILURE))
    restarts = len(result.events.of_kind(EventKind.RESTART))
    print(f"\nESRP (T=20, phi={PHI}):")
    print(f"  events survived:   {survived}")
    print(f"  fallback restarts: {restarts}")
    print(f"  wasted iterations: {result.wasted_iterations}")
    print(f"  total overhead:    {100 * (result.modeled_time - t0) / t0:.1f} %")
    print(f"  |dx|/|x|:          {error:.2e}")

    # Analytic guidance: what interval would Young/Daly recommend?
    seconds_per_iteration = t0 / C
    # checkpoint cost: approximate from one storage stage's extra traffic
    esrp_ff = repro.solve(matrix, b, n_nodes=N_NODES, strategy="esrp", T=20, phi=PHI)
    storage_stages = len(esrp_ff.events.of_kind(EventKind.STORAGE_STAGE)) / 2
    delta = (esrp_ff.modeled_time - t0) / max(storage_stages, 1)
    mtbf_seconds = mtbf_iterations * seconds_per_iteration
    t_young = young_interval(delta, mtbf_seconds)
    t_opt = optimal_interval_iterations(delta, mtbf_seconds, seconds_per_iteration)
    print(f"\nYoung's optimum: {t_young * 1e3:.3f} ms between storage stages "
          f"~= T = {t_opt} iterations (used: 20)")


if __name__ == "__main__":
    main()
