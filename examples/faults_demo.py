#!/usr/bin/env python
"""Fault-taxonomy demo: a silent error caught, rolled back, survived.

The fail-stop world of the paper is binary — a node dies and everyone
knows.  The fault subsystem (:mod:`repro.faults`) widens that into a
taxonomy; this demo walks its flagship member, silent data corruption:

1. inject a seeded SDC strike into x mid-solve and let the
   periodic-verification strategy (``pv``) catch it via the recomputed
   true residual, roll back to its verified checkpoint, and still
   converge to the reference solution;
2. run the *same* corruption under a blind exact strategy (``esrp``)
   and show it silently converging to a wrong answer — the recursive
   residual stays consistent while x drifts;
3. replay both on the ``compiled`` kernel backend and check the event
   log and counters are identical (fault injection is backend-invariant).

Run:  python examples/faults_demo.py
"""

import numpy as np

import repro
from repro.events import EventKind
from repro.faults import FaultSchedule, SDCEvent
from repro.matrices import poisson_2d

N_NODES = 4


def corruption() -> FaultSchedule:
    """One deterministic strike on rank 1's block of x at iteration 12."""
    return FaultSchedule([
        SDCEvent(iteration=12, rank=1, vector="x", mode="scale",
                 magnitude=1e-2, seed=42),
    ])


def fault_counters(result) -> dict:
    return {
        key[len("faults["):-1]: int(value)
        for key, value in result.stats.items()
        if key.startswith("faults[")
    }


def main() -> None:
    matrix = poisson_2d(16)
    b = np.ones(matrix.shape[0])
    reference = repro.solve(matrix, b, n_nodes=N_NODES, strategy="reference")
    print(f"problem: poisson_2d(16), n={matrix.shape[0]}, "
          f"reference converges in C={reference.iterations} iterations\n")

    # 1. pv: verify every 10th iteration against the true residual.
    checked = repro.solve(
        matrix, b, n_nodes=N_NODES, strategy="pv", T=10, phi=1,
        failures=corruption(),
    )
    detections = [
        e for e in checked.events if e.kind == EventKind.SDC_DETECTED
    ]
    rollbacks = [e for e in checked.events if e.kind == EventKind.ROLLBACK]
    print("pv (periodic verification, T=10):")
    print(f"  converged in {checked.iterations} iterations "
          f"({checked.executed_iterations} executed)")
    for event in detections:
        print(f"  detected at iteration {event.iteration}: "
              f"residual gap {event.detail['gap']:.2e}")
    for event in rollbacks:
        print(f"  rolled back to iteration {event.detail['resume_iteration']} "
              f"({event.detail['wasted']} iterations re-run)")
    print(f"  fault counters: {fault_counters(checked)}")
    checked_error = (
        np.linalg.norm(checked.x - reference.x) / np.linalg.norm(reference.x)
    )
    print(f"  solution error vs reference: {checked_error:.2e}\n")

    # 2. The same strike under a strategy with no verification.
    blind = repro.solve(
        matrix, b, n_nodes=N_NODES, strategy="esrp", T=10, phi=1,
        failures=corruption(),
    )
    blind_error = (
        np.linalg.norm(blind.x - reference.x) / np.linalg.norm(reference.x)
    )
    print("esrp (no verification), same corruption:")
    print(f"  converged in {blind.iterations} iterations — but silently:")
    print(f"  fault counters: {fault_counters(blind)}")
    print(f"  solution error vs reference: {blind_error:.2e} "
          f"(pv: {checked_error:.2e})\n")

    # 3. Backend invariance: the compiled backend sees the same faults.
    replay = repro.solve(
        matrix, b, n_nodes=N_NODES, strategy="pv", T=10, phi=1,
        failures=corruption(), backend="compiled",
    )
    identical = (
        np.array_equal(replay.x, checked.x)
        and fault_counters(replay) == fault_counters(checked)
    )
    print(f"compiled-backend replay bit-identical: {identical}")

    # The demo doubles as a CI gate.
    assert checked.converged and blind.converged and replay.converged
    assert len(detections) == 1 and len(rollbacks) >= 1
    assert fault_counters(checked)["sdc_detected"] == 1
    assert "sdc_detected" not in fault_counters(blind)
    assert checked_error < 1e-6 < blind_error
    assert identical
    print("faults demo OK")


if __name__ == "__main__":
    main()
