#!/usr/bin/env python
"""Scenario-campaign sweep: the paper's comparison as one declarative spec.

The paper compares ESR, ESRP and IMCR under worst-case single failures.
With the campaign engine the whole comparison — plus regimes the paper
never ran, like failure storms and MTBF-driven schedules — is one
declarative spec expanded into seeded runs, executed on a process
pool, and aggregated into the Table-2-shaped overhead report.

Run:  python examples/campaign_sweep.py
"""

import tempfile

from repro.campaign import (
    CampaignResult,
    CampaignSpec,
    ScenarioSpec,
    StrategySpec,
    execute_campaign,
    expand_spec,
)


def main() -> None:
    spec = CampaignSpec(
        name="example-sweep",
        problems=(("emilia_923_like", "tiny"),),
        n_nodes=8,
        strategies=(
            StrategySpec("esr"),
            StrategySpec("esrp", (20, 50)),
            StrategySpec("imcr", (20,)),
        ),
        phis=(1, 2),
        scenarios=(
            ScenarioSpec.make("failure_free"),
            ScenarioSpec.make("worst_case", location="start"),
            ScenarioSpec.make("storm", count=3),
        ),
        repetitions=2,
    )
    runs = expand_spec(spec)
    print(f"campaign {spec.name!r}: {len(runs)} runs, e.g.")
    for run in runs[:3]:
        print(f"  {run.run_id}  (seed {run.seed})")
    print("  ...\n")

    result = execute_campaign(spec, workers=2)
    assert all(record.converged for record in result), "every run must converge"
    print(result.render_summary())

    # persistence round-trip: JSON is the 'campaign report' input format
    with tempfile.NamedTemporaryFile(suffix=".json") as handle:
        result.to_json(handle.name)
        loaded = CampaignResult.from_json(handle.name)
        assert loaded.render_summary() == result.render_summary()
    print("\nresult store round-trips through JSON; "
          "try:  python -m repro campaign run --workers 4")

    # the paper's headline: periodic storage (ESRP/IMCR) beats
    # per-iteration redundancy (ESR) on failure-free overhead
    rows = result.overhead_rows()
    ff = {
        (row["strategy"], row["T"]): row["total_overhead"]
        for row in rows
        if row["scenario"] == "failure_free" and row["phi"] == 2
    }
    assert ff[("esrp", 50)] <= ff[("esr", 1)]
    print("confirmed: ESRP's periodic storage costs less overhead than ESR's "
          "per-iteration redundancy")


if __name__ == "__main__":
    main()
