#!/usr/bin/env python
"""Solver-as-a-service demo: pooled sessions, batching, verified replies.

``repro serve`` turns the library's :class:`~repro.api.session.
SolverSession` into a long-lived HTTP service: sessions (cluster +
distributed matrix + factorised preconditioners + reference
trajectories) live in a bounded LRU pool, concurrent requests against
one session are batched through ``solve_many``, and every reply is
versioned and hash-stamped so clients can verify it and cache it by
content.  This demo

1. starts a server on an ephemeral port (in production:
   ``repro serve --port 8765``),
2. fires a burst of concurrent requests over two preconditioner
   configurations and shows the pool amortising setup across them,
3. verifies every reply against its hash stamp and checks that
   identical requests produced byte-identical stamped payloads,
4. shuts down gracefully, draining in-flight work.

Run:  python examples/serve_demo.py
"""

from repro.api import SolveRequest
from repro.serve import (
    ServeRequest,
    SolverServer,
    get_json,
    run_load,
    verify_response,
    post_json,
)


def main() -> None:
    # 1. A pooled service behind a threading HTTP server.  pool_size
    #    bounds resident sessions; requests for an evicted
    #    configuration transparently rebuild it.
    with SolverServer(pool_size=4, verbose=False) as server:
        print(f"serving on {server.url}")
        print(f"  health: {get_json(server.url + '/health')}\n")

        # 2. A config-skewed burst: two session keys (block_jacobi hot,
        #    jacobi cold), four client threads.  The first request per
        #    key builds a session; everything after is a pool hit.
        payloads = [
            ServeRequest(
                request=SolveRequest(
                    strategy="esrp" if i % 2 else "esr",
                    T=10,
                    phi=1,
                    preconditioner="block_jacobi" if i % 4 else "jacobi",
                ),
            ).to_dict()
            for i in range(16)
        ]
        report = run_load(server.url, payloads, clients=4)
        print(f"served {report.ok}/{report.requests} requests "
              f"({report.clients} clients): "
              f"{report.requests_per_second:.1f} req/s, "
              f"p50 {report.p50_latency * 1e3:.1f} ms, "
              f"p99 {report.p99_latency * 1e3:.1f} ms")
        print(f"  pool: {report.pool.get('size')} session(s) resident, "
              f"hit rate {report.pool.get('hit_rate', 0.0):.0%}")
        assert report.errors == 0, "all requests must succeed"

        # 3. The reply contract: every stamped payload verifies, and a
        #    repeated request reproduces the exact same digest — the
        #    serving analogue of the queue's byte-identical collect.
        status, reply = post_json(server.url + "/solve", payloads[0])
        assert status == 200 and verify_response(reply)
        _, again = post_json(server.url + "/solve", payloads[0])
        identical = reply["response_digest"] == again["response_digest"]
        print(f"  reply verified; repeat request bit-identical: {identical}")
        assert identical, "identical requests must produce identical stamps"
        assert report.digests_consistent, "load replies must agree per request"

        print(f"  report: converged={reply['report']['converged']} "
              f"in {reply['report']['iterations']} iterations "
              f"(digest {reply['response_digest'][:16]}...)")

    # 4. Leaving the `with` block drained in-flight solves and closed
    #    the listener.
    print("\nserver drained and closed")


if __name__ == "__main__":
    main()
