#!/usr/bin/env python
"""Structural analysis (audikw_1-like) under multiple failure events.

The audikw_1 regime: a vector-valued (3 dofs/point) stiffness system
with dense rows and heavy halos.  We solve it with ESRP while *two
separate* multi-node failure events strike during the run — the
scenario where the paper's periodic storage pays off most (§1.4: the
overhead reduction "is particularly beneficial in scenarios with
multiple node failures").

Run:  python examples/structural_analysis.py
"""

import numpy as np

import repro

N_NODES = 8
PHI = 3


def main() -> None:
    matrix, b, meta = repro.matrices.load("audikw_1_like", scale="small")
    print(f"problem: {meta.name} (stand-in for {meta.paper['paper_matrix']})")
    print(f"  n = {meta.n} ({meta.dofs_per_point} dofs/point), "
          f"{meta.nnz_per_row:.1f} nnz/row")

    reference = repro.solve(matrix, b, n_nodes=N_NODES, strategy="reference")
    t0 = reference.modeled_time
    print(f"reference: C = {reference.iterations}, t0 = {t0 * 1e3:.2f} ms\n")

    third = reference.iterations // 3
    events = [
        repro.FailureEvent(iteration=third, ranks=(0, 1, 2)),      # switch A
        repro.FailureEvent(iteration=2 * third, ranks=(4, 5, 6)),  # switch B
    ]
    print("failure scenario: two separate 3-node block failures "
          f"(iterations {events[0].iteration} and {events[1].iteration})\n")

    print(f"{'strategy':14s} {'total ovh':>10s} {'recon ovh':>10s} "
          f"{'wasted':>7s} {'|dx|/|x|':>10s}")
    for label, name, T in [
        ("ESR   (T=1)", "esr", 1),
        ("ESRP  (T=20)", "esrp", 20),
        ("ESRP  (T=50)", "esrp", 50),
        ("IMCR  (T=20)", "imcr", 20),
        ("IMCR  (T=50)", "imcr", 50),
    ]:
        result = repro.solve(
            matrix, b, n_nodes=N_NODES, strategy=name, T=T, phi=PHI,
            failures=events,
        )
        assert result.converged, label
        error = np.linalg.norm(result.x - reference.x) / np.linalg.norm(reference.x)
        print(
            f"{label:14s} {100 * (result.modeled_time - t0) / t0:9.2f}% "
            f"{100 * result.recovery_time / t0:9.2f}% "
            f"{result.wasted_iterations:7d} {error:10.2e}"
        )

    print("\nall strategies survive both events and reproduce the reference")
    print("solution.  At this toy scale each event kills 3 of 8 nodes, so the")
    print("inner reconstruction system spans ~40% of the domain and dominates")
    print("the ESR/ESRP overhead — the cost scales like (psi/N)^2, which is")
    print("why the paper's 128-node runs (psi/N <= 6%) see only a few percent.")
    print("IMCR's recovery is a single buddy transfer regardless of size.")


if __name__ == "__main__":
    main()
