#!/usr/bin/env python
"""Exact vs. approximate recovery — why ESR exists (paper §1.3, §2.1).

The paper recalls that restarting CG throws away the Krylov space: "if
the solver is restarted from the iterand ... reaching the solution
might require performing M additional iterations" [19].  This example
injects the same mid-solve failure and recovers with four methods:

* ESR                (this paper / [7, 20, 21]: exact state reconstruction)
* linear interpolation (Langou et al. [15]: iterand-only, local solve)
* least squares        (Agullo et al. [1]: iterand-only, LSQ)
* full restart         (start over from x0)

and prints the resulting convergence histories side by side.

Run:  python examples/recovery_comparison.py
"""

import numpy as np

import repro

N_NODES = 4


def sparkline(history, width=60):
    """Render a log-residual history as a coarse ASCII curve."""
    if not history:
        return ""
    logs = np.log10(np.maximum(np.asarray(history), 1e-16))
    lo, hi = logs.min(), max(logs.max(), logs.min() + 1e-9)
    # resample to the target width
    idx = np.linspace(0, len(logs) - 1, min(width, len(logs))).astype(int)
    levels = " .:-=+*#%@"
    chars = []
    for value in logs[idx]:
        level = int((hi - value) / (hi - lo) * (len(levels) - 1))
        chars.append(levels[level])
    return "".join(chars)


def main() -> None:
    # One session serves all five runs: the cluster, distributed matrix
    # and factorised preconditioner are set up once, and the reference
    # run doubles as the cached undisturbed trajectory.
    session = repro.SolverSession.from_problem("emilia_923_like", scale="tiny",
                                               n_nodes=N_NODES)
    reference = session.solve(repro.SolveRequest(strategy="reference")).result
    j_fail = reference.iterations // 2
    failure = repro.FailureEvent(iteration=j_fail, ranks=(1,))
    print(f"problem: n = {session.meta.n}; undisturbed C = {reference.iterations}; "
          f"failure of rank 1 at iteration {j_fail}\n")

    print(f"{'method':22s} {'iterations':>10s} {'extra':>6s}   convergence (|r|/|b|, log scale)")
    print(f"{'undisturbed':22s} {reference.iterations:10d} {0:6d}   {sparkline(reference.residual_history)}")
    labels = [
        ("ESR (exact)", "esr"),
        ("linear interpolation", "linear_interpolation"),
        ("least squares", "least_squares"),
        ("full restart", "full_restart"),
    ]
    reports = session.solve_many(
        [repro.SolveRequest(strategy=strategy, phi=1, failures=[failure])
         for _label, strategy in labels]
    )
    for (label, _strategy), report in zip(labels, reports):
        assert report.converged
        extra = report.iterations - reference.iterations
        print(f"{label:22s} {report.iterations:10d} {extra:+6d}   "
              f"{sparkline(report.result.residual_history)}")
    assert session.setup_events["matrix"] == 1  # setup paid once for 5 runs

    print("\nESR continues the undisturbed trajectory (zero extra iterations);")
    print("the approximate methods restart the Krylov space and pay extra")
    print("iterations — the full restart pays the most.")


if __name__ == "__main__":
    main()
