#!/usr/bin/env python
"""Steady-state heat conduction with node failures (paper §1 motivation).

The paper motivates PCG resilience with elliptic PDEs — "heat
conduction and elastic deformation of materials".  This example builds
a 3-D variable-conductivity heat problem (layered material with
inclusions, insulated side walls), solves it with ESRP on a virtual
cluster, and compares the failure-free overhead and the cost of a
worst-case double node failure against plain ESR and IMCR.

Run:  python examples/heat_conduction.py
"""

import numpy as np

import repro
from repro.harness import place_worst_case_failure
from repro.matrices.poisson import layered_kappa_field, variable_poisson_3d

N_NODES = 8
PHI = 2
T = 20


def build_problem():
    """A 4x4x120 bar: hot end held at fixed temperature, sides insulated."""
    grid = (4, 4, 120)
    kappa = layered_kappa_field(grid, n_layers=5, contrast=25.0, inclusion_sigma=0.5, seed=11)
    matrix = variable_poisson_3d(grid, kappa, dirichlet_axes=(0,))
    rng = np.random.default_rng(11)
    heat_sources = np.maximum(rng.standard_normal(matrix.shape[0]), 0.0)
    return matrix.tocsr(), heat_sources


def overhead(time, t0):
    return 100.0 * (time - t0) / t0


def main() -> None:
    matrix, b = build_problem()
    print(f"heat-conduction problem: n = {matrix.shape[0]}, nnz = {matrix.nnz}")

    reference = repro.solve(matrix, b, n_nodes=N_NODES, strategy="reference")
    t0 = reference.modeled_time
    print(f"reference: C = {reference.iterations} iterations, t0 = {t0 * 1e3:.2f} ms\n")

    rows = []
    for label, strategy, interval in [
        ("ESR  (T=1)  ", "esr", 1),
        (f"ESRP (T={T}) ", "esrp", T),
        (f"IMCR (T={T}) ", "imcr", T),
    ]:
        failure_free = repro.solve(
            matrix, b, n_nodes=N_NODES, strategy=strategy, T=interval, phi=PHI
        )
        j_fail = place_worst_case_failure(strategy, interval, reference.iterations)
        failed = repro.solve(
            matrix,
            b,
            n_nodes=N_NODES,
            strategy=strategy,
            T=interval,
            phi=PHI,
            failures=[repro.FailureEvent(j_fail, (3, 4))],
        )
        assert failed.converged
        error = np.linalg.norm(failed.x - reference.x) / np.linalg.norm(reference.x)
        rows.append(
            (
                label,
                overhead(failure_free.modeled_time, t0),
                overhead(failed.modeled_time, t0),
                100.0 * failed.recovery_time / t0,
                failed.wasted_iterations,
                error,
            )
        )

    print(f"{'strategy':13s} {'ff ovh':>8s} {'fail ovh':>9s} {'recon':>7s} "
          f"{'wasted':>7s} {'|dx|/|x|':>10s}")
    for label, ff, tot, rec, wasted, err in rows:
        print(f"{label:13s} {ff:7.2f}% {tot:8.2f}% {rec:6.2f}% {wasted:7d} {err:10.2e}")

    print("\nreading: ESRP pays far less than ESR when no failure happens;")
    print("IMCR recovers almost for free but pays checkpoint traffic;")
    print("all three recover the exact solution (|dx| ~ machine precision).")


if __name__ == "__main__":
    main()
