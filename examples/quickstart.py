#!/usr/bin/env python
"""Quickstart: resilient PCG in five minutes.

Solves an SPD system on a simulated 8-node cluster with the paper's
ESRP strategy (periodic algorithm-based checkpointing), kills three
nodes mid-solve, and shows that the solver recovers the exact state and
converges as if nothing had happened.

Run:  python examples/quickstart.py
"""

import numpy as np

import repro


def main() -> None:
    # 1. A test problem: the Emilia_923-like geomechanics stand-in.
    scale = "tiny"  # tiny|small|bench
    matrix, b, meta = repro.matrices.load("emilia_923_like", scale=scale)
    print(f"problem: {meta.name} (stand-in for {meta.paper['paper_matrix']})")
    print(f"  n = {meta.n}, nnz = {meta.nnz}, {meta.nnz_per_row:.1f} nnz/row")

    # 2. Reference run (no resilience) to know the undisturbed behaviour.
    reference = repro.solve(matrix, b, n_nodes=8, strategy="reference")
    print(f"\nreference PCG: C = {reference.iterations} iterations, "
          f"modeled runtime t0 = {reference.modeled_time * 1e3:.2f} ms")

    # 3. Resilient run: ESRP with storage interval T=10 and phi=3
    #    redundant copies; 3 nodes die simultaneously halfway through.
    failure = repro.FailureEvent(
        iteration=reference.iterations // 2, ranks=(0, 1, 2)
    )
    result = repro.solve(
        matrix,
        b,
        n_nodes=8,
        strategy="esrp",
        T=10,
        phi=3,
        failures=[failure],
    )

    # 4. What happened?
    print(f"\nESRP run with {failure.width} simultaneous node failures "
          f"at iteration {failure.iteration}:")
    print(f"  converged:           {result.converged}")
    print(f"  trajectory length:   {result.iterations} iterations "
          f"(reference: {reference.iterations})")
    print(f"  re-executed (waste): {result.wasted_iterations} iterations")
    print(f"  recovery time:       {result.recovery_time * 1e3:.3f} ms (modeled)")
    print(f"  total overhead:      "
          f"{100 * (result.modeled_time - reference.modeled_time) / reference.modeled_time:.1f} %")

    # 5. The recovered solution is the undisturbed one.
    difference = np.linalg.norm(result.x - reference.x) / np.linalg.norm(reference.x)
    print(f"  |x_esrp - x_ref| / |x_ref| = {difference:.2e}  (exact reconstruction)")

    residual = np.linalg.norm(b - matrix @ result.x) / np.linalg.norm(b)
    print(f"  true relative residual     = {residual:.2e}")
    assert result.converged and difference < 1e-8


if __name__ == "__main__":
    main()
