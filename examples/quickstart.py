#!/usr/bin/env python
"""Quickstart: resilient PCG in five minutes.

Opens a :class:`repro.SolverSession` on an SPD test problem — the
session owns the simulated 8-node cluster, the block-row distributed
matrix and the factorised preconditioner, and caches the non-resilient
reference trajectory — then serves two solves against it: the paper's
ESRP strategy under a 3-node simultaneous failure, and the same
constellation failure-free.  Setup is paid once, not per solve.

Run:  python examples/quickstart.py
"""

import numpy as np

import repro


def main() -> None:
    # 1. A session on a test problem: the Emilia_923-like stand-in.
    #    The cluster/partition/matrix/preconditioner are built once and
    #    reused by every request served by this session.
    session = repro.SolverSession.from_problem(
        "emilia_923_like", scale="tiny", n_nodes=8  # tiny|small|bench
    )
    meta = session.meta
    print(f"problem: {meta.name} (stand-in for {meta.paper['paper_matrix']})")
    print(f"  n = {meta.n}, nnz = {meta.nnz}, {meta.nnz_per_row:.1f} nnz/row")

    # 2. The reference trajectory (no resilience) is computed once and
    #    cached; every later overhead comparison reuses it.
    reference = session.reference()
    print(f"\nreference PCG: C = {reference.C} iterations, "
          f"modeled runtime t0 = {reference.t0 * 1e3:.2f} ms")

    # 3. A declarative request: ESRP with storage interval T=10 and
    #    phi=3 redundant copies; 3 nodes die simultaneously halfway
    #    through.  Invalid names/parameters would raise right here.
    failure = repro.FailureEvent(iteration=reference.C // 2, ranks=(0, 1, 2))
    request = repro.SolveRequest(strategy="esrp", T=10, phi=3, failures=[failure])
    report = session.solve(request, with_reference=True)

    # 4. What happened?
    print(f"\nESRP run with {failure.width} simultaneous node failures "
          f"at iteration {failure.iteration}:")
    print(f"  converged:           {report.converged}")
    print(f"  trajectory length:   {report.iterations} iterations "
          f"(reference: {reference.C})")
    print(f"  re-executed (waste): {report.wasted_iterations} iterations")
    print(f"  recovery time:       {report.recovery_time * 1e3:.3f} ms (modeled)")
    print(f"  total overhead:      {100 * report.total_overhead:.1f} %")

    # 5. The recovered solution is the undisturbed one.
    print(f"  |x_esrp - x_ref| / |x_ref| = {report.solution_error:.2e}  "
          "(exact reconstruction)")
    residual = np.linalg.norm(session.b - session.matrix_csr @ report.x)
    residual /= np.linalg.norm(session.b)
    print(f"  true relative residual     = {residual:.2e}")
    assert report.converged and report.solution_error < 1e-8

    # 6. Follow-up solves reuse every cached piece of the session.
    failure_free = session.solve(
        repro.SolveRequest(strategy="esrp", T=10, phi=3), with_reference=True
    )
    print(f"\nfailure-free ESRP overhead: {100 * failure_free.total_overhead:.1f} % "
          f"(setup events so far: {dict(session.setup_events)})")
    assert session.setup_events["matrix"] == 1
    assert session.setup_events["reference"] == 1


if __name__ == "__main__":
    main()
