"""Table 3 — audikw_1(-like): runtime overheads of ESRP/ESR/IMCR.

Same constellation as Table 2 on the denser vector-valued problem; the
additional expectation specific to Table 3 is that the denser rows make
the *relative* ASpMV overhead milder than the checkpoint traffic, so
failure-free ESRP and IMCR are closer together than on Emilia.
"""

from __future__ import annotations

from bench_table2_emilia import assert_table_shape
from conftest import write_artifact

from repro.harness import PAPER_TABLE3, render_overhead_table


def test_table3_audikw(benchmark, audikw_grid):
    runner, results = audikw_grid

    def regenerate():
        return render_overhead_table(
            results,
            phis=runner.config.phis,
            locations=runner.config.locations,
            title="Table 3: Results for matrix audikw_1-like "
            f"(scale={runner.config.scale}, N={runner.config.n_nodes})",
            paper=PAPER_TABLE3,
        )

    table = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    print("\n" + table)
    notes = assert_table_shape(
        results,
        runner.config.phis,
        runner.config.esrp_intervals,
        runner.config.imcr_intervals,
    )
    print("\nshape checks passed:\n  " + "\n  ".join(notes))
    write_artifact("table3_audikw.txt", table)


def test_iteration_count_ratio_matches_paper(benchmark, emilia_grid, audikw_grid):
    """Paper: C(audikw) / C(Emilia) = 5543 / 10279 ≈ 0.54."""
    _, emilia = emilia_grid
    _, audikw = audikw_grid

    def ratio():
        return audikw["C"] / emilia["C"]

    value = benchmark.pedantic(ratio, rounds=1, iterations=1)
    print(f"\nC(audikw-like)/C(emilia-like) = {value:.2f} (paper: 0.54)")
    assert 0.25 < value < 0.9
