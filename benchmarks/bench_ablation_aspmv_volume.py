"""Ablation A4 — ASpMV traffic vs. sparsity pattern and ϕ (paper §2.2).

"The exact communication overhead depends on the sparsity pattern of
the matrix.  In general, denser matrices will have lower overheads for
ASpMV, since more information has to be sent anyway ... it is
convenient if the matrix is banded."  This bench quantifies exactly
that on a random banded SPD family: extra entries per augmented
product as a function of bandwidth and ϕ, compared against the natural
halo volume and against IMCR's per-checkpoint buddy traffic, plus the
peak redundant-memory footprints of both schemes.
"""

from __future__ import annotations

import numpy as np
from conftest import write_artifact

from repro.cluster import BYTES_PER_FLOAT, VirtualCluster, zero_cost_model
from repro.distribution import BlockRowPartition, DistributedMatrix, RedundancyPlan
from repro.matrices import random_banded_spd

N = 2048
N_NODES = 16
BANDWIDTHS = (1, 8, 32, 96, 192)
PHIS = (1, 3, 8)


def run_sweep():
    rows = []
    for bandwidth in BANDWIDTHS:
        matrix = random_banded_spd(N, bandwidth=bandwidth, density=0.6, seed=3)
        cluster = VirtualCluster(N_NODES, cost_model=zero_cost_model(), seed=0)
        partition = BlockRowPartition.uniform(N, N_NODES)
        dmatrix = DistributedMatrix(cluster, partition, matrix)
        natural = dmatrix.plan.total_halo_entries()
        per_phi = {}
        for phi in PHIS:
            plan = RedundancyPlan(dmatrix.plan, phi, rule="paper")
            greedy = RedundancyPlan(dmatrix.plan, phi, rule="greedy")
            imcr_entries = phi * 4 * N  # phi buddies x 4 state vectors
            per_phi[phi] = {
                "extra": plan.extra_entries(),
                "greedy": greedy.extra_entries(),
                "imcr": imcr_entries,
            }
        rows.append((bandwidth, natural, per_phi))
    return rows


def render(rows) -> str:
    lines = [
        f"Ablation A4: ASpMV extra entries per product (n = {N}, {N_NODES} nodes)",
        "vs natural halo and IMCR per-checkpoint buddy entries",
        "",
        f"{'bandwidth':>9s} {'halo':>8s} | "
        + " | ".join(f"phi={phi}: extra greedy  IMCR" for phi in PHIS),
        "-" * 100,
    ]
    for bandwidth, natural, per_phi in rows:
        cells = " | ".join(
            f"{per_phi[phi]['extra']:>11d} {per_phi[phi]['greedy']:>6d} {per_phi[phi]['imcr']:>5d}"
            for phi in PHIS
        )
        lines.append(f"{bandwidth:>9d} {natural:>8d} | {cells}")
    lines.append("")
    lines.append("reading: wider bands ship more entries naturally, so the augmented")
    lines.append("product needs fewer explicit extras (the paper's density argument);")
    lines.append("ESRP stores 2 copies per stage vs IMCR's 4 vectors x phi buddies.")
    return "\n".join(lines)


def test_ablation_aspmv_volume(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    table = render(rows)
    print("\n" + table)
    write_artifact("ablation_a4_aspmv_volume.txt", table)

    # denser matrices -> fewer extras (paper's claim), at every phi
    for phi in PHIS:
        extras = [per_phi[phi]["extra"] for _bw, _nat, per_phi in rows]
        assert extras[0] >= extras[-1], f"extras must shrink with bandwidth (phi={phi})"
    # natural halo grows with bandwidth
    naturals = [natural for _bw, natural, _p in rows]
    assert naturals == sorted(naturals)
    # greedy never ships more than the paper rule
    for _bw, _nat, per_phi in rows:
        for phi in PHIS:
            assert per_phi[phi]["greedy"] <= per_phi[phi]["extra"]
