"""Ablation A1 — preconditioner study (the paper's §6 future work).

"An important step to take in future work is to evaluate ESRP using
different preconditioners."  This bench runs ESRP and IMCR under every
preconditioner in the library on the Emilia-like problem and reports:

* iterations to convergence (preconditioner quality),
* failure-free overhead,
* overhead with a worst-case ϕ=2 block failure,
* reconstruction overhead (the part the paper expects to improve with
  better inner-system preconditioning),
* whether exact reconstruction is possible at all — the polynomial
  (Neumann) preconditioner is a *global* operator and only IMCR can
  protect it, a structural trade-off this table makes visible.
"""

from __future__ import annotations

import pytest
from conftest import is_quick, write_artifact

import repro
from repro.exceptions import ReconstructionUnsupportedError
from repro.harness import place_worst_case_failure
from repro.harness.calibration import BENCH_COST_MODEL

PHI = 2
T = 20
N_NODES = 8

PRECONDITIONERS = (
    "identity",
    "jacobi",
    "block_jacobi",
    "block_ssor",
    "block_ichol",
    "polynomial",
)


def run_study():
    scale = "tiny" if is_quick() else "small"
    # One session serves the whole study: the matrix is distributed
    # once, each preconditioner is factorised once, and each reference
    # trajectory is computed once and reused by both strategies.
    session = repro.SolverSession.from_problem(
        "emilia_923_like", scale=scale, n_nodes=N_NODES,
        cost_model=BENCH_COST_MODEL,
    )
    rows = []
    for name in PRECONDITIONERS:
        reference = session.reference(preconditioner=name)
        row = {"preconditioner": name, "iterations": reference.C}
        for strategy in ("esrp", "imcr"):
            try:
                ff = session.solve(
                    repro.SolveRequest(strategy=strategy, T=T, phi=PHI,
                                       preconditioner=name),
                    with_reference=True,
                )
                j_fail = place_worst_case_failure(strategy, T, reference.C)
                failed = session.solve(
                    repro.SolveRequest(
                        strategy=strategy, T=T, phi=PHI, preconditioner=name,
                        failures=[repro.FailureEvent(j_fail, (2, 3))],
                    ),
                    with_reference=True,
                )
                row[strategy] = {
                    "ff": ff.total_overhead,
                    "total": failed.total_overhead,
                    "reconstruction": failed.recovery_overhead,
                }
            except ReconstructionUnsupportedError:
                row[strategy] = None
        rows.append(row)
    return rows


def render(rows) -> str:
    lines = [
        "Ablation A1: ESRP vs IMCR across preconditioners (phi=2, T=20)",
        "",
        f"{'preconditioner':15s} {'iters':>6s} | {'ESRP ff':>8s} {'ESRP tot':>9s} {'ESRP rec':>9s} | "
        f"{'IMCR ff':>8s} {'IMCR tot':>9s}",
        "-" * 80,
    ]
    for row in rows:
        esrp = row["esrp"]
        imcr = row["imcr"]
        esrp_txt = (
            f"{100 * esrp['ff']:7.2f}% {100 * esrp['total']:8.2f}% "
            f"{100 * esrp['reconstruction']:8.2f}%"
            if esrp
            else f"{'unsupported':>27s}"
        )
        imcr_txt = f"{100 * imcr['ff']:7.2f}% {100 * imcr['total']:8.2f}%"
        lines.append(
            f"{row['preconditioner']:15s} {row['iterations']:>6d} | {esrp_txt} | {imcr_txt}"
        )
    lines.append("")
    lines.append("note: the polynomial (Neumann) preconditioner is a global operator;")
    lines.append("exact state reconstruction cannot restrict it, so only IMCR applies.")
    return "\n".join(lines)


def test_ablation_preconditioners(benchmark):
    rows = benchmark.pedantic(run_study, rounds=1, iterations=1)
    table = render(rows)
    print("\n" + table)
    write_artifact("ablation_a1_preconditioners.txt", table)

    by_name = {row["preconditioner"]: row for row in rows}
    assert by_name["polynomial"]["esrp"] is None
    assert by_name["polynomial"]["imcr"] is not None
    assert by_name["block_jacobi"]["esrp"] is not None
    # a real preconditioner beats identity on iterations
    assert by_name["block_jacobi"]["iterations"] < by_name["identity"]["iterations"]
