"""Ablation: the periodic-verification interval T of the ``pv`` strategy.

Sweeps the verification interval over a campaign spec (the ablation is
a plain :class:`~repro.campaign.spec.CampaignSpec` — same engine, same
record format) under two scenarios:

* ``failure_free`` — isolates the pure verification cost: every T-th
  iteration pays one extra SpMV plus a local checkpoint, so the modeled
  total overhead must grow monotonically as T shrinks;
* ``sdc`` — seeded silent-corruption strikes: smaller T detects a
  strike sooner and re-runs fewer iterations per rollback, at the
  price of the higher standing verification cost (the classic
  detection-latency/overhead trade-off, cf. arXiv:1511.04478).

An ESRP baseline rides along so the pv rows are comparable against an
exact fail-stop strategy that pays no verification.

Gates (``--check``):

* **convergence** — every run in every cell converges;
* **monotone verification cost** — in the failure-free scenario, the
  median total overhead is non-increasing in T (modeled time is
  deterministic, so this is exact, not a noisy perf gate);
* **determinism** — re-executing the sweep yields byte-identical
  records (the campaign byte-identity contract, here guarding the
  fault-injection path).

Usage::

    python benchmarks/bench_ablation_verification_interval.py
    python benchmarks/bench_ablation_verification_interval.py --check
    python benchmarks/bench_ablation_verification_interval.py --smoke
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

DEFAULT_OUT = (
    pathlib.Path(__file__).resolve().parent.parent
    / "BENCH_verification_interval.json"
)

INTERVALS = (5, 10, 20, 40)
SMOKE_INTERVALS = (10, 20)
SDC_PROBABILITY = 0.02


def build_spec(scale: str, intervals, repetitions: int, n_nodes: int = 8):
    from repro.campaign import CampaignSpec, ScenarioSpec, StrategySpec

    return CampaignSpec(
        name=f"pv-ablation-{scale}",
        problems=(("poisson3d", scale),),
        n_nodes=n_nodes,
        preconditioners=("block_jacobi",),
        strategies=(
            StrategySpec("pv", tuple(intervals)),
            StrategySpec("esrp", (20,)),
        ),
        phis=(1,),
        scenarios=(
            ScenarioSpec.make("failure_free"),
            ScenarioSpec.make(
                "sdc", probability=SDC_PROBABILITY, mode="scale",
                magnitude=1e-2,
            ),
        ),
        repetitions=repetitions,
        seed=2020,
        backends=("vectorized",),
    )


def sweep(spec, workers: int):
    from repro.campaign import execute_campaign

    result = execute_campaign(spec, workers=workers, progress=None)
    rows = []
    for row in result.overhead_rows():
        rows.append(
            {
                "strategy": row["strategy"],
                "T": row["T"],
                "scenario": row["scenario"],
                "runs": row["runs"],
                "converged": row["converged"],
                "total_overhead": row["total_overhead"],
                "recovery_overhead": row["recovery_overhead"],
                "wasted_iterations": row["wasted_iterations"],
                "faults_injected": row["faults_injected"],
                "faults_detected": row["faults_detected"],
                "rollbacks": row["rollbacks"],
            }
        )
    return result, rows


def check_monotone_verification_cost(rows: list[dict]) -> dict:
    """Failure-free pv overhead must be non-increasing in T."""
    curve = sorted(
        (
            (row["T"], row["total_overhead"])
            for row in rows
            if row["strategy"] == "pv" and "failure_free" in row["scenario"]
        ),
    )
    violations = [
        f"T={a_T} -> T={b_T}: {a:.4f} -> {b:.4f}"
        for (a_T, a), (b_T, b) in zip(curve, curve[1:])
        if b > a + 1e-12
    ]
    return {
        "checked": len(curve) >= 2,
        "curve": {f"T={T}": overhead for T, overhead in curve},
        "violations": violations,
        "passed": not violations,
    }


def check_determinism(spec, rows: list[dict], workers: int) -> dict:
    _, again = sweep(spec, workers)
    identical = json.dumps(rows, sort_keys=True) == json.dumps(
        again, sort_keys=True
    )
    return {"checked": True, "passed": identical}


def _fmt_row(row: dict) -> str:
    def num(value):
        return f"{100 * value:7.2f}" if value is not None else "      -"

    return (
        f"{row['strategy']:5s} T={row['T']:<3d} {row['scenario']:44s} "
        f"total%={num(row['total_overhead'])} "
        f"inj={row['faults_injected']:.1f} det={row['faults_detected']:.1f} "
        f"rb={row['rollbacks']:.1f}"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="pv verification-interval ablation (campaign sweep)"
    )
    parser.add_argument("--scale", default="tiny")
    parser.add_argument("--smoke", action="store_true",
                        help="small CI cell set (fewer intervals, 1 rep)")
    parser.add_argument("--check", action="store_true",
                        help="enforce the convergence/monotonicity/"
                        "determinism gates")
    parser.add_argument("--repetitions", type=int, default=None)
    parser.add_argument("--workers", type=int, default=0,
                        help="campaign worker processes (0 = serial)")
    parser.add_argument("--out", default=str(DEFAULT_OUT), metavar="FILE")
    args = parser.parse_args(argv)

    intervals = SMOKE_INTERVALS if args.smoke else INTERVALS
    repetitions = (
        args.repetitions
        if args.repetitions is not None
        else (1 if args.smoke else 3)
    )
    spec = build_spec(args.scale, intervals, repetitions)
    result, rows = sweep(spec, args.workers)
    for row in rows:
        print(_fmt_row(row), flush=True)

    gates = {
        "convergence": {
            "checked": True,
            "passed": all(row["converged"] for row in rows),
        },
        "monotone_verification_cost": check_monotone_verification_cost(rows),
    }
    if args.check:
        gates["determinism"] = check_determinism(spec, rows, args.workers)

    payload = {
        "benchmark": "pv verification-interval ablation",
        "problem": f"poisson3d ({args.scale})",
        "intervals": list(intervals),
        "sdc_probability": SDC_PROBABILITY,
        "repetitions": repetitions,
        "metric": "median modeled total overhead vs the reference solver "
        "per (strategy, T, scenario) cell, plus faults[...] counters",
        "rows": rows,
        "gates": gates,
    }
    out = pathlib.Path(args.out)
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"\nwrote {out}")

    if args.check:
        failures = [
            name
            for name, gate in gates.items()
            if gate.get("checked") and not gate["passed"]
        ]
        if failures:
            for name in failures:
                print(f"FAIL: {name} gate: {gates[name]}", file=sys.stderr)
            return 1
        print("check passed: converged, verification cost monotone in T, "
              "byte-identical re-execution")
    return 0


if __name__ == "__main__":
    sys.exit(main())
