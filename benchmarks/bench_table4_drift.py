"""Table 4 — residual drift (Eq. 2 of the paper).

``drift = (‖r_end‖₂ − ‖b − A x_end‖₂) / ‖b − A x_end‖₂`` computed after
convergence: the reference row uses all failure-free runs, the median
and minimum rows all runs with node failures, across the full Table-2/3
grids.  The paper's claim: "In the median, ESRP with node failures does
not differ significantly from PCG" — i.e. reconstruction does not
degrade accuracy.
"""

from __future__ import annotations

from conftest import write_artifact

from repro.harness import PAPER_TABLE4, render_drift_table


def test_table4_residual_drift(benchmark, emilia_grid, audikw_grid):
    emilia_runner, _ = emilia_grid
    audikw_runner, _ = audikw_grid

    def regenerate():
        return {
            "emilia_923_like": emilia_runner.drift_summary(),
            "audikw_1_like": audikw_runner.drift_summary(),
        }

    drift = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    paper = {
        "emilia_923_like": PAPER_TABLE4["Emilia_923"],
        "audikw_1_like": PAPER_TABLE4["audikw_1"],
    }
    table = "Table 4: Residual drift (Eq. 2)\n" + render_drift_table(drift, paper=paper)
    print("\n" + table)
    write_artifact("table4_drift.txt", table)

    for name, row in drift.items():
        # the paper's qualitative claims
        assert row["minimum"] <= row["median"] + 1e-12
        assert abs(row["median"] - row["reference"]) < max(
            5 * abs(row["reference"]), 0.25
        ), f"{name}: median drift with failures deviates wildly from reference"
