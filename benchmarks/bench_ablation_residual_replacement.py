"""Ablation A7 — residual replacement vs. residual drift (Table 4 add-on).

The paper's §5 measures the drift between the recursive and the true
residual (citing Van der Vorst & Ye [27]) and uses it to argue ESRP
does not hurt accuracy.  [27]'s actual remedy — periodic residual
replacement — is implemented in
:mod:`repro.solvers.residual_replacement`; this bench quantifies how
much of the drift it removes, with and without node failures.
"""

from __future__ import annotations

import numpy as np
from conftest import is_quick, write_artifact

import repro
from repro.cluster import FailureSchedule, VirtualCluster
from repro.core import ESRPStrategy
from repro.distribution import BlockRowPartition, DistributedMatrix
from repro.harness.calibration import BENCH_COST_MODEL
from repro.harness.metrics import drift_from_result
from repro.preconditioners import make_preconditioner
from repro.solvers import NoResilience, PCGEngine, SolveOptions
from repro.solvers.residual_replacement import ResidualReplacer

N_NODES = 8


def run_study():
    scale = "tiny" if is_quick() else "small"
    matrix, b, _ = repro.matrices.load("emilia_923_like", scale=scale)
    probe = repro.solve(
        matrix, b, n_nodes=N_NODES, strategy="reference", cost_model=BENCH_COST_MODEL
    )
    j_fail = probe.iterations // 2

    def build(strategy, failures=None):
        cluster = VirtualCluster(N_NODES, cost_model=BENCH_COST_MODEL, seed=0)
        partition = BlockRowPartition.uniform(matrix.shape[0], N_NODES)
        dmatrix = DistributedMatrix(cluster, partition, matrix)
        return PCGEngine(
            matrix=dmatrix,
            b=b,
            preconditioner=make_preconditioner("block_jacobi"),
            strategy=strategy,
            options=SolveOptions(rtol=1e-8),
            failures=FailureSchedule(failures or []),
        )

    rows = []
    for label, use_replacement, failures in [
        ("PCG", False, None),
        ("PCG + replacement", True, None),
        ("ESRP, 2 failures", False, [repro.FailureEvent(j_fail, (2, 3))]),
        ("ESRP + replacement", True, [repro.FailureEvent(j_fail, (2, 3))]),
    ]:
        strategy = (
            NoResilience() if failures is None else ESRPStrategy(T=20, phi=2)
        )
        engine = build(strategy, failures)
        if use_replacement:
            ResidualReplacer(engine, interval=20).attach()
        result = engine.solve()
        assert result.converged
        rows.append((label, drift_from_result(matrix, b, result), result.iterations))
    return rows


def test_ablation_residual_replacement(benchmark):
    rows = benchmark.pedantic(run_study, rounds=1, iterations=1)
    lines = [
        "Ablation A7: residual drift (Eq. 2) with and without residual replacement",
        "",
        f"{'configuration':22s} {'drift':>12s} {'iterations':>11s}",
        "-" * 50,
    ]
    for label, drift, iterations in rows:
        lines.append(f"{label:22s} {drift:>12.3e} {iterations:>11d}")
    lines.append("")
    lines.append("reading: replacement pins the recursive residual to the true one;")
    lines.append("at this scale (C ~ 10^2) both drifts sit at round-off level --")
    lines.append("the paper's percent-level drift needs its C ~ 10^4 runs.")
    table = "\n".join(lines)
    print("\n" + table)
    write_artifact("ablation_a7_residual_replacement.txt", table)

    drift = {label: d for label, d, _ in rows}
    # At laptop-scale iteration counts the drift is orders of magnitude
    # below the paper's (drift grows with C; paper: C ~ 10^4): the
    # defensible assertions are that replacement keeps the drift at
    # round-off scale and does not disturb convergence or recovery.
    assert abs(drift["PCG + replacement"]) < 1e-6
    assert abs(drift["ESRP + replacement"]) < 1e-6
