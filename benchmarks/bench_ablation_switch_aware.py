"""Ablation A6 — topology-aware redundancy placement vs. Eq. (1).

The paper justifies contiguous-block failures with switch faults, and
notes that optimising the redundancy destinations for the network
topology is "ongoing work" (§2.2.1).  This bench makes the problem
concrete: with Eq. (1), a node's copies go to its *nearest ranks* —
which live under the *same leaf switch* and die together with it.  The
``switch_aware`` policy prefers destinations under other leaves.

The interesting regime is ψ > ϕ: with ϕ copies, *any* ψ ≤ ϕ failure
is recoverable regardless of placement (ϕ+1 holders minus ψ ≥ 1), but a
whole radix-2 switch fault kills ψ = 2 nodes while we only pay ϕ = 1 —
recoverable **iff** the copies sit under a different switch.  We sweep
whole-switch faults across every leaf and count exact recoveries vs.
restart fallbacks for both policies.
"""

from __future__ import annotations

from conftest import is_quick, write_artifact

import repro
from repro.cluster import FailureSchedule, VirtualCluster
from repro.cluster.topology import FatTree
from repro.core import ESRStrategy
from repro.distribution import BlockRowPartition, DistributedMatrix, RedundancyPlan
from repro.events import EventKind
from repro.harness.calibration import BENCH_COST_MODEL
from repro.preconditioners import make_preconditioner
from repro.solvers import PCGEngine, SolveOptions

N_NODES = 8
RADIX = 2
PHI = 1  # a whole-switch fault kills RADIX=2 nodes: psi > phi!


def run_sweep():
    scale = "tiny" if is_quick() else "small"
    matrix, b, _ = repro.matrices.load("emilia_923_like", scale=scale)
    topology = FatTree(N_NODES, radix=RADIX)
    reference = repro.solve(
        matrix, b, n_nodes=N_NODES, strategy="reference", cost_model=BENCH_COST_MODEL
    )
    j_fail = reference.iterations // 2

    outcomes: dict[str, dict[str, int]] = {}
    traffic: dict[str, int] = {}
    for policy in ("eq1", "switch_aware"):
        exact = restarts = 0
        for leaf in range(topology.n_leaves):
            ranks = topology.ranks_under_leaf(leaf)
            cluster = VirtualCluster(
                N_NODES, topology=FatTree(N_NODES, radix=RADIX),
                cost_model=BENCH_COST_MODEL, seed=0,
            )
            partition = BlockRowPartition.uniform(matrix.shape[0], N_NODES)
            dmatrix = DistributedMatrix(cluster, partition, matrix)
            engine = PCGEngine(
                matrix=dmatrix,
                b=b,
                preconditioner=make_preconditioner("block_jacobi"),
                strategy=ESRStrategy(phi=PHI, destinations=policy),
                options=SolveOptions(rtol=1e-8),
                failures=FailureSchedule([repro.FailureEvent(j_fail, ranks)]),
            )
            result = engine.solve()
            assert result.converged
            if result.events.first(EventKind.RESTART) is None:
                exact += 1
            else:
                restarts += 1
            plan = RedundancyPlan(
                dmatrix.plan, PHI, destinations=policy,
                topology=cluster.topology if policy == "switch_aware" else None,
            )
            traffic[policy] = plan.extra_entries()
        outcomes[policy] = {"exact": exact, "restart": restarts}
    return topology.n_leaves, j_fail, outcomes, traffic


def test_ablation_switch_aware_destinations(benchmark):
    n_leaves, j_fail, outcomes, traffic = benchmark.pedantic(
        run_sweep, rounds=1, iterations=1
    )
    lines = [
        f"Ablation A6: whole-switch faults ({n_leaves} leaves x {RADIX} nodes, "
        f"phi={PHI}, failure at iteration {j_fail})",
        "",
        f"{'policy':14s} {'exact recoveries':>17s} {'restart fallbacks':>18s} "
        f"{'extra entries/ASpMV':>20s}",
        "-" * 75,
    ]
    for policy in ("eq1", "switch_aware"):
        lines.append(
            f"{policy:14s} {outcomes[policy]['exact']:>17d} "
            f"{outcomes[policy]['restart']:>18d} {traffic[policy]:>20d}"
        )
    lines.append("")
    lines.append("reading: Eq.(1) places copies on nearest ranks — under the failed")
    lines.append("switch itself — so whole-switch faults can destroy all copies and")
    lines.append("force a restart; switch-aware placement always recovers exactly,")
    lines.append("at the cost of shipping extras further (and forgoing piggybacking);")
    lines.append("with psi <= phi both policies always recover (the phi-invariant).")
    table = "\n".join(lines)
    print("\n" + table)
    write_artifact("ablation_a6_switch_aware.txt", table)

    assert outcomes["switch_aware"]["restart"] == 0
    assert outcomes["switch_aware"]["exact"] == n_leaves
    # with psi=2 > phi=1, Eq.(1)'s nearest-rank copies die with their
    # switch: every whole-switch fault forces a restart
    assert outcomes["eq1"]["restart"] == n_leaves
