"""Figure 2 — Emilia: median runtime overhead vs. checkpoint interval.

Two panels as in the paper: (a) failure-free, (b) with ψ = ϕ node
failures (markers aggregated over the two locations).  Series: ESRP at
each T, ESR (the T=1 line replicated per cluster), IMCR at each T;
within a cluster the markers left→right are ϕ = 1, 3, 8.  Rendered as
an ASCII log-scale plot plus the raw series values.
"""

from __future__ import annotations

from conftest import write_artifact

from repro.harness import overhead_series
from repro.harness.figures import ascii_log_plot


def render_figure(results, config, title_prefix):
    intervals = tuple(t for t in config.esrp_intervals if t > 2)
    blocks = []
    for with_failures, panel in ((False, "(a) Failure-free solver"), (True, "(b) Node failures introduced")):
        series = overhead_series(
            results, phis=config.phis, with_failures=with_failures,
            locations=config.locations,
        )
        plot = ascii_log_plot(
            series, intervals=intervals, title=f"{title_prefix} {panel}"
        )
        rows = []
        for s in sorted(series, key=lambda s: (s.strategy, s.T)):
            label = "ESR " if (s.strategy == "esrp" and s.T == 1) else s.strategy.upper()
            values = ", ".join(
                f"phi={phi}: {100 * v:.2f}%" for phi, v in zip(s.phis, s.values)
            )
            rows.append(f"  {label:5s} T={s.T:<4d} {values}")
        blocks.append(plot + "\nseries:\n" + "\n".join(rows))
    return "\n\n".join(blocks)


def test_fig2_emilia_overhead_curves(benchmark, emilia_grid):
    runner, results = emilia_grid

    def regenerate():
        return render_figure(results, runner.config, "Fig. 2 Emilia-like:")

    figure = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    print("\n" + figure)
    write_artifact("fig2_emilia_curves.txt", figure)

    # Shape: in the failure-free panel the ESR line sits above every
    # ESRP line for the largest phi (paper Fig. 2a).
    series = overhead_series(results, phis=runner.config.phis, with_failures=False)
    esr = next(s for s in series if s.strategy == "esrp" and s.T == 1)
    top_phi = len(runner.config.phis) - 1
    for s in series:
        if s.strategy == "esrp" and s.T > 2:
            assert esr.values[top_phi] > s.values[top_phi]
