"""Shared fixtures for the paper-reproduction benchmarks.

The expensive experiment grids (Tables 2/3) are computed once per
session and shared by the table, drift and figure benches.  Every bench
writes its rendered output under ``results/`` so EXPERIMENTS.md can
reference the artefacts.

Environment knobs (see also repro.harness.config):

* ``REPRO_QUICK=1``  — small problems, fewer cells (CI / iteration mode)
* ``REPRO_SCALE``    — matrix scale tier override
* ``REPRO_NODES``    — cluster size override
* ``REPRO_REPS``     — repetitions per cell
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.harness import paper_table_config
from repro.harness.runner import ExperimentRunner

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"

QUICK = os.environ.get("REPRO_QUICK", "0") not in ("0", "", "false")


def is_quick() -> bool:
    return QUICK


def write_artifact(name: str, text: str) -> pathlib.Path:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / name
    path.write_text(text + "\n")
    return path


class _GridCache:
    """Session-wide cache of full experiment grids per problem."""

    def __init__(self) -> None:
        self._cache: dict[str, tuple[ExperimentRunner, dict]] = {}

    def get(self, problem: str) -> tuple[ExperimentRunner, dict]:
        if problem not in self._cache:
            config = paper_table_config(problem, quick=QUICK)
            runner = ExperimentRunner(config)
            results = runner.run_table()
            self._cache[problem] = (runner, results)
        return self._cache[problem]


@pytest.fixture(scope="session")
def grid_cache() -> _GridCache:
    return _GridCache()


@pytest.fixture(scope="session")
def emilia_grid(grid_cache):
    return grid_cache.get("emilia_923_like")


@pytest.fixture(scope="session")
def audikw_grid(grid_cache):
    return grid_cache.get("audikw_1_like")
