"""Kernel-backend benchmark: ``looped`` vs. ``vectorized`` wall-clock.

Runs the same solve set — the non-resilient reference, a failure-free
ESRP solve, and an ESRP solve surviving one mid-trajectory failure —
under both compute-kernel backends across the Poisson size tiers, and
emits ``BENCH_kernels.json``.  The backends produce bit-identical
reports (enforced here per cell, and property-tested in
``tests/properties/test_backend_equivalence.py``), so the wall-clock
ratio is a pure hot-path measurement.

The headline cell is the **medium** Poisson problem (20³ = 8000
unknowns) on 32 virtual nodes — the paper's experiments use 128 ranks,
and the per-rank interpreter overhead the vectorized backend removes
grows with the rank count.  The acceptance gate (``--check``) requires
vectorized to be >= 3x faster there.

Usage::

    python benchmarks/bench_kernels.py                 # full sweep
    python benchmarks/bench_kernels.py --check         # + enforce >= 3x
    python benchmarks/bench_kernels.py --smoke         # CI smoke (tiny)
    python benchmarks/bench_kernels.py --out other.json
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

import repro
from repro.matrices import suite

DEFAULT_OUT = pathlib.Path(__file__).resolve().parent.parent / "BENCH_kernels.json"

#: (scale, n_nodes) cells of the full sweep; medium is the gate.  The
#: ``large`` cell (44³ = 85 184 unknowns) probes the memory-bound
#: regime where the stacked matvec used to reallocate its output every
#: iteration (the speedup floor the in-place ``csr_matvec`` path lifts).
CELLS = (
    ("tiny", 8),
    ("small", 16),
    ("medium", 32),
    ("bench", 32),
    ("large", 32),
)
HEADLINE_SCALE = "medium"
SPEEDUP_THRESHOLD = 3.0


def _requests(reference_iterations: int) -> list[repro.SolveRequest]:
    failure_at = max(3, reference_iterations // 2)
    return [
        repro.SolveRequest(strategy="reference", T=1, phi=1),
        repro.SolveRequest(strategy="esrp", T=20, phi=1),
        repro.SolveRequest(
            strategy="esrp", T=20, phi=1,
            failures=[repro.FailureEvent(failure_at, (1,))],
        ),
    ]


def bench_cell(scale: str, n_nodes: int, repeats: int) -> dict:
    matrix, b, meta = suite.load("poisson3d", scale=scale)
    timings: dict[str, float] = {}
    fingerprints: dict[str, tuple] = {}
    for backend in ("looped", "vectorized"):
        session = repro.SolverSession(matrix, b, n_nodes=n_nodes, backend=backend)
        reference = session.reference()  # shared setup, outside the timing
        requests = _requests(reference.C)
        best = float("inf")
        fingerprint = None
        for _ in range(repeats):
            reports = [session.solve(request) for request in requests]
            best = min(best, sum(report.wall_time for report in reports))
            fingerprint = tuple(
                (report.iterations, report.modeled_time) for report in reports
            )
        timings[backend] = best
        fingerprints[backend] = fingerprint
    if fingerprints["looped"] != fingerprints["vectorized"]:
        raise AssertionError(
            f"backend results diverged on {scale}: {fingerprints}"
        )
    return {
        "scale": scale,
        "n": meta.n,
        "nnz": meta.nnz,
        "n_nodes": n_nodes,
        "iterations": fingerprints["looped"][0][0],
        "looped_seconds": timings["looped"],
        "vectorized_seconds": timings["vectorized"],
        "speedup": timings["looped"] / timings["vectorized"],
    }


def run(cells, repeats: int) -> dict:
    rows = []
    for scale, n_nodes in cells:
        row = bench_cell(scale, n_nodes, repeats)
        rows.append(row)
        print(
            f"poisson3d/{row['scale']:<7s} n={row['n']:>6d} N={row['n_nodes']:>3d}  "
            f"looped={row['looped_seconds'] * 1e3:7.1f} ms  "
            f"vectorized={row['vectorized_seconds'] * 1e3:7.1f} ms  "
            f"speedup={row['speedup']:.2f}x",
            flush=True,
        )
    headline = next((r for r in rows if r["scale"] == HEADLINE_SCALE), None)
    return {
        "benchmark": "kernel backends: looped vs vectorized",
        "problem": "poisson3d (7-point 3-D Poisson)",
        "timed_solves": "reference + ESRP(T=20) + ESRP(T=20, 1 failure)",
        "metric": "min over repeats of summed solver wall-clock seconds",
        "results": rows,
        "headline": {
            "scale": HEADLINE_SCALE,
            "speedup": headline["speedup"] if headline else None,
            "threshold": SPEEDUP_THRESHOLD,
            "passed": bool(headline and headline["speedup"] >= SPEEDUP_THRESHOLD),
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", type=pathlib.Path, default=DEFAULT_OUT,
                        help=f"output JSON path (default: {DEFAULT_OUT.name})")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repetitions per cell (min is kept)")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny cells only, one repeat (CI sanity run)")
    parser.add_argument("--check", action="store_true",
                        help="exit non-zero unless the medium-Poisson "
                        f"speedup is >= {SPEEDUP_THRESHOLD}x")
    args = parser.parse_args(argv)

    cells = (("tiny", 8), ("small", 8)) if args.smoke else CELLS
    repeats = 1 if args.smoke else args.repeats
    payload = run(cells, repeats)
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {args.out}")

    if args.check:
        headline = payload["headline"]
        if not headline["passed"]:
            print(
                f"FAIL: medium-Poisson speedup "
                f"{headline['speedup']}x < {SPEEDUP_THRESHOLD}x",
                file=sys.stderr,
            )
            return 1
        print(f"check passed: {headline['speedup']:.2f}x >= {SPEEDUP_THRESHOLD}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
