"""Kernel-backend benchmark: ``looped`` vs ``vectorized`` vs ``compiled``.

Runs the same solve set — the non-resilient reference, a failure-free
ESRP solve, and an ESRP solve surviving one mid-trajectory failure —
under every compute-kernel backend across the Poisson size tiers, and
emits ``BENCH_kernels.json``.  The backends produce bit-identical
reports (enforced here per cell, and property-tested in
``tests/properties/test_backend_equivalence.py``), so the wall-clock
ratios are pure hot-path measurements.  Each cell also records a
per-iteration-normalised ``seconds_per_iteration`` column so speedups
are comparable across scales with different iteration counts.

Gates (``--check``):

* **headline** — the medium Poisson cell (20^3 = 8000 unknowns, 32
  virtual nodes) must show ``vectorized`` >= 3x over ``looped``
  (the historical per-rank-overhead gate).
* **recorded floor** — at the memory-bound cells where the previous
  sweep recorded the vectorized speedup decaying (2.27x at 32k, 1.59x
  at 85k), the ``compiled`` speedup over ``looped`` must strictly
  exceed the recorded vectorized number: the new backend has to beat
  the decayed curve where it was measured, not just at friendly sizes.
* **monotonicity** — the ``compiled``-over-``vectorized``
  per-iteration advantage must not decay from ``medium`` through the
  largest cell: every large-scale ratio must stay within 7% of the
  medium baseline, or at minimum keep a >=1.02x absolute edge (the
  parity floor — shared-host jitter may wobble a cell below the
  baseline, but the advantage must never erode toward 1.0x, which is
  exactly what happened to vectorized).  Vectorized's looped-relative
  speedup *necessarily* decays toward the pure memory-traffic ratio
  as Python overhead amortises; what must not decay is the margin the
  fused chains and the one-traversal SpMV buy on top.

Usage::

    python benchmarks/bench_kernels.py                 # full sweep
    python benchmarks/bench_kernels.py --check         # + enforce gates
    python benchmarks/bench_kernels.py --smoke         # CI sanity run
    python benchmarks/bench_kernels.py --out other.json
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

import repro
from repro.matrices import suite

DEFAULT_OUT = pathlib.Path(__file__).resolve().parent.parent / "BENCH_kernels.json"

ALL_BACKENDS = ("looped", "vectorized", "compiled")

#: (scale, n_nodes, backends) cells of the full sweep; medium is the
#: headline.  ``bench``/``large`` probe the memory-bound regime where
#: the vectorized speedup was recorded decaying; ``xlarge`` (64^3 =
#: 262 144) and ``huge`` (80^3 = 512 000) extend the curve far past the
#: point where per-rank Python overhead matters at all.
CELLS = (
    ("tiny", 8, ALL_BACKENDS),
    ("small", 16, ALL_BACKENDS),
    ("medium", 32, ALL_BACKENDS),
    ("bench", 32, ALL_BACKENDS),
    ("large", 32, ALL_BACKENDS),
    ("xlarge", 32, ALL_BACKENDS),
    ("huge", 32, ALL_BACKENDS),
)
#: Smoke cells: the fast registry/bit-identity sanity pass plus one
#: genuinely large cell exercising the new fused machinery (looped is
#: dropped there — it adds minutes of CI time and is gated in full runs).
SMOKE_CELLS = (
    ("tiny", 8, ALL_BACKENDS),
    ("small", 8, ALL_BACKENDS),
    ("xlarge", 32, ("vectorized", "compiled")),
)

HEADLINE_SCALE = "medium"
SPEEDUP_THRESHOLD = 3.0

#: Vectorized-over-looped speedups recorded by the pre-``compiled``
#: sweep (BENCH_kernels.json at PR 6) — the decayed numbers the
#: ``compiled`` backend must strictly beat at the same cells.
RECORDED_VECTORIZED_SPEEDUP = {
    "bench": 2.27,   # n = 32 768
    "large": 1.59,   # n = 85 184
}

#: Multiplicative slack on the monotonicity gate: timing on a shared
#: host jitters several percent per cell; a genuine decay trend shows
#: up far larger (the vectorized-over-looped curve loses ~65% over the
#: same range).  Each large-scale ratio is compared against the
#: *medium baseline*, not its immediate neighbour — pairwise
#: comparison would flag a single noisy spike as a "drop".
MONOTONICITY_TOLERANCE = 0.93

#: The failure mode the monotonicity gate exists to catch is the
#: advantage eroding to *parity* (what happened to vectorized:
#: 3.8x -> 1.2x and falling).  On a shared host the per-cell jitter
#: (~+/-8%) can exceed the baseline tolerance without any real decay,
#: so a below-baseline wobble only counts as a violation if the
#: compiled backend's edge also drops below this absolute floor.
ADVANTAGE_FLOOR = 1.02


def _requests(reference_iterations: int) -> list[repro.SolveRequest]:
    failure_at = max(3, reference_iterations // 2)
    return [
        repro.SolveRequest(strategy="reference", T=1, phi=1),
        repro.SolveRequest(strategy="esrp", T=20, phi=1),
        repro.SolveRequest(
            strategy="esrp", T=20, phi=1,
            failures=[repro.FailureEvent(failure_at, (1,))],
        ),
    ]


def bench_cell(scale: str, n_nodes: int, backends, repeats: int) -> dict:
    matrix, b, meta = suite.load("poisson3d", scale=scale)
    sessions = {
        backend: repro.SolverSession(matrix, b, n_nodes=n_nodes, backend=backend)
        for backend in backends
    }
    requests = None
    timings: dict[str, float] = {backend: float("inf") for backend in backends}
    fingerprints: dict[str, tuple] = {}
    timed_iterations: dict[str, int] = {}
    # Repeats are interleaved across backends so slow drift in the host
    # (thermal, noisy neighbours) biases every backend equally.
    for _ in range(repeats):
        for backend, session in sessions.items():
            reference = session.reference()  # shared setup, outside the timing
            if requests is None:
                requests = _requests(reference.C)
            reports = [session.solve(request) for request in requests]
            timings[backend] = min(
                timings[backend], sum(report.wall_time for report in reports)
            )
            fingerprints[backend] = tuple(
                (report.iterations, report.modeled_time) for report in reports
            )
            timed_iterations[backend] = sum(
                report.executed_iterations for report in reports
            )
    baseline = backends[0]
    for backend in backends[1:]:
        if fingerprints[backend] != fingerprints[baseline]:
            raise AssertionError(
                f"backend results diverged on {scale}: "
                f"{baseline}={fingerprints[baseline]} "
                f"{backend}={fingerprints[backend]}"
            )
    iterations = timed_iterations[baseline]
    row = {
        "scale": scale,
        "n": meta.n,
        "nnz": meta.nnz,
        "n_nodes": n_nodes,
        "iterations": fingerprints[baseline][0][0],
        "timed_iterations": iterations,
        "seconds": {backend: timings[backend] for backend in backends},
        "seconds_per_iteration": {
            backend: timings[backend] / iterations for backend in backends
        },
    }
    if "looped" in timings:
        row["speedups"] = {
            backend: timings["looped"] / timings[backend]
            for backend in backends
            if backend != "looped"
        }
        # Back-compat alias: earlier sweeps stored the (then-only)
        # looped/vectorized ratio under the scalar key "speedup".
        if "vectorized" in timings:
            row["speedup"] = row["speedups"]["vectorized"]
    if "vectorized" in timings and "compiled" in timings:
        row["compiled_vs_vectorized"] = (
            timings["vectorized"] / timings["compiled"]
        )
    return row


def _fmt_row(row: dict) -> str:
    parts = [
        f"poisson3d/{row['scale']:<7s} n={row['n']:>6d} N={row['n_nodes']:>3d}"
    ]
    for backend, seconds in row["seconds"].items():
        parts.append(f"{backend}={seconds * 1e3:8.1f} ms")
    for backend, ratio in row.get("speedups", {}).items():
        parts.append(f"{backend[0]}x{ratio:5.2f}")
    if "compiled_vs_vectorized" in row:
        parts.append(f"c/v={row['compiled_vs_vectorized']:.2f}")
    return "  ".join(parts)


def check_monotonicity(rows: list[dict]) -> dict:
    """The compiled-over-vectorized curve from ``medium`` upward.

    Gate: no ratio past ``medium`` may fall below the medium baseline
    (times :data:`MONOTONICITY_TOLERANCE`) — i.e. the compiled
    backend's advantage must not decay as n grows, unlike the
    vectorized-over-looped speedup it was built to rescue.
    """
    scales = [
        row["scale"] for row in rows
        if "compiled_vs_vectorized" in row
    ]
    if HEADLINE_SCALE not in scales:
        return {"checked": False, "reason": f"no {HEADLINE_SCALE} cell"}
    curve = [
        (row["scale"], row["compiled_vs_vectorized"])
        for row in rows
        if "compiled_vs_vectorized" in row
        and scales.index(row["scale"]) >= scales.index(HEADLINE_SCALE)
    ]
    baseline = curve[0][1]
    # A violation must both fall below the baseline (beyond noise
    # tolerance) *and* erode toward parity — see ADVANTAGE_FLOOR.
    threshold = min(baseline * MONOTONICITY_TOLERANCE, ADVANTAGE_FLOOR)
    violations = [
        f"{HEADLINE_SCALE}->{scale}: {baseline:.3f} -> {ratio:.3f}"
        f" (threshold {threshold:.3f})"
        for scale, ratio in curve[1:]
        if ratio < threshold
    ]
    return {
        "checked": True,
        "curve": {scale: ratio for scale, ratio in curve},
        "baseline": baseline,
        "tolerance": MONOTONICITY_TOLERANCE,
        "advantage_floor": ADVANTAGE_FLOOR,
        "threshold": threshold,
        "violations": violations,
        "passed": not violations,
    }


def check_recorded_floor(rows: list[dict]) -> dict:
    """Compiled speedup vs the recorded (decayed) vectorized numbers."""
    comparisons = {}
    passed = True
    for row in rows:
        recorded = RECORDED_VECTORIZED_SPEEDUP.get(row["scale"])
        compiled_speedup = row.get("speedups", {}).get("compiled")
        if recorded is None or compiled_speedup is None:
            continue
        ok = compiled_speedup > recorded
        passed = passed and ok
        comparisons[row["scale"]] = {
            "recorded_vectorized": recorded,
            "compiled": compiled_speedup,
            "passed": ok,
        }
    return {
        "checked": bool(comparisons),
        "comparisons": comparisons,
        "passed": passed,
    }


def run(cells, repeats: int) -> dict:
    rows = []
    for scale, n_nodes, backends in cells:
        row = bench_cell(scale, n_nodes, backends, repeats)
        rows.append(row)
        print(_fmt_row(row), flush=True)
    headline = next((r for r in rows if r["scale"] == HEADLINE_SCALE), None)
    return {
        "benchmark": "kernel backends: looped vs vectorized vs compiled",
        "problem": "poisson3d (7-point 3-D Poisson)",
        "timed_solves": "reference + ESRP(T=20) + ESRP(T=20, 1 failure)",
        "metric": "min over interleaved repeats of summed solver wall-clock "
        "seconds; seconds_per_iteration normalises by executed iterations",
        "results": rows,
        "headline": {
            "scale": HEADLINE_SCALE,
            "speedup": headline.get("speedup") if headline else None,
            "threshold": SPEEDUP_THRESHOLD,
            "passed": bool(
                headline and (headline.get("speedup") or 0) >= SPEEDUP_THRESHOLD
            ),
        },
        "monotonicity": check_monotonicity(rows),
        "recorded_floor": check_recorded_floor(rows),
    }


def _check(payload: dict, smoke: bool) -> int:
    failures = []
    headline = payload["headline"]
    if headline["speedup"] is not None and not headline["passed"]:
        failures.append(
            f"medium-Poisson speedup {headline['speedup']:.2f}x "
            f"< {SPEEDUP_THRESHOLD}x"
        )
    for name in ("monotonicity", "recorded_floor"):
        gate = payload[name]
        if not gate.get("checked"):
            print(f"NOTE: {name} gate skipped: "
                  f"{gate.get('reason', 'cells not present in this run')}")
            continue
        if not gate["passed"]:
            detail = gate.get("violations") or [
                f"{scale}: compiled {c['compiled']:.2f}x <= "
                f"recorded {c['recorded_vectorized']}x"
                for scale, c in gate.get("comparisons", {}).items()
                if not c["passed"]
            ]
            failures.append(f"{name} gate: " + "; ".join(detail))
    if smoke:
        # Smoke cells are too small/noisy to hold the perf gates to
        # account; bit-identity was already asserted per cell above.
        if failures:
            print(
                "NOTE: perf gates not enforced in --smoke "
                f"(would have flagged: {'; '.join(failures)})"
            )
        print("smoke check passed: fingerprints identical across backends "
              "in every cell")
        return 0
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    if headline["speedup"] is not None:
        print(f"check passed: headline {headline['speedup']:.2f}x >= "
              f"{SPEEDUP_THRESHOLD}x")
    mono = payload["monotonicity"]
    if mono.get("checked"):
        curve = "  ".join(f"{s}={r:.2f}" for s, r in mono["curve"].items())
        print(f"check passed: compiled/vectorized advantage holds from "
              f"{HEADLINE_SCALE} up (threshold {mono['threshold']:.3f}) "
              f"[{curve}]")
    floor = payload["recorded_floor"]
    if floor.get("checked"):
        beats = "  ".join(
            f"{s}: {c['compiled']:.2f}x > {c['recorded_vectorized']}x"
            for s, c in floor["comparisons"].items()
        )
        print(f"check passed: compiled beats recorded vectorized floor "
              f"[{beats}]")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", type=pathlib.Path, default=DEFAULT_OUT,
                        help=f"output JSON path (default: {DEFAULT_OUT.name})")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repetitions per cell (min is kept)")
    parser.add_argument("--smoke", action="store_true",
                        help="reduced cells, one repeat (CI sanity run); "
                        "--check verifies bit-identity, not perf gates")
    parser.add_argument("--check", action="store_true",
                        help="exit non-zero unless every gate passes "
                        "(headline, recorded floor, monotonicity)")
    args = parser.parse_args(argv)

    cells = SMOKE_CELLS if args.smoke else CELLS
    repeats = 1 if args.smoke else args.repeats
    payload = run(cells, repeats)
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {args.out}")

    if args.check:
        return _check(payload, args.smoke)
    return 0


if __name__ == "__main__":
    sys.exit(main())
