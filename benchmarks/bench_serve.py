"""Serve benchmark: latency, throughput, pool economics, bit-identity.

Three cell families, all recorded into ``BENCH_serve.json``:

* **latency** — a config-skewed load (two preconditioner
  configurations, pool capacity >= configurations, concurrent
  clients) against a live ``ThreadingHTTPServer``; records p50/p99
  request latency, requests/sec and the session-pool hit rate.  With
  capacity covering the working set, everything after the first
  request per configuration must be a pool hit.
* **pool_churn** — the same load with pool capacity **1** (every
  configuration switch evicts) and a shared trajectory cache; records
  eviction count and the hit rate under churn.  No performance gate —
  the cell exists to measure what eviction costs and prove the
  service stays correct while thrashing.
* **identity** — the served, hash-stamped report must equal a direct
  in-process ``SolverSession.solve()`` report (minus ``wall_time``,
  which the stamp deliberately excludes), and repeated served replies
  must carry one identical ``response_digest``.

The acceptance gate (``--check``):

* latency: zero failed requests, stamps verified and
  digest-consistent, pool hit rate >= 0.9, and — full mode only —
  p99 latency <= 2.0 s and throughput >= 5 req/s (tiny problems;
  generous bounds so a loaded CI host doesn't flake).
* pool_churn: evictions actually happened, zero failed requests,
  digest-consistent.
* identity: byte-equality holds.
* smoke mode gates everything except the latency/throughput numbers.

Usage::

    python benchmarks/bench_serve.py            # full load
    python benchmarks/bench_serve.py --check    # + enforce gate
    python benchmarks/bench_serve.py --smoke    # CI sanity run
    python benchmarks/bench_serve.py --out other.json
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
import tempfile

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
sys.path.insert(0, str(SRC))

from repro.api import SolveRequest, SolverSession  # noqa: E402
from repro.serve import (  # noqa: E402
    ServeRequest,
    SolverServer,
    canonical_report,
    post_json,
    run_load,
)

DEFAULT_OUT = REPO_ROOT / "BENCH_serve.json"
#: Pool hit rate the config-skewed latency cell must reach.
HIT_RATE_FLOOR = 0.9
#: Latency / throughput bounds (full mode only; tiny problems).
P99_CEILING_SECONDS = 2.0
RPS_FLOOR = 5.0

#: The serving working set: two preconditioner configurations over one
#: problem — two session keys, exercised with skew (block_jacobi gets
#: 3 of every 4 requests, like a production mix with a hot config).
CONFIGS = ("block_jacobi", "jacobi")


def make_payloads(n_requests: int) -> list[dict]:
    return [
        ServeRequest(
            request=SolveRequest(
                strategy="esrp" if i % 2 else "esr",
                T=10,
                phi=1,
                preconditioner=CONFIGS[0] if i % 4 else CONFIGS[1],
            ),
        ).to_dict()
        for i in range(n_requests)
    ]


def run_latency(n_requests: int, clients: int) -> dict:
    payloads = make_payloads(n_requests)
    with SolverServer(pool_size=4, verbose=False) as server:
        # One warm-up request per configuration: the cell measures the
        # steady serving regime, not first-build matrix setup (the
        # pool_churn cell charges for builds).
        for preconditioner in CONFIGS:
            status, _ = post_json(
                server.url + "/solve",
                ServeRequest(
                    request=SolveRequest(
                        strategy="esr", T=10, preconditioner=preconditioner
                    ),
                ).to_dict(),
            )
            assert status == 200, f"warm-up failed with {status}"
        report = run_load(server.url, payloads, clients=clients)
    row = {
        "requests": report.requests,
        "clients": clients,
        "configs": len(CONFIGS),
        "pool_size": 4,
        "ok": report.ok,
        "errors": report.errors,
        "seconds": report.elapsed,
        "requests_per_sec": report.requests_per_second,
        "p50_latency": report.p50_latency,
        "p99_latency": report.p99_latency,
        "digests_consistent": report.digests_consistent,
        "pool": report.pool,
    }
    print(
        f"latency: {row['ok']}/{row['requests']} ok with {clients} clients  "
        f"{row['requests_per_sec']:6.1f} req/s  "
        f"p50 {row['p50_latency'] * 1e3:6.1f} ms  "
        f"p99 {row['p99_latency'] * 1e3:6.1f} ms  "
        f"hit rate {row['pool'].get('hit_rate', 0.0):.0%}  "
        f"{'OK' if row['digests_consistent'] else 'DIGEST MISMATCH'}",
        flush=True,
    )
    return row


def run_pool_churn(n_requests: int, clients: int, scratch: pathlib.Path) -> dict:
    payloads = make_payloads(n_requests)
    with SolverServer(
        pool_size=1, cache_dir=scratch / "serve-cache", verbose=False
    ) as server:
        report = run_load(server.url, payloads, clients=clients)
    row = {
        "requests": report.requests,
        "clients": clients,
        "configs": len(CONFIGS),
        "pool_size": 1,
        "ok": report.ok,
        "errors": report.errors,
        "seconds": report.elapsed,
        "requests_per_sec": report.requests_per_second,
        "p99_latency": report.p99_latency,
        "digests_consistent": report.digests_consistent,
        "pool": report.pool,
    }
    print(
        f"churn:   {row['ok']}/{row['requests']} ok with pool=1  "
        f"{row['requests_per_sec']:6.1f} req/s  "
        f"{row['pool'].get('evictions', 0)} eviction(s)  "
        f"hit rate {row['pool'].get('hit_rate', 0.0):.0%}  "
        f"{'OK' if row['digests_consistent'] else 'DIGEST MISMATCH'}",
        flush=True,
    )
    return row


def run_identity() -> dict:
    serve_req = ServeRequest(
        request=SolveRequest(strategy="esrp", T=10, phi=1, seed=11)
    )
    with SolverServer(pool_size=1, verbose=False) as server:
        replies = [
            post_json(server.url + "/solve", serve_req.to_dict())
            for _ in range(3)
        ]
    assert all(status == 200 for status, _ in replies)
    digests = {body["response_digest"] for _, body in replies}
    session = SolverSession.from_problem(
        serve_req.problem, serve_req.scale, n_nodes=serve_req.n_nodes
    )
    direct = canonical_report(session.solve(serve_req.request))
    served = replies[0][1]["report"]
    row = {
        "replies": len(replies),
        "digests_stable": len(digests) == 1,
        "matches_direct_solve": served == direct,
        "problem_digest_matches": (
            replies[0][1]["problem_digest"] == session.problem_digest
        ),
    }
    print(
        f"identity: {row['replies']} replies, "
        f"{'1 digest' if row['digests_stable'] else 'DIGESTS DIVERGE'}, "
        f"direct-solve match "
        f"{'OK' if row['matches_direct_solve'] else 'MISMATCH'}",
        flush=True,
    )
    return row


def run(n_requests: int, clients: int) -> dict:
    with tempfile.TemporaryDirectory(prefix="bench-serve-") as scratch_name:
        scratch = pathlib.Path(scratch_name)
        latency = run_latency(n_requests, clients)
        churn = run_pool_churn(max(8, n_requests // 2), clients, scratch)
        identity = run_identity()
    return {
        "benchmark": "solver service: latency, pool economics, bit-identity",
        "metric": "requests/sec and request-latency percentiles over HTTP",
        "cpu_count": os.cpu_count() or 1,
        "latency": latency,
        "pool_churn": churn,
        "identity": identity,
        "headline": {
            "requests_per_sec": latency["requests_per_sec"],
            "p50_latency": latency["p50_latency"],
            "p99_latency": latency["p99_latency"],
            "pool_hit_rate": latency["pool"].get("hit_rate", 0.0),
            "hit_rate_floor": HIT_RATE_FLOOR,
            "churn_evictions": churn["pool"].get("evictions", 0),
            "bit_identical": (
                identity["digests_stable"]
                and identity["matches_direct_solve"]
                and latency["digests_consistent"]
                and churn["digests_consistent"]
            ),
        },
    }


def check(payload: dict, smoke: bool) -> int:
    headline = payload["headline"]
    latency = payload["latency"]
    churn = payload["pool_churn"]
    failures = []
    if latency["errors"] or churn["errors"]:
        failures.append(
            f"requests failed: {latency['errors']} (latency) + "
            f"{churn['errors']} (churn)"
        )
    if not headline["bit_identical"]:
        failures.append(
            "served replies are not bit-identical to direct solves "
            "(or digests diverged across identical requests)"
        )
    if headline["pool_hit_rate"] < HIT_RATE_FLOOR:
        failures.append(
            f"pool hit rate {headline['pool_hit_rate']:.2f} < "
            f"{HIT_RATE_FLOOR} on the config-skewed load"
        )
    if headline["churn_evictions"] < 1:
        failures.append("churn cell produced no evictions (pool=1 not thrashing?)")
    if not smoke:
        if headline["p99_latency"] > P99_CEILING_SECONDS:
            failures.append(
                f"p99 latency {headline['p99_latency']:.2f}s > "
                f"{P99_CEILING_SECONDS}s"
            )
        if headline["requests_per_sec"] < RPS_FLOOR:
            failures.append(
                f"throughput {headline['requests_per_sec']:.1f} req/s < "
                f"{RPS_FLOOR} req/s"
            )
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print(
        "check passed: "
        f"{headline['requests_per_sec']:.1f} req/s, "
        f"p99 {headline['p99_latency'] * 1e3:.0f} ms, "
        f"hit rate {headline['pool_hit_rate']:.0%} "
        f"(floor {HIT_RATE_FLOOR:.0%}), "
        f"{headline['churn_evictions']} churn eviction(s), bit-identical"
    )
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", type=pathlib.Path, default=DEFAULT_OUT,
                        help=f"output JSON path (default: {DEFAULT_OUT.name})")
    parser.add_argument("--requests", type=int, default=64,
                        help="requests in the latency cell")
    parser.add_argument("--clients", type=int, default=4,
                        help="concurrent client threads")
    parser.add_argument("--smoke", action="store_true",
                        help="small load, no latency/throughput gate "
                        "(CI sanity run)")
    parser.add_argument("--check", action="store_true",
                        help="exit non-zero unless the serve gates hold "
                        "(see module docstring)")
    args = parser.parse_args(argv)

    n_requests = 24 if args.smoke else args.requests
    payload = run(n_requests, args.clients)
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {args.out}")

    if args.check:
        return check(payload, args.smoke)
    return 0


if __name__ == "__main__":
    sys.exit(main())
