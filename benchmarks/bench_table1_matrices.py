"""Table 1 — test-matrix properties.

Regenerates the paper's Table 1 for our synthetic stand-ins and prints
the paper's native figures next to them.  The benchmark times problem
generation (matrix assembly + RHS).
"""

from __future__ import annotations

from conftest import is_quick, write_artifact

from repro.matrices import sparsity_stats, suite


def _scale() -> str:
    import os

    return os.environ.get("REPRO_SCALE", "small" if is_quick() else "bench")


def render_table1() -> str:
    lines = [
        "Table 1: Test matrices (synthetic stand-ins; paper values in parentheses)",
        "",
        f"{'Matrix':18s} {'Problem type':14s} {'Problem size':>14s} {'#NZ':>12s} {'nnz/row':>9s} {'bandwidth':>10s}",
        "-" * 84,
    ]
    for name in suite.available_problems():
        matrix, _b, meta = suite.load(name, scale=_scale())
        stats = sparsity_stats(matrix)
        paper = meta.paper
        lines.append(
            f"{name:18s} {meta.problem_type:14s} "
            f"{meta.n:>8d} ({paper['paper_n']:>7d}) "
            f"{meta.nnz:>6d} ({paper['paper_nnz']:>8d}) "
            f"{meta.nnz_per_row:>9.1f} {stats.bandwidth:>10d}"
        )
        assert stats.symmetric, f"{name} must be symmetric"
    return "\n".join(lines)


def test_table1_matrix_properties(benchmark):
    def generate():
        return render_table1()

    table = benchmark.pedantic(generate, rounds=1, iterations=1)
    print("\n" + table)
    write_artifact("table1_matrices.txt", table)
