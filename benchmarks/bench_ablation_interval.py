"""Ablation A2 — checkpoint-interval sweep vs. Young/Daly optimum.

The paper frames ESRP as checkpoint-restart with a tunable interval T
and cites Young [28] / Daly [8] for choosing it.  This bench sweeps T
under an MTBF-driven Poisson failure schedule, measures the median
total overhead per T, and compares the empirical sweet spot with the
analytic optimum computed from the measured per-stage storage cost.
"""

from __future__ import annotations

import numpy as np
from conftest import is_quick, write_artifact

import repro
from repro.core.interval import expected_waste_fraction, optimal_interval_iterations
from repro.events import EventKind
from repro.harness.calibration import BENCH_COST_MODEL

N_NODES = 8
PHI = 2
INTERVALS = (3, 5, 10, 20, 40, 80, 160)
REPS = 3


def run_sweep():
    scale = "tiny" if is_quick() else "small"
    matrix, b, _ = repro.matrices.load("emilia_923_like", scale=scale)
    reference = repro.solve(
        matrix, b, n_nodes=N_NODES, strategy="reference", cost_model=BENCH_COST_MODEL
    )
    C, t0 = reference.iterations, reference.modeled_time
    mtbf_iterations = max(C // 3, 30)

    rows = []
    for T in INTERVALS:
        totals = []
        for rep in range(REPS):
            schedule = repro.poisson_schedule(
                mtbf_iterations=mtbf_iterations,
                horizon=C,
                width=PHI,
                n_nodes=N_NODES,
                seed=101 + rep,
                min_gap=max(T, 8),
            )
            result = repro.solve(
                matrix, b, n_nodes=N_NODES, strategy="esrp", T=T, phi=PHI,
                failures=schedule, cost_model=BENCH_COST_MODEL,
            )
            assert result.converged
            totals.append((result.modeled_time - t0) / t0)
        rows.append((T, float(np.median(totals))))

    # measured per-stage storage cost for the analytic optimum
    esrp_ff = repro.solve(
        matrix, b, n_nodes=N_NODES, strategy="esrp", T=20, phi=PHI,
        cost_model=BENCH_COST_MODEL,
    )
    stages = len(esrp_ff.events.of_kind(EventKind.STORAGE_STAGE)) / 2
    delta = (esrp_ff.modeled_time - t0) / max(stages, 1)
    seconds_per_iteration = t0 / C
    t_opt = optimal_interval_iterations(
        delta, mtbf_iterations * seconds_per_iteration, seconds_per_iteration
    )
    return rows, t_opt, delta, mtbf_iterations, seconds_per_iteration


def test_ablation_checkpoint_interval(benchmark):
    rows, t_opt, delta, mtbf_iters, spi = benchmark.pedantic(
        run_sweep, rounds=1, iterations=1
    )
    lines = [
        "Ablation A2: ESRP total overhead vs storage interval T "
        f"(Poisson failures, MTBF = {mtbf_iters} iterations, phi = {PHI})",
        "",
        f"{'T':>5s} {'median overhead':>16s} {'analytic waste d/T + T/2M':>26s}",
        "-" * 52,
    ]
    for T, overhead in rows:
        analytic = expected_waste_fraction(T * spi, delta, mtbf_iters * spi)
        lines.append(f"{T:>5d} {100 * overhead:>15.2f}% {100 * analytic:>25.2f}%")
    lines.append("")
    lines.append(f"Daly-optimal interval from measured stage cost: T* = {t_opt}")
    table = "\n".join(lines)
    print("\n" + table)
    write_artifact("ablation_a2_interval.txt", table)

    # shape: the overhead curve is U-ish — the ends are worse than the best
    overheads = dict(rows)
    best_T = min(overheads, key=overheads.get)
    assert overheads[min(INTERVALS)] >= overheads[best_T]
    assert overheads[max(INTERVALS)] >= overheads[best_T]
