"""Ablation A2 — checkpoint-interval sweep vs. Young/Daly optimum.

The paper frames ESRP as checkpoint-restart with a tunable interval T
and cites Young [28] / Daly [8] for choosing it.  This bench is a thin
wrapper over the scenario-campaign engine (:mod:`repro.campaign`): one
declarative spec sweeps T under an MTBF-driven Poisson failure
schedule, the engine runs the seeded repetitions and aggregates the
median total overhead per T, and the table compares the empirical
sweet spot with the analytic optimum computed from the measured
per-stage storage cost.
"""

from __future__ import annotations

from conftest import is_quick, write_artifact

import repro
from repro.campaign import CampaignSpec, ScenarioSpec, StrategySpec, execute_campaign
from repro.core.interval import expected_waste_fraction, optimal_interval_iterations
from repro.events import EventKind
from repro.harness.calibration import BENCH_COST_MODEL

N_NODES = 8
PHI = 2
INTERVALS = (3, 5, 10, 20, 40, 80, 160)
REPS = 3
MTBF_FRACTION = 1 / 3


def run_sweep():
    scale = "tiny" if is_quick() else "small"
    spec = CampaignSpec(
        name="ablation-a2-interval",
        problems=(("emilia_923_like", scale),),
        n_nodes=N_NODES,
        strategies=(StrategySpec("esrp", INTERVALS),),
        phis=(PHI,),
        # the original A2 regime: MTBF = max(C // 3, 30), min_gap = max(T, 8)
        scenarios=(
            ScenarioSpec.make(
                "mtbf", mtbf_fraction=MTBF_FRACTION, mtbf_floor=30, min_gap_floor=8
            ),
        ),
        repetitions=REPS,
        seed=101,
    )
    result = execute_campaign(spec, workers=0)
    assert all(record.converged for record in result)
    rows = [(row["T"], row["total_overhead"]) for row in result.overhead_rows()]

    sample = result.records[0]
    t0, C = sample.reference_time, sample.reference_iterations
    mtbf_iterations = max(30, round(MTBF_FRACTION * C))

    # measured per-stage storage cost for the analytic optimum
    matrix, b, _ = repro.matrices.load("emilia_923_like", scale=scale, seed=spec.seed)
    esrp_ff = repro.solve(
        matrix, b, n_nodes=N_NODES, strategy="esrp", T=20, phi=PHI,
        cost_model=BENCH_COST_MODEL, seed=spec.seed,
    )
    stages = len(esrp_ff.events.of_kind(EventKind.STORAGE_STAGE)) / 2
    # t0 from the campaign's cached reference run is bit-identical to a
    # fresh reference solve with the same seed/cost model.
    delta = (esrp_ff.modeled_time - t0) / max(stages, 1)
    seconds_per_iteration = t0 / C
    t_opt = optimal_interval_iterations(
        delta, mtbf_iterations * seconds_per_iteration, seconds_per_iteration
    )
    return rows, t_opt, delta, mtbf_iterations, seconds_per_iteration


def test_ablation_checkpoint_interval(benchmark):
    rows, t_opt, delta, mtbf_iters, spi = benchmark.pedantic(
        run_sweep, rounds=1, iterations=1
    )
    lines = [
        "Ablation A2: ESRP total overhead vs storage interval T "
        f"(campaign sweep, Poisson failures, MTBF = {mtbf_iters} iterations, "
        f"phi = {PHI})",
        "",
        f"{'T':>5s} {'median overhead':>16s} {'analytic waste d/T + T/2M':>26s}",
        "-" * 52,
    ]
    for T, overhead in rows:
        analytic = expected_waste_fraction(T * spi, delta, mtbf_iters * spi)
        lines.append(f"{T:>5d} {100 * overhead:>15.2f}% {100 * analytic:>25.2f}%")
    lines.append("")
    lines.append(f"Daly-optimal interval from measured stage cost: T* = {t_opt}")
    table = "\n".join(lines)
    print("\n" + table)
    write_artifact("ablation_a2_interval.txt", table)

    # shape: the overhead curve is U-ish — the ends are worse than the best
    overheads = dict(rows)
    best_T = min(overheads, key=overheads.get)
    assert overheads[min(INTERVALS)] >= overheads[best_T]
    assert overheads[max(INTERVALS)] >= overheads[best_T]
