"""Queue benchmark: scaling, affine claiming, compaction, sharded layout.

Four cell families, all recorded into ``BENCH_queue.json``:

* **scaling** — tasks/sec from 1 to 8 ``repro campaign worker``
  subprocesses draining one reference sweep (tiny Emilia-like
  campaign).  Every configuration's collected result must be
  byte-identical to the single-worker one — the determinism contract
  of :mod:`repro.queue` — which doubles as the correctness gate.
* **affinity** — a multi-configuration sweep (2 problems x 2
  preconditioners = 4 configuration groups, no shared trajectory
  cache) drained with configuration-affine vs plain scan-order
  claiming.  Besides tasks/sec, each cell records the **config
  spread**: the total number of (worker, configuration) warm-ups paid.
  Affine claiming's whole point is spread ~= n_configs instead of
  n_configs x workers.
* **compaction** — one worker draining with an aggressive
  ``--compact-every`` cadence; records segment count and collect time,
  and the collect must stay byte-identical to the uncompacted drain.
* **sharded** — the layout-v3 six-figure-sweep cells: submit time and
  *claim-scan* time (cold chunk selection + a fixed batch of real
  lease claims from a fresh store handle) at two sweep sizes an order
  of magnitude apart (10k and 100k tasks in the full run), plus a
  layout-v2 reference point at the small size.  Claim-scan cost must
  be O(shards), i.e. essentially flat in the task count.

The acceptance gate (``--check``) is host-aware:

* scaling: on a multi-core host the 2-worker configuration must reach
  >= 1.15x single-worker throughput.  On a single-core host scaling
  cells are **refused**: ``run`` records the honest per-core raw rates
  but stores ``scaling_vs_1: null`` everywhere, and ``--check`` fails
  if a scaling ratio was stored anyway (a ``cpu_count: 1`` "0.65x"
  measures coordination contention, not the queue) — only the
  raw-rate overhead floor (2-worker >= 0.5x 1-worker) is enforced.
  Every recorded cell carries the recording host's ``cpu_count`` so
  stored numbers can't be misread later.
* affinity: the affine config spread is always bounded by
  ``n_configs + 2 * (workers - 1)`` (near-perfect chunking plus tail
  stealing) and never exceeds the scan-order spread; affine claiming
  must not regress single-worker throughput (>= 0.85x) and must not
  regress the multi-worker sweep on multi-core hosts (>= 0.95x —
  the warm-up saving is the spread cell's deterministic evidence).
* compaction: segments were actually published and the collect is
  byte-identical.
* sharded: claim-scan time at the large size must stay <= 3x the
  small size (sub-linear in tasks; both sizes claim the same fixed
  batch, so O(shards) selection shows up as a ratio near 1).
* smoke mode gates completeness + byte-identity + the spread bound +
  the sharded claim-scan ratio, at reduced sizes (CI sanity run).

Usage::

    python benchmarks/bench_queue_throughput.py            # full sweep
    python benchmarks/bench_queue_throughput.py --check    # + enforce gate
    python benchmarks/bench_queue_throughput.py --smoke    # CI sanity run
    python benchmarks/bench_queue_throughput.py --out other.json
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import subprocess
import sys
import tempfile
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
sys.path.insert(0, str(SRC))

from repro.campaign import CampaignSpec, ScenarioSpec, StrategySpec, demo_spec  # noqa: E402
from repro.campaign.spec import expand_spec  # noqa: E402
from repro.queue import QueueStore, QueueWorker, collect, task_config  # noqa: E402

DEFAULT_OUT = REPO_ROOT / "BENCH_queue.json"
WORKER_COUNTS = (1, 2, 4, 8)
SMOKE_WORKER_COUNTS = (1, 2)
#: Required 2-worker speedup when the host has >= 2 cores.
SCALING_THRESHOLD = 1.15
#: Allowed 2-worker *slowdown* floor on a single-core host (pure
#: coordination-overhead bound; there is no parallelism to win),
#: computed from the stored raw rates — no scaling cell is recorded.
SINGLE_CORE_FLOOR = 0.5
#: Affine claiming must not regress a single worker below this.
AFFINE_1W_FLOOR = 0.85
#: ...nor the multi-worker multi-config sweep (multi-core hosts).
AFFINE_MULTI_FLOOR = 0.95
#: Sharded-layout gate: claim-scan time at the large sweep size must
#: stay within this factor of the small size (O(shards), not O(tasks)).
CLAIM_SCAN_RATIO_BOUND = 3.0
#: Task counts for the sharded claim-scan cells (full / smoke runs).
SHARDED_SIZES = (10_000, 100_000)
SMOKE_SHARDED_SIZES = (1_000, 5_000)
#: Lease claims per claim-scan measurement (fixed across sizes, so the
#: per-claim constant cost cancels out of the ratio).
CLAIM_SCAN_CLAIMS = 64


def bench_spec(repetitions: int) -> CampaignSpec:
    """The reference sweep: the built-in demo (12 cells) x repetitions."""
    import dataclasses

    return dataclasses.replace(
        demo_spec(scale="tiny"),
        name="queue-throughput",
        repetitions=repetitions,
    )


def affinity_spec(repetitions: int, scale: str = "small") -> CampaignSpec:
    """Multi-configuration sweep: 2 problems x 2 preconditioners.

    Four configuration groups whose per-worker warm-up (session setup
    + reference trajectory, deliberately *not* shared through a disk
    cache) is a meaningful fraction of the task work — the regime
    affine claiming exists for.
    """
    return CampaignSpec(
        name="queue-affinity",
        problems=(("emilia_923_like", scale), ("poisson3d", scale)),
        n_nodes=8,
        preconditioners=("block_jacobi", "jacobi"),
        strategies=(StrategySpec("esr"),),
        phis=(1,),
        scenarios=(
            ScenarioSpec.make("failure_free"),
            ScenarioSpec.make("worst_case", location="start"),
        ),
        repetitions=repetitions,
    )


def _spawn_worker(
    queue_dir: pathlib.Path,
    index: int,
    cache_dir: pathlib.Path | None,
    affine: bool = True,
    compact_every: int | None = None,
) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    argv = [
        sys.executable, "-m", "repro", "campaign", "worker",
        "--queue", str(queue_dir), "--id", f"bench-w{index}", "--quiet",
    ]
    if cache_dir is not None:
        argv += ["--cache-dir", str(cache_dir)]
    if not affine:
        argv += ["--no-affine"]
    if compact_every is not None:
        argv += ["--compact-every", str(compact_every)]
    return subprocess.Popen(
        argv,
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.PIPE,
    )


def _drain(
    spec: CampaignSpec,
    workers: int,
    queue_dir: pathlib.Path,
    cache_dir: pathlib.Path | None,
    affine: bool = True,
    compact_every: int | None = None,
) -> tuple[QueueStore, float]:
    store = QueueStore.submit(spec, queue_dir)
    started = time.perf_counter()
    procs = [
        _spawn_worker(queue_dir, i, cache_dir, affine, compact_every)
        for i in range(workers)
    ]
    for proc in procs:
        _, stderr = proc.communicate()
        if proc.returncode != 0:
            raise RuntimeError(
                f"worker exited with {proc.returncode}: {stderr.decode()}"
            )
    elapsed = time.perf_counter() - started
    status = store.status()
    if not status.drained or status.failed:
        raise RuntimeError(f"queue not cleanly drained: {status.render()}")
    return store, elapsed


def config_spread(store: QueueStore) -> int:
    """Total (worker, configuration) warm-ups paid during the drain."""
    per_worker: dict[str, set[str]] = {}
    for outcome in store.outcomes():
        if outcome.status == "done":
            per_worker.setdefault(outcome.worker_id, set()).add(
                task_config(outcome.task_id)
            )
    return sum(len(configs) for configs in per_worker.values())


def bench_workers(spec: CampaignSpec, workers: int, scratch: pathlib.Path) -> dict:
    queue_dir = scratch / f"queue-{workers}w"
    # Workers share reference trajectories through a disk cache (the
    # same contract as `campaign run --cache-dir`), so the sweep
    # measures task throughput, not N redundant reference solves.
    cache_dir = scratch / f"cache-{workers}w"
    store, elapsed = _drain(spec, workers, queue_dir, cache_dir)
    result_path = scratch / f"result-{workers}w.json"
    collect(queue_dir).to_json(result_path)
    return {
        "workers": workers,
        "tasks": store.n_tasks,
        "seconds": elapsed,
        "tasks_per_sec": store.n_tasks / elapsed,
        # Provenance: scaling numbers are meaningless without knowing
        # how many cores the recording host could actually run
        # workers on (a single-core "0.65x" measures contention).
        "cpu_count": os.cpu_count() or 1,
        "result_path": result_path,
    }


def run_scaling(worker_counts, repetitions: int, scratch: pathlib.Path) -> dict:
    spec = bench_spec(repetitions)
    cores = os.cpu_count() or 1
    rows = []
    baseline_bytes = None
    for workers in worker_counts:
        row = bench_workers(spec, workers, scratch)
        payload = row.pop("result_path").read_bytes()
        if baseline_bytes is None:
            baseline_bytes = payload
        row["result_identical"] = payload == baseline_bytes
        base_rate = rows[0]["tasks_per_sec"] if rows else row["tasks_per_sec"]
        # A single-core host has no parallelism to measure: storing a
        # "scaling" ratio there would record pure coordination
        # contention as a queue property, so the cell is withheld
        # (null) and only the honest raw rates are kept.  --check
        # enforces the refusal.
        ratio = row["tasks_per_sec"] / base_rate
        row["scaling_vs_1"] = ratio if cores >= 2 else None
        rows.append(row)
        scaling_note = (
            f"scaling {ratio:.2f}x" if cores >= 2
            else "scaling withheld (single-core host)"
        )
        print(
            f"{row['workers']} worker(s): {row['tasks']} tasks in "
            f"{row['seconds']:6.2f}s  {row['tasks_per_sec']:6.1f} tasks/s  "
            f"{scaling_note}  "
            f"{'OK' if row['result_identical'] else 'RESULT MISMATCH'}",
            flush=True,
        )
    two = next((r for r in rows if r["workers"] == 2), None)
    return {
        "sweep": f"{spec.name} ({rows[0]['tasks']} tiny-problem tasks)",
        "results": rows,
        "headline": {
            "workers": 2,
            "scaling": (two or {}).get("scaling_vs_1"),
            "scaling_withheld": cores < 2,
            "threshold": SCALING_THRESHOLD if cores >= 2 else SINGLE_CORE_FLOOR,
            "multi_core": cores >= 2,
            "all_results_identical": all(r["result_identical"] for r in rows),
        },
    }


def run_affinity(repetitions: int, scratch: pathlib.Path, smoke: bool) -> dict:
    spec = affinity_spec(repetitions, scale="tiny" if smoke else "small")
    n_configs = len({run.config_key for run in expand_spec(spec)})
    cells = []
    baseline_bytes = None
    trials = 1 if smoke else 2
    for affine in (True, False):
        for workers in (1, 2):
            label = f"{'affine' if affine else 'scan'}-{workers}w"
            # Best-of-N: the cells are short (seconds) and subprocess
            # scheduling noise on a loaded host easily exceeds the
            # effect being measured; the minimum drain time is the
            # honest cost of each claiming mode.
            elapsed = float("inf")
            identical = True
            store = spread = None
            for trial in range(trials):
                queue_dir = scratch / f"affinity-{label}-t{trial}"
                trial_store, trial_elapsed = _drain(
                    spec, workers, queue_dir, cache_dir=None, affine=affine
                )
                payload_path = scratch / f"affinity-{label}-t{trial}.json"
                collect(queue_dir).to_json(payload_path)
                payload = payload_path.read_bytes()
                if baseline_bytes is None:
                    baseline_bytes = payload
                identical = identical and payload == baseline_bytes
                if trial_elapsed < elapsed:
                    elapsed = trial_elapsed
                    store, spread = trial_store, config_spread(trial_store)
            cell = {
                "claiming": "affine" if affine else "scan",
                "workers": workers,
                "tasks": store.n_tasks,
                "n_configs": n_configs,
                "seconds": elapsed,
                "tasks_per_sec": store.n_tasks / elapsed,
                "cpu_count": os.cpu_count() or 1,
                "config_spread": spread,
                "result_identical": identical,
            }
            cells.append(cell)
            print(
                f"affinity {label:10s}: {cell['tasks']} tasks in "
                f"{cell['seconds']:6.2f}s  {cell['tasks_per_sec']:6.1f} tasks/s  "
                f"spread {cell['config_spread']} "
                f"(configs={n_configs}, workers={workers})  "
                f"{'OK' if cell['result_identical'] else 'RESULT MISMATCH'}",
                flush=True,
            )

    def cell(claiming, workers):
        return next(
            c for c in cells
            if c["claiming"] == claiming and c["workers"] == workers
        )

    return {
        "sweep": f"{spec.name} ({cells[0]['tasks']} tasks, "
                 f"{n_configs} configuration groups, no shared cache)",
        "results": cells,
        "headline": {
            "n_configs": n_configs,
            "affine_spread_2w": cell("affine", 2)["config_spread"],
            "scan_spread_2w": cell("scan", 2)["config_spread"],
            "spread_bound_2w": n_configs + 2 * (2 - 1),
            "affine_vs_scan_1w":
                cell("affine", 1)["tasks_per_sec"]
                / cell("scan", 1)["tasks_per_sec"],
            "affine_vs_scan_2w":
                cell("affine", 2)["tasks_per_sec"]
                / cell("scan", 2)["tasks_per_sec"],
            "all_results_identical": all(c["result_identical"] for c in cells),
        },
    }


def run_compaction(repetitions: int, scratch: pathlib.Path, compact_every: int) -> dict:
    spec = bench_spec(repetitions)
    plain_store, plain_elapsed = _drain(
        spec, 1, scratch / "compact-off", cache_dir=scratch / "compact-cache-a"
    )
    plain_path = scratch / "compact-off.json"
    started = time.perf_counter()
    collect(plain_store.queue_dir).to_json(plain_path)
    plain_collect = time.perf_counter() - started

    store, elapsed = _drain(
        spec, 1, scratch / "compact-on", cache_dir=scratch / "compact-cache-b",
        compact_every=compact_every,
    )
    segments = store.segment_paths()
    shard_residual = sum(
        len(p.read_bytes().splitlines())
        for p in (store.queue_dir / "spool").glob("*.jsonl")
    )
    compact_path = scratch / "compact-on.json"
    started = time.perf_counter()
    collect(store.queue_dir).to_json(compact_path)
    compact_collect = time.perf_counter() - started

    identical = plain_path.read_bytes() == compact_path.read_bytes()
    row = {
        "tasks": store.n_tasks,
        "compact_every": compact_every,
        "cpu_count": os.cpu_count() or 1,
        "segments": len(segments),
        "segment_bytes": sum(p.stat().st_size for p in segments),
        "shard_residual_records": shard_residual,
        "drain_seconds_plain": plain_elapsed,
        "drain_seconds_compacting": elapsed,
        "collect_seconds_plain": plain_collect,
        "collect_seconds_compacted": compact_collect,
        "result_identical": identical,
    }
    print(
        f"compaction: {row['tasks']} tasks, cadence {compact_every} -> "
        f"{row['segments']} segment(s), {shard_residual} residual record(s), "
        f"collect {compact_collect:.2f}s vs {plain_collect:.2f}s plain  "
        f"{'OK' if identical else 'RESULT MISMATCH'}",
        flush=True,
    )
    return row


def sharded_spec(n_tasks: int) -> CampaignSpec:
    """A multi-configuration sweep expanded to ~``n_tasks`` runs.

    Built on :func:`affinity_spec` (8 runs per repetition, 4
    configuration groups) so shard selection sees both many shards per
    configuration *and* several configurations.
    """
    import dataclasses

    return dataclasses.replace(
        affinity_spec(max(1, n_tasks // 8), scale="tiny"),
        name="queue-sharded",
    )


def measure_claim_scan(
    queue_dir: pathlib.Path, claims: int, reps: int = 3
) -> tuple[float, int]:
    """Cold claim-scan cost: chunk selection + ``claims`` real claims.

    Each repetition opens a *fresh* store handle (no warmed caches —
    this is the cost a newly spawned worker pays), runs the worker's
    own chunk selection, claims ``claims`` tasks through the ordinary
    lease path (including the task-payload load), then releases every
    lease so the next repetition sees an idle queue.  Best-of-N: the
    minimum is the honest cost, the rest is scheduler noise.
    """
    best = float("inf")
    claimed_count = 0
    for rep in range(reps):
        store = QueueStore(queue_dir)
        worker_id = f"probe{rep}"
        worker = QueueWorker(store, worker_id=worker_id, ttl=600.0)
        claimed: list[str] = []
        started = time.perf_counter()
        while len(claimed) < claims:
            task = worker._next_task()
            if task is None:
                break
            claimed.append(task.task_id)
        elapsed = time.perf_counter() - started
        for task_id in claimed:
            store.release(task_id, worker_id)
        best = min(best, elapsed)
        claimed_count = len(claimed)
    return best, claimed_count


def run_sharded(sizes, scratch: pathlib.Path) -> dict:
    """The layout-v3 submit + claim-scan cells (no drain: metadata only)."""
    rows = []
    for n_tasks, layout in [(n, 3) for n in sizes] + [(sizes[0], 2)]:
        spec = sharded_spec(n_tasks)
        queue_dir = scratch / f"sharded-v{layout}-{n_tasks}"
        started = time.perf_counter()
        store = QueueStore.submit(spec, queue_dir, layout=layout)
        submit_seconds = time.perf_counter() - started
        n_shards = len(store.shards())
        claim_seconds, claimed = measure_claim_scan(
            queue_dir, claims=CLAIM_SCAN_CLAIMS
        )
        row = {
            "layout": layout,
            "tasks": store.n_tasks,
            "shards": n_shards,
            "submit_seconds": submit_seconds,
            "claim_scan_seconds": claim_seconds,
            "claims_measured": claimed,
            "cpu_count": os.cpu_count() or 1,
        }
        rows.append(row)
        print(
            f"sharded v{layout}: {row['tasks']:>7} tasks, "
            f"{n_shards:>3} shard(s), submit {submit_seconds:6.2f}s, "
            f"claim-scan ({claimed} claims) {claim_seconds * 1e3:7.1f}ms",
            flush=True,
        )
    v3 = [r for r in rows if r["layout"] == 3]
    small, large = v3[0], v3[-1]
    v2 = next(r for r in rows if r["layout"] == 2)
    return {
        "sweep": f"queue-sharded (layout-v3 metadata cells, "
                 f"{CLAIM_SCAN_CLAIMS} claims per measurement)",
        "results": rows,
        "headline": {
            "sizes": [r["tasks"] for r in v3],
            "claim_scan_ratio":
                large["claim_scan_seconds"] / small["claim_scan_seconds"],
            "claim_scan_bound": CLAIM_SCAN_RATIO_BOUND,
            "submit_ratio":
                large["submit_seconds"] / small["submit_seconds"],
            "tasks_ratio": large["tasks"] / small["tasks"],
            "v2_claim_scan_seconds": v2["claim_scan_seconds"],
            "v3_claim_scan_seconds_small": small["claim_scan_seconds"],
        },
    }


def run(worker_counts, repetitions: int, smoke: bool) -> dict:
    with tempfile.TemporaryDirectory(prefix="bench-queue-") as scratch_name:
        scratch = pathlib.Path(scratch_name)
        scaling = run_scaling(worker_counts, repetitions, scratch)
        affinity = run_affinity(1 if smoke else 3, scratch, smoke)
        compaction = run_compaction(
            2 if smoke else 4, scratch, compact_every=8
        )
        sharded = run_sharded(
            SMOKE_SHARDED_SIZES if smoke else SHARDED_SIZES, scratch
        )
    cores = os.cpu_count() or 1
    return {
        "benchmark": (
            "durable queue: scaling, affine claiming, compaction, "
            "sharded layout"
        ),
        "metric": "tasks/sec over submit->drain wall-clock (worker subprocesses)",
        "cpu_count": cores,
        "sweep": scaling["sweep"],
        "results": scaling["results"],
        "affinity": affinity,
        "compaction": compaction,
        "sharded": sharded,
        "headline": {
            **scaling["headline"],
            "affine_vs_scan_1w": affinity["headline"]["affine_vs_scan_1w"],
            "affine_vs_scan_2w": affinity["headline"]["affine_vs_scan_2w"],
            "affine_spread_2w": affinity["headline"]["affine_spread_2w"],
            "scan_spread_2w": affinity["headline"]["scan_spread_2w"],
            "claim_scan_ratio": sharded["headline"]["claim_scan_ratio"],
            "all_results_identical": (
                scaling["headline"]["all_results_identical"]
                and affinity["headline"]["all_results_identical"]
                and compaction["result_identical"]
            ),
        },
    }


def check(payload: dict, smoke: bool) -> int:
    headline = payload["headline"]
    affinity = payload["affinity"]["headline"]
    sharded = payload["sharded"]["headline"]
    cores = payload["cpu_count"]
    failures = []
    if not headline["all_results_identical"]:
        failures.append("collected results differ across configurations")
    if affinity["affine_spread_2w"] > affinity["spread_bound_2w"]:
        failures.append(
            f"affine config spread {affinity['affine_spread_2w']} exceeds "
            f"bound {affinity['spread_bound_2w']}"
        )
    if affinity["affine_spread_2w"] > affinity["scan_spread_2w"]:
        failures.append(
            f"affine spread {affinity['affine_spread_2w']} exceeds scan-order "
            f"spread {affinity['scan_spread_2w']}"
        )
    if payload["compaction"]["segments"] < 1:
        failures.append("compaction published no segments")
    # The sharded claim-scan gate holds in smoke too: the cell sizes
    # shrink but the O(shards) claim is size-independent.
    ratio = sharded["claim_scan_ratio"]
    if ratio > sharded["claim_scan_bound"]:
        failures.append(
            f"claim-scan cost scales with tasks, not shards: "
            f"{sharded['tasks_ratio']:.0f}x more tasks made the cold "
            f"claim-scan {ratio:.2f}x slower "
            f"(bound {sharded['claim_scan_bound']}x)"
        )
    if not headline["multi_core"]:
        # A single-core host must not *store* scaling cells at all —
        # a number recorded there measures coordination contention and
        # would be read later as a queue property.  Refuse the payload
        # outright if any slipped through.
        banner = "=" * 72
        print(banner)
        print(
            "NOTE: single-core host — scaling cells are withheld "
            "(stored as null); only the raw-rate overhead floor "
            f"({SINGLE_CORE_FLOOR}x) and the sharded claim-scan gate "
            "are enforced"
        )
        print(banner)
        stored = [
            r["workers"] for r in payload["results"]
            if r.get("scaling_vs_1") is not None
        ]
        if stored or headline["scaling"] is not None:
            failures.append(
                f"refusing scaling cell(s) from a cpu_count:{cores} host "
                f"(workers={stored or [2]}): re-record on a multi-core "
                "machine or store null"
            )
        if not headline.get("scaling_withheld"):
            failures.append(
                "single-core payload does not declare scaling_withheld"
            )
    if not smoke:
        if headline["multi_core"]:
            threshold = headline["threshold"]
            if headline["scaling"] is None or headline["scaling"] < threshold:
                failures.append(
                    f"2-worker scaling {headline['scaling']} < {threshold}x "
                    f"(cpu_count={cores})"
                )
        else:
            # Raw rates are still honest on one core: two workers
            # sharing it must keep at least SINGLE_CORE_FLOOR of the
            # single-worker throughput or coordination is too chatty.
            by_workers = {r["workers"]: r for r in payload["results"]}
            one, two = by_workers.get(1), by_workers.get(2)
            if one and two:
                floor = two["tasks_per_sec"] / one["tasks_per_sec"]
                if floor < SINGLE_CORE_FLOOR:
                    failures.append(
                        f"2-worker overhead floor {floor:.2f}x < "
                        f"{SINGLE_CORE_FLOOR}x (cpu_count={cores})"
                    )
        if affinity["affine_vs_scan_1w"] < AFFINE_1W_FLOOR:
            failures.append(
                f"affine claiming regresses 1-worker throughput: "
                f"{affinity['affine_vs_scan_1w']:.2f}x < {AFFINE_1W_FLOOR}x"
            )
        if cores >= 2 and affinity["affine_vs_scan_2w"] < AFFINE_MULTI_FLOOR:
            failures.append(
                f"affine claiming regresses the 2-worker multi-config sweep: "
                f"{affinity['affine_vs_scan_2w']:.2f}x < {AFFINE_MULTI_FLOOR}x"
            )
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print(
        "check passed: drained, byte-identical, affine spread "
        f"{affinity['affine_spread_2w']}/{affinity['spread_bound_2w']} "
        f"(scan {affinity['scan_spread_2w']}), affine-vs-scan "
        f"{affinity['affine_vs_scan_1w']:.2f}x (1w) / "
        f"{affinity['affine_vs_scan_2w']:.2f}x (2w), "
        f"{payload['compaction']['segments']} segment(s), "
        f"claim-scan {ratio:.2f}x at {sharded['tasks_ratio']:.0f}x tasks "
        f"(bound {sharded['claim_scan_bound']}x, cpu_count={cores})"
    )
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", type=pathlib.Path, default=DEFAULT_OUT,
                        help=f"output JSON path (default: {DEFAULT_OUT.name})")
    parser.add_argument("--repetitions", type=int, default=16,
                        help="repetitions per sweep cell (16 -> 192 tasks)")
    parser.add_argument("--smoke", action="store_true",
                        help="small sweep, 1/2 workers only (CI sanity run)")
    parser.add_argument("--check", action="store_true",
                        help="exit non-zero unless drained + byte-identical + "
                        "affinity/compaction gates hold (see module docstring)")
    args = parser.parse_args(argv)

    counts = SMOKE_WORKER_COUNTS if args.smoke else WORKER_COUNTS
    repetitions = 2 if args.smoke else args.repetitions
    payload = run(counts, repetitions, args.smoke)
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {args.out}")

    if args.check:
        return check(payload, args.smoke)
    return 0


if __name__ == "__main__":
    sys.exit(main())
