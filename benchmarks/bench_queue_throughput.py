"""Queue-throughput benchmark: tasks/sec scaling from 1 to 8 workers.

Submits one reference sweep (tiny Emilia-like campaign) to a fresh
on-disk queue per worker count, drains it with N independent
``repro campaign worker`` subprocesses, and records tasks/sec into
``BENCH_queue.json``.  Every configuration's collected result must be
byte-identical to the single-worker one — the determinism contract of
:mod:`repro.queue` — which doubles as the benchmark's correctness
gate.

The acceptance gate (``--check``) is host-aware: on a multi-core host
the 2-worker configuration must reach >= 1.15x the single-worker
throughput; on a single-core host (where no parallel speedup is
physically available — the solves are CPU-bound) it must stay within
2x of it, i.e. the coordination overhead of leases/heartbeats/spools
is bounded rather than the parallelism rewarded.  Smoke mode gates
only on completeness + byte-identity.

Usage::

    python benchmarks/bench_queue_throughput.py            # full sweep
    python benchmarks/bench_queue_throughput.py --check    # + enforce gate
    python benchmarks/bench_queue_throughput.py --smoke    # CI sanity run
    python benchmarks/bench_queue_throughput.py --out other.json
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import subprocess
import sys
import tempfile
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
sys.path.insert(0, str(SRC))

from repro.campaign import CampaignSpec, demo_spec  # noqa: E402
from repro.queue import QueueStore, collect  # noqa: E402

DEFAULT_OUT = REPO_ROOT / "BENCH_queue.json"
WORKER_COUNTS = (1, 2, 4, 8)
SMOKE_WORKER_COUNTS = (1, 2)
#: Required 2-worker speedup when the host has >= 2 cores.
SCALING_THRESHOLD = 1.15
#: Allowed 2-worker *slowdown* floor on a single-core host (pure
#: coordination-overhead bound; there is no parallelism to win).
SINGLE_CORE_FLOOR = 0.5


def bench_spec(repetitions: int) -> CampaignSpec:
    """The reference sweep: the built-in demo (12 cells) x repetitions."""
    import dataclasses

    return dataclasses.replace(
        demo_spec(scale="tiny"),
        name="queue-throughput",
        repetitions=repetitions,
    )


def _spawn_worker(
    queue_dir: pathlib.Path, index: int, cache_dir: pathlib.Path
) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro", "campaign", "worker",
            "--queue", str(queue_dir), "--id", f"bench-w{index}", "--quiet",
            "--cache-dir", str(cache_dir),
        ],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.PIPE,
    )


def bench_workers(spec: CampaignSpec, workers: int, scratch: pathlib.Path) -> dict:
    queue_dir = scratch / f"queue-{workers}w"
    store = QueueStore.submit(spec, queue_dir)
    # Workers share reference trajectories through a disk cache (the
    # same contract as `campaign run --cache-dir`), so the sweep
    # measures task throughput, not N redundant reference solves.
    cache_dir = scratch / f"cache-{workers}w"
    started = time.perf_counter()
    procs = [_spawn_worker(queue_dir, i, cache_dir) for i in range(workers)]
    for proc in procs:
        _, stderr = proc.communicate()
        if proc.returncode != 0:
            raise RuntimeError(
                f"worker exited with {proc.returncode}: {stderr.decode()}"
            )
    elapsed = time.perf_counter() - started
    status = store.status()
    if not status.drained or status.failed:
        raise RuntimeError(f"queue not cleanly drained: {status.render()}")
    result_path = scratch / f"result-{workers}w.json"
    collect(queue_dir).to_json(result_path)
    return {
        "workers": workers,
        "tasks": store.n_tasks,
        "seconds": elapsed,
        "tasks_per_sec": store.n_tasks / elapsed,
        "result_path": result_path,
    }


def run(worker_counts, repetitions: int) -> dict:
    spec = bench_spec(repetitions)
    rows = []
    with tempfile.TemporaryDirectory(prefix="bench-queue-") as scratch_name:
        scratch = pathlib.Path(scratch_name)
        baseline_bytes = None
        for workers in worker_counts:
            row = bench_workers(spec, workers, scratch)
            payload = row.pop("result_path").read_bytes()
            if baseline_bytes is None:
                baseline_bytes = payload
            row["result_identical"] = payload == baseline_bytes
            base_rate = rows[0]["tasks_per_sec"] if rows else row["tasks_per_sec"]
            row["scaling_vs_1"] = row["tasks_per_sec"] / base_rate
            rows.append(row)
            print(
                f"{row['workers']} worker(s): {row['tasks']} tasks in "
                f"{row['seconds']:6.2f}s  {row['tasks_per_sec']:6.1f} tasks/s  "
                f"scaling {row['scaling_vs_1']:.2f}x  "
                f"{'OK' if row['result_identical'] else 'RESULT MISMATCH'}",
                flush=True,
            )
    two = next((r for r in rows if r["workers"] == 2), None)
    cores = os.cpu_count() or 1
    return {
        "benchmark": "durable queue: worker-count throughput scaling",
        "sweep": f"{spec.name} ({rows[0]['tasks']} tiny-problem tasks)",
        "metric": "tasks/sec over submit->drain wall-clock (worker subprocesses)",
        "cpu_count": cores,
        "results": rows,
        "headline": {
            "workers": 2,
            "scaling": two["scaling_vs_1"] if two else None,
            "threshold": SCALING_THRESHOLD if cores >= 2 else SINGLE_CORE_FLOOR,
            "multi_core": cores >= 2,
            "all_results_identical": all(r["result_identical"] for r in rows),
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", type=pathlib.Path, default=DEFAULT_OUT,
                        help=f"output JSON path (default: {DEFAULT_OUT.name})")
    parser.add_argument("--repetitions", type=int, default=16,
                        help="repetitions per sweep cell (16 -> 192 tasks)")
    parser.add_argument("--smoke", action="store_true",
                        help="small sweep, 1/2 workers only (CI sanity run)")
    parser.add_argument("--check", action="store_true",
                        help="exit non-zero unless drained + byte-identical "
                        f"(+ 2-worker scaling >= {SCALING_THRESHOLD}x outside "
                        "--smoke)")
    args = parser.parse_args(argv)

    counts = SMOKE_WORKER_COUNTS if args.smoke else WORKER_COUNTS
    repetitions = 2 if args.smoke else args.repetitions
    payload = run(counts, repetitions)
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {args.out}")

    if args.check:
        headline = payload["headline"]
        if not headline["all_results_identical"]:
            print("FAIL: collected results differ across worker counts",
                  file=sys.stderr)
            return 1
        if not args.smoke:
            threshold = headline["threshold"]
            kind = "scaling" if headline["multi_core"] else "overhead floor"
            if headline["scaling"] is None or headline["scaling"] < threshold:
                print(
                    f"FAIL: 2-worker {kind} {headline['scaling']} < "
                    f"{threshold}x (cpu_count={payload['cpu_count']})",
                    file=sys.stderr,
                )
                return 1
            print(f"check passed: drained, byte-identical, 2-worker {kind} "
                  f"{headline['scaling']:.2f}x >= {threshold}x "
                  f"(cpu_count={payload['cpu_count']})")
        else:
            print("check passed: drained, byte-identical")
    return 0


if __name__ == "__main__":
    sys.exit(main())
