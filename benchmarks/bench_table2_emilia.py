"""Table 2 — Emilia_923(-like): runtime overheads of ESRP/ESR/IMCR.

Regenerates the full test constellation of the paper's Table 2:
strategies ESRP (T ∈ {1=ESR, 20, 50, 100}) and IMCR (T ∈ {20, 50,
100}), ϕ = ψ ∈ {1, 3, 8}, contiguous block failures at ranks 0
("start") and N/2 ("center") placed two iterations before the end of
the interval containing C/2, medians over repetitions with seeded
noise.  Prints our percentages with the paper's in parentheses.

Shape assertions (the claims that must reproduce):
* ESR failure-free overhead ≫ ESRP failure-free overhead, for every ϕ;
* ESRP failure-free overhead decreases with T and increases with ϕ;
* IMCR reconstruction overhead ≈ 0, far below ESRP's;
* with failures, IMCR total ≤ ESRP total (paper §5: "CR is faster if
  node failures happen").
"""

from __future__ import annotations

from conftest import write_artifact

from repro.harness import PAPER_TABLE2, render_overhead_table


def _cell(results, strategy, T, phi):
    return results["cells"][(strategy, T, phi)]


def assert_table_shape(results, phis, esrp_intervals, imcr_intervals) -> list[str]:
    notes = []
    big_T = max(t for t in esrp_intervals if t > 2)
    for phi in phis:
        esr_ff = _cell(results, "esrp", 1, phi)["failure_free"]
        esrp_ff = _cell(results, "esrp", big_T, phi)["failure_free"]
        assert esr_ff > esrp_ff, (
            f"ESR ff overhead ({esr_ff:.3%}) must exceed ESRP T={big_T} ({esrp_ff:.3%})"
        )
        notes.append(f"phi={phi}: ESR ff {esr_ff:.2%} > ESRP(T={big_T}) ff {esrp_ff:.2%}")

    # phi monotonicity of ESR failure-free overhead
    ff_by_phi = [_cell(results, "esrp", 1, phi)["failure_free"] for phi in phis]
    assert ff_by_phi == sorted(ff_by_phi), "ESR ff overhead must grow with phi"

    # IMCR reconstruction ~ 0 compared to ESRP's
    for T in imcr_intervals:
        for phi in phis:
            imcr_rec = _cell(results, "imcr", T, phi)[("start", "reconstruction")]
            esrp_T = T if T in esrp_intervals and T > 2 else big_T
            esrp_rec = _cell(results, "esrp", esrp_T, phi)[("start", "reconstruction")]
            assert imcr_rec < 0.1 * max(esrp_rec, 1e-9), (
                f"IMCR reconstruction ({imcr_rec:.4%}) must be negligible vs "
                f"ESRP ({esrp_rec:.4%})"
            )

    # With failures, IMCR <= ESRP at matching T ("CR is faster if node
    # failures happen", §5): ESRP pays gathering + inner solves on top
    # of the same wasted iterations.  Strict for multi-node failures
    # (where reconstruction cost is large); small slack for phi < 3.
    for T in imcr_intervals:
        if T not in esrp_intervals:
            continue
        for phi in phis:
            slack = 1.10 if phi >= 3 else 1.40
            imcr_total = _cell(results, "imcr", T, phi)[("start", "total")]
            esrp_total = _cell(results, "esrp", T, phi)[("start", "total")]
            assert imcr_total <= esrp_total * slack + 0.01, (
                f"IMCR with failures ({imcr_total:.3%}) should not exceed "
                f"ESRP ({esrp_total:.3%}) at T={T}, phi={phi}"
            )
    return notes


def test_table2_emilia(benchmark, emilia_grid):
    runner, results = emilia_grid

    def regenerate():
        return render_overhead_table(
            results,
            phis=runner.config.phis,
            locations=runner.config.locations,
            title="Table 2: Results for matrix Emilia_923-like "
            f"(scale={runner.config.scale}, N={runner.config.n_nodes})",
            paper=PAPER_TABLE2,
        )

    table = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    print("\n" + table)
    notes = assert_table_shape(
        results,
        runner.config.phis,
        runner.config.esrp_intervals,
        runner.config.imcr_intervals,
    )
    print("\nshape checks passed:\n  " + "\n  ".join(notes))
    write_artifact("table2_emilia.txt", table)
