"""Figure 3 — audikw: median runtime overhead vs. checkpoint interval.

Same presentation as Fig. 2 on the denser vector-valued problem.
"""

from __future__ import annotations

from bench_fig2_emilia_curves import render_figure
from conftest import write_artifact

from repro.harness import overhead_series


def test_fig3_audikw_overhead_curves(benchmark, audikw_grid):
    runner, results = audikw_grid

    def regenerate():
        return render_figure(results, runner.config, "Fig. 3 audikw-like:")

    figure = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    print("\n" + figure)
    write_artifact("fig3_audikw_curves.txt", figure)

    # Shape: with failures, overheads at the largest phi exceed the
    # phi=1 ones for the ESR line (paper Fig. 3b's rising markers).
    series = overhead_series(
        results, phis=runner.config.phis, with_failures=True,
        locations=runner.config.locations,
    )
    esr = next(s for s in series if s.strategy == "esrp" and s.T == 1)
    assert esr.values[-1] > esr.values[0]
