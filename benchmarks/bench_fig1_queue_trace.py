"""Figure 1 — redundancy-queue evolution during the solution process.

Runs a real ESRP solve with a small interval and renders the queue
state at every storage push, exactly mirroring the paper's Fig. 1:
``[_, _, p'(T)]`` after the first push, ``[_, p'(T), p'(T+1)]`` after
the stage completes (recovery point T+1), eviction of ``p'(T)`` only at
``2T+1``, and so on.
"""

from __future__ import annotations

import re

from conftest import write_artifact

import repro
from repro.events import EventKind
from repro.harness import render_queue_trace

T = 10


def run_trace():
    matrix, b, _meta = repro.matrices.load("emilia_923_like", scale="tiny")
    result = repro.solve(matrix, b, n_nodes=4, strategy="esrp", T=T, phi=1)
    return result


def test_fig1_queue_evolution(benchmark):
    result = benchmark.pedantic(run_trace, rounds=1, iterations=1)
    text = render_queue_trace(result.events, T=T)
    print("\n" + text)
    write_artifact("fig1_queue_trace.txt", text)

    stages = result.events.of_kind(EventKind.STORAGE_STAGE)
    by_iteration = {e.iteration: e.detail for e in stages}

    # Fig. 1 checkpoints, transcribed for T = 10:
    assert by_iteration[T]["queue"] == f"[_, _, p'({T})]"
    assert by_iteration[T + 1]["queue"] == f"[_, p'({T}), p'({T + 1})]"
    assert by_iteration[T + 1]["recovery_point"] == T + 1
    assert by_iteration[2 * T]["queue"] == f"[p'({T}), p'({T + 1}), p'({2 * T})]"
    assert (
        by_iteration[2 * T + 1]["queue"]
        == f"[p'({T + 1}), p'({2 * T}), p'({2 * T + 1})]"
    )
    assert by_iteration[2 * T + 1]["recovery_point"] == 2 * T + 1

    # every complete stage is at an iteration j with (j-1) % T == 0
    completions = [
        e.iteration for e in stages if e.detail["phase"] == "complete"
    ]
    assert completions and all((j - 1) % T == 0 for j in completions)

    # the rendered trace shows the leftward rollback arrows' targets
    assert re.search(rf"recovery point {T + 1}\b", text)
