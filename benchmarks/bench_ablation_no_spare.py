"""Ablation A5 — ESR without spare nodes (extension [22]).

The paper assumes spare nodes; its related work [22] continues on the
survivors instead.  This bench compares, for the same worst-case
failure, recovery with spares (ESRP) against shrinking the cluster
(no-spare ESR): total modeled time, iterations, and final accuracy.
"""

from __future__ import annotations

import numpy as np
from conftest import is_quick, write_artifact

import repro
from repro.core.no_spare import solve_without_spares
from repro.harness import place_worst_case_failure
from repro.harness.calibration import BENCH_COST_MODEL

N_NODES = 8
PHI = 2


def run_comparison():
    scale = "tiny" if is_quick() else "small"
    matrix, b, _ = repro.matrices.load("emilia_923_like", scale=scale)
    reference = repro.solve(
        matrix, b, n_nodes=N_NODES, strategy="reference", cost_model=BENCH_COST_MODEL
    )
    t0, C = reference.modeled_time, reference.iterations
    j_fail = place_worst_case_failure("esrp", 20, C)
    failure = repro.FailureEvent(j_fail, (2, 3))

    with_spares = repro.solve(
        matrix, b, n_nodes=N_NODES, strategy="esrp", T=20, phi=PHI,
        failures=[failure], cost_model=BENCH_COST_MODEL,
    )
    no_spares = solve_without_spares(
        matrix, b, n_nodes=N_NODES, failure=failure, phi=PHI,
        cost_model=BENCH_COST_MODEL,
    )
    err_spare = float(
        np.linalg.norm(with_spares.x - reference.x) / np.linalg.norm(reference.x)
    )
    err_no_spare = float(
        np.linalg.norm(no_spares.result.x - reference.x) / np.linalg.norm(reference.x)
    )
    return {
        "C": C,
        "t0": t0,
        "j_fail": j_fail,
        "with": (with_spares.modeled_time, with_spares.iterations, err_spare),
        "without": (
            no_spares.result.modeled_time,
            j_fail + no_spares.result.iterations,
            err_no_spare,
        ),
        "survivors": no_spares.survivors,
    }


def test_ablation_no_spare(benchmark):
    data = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    t0 = data["t0"]
    w_time, w_iters, w_err = data["with"]
    n_time, n_iters, n_err = data["without"]
    lines = [
        f"Ablation A5: spare vs no-spare recovery (failure of 2 nodes at "
        f"iteration {data['j_fail']}, undisturbed C = {data['C']})",
        "",
        f"{'mode':28s} {'nodes after':>12s} {'total iters':>12s} {'overhead':>10s} {'|dx|/|x|':>10s}",
        "-" * 80,
        f"{'ESRP with spare nodes':28s} {8:>12d} {w_iters:>12d} "
        f"{100 * (w_time - t0) / t0:>9.2f}% {w_err:>10.2e}",
        f"{'no-spare ESR (shrink to 6)':28s} {data['survivors']:>12d} {n_iters:>12d} "
        f"{100 * (n_time - t0) / t0:>9.2f}% {n_err:>10.2e}",
        "",
        "reading: with spares the exact trajectory continues (same iteration",
        "count); without spares the cluster shrinks, the node-aligned",
        "preconditioner changes and the recursion restarts from the exact",
        "iterand — more iterations, each on fewer nodes, but no spare pool.",
    ]
    table = "\n".join(lines)
    print("\n" + table)
    write_artifact("ablation_a5_no_spare.txt", table)

    assert w_err < 1e-6 and n_err < 1e-6
    assert data["survivors"] == N_NODES - 2
    assert w_iters == data["C"]  # spares preserve the trajectory exactly
