"""Ablation A3 — recovery quality: exact vs. approximate methods.

Compares ESR's exact state reconstruction against the related-work
baselines the paper discusses (§1.3): Langou-style linear interpolation
[15], Agullo-style least squares [1], and a full restart.  Metrics:
total iterations to convergence after an identical mid-solve failure,
extra iterations vs. the undisturbed run, and the residual jump right
after recovery.
"""

from __future__ import annotations

from conftest import is_quick, write_artifact

import repro
from repro.harness.calibration import BENCH_COST_MODEL

N_NODES = 8
METHODS = (
    ("ESR (exact)", "esr"),
    ("linear interpolation", "linear_interpolation"),
    ("least squares", "least_squares"),
    ("full restart", "full_restart"),
)


def run_comparison():
    scale = "tiny" if is_quick() else "small"
    matrix, b, _ = repro.matrices.load("emilia_923_like", scale=scale)
    reference = repro.solve(
        matrix, b, n_nodes=N_NODES, strategy="reference", cost_model=BENCH_COST_MODEL
    )
    j_fail = reference.iterations // 2
    failure = repro.FailureEvent(j_fail, (2, 3))
    rows = []
    for label, strategy in METHODS:
        result = repro.solve(
            matrix, b, n_nodes=N_NODES, strategy=strategy, phi=2,
            failures=[failure], cost_model=BENCH_COST_MODEL,
        )
        assert result.converged, label
        history = result.residual_history
        jump = history[j_fail] / history[j_fail - 1] if j_fail < len(history) else 1.0
        rows.append(
            (
                label,
                result.iterations,
                result.iterations - reference.iterations,
                jump,
            )
        )
    return reference.iterations, j_fail, rows


def test_ablation_recovery_baselines(benchmark):
    C, j_fail, rows = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    lines = [
        f"Ablation A3: recovery quality after a 2-node failure at iteration {j_fail} "
        f"(undisturbed C = {C})",
        "",
        f"{'method':22s} {'iterations':>10s} {'extra':>7s} {'residual jump':>14s}",
        "-" * 60,
    ]
    for label, iters, extra, jump in rows:
        lines.append(f"{label:22s} {iters:>10d} {extra:>+7d} {jump:>13.2f}x")
    table = "\n".join(lines)
    print("\n" + table)
    write_artifact("ablation_a3_recovery_baselines.txt", table)

    by_label = {label: extra for label, _i, extra, _j in rows}
    assert by_label["ESR (exact)"] == 0, "exact reconstruction must waste nothing"
    assert by_label["full restart"] >= by_label["linear interpolation"]
    assert by_label["linear interpolation"] > 0
    assert by_label["least squares"] > 0
