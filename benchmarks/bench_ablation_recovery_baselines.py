"""Ablation A3 — recovery quality: exact vs. approximate methods.

Compares ESR's exact state reconstruction against the related-work
baselines the paper discusses (§1.3): Langou-style linear interpolation
[15], Agullo-style least squares [1], and a full restart.  The sweep is
a thin wrapper over the scenario-campaign engine: one spec runs all
four strategies against the identical mid-solve 2-node failure, and the
metrics (iterations to convergence, extra iterations vs. the
undisturbed run, total overhead) come straight out of the campaign
records.
"""

from __future__ import annotations

from conftest import is_quick, write_artifact

from repro.campaign import CampaignSpec, ScenarioSpec, StrategySpec, execute_campaign

N_NODES = 8
PHI = 2
LABELS = {
    "esr": "ESR (exact)",
    "linear_interpolation": "linear interpolation",
    "least_squares": "least squares",
    "full_restart": "full restart",
}


def run_comparison():
    scale = "tiny" if is_quick() else "small"
    spec = CampaignSpec(
        name="ablation-a3-recovery-baselines",
        problems=(("emilia_923_like", scale),),
        n_nodes=N_NODES,
        strategies=tuple(StrategySpec(name) for name in LABELS),
        phis=(PHI,),
        # the original protocol: ranks (2, 3) fail at iteration C/2
        scenarios=(
            ScenarioSpec.make("multi_node", fraction=0.5, start=2, width=PHI),
        ),
        repetitions=1,
        seed=2020,
    )
    result = execute_campaign(spec, workers=0)
    assert all(record.converged for record in result)

    sample = result.records[0]
    rows = []
    for name, label in LABELS.items():
        record = next(r for r in result if r.strategy == name)
        rows.append(
            (
                label,
                record.iterations,
                record.iterations - record.reference_iterations,
                record.total_overhead,
            )
        )
    return sample.reference_iterations, sample.failure_iterations[0], rows


def test_ablation_recovery_baselines(benchmark):
    C, j_fail, rows = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    lines = [
        f"Ablation A3: recovery quality after a 2-node failure at iteration {j_fail} "
        f"(undisturbed C = {C})",
        "",
        f"{'method':22s} {'iterations':>10s} {'extra':>7s} {'overhead':>10s}",
        "-" * 56,
    ]
    for label, iters, extra, overhead in rows:
        lines.append(
            f"{label:22s} {iters:>10d} {extra:>+7d} {100 * overhead:>9.2f}%"
        )
    table = "\n".join(lines)
    print("\n" + table)
    write_artifact("ablation_a3_recovery_baselines.txt", table)

    by_label = {label: extra for label, _i, extra, _o in rows}
    assert by_label["ESR (exact)"] == 0, "exact reconstruction must waste nothing"
    assert by_label["full restart"] >= by_label["linear interpolation"]
    assert by_label["linear interpolation"] > 0
    assert by_label["least squares"] > 0
