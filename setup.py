"""Legacy setuptools shim.

Kept so that ``pip install -e . --no-use-pep517`` works on machines
without the ``wheel`` package (e.g. air-gapped environments); all
metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
