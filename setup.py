"""Setuptools metadata for the repro package.

Kept as an executable ``setup.py`` (rather than pyproject-only) so that
``pip install -e . --no-use-pep517`` works on machines without the
``wheel`` package (e.g. air-gapped environments).
"""

import pathlib
import re

from setuptools import find_packages, setup

# Single source of truth for the version: the package itself.
_INIT = pathlib.Path(__file__).parent / "src" / "repro" / "__init__.py"
VERSION = re.search(r'__version__ = "([^"]+)"', _INIT.read_text()).group(1)

setup(
    name="repro",
    version=VERSION,
    description=(
        "Algorithm-based checkpoint-recovery for the conjugate gradient "
        "method (ICPP 2020 reproduction)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=[
        "numpy>=1.21",
        "scipy>=1.7",
    ],
    extras_require={
        # JIT-compiled hot loops for the 'compiled' kernel backend;
        # without it the backend degrades to hand-fused numpy.
        "compiled": ["numba>=0.57"],
    },
    entry_points={
        "console_scripts": [
            "repro = repro.cli:main",
            "repro-serve = repro.serve.http:main",
        ],
    },
    classifiers=[
        "Development Status :: 4 - Beta",
        "Intended Audience :: Science/Research",
        "Programming Language :: Python :: 3",
        "Topic :: Scientific/Engineering :: Mathematics",
    ],
)
