"""SolverSession: setup reuse, reference caching, shim equivalence."""

import numpy as np
import pytest

import repro
from repro.api import SolveRequest, SolverSession, solve_many
from repro.cluster import VirtualCluster, zero_cost_model
from repro.exceptions import ConfigurationError


@pytest.fixture(scope="module")
def problem():
    return repro.matrices.load("emilia_923_like", scale="tiny")


class TestSetupReuse:
    def test_setup_events_counted_once_across_three_solves(self, problem):
        """Acceptance: >= 3 solves, setup and reference computed exactly once."""
        matrix, b, _meta = problem
        session = SolverSession(matrix, b, n_nodes=4)
        requests = [
            SolveRequest(strategy="esr", phi=1),
            SolveRequest(strategy="esrp", T=10, phi=1),
            SolveRequest(strategy="imcr", T=10, phi=1),
        ]
        reports = session.solve_many(requests, with_reference=True)
        assert all(report.converged for report in reports)
        assert session.setup_events["cluster"] == 1
        assert session.setup_events["matrix"] == 1
        assert session.setup_events["preconditioner"] == 1
        assert session.setup_events["reference"] == 1
        # 3 requested solves + the one cached reference run
        assert session.setup_events["solve"] == 4

    def test_reference_cached_per_preconditioner_and_rtol(self, problem):
        matrix, b, _meta = problem
        session = SolverSession(matrix, b, n_nodes=4)
        first = session.reference()
        again = session.reference()
        assert again is first  # cache hit, not a recompute
        other = session.reference(preconditioner="jacobi")
        assert other is not first
        assert session.setup_events["reference"] == 2

    def test_distinct_preconditioners_factorised_separately(self, problem):
        matrix, b, _meta = problem
        session = SolverSession(matrix, b, n_nodes=4)
        session.solve(SolveRequest(strategy="esr", preconditioner="jacobi"))
        session.solve(SolveRequest(strategy="esr", preconditioner="block_jacobi"))
        session.solve(SolveRequest(
            strategy="esr", preconditioner="block_jacobi",
            precond_params={"max_block_size": 5},
        ))
        assert session.setup_events["preconditioner"] == 3

    def test_from_problem_constructor(self):
        session = SolverSession.from_problem("emilia_923_like", scale="tiny",
                                             n_nodes=4)
        assert session.meta is not None
        assert session.meta.name == "emilia_923_like"
        report = session.solve(SolveRequest(strategy="esr"))
        assert report.converged


class TestShimEquivalence:
    def test_session_solve_matches_one_shot_solve(self, problem):
        """Session reuse must not change results: bit-identical to the shim."""
        matrix, b, _meta = problem
        failure = repro.FailureEvent(iteration=30, ranks=(0, 1))
        one_shot = repro.solve(matrix, b, n_nodes=4, strategy="esrp", T=10,
                               phi=2, failures=[failure], seed=3)

        session = SolverSession(matrix, b, n_nodes=4, seed=3)
        # pollute the session with unrelated prior work, then re-solve
        session.solve(SolveRequest(strategy="imcr", T=5, phi=1, seed=11))
        report = session.solve(SolveRequest(strategy="esrp", T=10, phi=2,
                                            failures=[failure], seed=3))
        assert report.modeled_time == one_shot.modeled_time
        assert report.iterations == one_shot.iterations
        assert np.array_equal(report.x, one_shot.x)
        assert report.stats == one_shot.stats

    def test_solve_shim_validates_eagerly(self, problem):
        matrix, b, _meta = problem
        with pytest.raises(ConfigurationError, match="unknown strategy"):
            repro.solve(matrix, b, strategy="not_a_strategy")
        with pytest.raises(ConfigurationError, match="unknown preconditioner"):
            repro.solve(matrix, b, preconditioner="not_a_precond")
        with pytest.raises(ConfigurationError, match="maxiter"):
            repro.solve(matrix, b, maxiter=0)
        with pytest.raises(ConfigurationError, match="phi=4 out of range"):
            repro.solve(matrix, b, n_nodes=4, phi=4)

    def test_default_request_inherits_session_seed(self, problem):
        """A request without an explicit seed runs on the session's seed."""
        from repro.cluster import CostModel

        matrix, b, _meta = problem
        noisy = CostModel().with_noise(0.05)
        session = SolverSession(matrix, b, n_nodes=4, cost_model=noisy, seed=123)
        report = session.solve(SolveRequest(strategy="esr"))
        expected = repro.solve(matrix, b, n_nodes=4, strategy="esr",
                               cost_model=noisy, seed=123)
        assert report.modeled_time == expected.modeled_time
        other = repro.solve(matrix, b, n_nodes=4, strategy="esr",
                            cost_model=noisy, seed=0)
        assert report.modeled_time != other.modeled_time

    def test_adopted_cluster_clock_continues(self, problem):
        """repro.solve(cluster=...) semantics: clock/stats carry across calls."""
        matrix, b, _meta = problem
        cluster = VirtualCluster(4, seed=0)
        first = repro.solve(matrix, b, cluster=cluster, strategy="esr")
        second = repro.solve(matrix, b, cluster=cluster, strategy="esr")
        assert second.modeled_time > first.modeled_time


class TestSolveMany:
    def test_batch_validates_before_running(self, problem):
        matrix, b, _meta = problem
        session = SolverSession(matrix, b, n_nodes=4)
        good = SolveRequest(strategy="esr")
        bad = SolveRequest(strategy="esr", phi=2, n_nodes=8)  # wrong cluster
        with pytest.raises(ConfigurationError, match="targets n_nodes=8"):
            session.solve_many([good, bad])
        assert session.setup_events["solve"] == 0  # nothing ran

    def test_module_level_convenience(self, problem):
        matrix, b, _meta = problem
        reports = solve_many(
            matrix, b,
            [SolveRequest(strategy="esr"), SolveRequest(strategy="imcr", T=10)],
            n_nodes=4, with_reference=True,
        )
        assert len(reports) == 2
        assert all(r.converged for r in reports)
        assert all(r.total_overhead is not None for r in reports)

    def test_rejects_non_request_items(self, problem):
        matrix, b, _meta = problem
        session = SolverSession(matrix, b, n_nodes=4)
        with pytest.raises(ConfigurationError, match="expects SolveRequest"):
            session.solve_many([{"strategy": "esr"}])


class TestReports:
    def test_overhead_fields_only_with_reference(self, problem):
        matrix, b, _meta = problem
        session = SolverSession(matrix, b, n_nodes=4)
        plain = session.solve(SolveRequest(strategy="esr"))
        assert plain.total_overhead is None
        compared = session.solve(SolveRequest(strategy="esr"),
                                 with_reference=True)
        assert compared.total_overhead is not None
        assert compared.reference_iterations == session.reference().C

    def test_report_channel_stats_present(self, problem):
        matrix, b, _meta = problem
        session = SolverSession(matrix, b, n_nodes=4,
                                cost_model=zero_cost_model())
        report = session.solve(SolveRequest(strategy="esr", phi=1))
        assert report.stats["bytes[spmv_halo]"] > 0
        assert report.stats["bytes[aspmv_extra]"] >= 0

    def test_exact_reconstruction_reported(self, problem):
        matrix, b, _meta = problem
        session = SolverSession(matrix, b, n_nodes=4)
        C = session.reference().C
        report = session.solve(
            SolveRequest(strategy="esrp", T=10, phi=2,
                         failures=[(C // 2, (1, 2))]),
            with_reference=True,
        )
        assert report.converged
        assert report.n_failures == 1
        assert report.solution_error < 1e-10
