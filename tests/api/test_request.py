"""SolveRequest/SolveReport: eager validation and JSON round-trips."""

import json

import pytest

from repro.api import SolveReport, SolveRequest
from repro.cluster import FailureEvent, FailureSchedule
from repro.exceptions import ConfigurationError


class TestEagerValidation:
    def test_unknown_strategy_raises_at_construction(self):
        with pytest.raises(ConfigurationError, match="unknown strategy"):
            SolveRequest(strategy="esrq")

    def test_unknown_preconditioner_raises_at_construction(self):
        with pytest.raises(ConfigurationError, match="unknown preconditioner"):
            SolveRequest(preconditioner="block_jacobo")

    @pytest.mark.parametrize("bad", [0, -5])
    def test_bad_maxiter(self, bad):
        with pytest.raises(ConfigurationError, match="maxiter"):
            SolveRequest(maxiter=bad)

    def test_bad_T_and_phi_and_rtol(self):
        with pytest.raises(ConfigurationError, match="T must be >= 1"):
            SolveRequest(T=0)
        with pytest.raises(ConfigurationError, match="phi must be >= 1"):
            SolveRequest(phi=0)
        with pytest.raises(ConfigurationError, match="rtol"):
            SolveRequest(rtol=0.0)

    def test_phi_ge_n_nodes_raises_at_construction(self):
        with pytest.raises(ConfigurationError, match="phi=8 out of range"):
            SolveRequest(phi=8, n_nodes=8)
        # one short of the cluster size is fine
        SolveRequest(phi=7, n_nodes=8)

    def test_failure_rank_outside_cluster_raises(self):
        with pytest.raises(ConfigurationError, match="outside"):
            SolveRequest(failures=[FailureEvent(10, (9,))], n_nodes=4)

    def test_validate_for_session_size_mismatch(self):
        request = SolveRequest(n_nodes=8)
        with pytest.raises(ConfigurationError, match="targets n_nodes=8"):
            request.validate_for(4)

    def test_aliases_canonicalised(self):
        request = SolveRequest(strategy="CR", preconditioner="Block-Jacobi")
        assert request.strategy == "imcr"
        assert request.preconditioner == "block_jacobi"


class TestFailureNormalisation:
    def test_accepts_schedule_events_dicts_pairs(self):
        event = FailureEvent(5, (1,))
        for failures in (
            FailureSchedule([event]),
            [event],
            [{"iteration": 5, "ranks": [1]}],
            [(5, (1,))],
            event,
        ):
            request = SolveRequest(failures=failures)
            assert request.failures == (event,)

    def test_schedule_roundtrip_is_fresh(self):
        request = SolveRequest(failures=[(5, (1,))])
        first, second = request.schedule(), request.schedule()
        assert first is not second
        assert first.events == second.events == request.failures


class TestRequestJson:
    def test_round_trip(self):
        request = SolveRequest(
            strategy="esrp", T=15, phi=2, preconditioner="jacobi",
            precond_params={}, rtol=1e-9, maxiter=500,
            failures=[(7, (0, 1)), {"iteration": 30, "ranks": [2]}],
            rule="greedy", destinations="switch_aware", seed=42,
            n_nodes=8, label="cell-7",
        )
        text = request.to_json()
        assert json.loads(text)["strategy"] == "esrp"
        assert SolveRequest.from_json(text) == request

    def test_unknown_keys_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown solve request keys"):
            SolveRequest.from_dict({"strategy": "esr", "bogus": 1})

    def test_invalid_json_rejected(self):
        with pytest.raises(ConfigurationError, match="invalid solve request JSON"):
            SolveRequest.from_json("{not json")


class TestReportJson:
    def _report(self):
        return SolveReport(
            request=SolveRequest(strategy="esr", phi=1),
            strategy="esr",
            converged=True,
            iterations=80,
            executed_iterations=85,
            relative_residual=1e-9,
            modeled_time=0.5,
            recovery_time=0.1,
            wall_time=0.2,
            n_failures=1,
            failure_iterations=(40,),
            stats={"bytes[spmv_halo]": 100.0},
            reference_time=0.4,
            reference_iterations=80,
            total_overhead=0.25,
            recovery_overhead=0.25,
            solution_error=1e-15,
        )

    def test_round_trip(self):
        report = self._report()
        restored = SolveReport.from_json(report.to_json())
        assert restored == report
        assert restored.wasted_iterations == 5

    def test_deserialised_report_has_no_solution_vector(self):
        restored = SolveReport.from_json(self._report().to_json())
        with pytest.raises(ConfigurationError, match="deserialised"):
            _ = restored.x
