"""Tests for the repro.api service layer."""
