"""Session-level warm starts: ``SolveRequest(x0="previous")``."""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.exceptions import ConfigurationError
from repro.matrices import poisson_2d


@pytest.fixture()
def session():
    matrix = poisson_2d(8)
    rng = np.random.default_rng(0)
    b = matrix @ rng.standard_normal(matrix.shape[0])
    return repro.SolverSession(matrix, b, n_nodes=4)


def test_request_validates_x0_values():
    assert repro.SolveRequest(x0=None).x0 is None
    assert repro.SolveRequest(x0="previous").x0 == "previous"
    with pytest.raises(ConfigurationError):
        repro.SolveRequest(x0="bogus")


def test_x0_round_trips_through_json():
    request = repro.SolveRequest(strategy="esr", x0="previous")
    assert repro.SolveRequest.from_json(request.to_json()) == request


def test_warm_start_reuses_previous_iterate(session):
    cold = session.solve(repro.SolveRequest(strategy="esrp", T=5, phi=1))
    warm = session.solve(
        repro.SolveRequest(strategy="esrp", T=5, phi=1, x0="previous")
    )
    # Starting from the converged iterate, the solve re-converges
    # immediately instead of re-walking the whole trajectory.
    assert warm.converged
    assert warm.iterations < cold.iterations
    assert warm.relative_residual < 1e-8
    np.testing.assert_allclose(warm.x, cold.x, atol=1e-6)


def test_warm_start_without_previous_solve_raises(session):
    with pytest.raises(ConfigurationError, match="previous solve"):
        session.solve(repro.SolveRequest(strategy="esr", x0="previous"))


def test_warm_start_conflicts_with_explicit_x0(session):
    session.solve(repro.SolveRequest(strategy="esr"))
    with pytest.raises(ConfigurationError, match="explicit x0"):
        session.solve(
            repro.SolveRequest(strategy="esr", x0="previous"),
            x0=np.zeros(session.n),
        )


def test_reference_solves_do_not_feed_warm_starts(session):
    """with_reference computes a baseline; it must not become x0."""
    session.reference()
    with pytest.raises(ConfigurationError, match="previous solve"):
        session.solve(repro.SolveRequest(strategy="esr", x0="previous"))


def test_warm_start_survives_failures(session):
    session.solve(repro.SolveRequest(strategy="esrp", T=5, phi=1))
    warm = session.solve(
        repro.SolveRequest(
            strategy="esrp", T=5, phi=1, x0="previous",
            failures=[repro.FailureEvent(0, (1,))],
        )
    )
    assert warm.converged
