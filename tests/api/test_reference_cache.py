"""On-disk spooling of reference trajectories (``cache_dir``)."""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.campaign import demo_spec, execute_campaign
from repro.matrices import poisson_2d


@pytest.fixture()
def problem():
    matrix = poisson_2d(8)
    rng = np.random.default_rng(1)
    b = matrix @ rng.standard_normal(matrix.shape[0])
    return matrix, b


def _session(problem, tmp_path, **kwargs):
    matrix, b = problem
    return repro.SolverSession(matrix, b, n_nodes=4, cache_dir=tmp_path, **kwargs)


def test_second_session_loads_reference_from_disk(problem, tmp_path):
    first = _session(problem, tmp_path)
    trajectory = first.reference()
    assert first.setup_events["reference"] == 1
    assert list(tmp_path.glob("reference-*.npz"))

    second = _session(problem, tmp_path)
    loaded = second.reference()
    assert second.setup_events["reference"] == 0
    assert second.setup_events["reference_disk"] == 1
    assert loaded.t0 == trajectory.t0
    assert loaded.C == trajectory.C
    np.testing.assert_array_equal(loaded.x, trajectory.x)


def test_disk_hit_yields_identical_overhead_reports(problem, tmp_path):
    request = repro.SolveRequest(
        strategy="esrp", T=5, phi=1, failures=[repro.FailureEvent(10, (1,))]
    )
    fresh = _session(problem, tmp_path).solve(request, with_reference=True)
    spooled = _session(problem, tmp_path).solve(request, with_reference=True)
    assert fresh.total_overhead == spooled.total_overhead
    assert fresh.solution_error == spooled.solution_error


def test_cache_entries_are_keyed_by_problem(problem, tmp_path):
    _session(problem, tmp_path).reference()

    other_matrix = poisson_2d(8)
    other_b = other_matrix @ np.full(other_matrix.shape[0], 2.0)
    other = repro.SolverSession(other_matrix, other_b, n_nodes=4, cache_dir=tmp_path)
    other.reference()
    # Different right-hand side: its own entry, not a false hit.
    assert other.setup_events["reference"] == 1
    assert len(list(tmp_path.glob("reference-*.npz"))) == 2


def test_cache_entries_are_keyed_by_request(problem, tmp_path):
    session = _session(problem, tmp_path)
    session.reference(rtol=1e-8)
    session.reference(rtol=1e-6)
    session.reference(preconditioner="jacobi")
    assert session.setup_events["reference"] == 3
    assert len(list(tmp_path.glob("reference-*.npz"))) == 3


def test_corrupt_cache_entry_recomputes(problem, tmp_path):
    first = _session(problem, tmp_path)
    first.reference()
    (entry,) = tmp_path.glob("reference-*.npz")
    entry.write_bytes(b"not a npz file")

    second = _session(problem, tmp_path)
    second.reference()
    assert second.setup_events["reference"] == 1
    assert second.setup_events["reference_disk"] == 0
    # The recompute repaired the entry for the next session.
    third = _session(problem, tmp_path)
    third.reference()
    assert third.setup_events["reference_disk"] == 1


def test_backends_share_cache_entries(problem, tmp_path):
    """Bit-identical backends may share one spooled trajectory."""
    _session(problem, tmp_path, backend="looped").reference()
    vectorized = _session(problem, tmp_path, backend="vectorized")
    vectorized.reference()
    assert vectorized.setup_events["reference_disk"] == 1
    assert len(list(tmp_path.glob("reference-*.npz"))) == 1


def test_cache_dir_true_expands_to_default(problem, monkeypatch, tmp_path):
    monkeypatch.setenv("HOME", str(tmp_path))
    matrix, b = problem
    session = repro.SolverSession(matrix, b, n_nodes=4, cache_dir=True)
    assert session.cache_dir == tmp_path / ".cache" / "repro"


def test_campaign_workers_share_spooled_references(tmp_path, monkeypatch):
    import os

    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
    spec = demo_spec(scale="tiny", repetitions=1)
    result = execute_campaign(spec, workers=0, cache_dir=tmp_path)
    assert all(record.converged for record in result)
    assert list(tmp_path.glob("reference-*.npz"))
    # The spool directory must not leak into later campaigns.
    assert "REPRO_CACHE_DIR" not in os.environ


def test_cache_entries_are_keyed_by_topology(problem, tmp_path):
    from repro.cluster import FatTree

    matrix, b = problem
    narrow = repro.SolverSession(
        matrix, b, n_nodes=4, cache_dir=tmp_path, topology=FatTree(4, radix=2)
    )
    narrow.reference()
    wide = repro.SolverSession(
        matrix, b, n_nodes=4, cache_dir=tmp_path, topology=FatTree(4, radix=4)
    )
    wide.reference()
    # Different wiring means different hop costs: no false cache hit.
    assert wide.setup_events["reference"] == 1
    assert wide.setup_events["reference_disk"] == 0
    assert len(list(tmp_path.glob("reference-*.npz"))) == 2
