"""Registry semantics: duplicates, aliases, third-party plugins."""

import pytest

from repro.api.registry import (
    MATRICES,
    PRECONDITIONERS,
    STRATEGIES,
    Registry,
    register_matrix,
    register_preconditioner,
    register_strategy,
)
from repro.exceptions import ConfigurationError


class TestRegistryBasics:
    def test_register_and_create(self):
        registry = Registry("widget")
        registry.register("simple", lambda scale=1: ("simple", scale))
        assert registry.create("simple", scale=3) == ("simple", 3)
        assert registry.names() == ("simple",)
        assert "simple" in registry

    def test_decorator_form_returns_builder(self):
        registry = Registry("widget")

        @registry.register("deco")
        def build():
            return "built"

        assert build() == "built"  # decorator hands the function back
        assert registry.create("deco") == "built"

    def test_duplicate_registration_rejected(self):
        registry = Registry("widget")
        registry.register("taken", lambda: 1)
        with pytest.raises(ConfigurationError, match="already registered"):
            registry.register("taken", lambda: 2)
        # the original registration survives the failed attempt
        assert registry.create("taken") == 1

    def test_duplicate_alias_rejected(self):
        registry = Registry("widget")
        registry.register("first", lambda: 1, aliases=("f",))
        with pytest.raises(ConfigurationError, match="already registered"):
            registry.register("second", lambda: 2, aliases=("f",))

    def test_overwrite_replaces(self):
        registry = Registry("widget")
        registry.register("thing", lambda: 1)
        registry.register("thing", lambda: 2, overwrite=True)
        assert registry.create("thing") == 2

    def test_unknown_name_lists_available(self):
        registry = Registry("widget")
        registry.register("only", lambda: 1)
        with pytest.raises(ConfigurationError, match="unknown widget 'nope'.*only"):
            registry.resolve("nope")

    def test_alias_resolution_and_normalisation(self):
        registry = Registry("widget")
        registry.register("block_jacobi_like", lambda: 1, aliases=("bjl",))
        assert registry.resolve("bjl") == "block_jacobi_like"
        assert registry.resolve("Block-Jacobi-Like") == "block_jacobi_like"
        assert registry.names() == ("block_jacobi_like",)  # aliases not listed
        assert registry.aliases() == {"bjl": "block_jacobi_like"}

    def test_unregister_drops_aliases(self):
        registry = Registry("widget")
        registry.register("gone", lambda: 1, aliases=("g",))
        registry.unregister("gone")
        assert "gone" not in registry
        assert "g" not in registry


class TestBuiltinRegistrations:
    def test_builtin_strategies_present(self):
        for name in ("reference", "esr", "esrp", "imcr", "full_restart",
                     "linear_interpolation", "least_squares"):
            assert name in STRATEGIES

    def test_builtin_strategy_aliases(self):
        assert STRATEGIES.resolve("none") == "reference"
        assert STRATEGIES.resolve("cr") == "imcr"
        assert STRATEGIES.resolve("li") == "linear_interpolation"
        assert STRATEGIES.resolve("lsq") == "least_squares"

    def test_builtin_preconditioners_present(self):
        for name in ("identity", "jacobi", "block_jacobi", "block_ssor",
                     "block_ichol", "polynomial"):
            assert name in PRECONDITIONERS
        assert PRECONDITIONERS.resolve("bj") == "block_jacobi"

    def test_builtin_matrices_present(self):
        assert MATRICES.resolve("emilia") == "emilia_923_like"
        assert MATRICES.resolve("audikw") == "audikw_1_like"

    def test_esrp_degenerates_to_esr_for_small_T(self):
        from repro.core import make_strategy

        assert make_strategy("esrp", T=2, phi=1).name == "esr"
        assert make_strategy("esrp", T=3, phi=1).name == "esrp"

    def test_make_strategy_unknown_name(self):
        from repro.core import make_strategy

        with pytest.raises(ConfigurationError, match="unknown strategy"):
            make_strategy("definitely_not_registered")


class TestThirdPartyRegistration:
    def test_strategy_plugin_round_trips_through_request_json(self):
        from repro.api import SolveRequest
        from repro.core.esr import ESRStrategy

        @register_strategy("plugin_esr", aliases=("pesr",))
        def build(phi=1, rule="paper", destinations="eq1", **_):
            return ESRStrategy(phi=phi, rule=rule, destinations=destinations)

        try:
            request = SolveRequest(strategy="pesr", phi=2)
            assert request.strategy == "plugin_esr"  # alias canonicalised
            restored = SolveRequest.from_json(request.to_json())
            assert restored == request
            from repro.core import make_strategy

            assert make_strategy(restored.strategy, phi=2).name == "esr"
        finally:
            STRATEGIES.unregister("plugin_esr")

    def test_preconditioner_plugin_usable_in_solve(self, poisson_matrix):
        import numpy as np

        import repro
        from repro.preconditioners import IdentityPreconditioner

        @register_preconditioner("plugin_identity")
        def build(**kwargs):
            return IdentityPreconditioner(**kwargs)

        try:
            b = np.ones(poisson_matrix.shape[0])
            result = repro.solve(
                poisson_matrix, b, n_nodes=4, strategy="esr",
                preconditioner="plugin_identity",
            )
            assert result.converged
        finally:
            PRECONDITIONERS.unregister("plugin_identity")

    def test_matrix_plugin_loadable_by_name(self):
        import scipy.sparse as sp

        from repro.matrices import suite

        @register_matrix("plugin_laplacian")
        def build(scale, seed):
            n = {"tiny": 16, "small": 64}.get(scale, 32)
            return sp.diags([-1.0, 2.0, -1.0], [-1, 0, 1], shape=(n, n)).tocsr()

        try:
            matrix, b, meta = suite.load("plugin_laplacian", scale="tiny")
            assert matrix.shape == (16, 16)
            assert b.shape == (16,)
            assert meta.name == "plugin_laplacian"
            assert meta.paper == {}  # no paper reference for plugins
            assert "plugin_laplacian" in suite.available_problems()
        finally:
            MATRICES.unregister("plugin_laplacian")
