"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.cluster import CostModel, VirtualCluster, zero_cost_model
from repro.distribution import BlockRowPartition, DistributedMatrix, DistributedVector
from repro.matrices import poisson_1d, poisson_2d, random_banded_spd


@pytest.fixture
def cluster4() -> VirtualCluster:
    """Four nodes, deterministic unit-cost-free model."""
    return VirtualCluster(4, cost_model=zero_cost_model(), seed=0)


@pytest.fixture
def cluster4_costed() -> VirtualCluster:
    """Four nodes with a simple nonzero cost model."""
    model = CostModel(alpha=1e-6, beta=1e-9, gamma=1e-9, mu=1e-11, hop_penalty=0.0)
    return VirtualCluster(4, cost_model=model, seed=0)


@pytest.fixture
def small_spd() -> sp.csr_matrix:
    """A 40x40 banded SPD matrix."""
    return random_banded_spd(40, bandwidth=5, density=0.8, seed=7)


@pytest.fixture
def poisson_matrix() -> sp.csr_matrix:
    """1-D Poisson of size 64 (bandwidth 1, well understood)."""
    return poisson_1d(64)


@pytest.fixture
def poisson2d_matrix() -> sp.csr_matrix:
    """2-D Poisson on a 8x8 grid (n = 64)."""
    return poisson_2d(8)


def make_distributed(matrix: sp.csr_matrix, n_nodes: int = 4, cost_model=None, seed=0):
    """(cluster, partition, DistributedMatrix) helper used across tests."""
    cluster = VirtualCluster(
        n_nodes, cost_model=cost_model or zero_cost_model(), seed=seed
    )
    partition = BlockRowPartition.uniform(matrix.shape[0], n_nodes)
    dmatrix = DistributedMatrix(cluster, partition, matrix)
    return cluster, partition, dmatrix


def random_vector(n: int, seed: int = 0) -> np.ndarray:
    return np.random.default_rng(seed).standard_normal(n)


def distributed_from(cluster, partition, values) -> DistributedVector:
    return DistributedVector.from_global(cluster, partition, values)
