"""Unit tests for all preconditioners and the factory."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.distribution import DistributedVector
from repro.exceptions import ConfigurationError, ReconstructionUnsupportedError
from repro.matrices import poisson_1d, random_banded_spd
from repro.preconditioners import (
    BlockICholPreconditioner,
    BlockJacobiPreconditioner,
    BlockSSORPreconditioner,
    IdentityPreconditioner,
    JacobiPreconditioner,
    PolynomialPreconditioner,
    available_preconditioners,
    ic0_factor,
    make_preconditioner,
    split_into_blocks,
)

from ..conftest import make_distributed


def apply_global(precond, matrix, r):
    """Apply a preconditioner to a global vector via distributed vectors."""
    cluster = precond.matrix.cluster
    partition = precond.matrix.partition
    rv = DistributedVector.from_global(cluster, partition, r)
    out = DistributedVector(cluster, partition)
    precond.apply(rv, out)
    return out.to_global()


@pytest.fixture
def spd40():
    return random_banded_spd(40, bandwidth=4, density=0.8, seed=13)


class TestSplitIntoBlocks:
    def test_exact_division(self):
        assert split_into_blocks(20, 10) == [(0, 10), (10, 20)]

    def test_as_few_blocks_as_possible(self):
        bounds = split_into_blocks(25, 10)
        assert len(bounds) == 3  # ceil(25/10)
        sizes = [hi - lo for lo, hi in bounds]
        assert max(sizes) - min(sizes) <= 1
        assert sum(sizes) == 25

    def test_small_n(self):
        assert split_into_blocks(3, 10) == [(0, 3)]

    def test_empty(self):
        assert split_into_blocks(0, 10) == []

    def test_invalid_block_size(self):
        with pytest.raises(ConfigurationError):
            split_into_blocks(10, 0)


class TestIdentity:
    def test_apply_is_identity(self, spd40):
        _, _, dmatrix = make_distributed(spd40, 4)
        precond = IdentityPreconditioner()
        precond.setup(dmatrix)
        r = np.random.default_rng(0).standard_normal(40)
        assert np.allclose(apply_global(precond, spd40, r), r)

    def test_solve_restricted_identity(self, spd40):
        _, _, dmatrix = make_distributed(spd40, 4)
        precond = IdentityPreconditioner()
        precond.setup(dmatrix)
        v = np.arange(10.0)
        assert np.allclose(precond.solve_restricted([1], v), v)


class TestJacobi:
    def test_apply_divides_by_diagonal(self, spd40):
        _, _, dmatrix = make_distributed(spd40, 4)
        precond = JacobiPreconditioner()
        precond.setup(dmatrix)
        r = np.random.default_rng(1).standard_normal(40)
        assert np.allclose(apply_global(precond, spd40, r), r / spd40.diagonal())

    def test_solve_restricted_multiplies_back(self, spd40):
        _, partition, dmatrix = make_distributed(spd40, 4)
        precond = JacobiPreconditioner()
        precond.setup(dmatrix)
        lo, hi = partition.bounds(2)
        v = np.random.default_rng(2).standard_normal(hi - lo)
        restricted = precond.solve_restricted([2], v)
        assert np.allclose(restricted, v * spd40.diagonal()[lo:hi])

    def test_nonpositive_diagonal_rejected(self):
        bad = sp.csr_matrix(np.diag([1.0, -2.0, 3.0, 1.0]))
        _, _, dmatrix = make_distributed(bad, 2)
        with pytest.raises(ConfigurationError):
            JacobiPreconditioner().setup(dmatrix)


class TestBlockJacobi:
    def test_apply_matches_dense_block_inverse(self, spd40):
        _, partition, dmatrix = make_distributed(spd40, 4)
        precond = BlockJacobiPreconditioner(max_block_size=5)
        precond.setup(dmatrix)
        r = np.random.default_rng(3).standard_normal(40)
        result = apply_global(precond, spd40, r)
        # reference: apply each 5x5 block inverse
        expected = np.empty(40)
        dense = spd40.toarray()
        for rank in range(4):
            lo, hi = partition.bounds(rank)
            for blo, bhi in split_into_blocks(hi - lo, 5):
                block = dense[lo + blo : lo + bhi, lo + blo : lo + bhi]
                expected[lo + blo : lo + bhi] = np.linalg.solve(
                    block, r[lo + blo : lo + bhi]
                )
        assert np.allclose(result, expected)

    def test_solve_restricted_is_inverse_of_apply(self, spd40):
        _, partition, dmatrix = make_distributed(spd40, 4)
        precond = BlockJacobiPreconditioner(max_block_size=10)
        precond.setup(dmatrix)
        lo, hi = partition.bounds(1)
        v = np.random.default_rng(4).standard_normal(hi - lo)
        forward = precond._apply_local(1, v)
        roundtrip = precond.solve_restricted([1], forward)
        assert np.allclose(roundtrip, v)

    def test_solve_restricted_multiple_ranks(self, spd40):
        _, partition, dmatrix = make_distributed(spd40, 4)
        precond = BlockJacobiPreconditioner()
        precond.setup(dmatrix)
        sizes = partition.size_of(1) + partition.size_of(3)
        v = np.random.default_rng(5).standard_normal(sizes)
        result = precond.solve_restricted([3, 1], v)  # ranks get sorted
        assert result.shape == (sizes,)

    def test_restricted_rhs_size_validated(self, spd40):
        _, _, dmatrix = make_distributed(spd40, 4)
        precond = BlockJacobiPreconditioner()
        precond.setup(dmatrix)
        with pytest.raises(ConfigurationError):
            precond.solve_restricted([1], np.zeros(99))

    def test_block_bounds_respect_max_size(self, spd40):
        _, _, dmatrix = make_distributed(spd40, 4)
        precond = BlockJacobiPreconditioner(max_block_size=3)
        precond.setup(dmatrix)
        for lo, hi in precond.block_bounds(0):
            assert hi - lo <= 3

    def test_unset_up_rejected(self):
        precond = BlockJacobiPreconditioner()
        with pytest.raises(ConfigurationError):
            _ = precond.matrix

    def test_invalid_block_size(self):
        with pytest.raises(ConfigurationError):
            BlockJacobiPreconditioner(max_block_size=0)


class TestBlockSSOR:
    def test_apply_positive_definite_action(self, spd40):
        _, _, dmatrix = make_distributed(spd40, 4)
        precond = BlockSSORPreconditioner(omega=1.0)
        precond.setup(dmatrix)
        r = np.random.default_rng(6).standard_normal(40)
        z = apply_global(precond, spd40, r)
        assert float(r @ z) > 0  # SPD operator

    def test_inverse_roundtrip(self, spd40):
        _, partition, dmatrix = make_distributed(spd40, 4)
        precond = BlockSSORPreconditioner(omega=1.3)
        precond.setup(dmatrix)
        lo, hi = partition.bounds(0)
        v = np.random.default_rng(7).standard_normal(hi - lo)
        assert np.allclose(
            precond.solve_restricted([0], precond._apply_local(0, v)), v
        )

    def test_omega_bounds(self):
        with pytest.raises(ConfigurationError):
            BlockSSORPreconditioner(omega=2.0)
        with pytest.raises(ConfigurationError):
            BlockSSORPreconditioner(omega=0.0)


class TestBlockIChol:
    def test_ic0_factor_exact_on_tridiagonal(self):
        # IC(0) on a tridiagonal SPD matrix is the exact Cholesky factor.
        a = poisson_1d(12)
        factor = ic0_factor(a)
        assert np.allclose((factor @ factor.T).toarray(), a.toarray())

    def test_ic0_pattern_is_lower_triangle(self, spd40):
        factor = ic0_factor(spd40)
        coo = factor.tocoo()
        assert np.all(coo.row >= coo.col)

    def test_apply_approximates_inverse(self, spd40):
        _, _, dmatrix = make_distributed(spd40, 4)
        precond = BlockICholPreconditioner()
        precond.setup(dmatrix)
        r = np.random.default_rng(8).standard_normal(40)
        z = apply_global(precond, spd40, r)
        assert float(r @ z) > 0

    def test_inverse_roundtrip(self, spd40):
        _, partition, dmatrix = make_distributed(spd40, 4)
        precond = BlockICholPreconditioner()
        precond.setup(dmatrix)
        lo, hi = partition.bounds(2)
        v = np.random.default_rng(9).standard_normal(hi - lo)
        assert np.allclose(
            precond.solve_restricted([2], precond._apply_local(2, v)), v
        )

    def test_nonpositive_diagonal_rejected(self):
        bad = sp.csr_matrix(np.diag([1.0, 0.0, 1.0, 1.0]))
        with pytest.raises(ConfigurationError):
            ic0_factor(bad)


class TestPolynomial:
    def test_apply_is_spd_operator(self, spd40):
        _, _, dmatrix = make_distributed(spd40, 4)
        precond = PolynomialPreconditioner(degree=2)
        precond.setup(dmatrix)
        rng = np.random.default_rng(10)
        for _ in range(5):
            r = rng.standard_normal(40)
            z = apply_global(precond, spd40, r)
            assert float(r @ z) > 0

    def test_degree_one_matches_closed_form(self, spd40):
        _, _, dmatrix = make_distributed(spd40, 4)
        precond = PolynomialPreconditioner(degree=1, omega=0.8)
        precond.setup(dmatrix)
        r = np.random.default_rng(11).standard_normal(40)
        z = apply_global(precond, spd40, r)
        dinv = 0.8 / spd40.diagonal()
        z0 = dinv * r
        expected = z0 + dinv * (r - spd40 @ z0)
        assert np.allclose(z, expected)

    def test_reconstruction_unsupported(self, spd40):
        _, _, dmatrix = make_distributed(spd40, 4)
        precond = PolynomialPreconditioner()
        precond.setup(dmatrix)
        assert not precond.supports_reconstruction
        with pytest.raises(ReconstructionUnsupportedError):
            precond.solve_restricted([0], np.zeros(10))

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PolynomialPreconditioner(degree=0)
        with pytest.raises(ConfigurationError):
            PolynomialPreconditioner(omega=1.5)


class TestFactory:
    def test_all_names_construct(self, spd40):
        for name in available_preconditioners():
            precond = make_preconditioner(name)
            assert precond.name == name

    def test_kwargs_forwarded(self):
        precond = make_preconditioner("block_jacobi", max_block_size=4)
        assert precond.max_block_size == 4

    def test_unknown_rejected(self):
        with pytest.raises(ConfigurationError):
            make_preconditioner("amg")

    def test_reconstruction_support_flags(self):
        support = {
            name: make_preconditioner(name).supports_reconstruction
            for name in available_preconditioners()
        }
        assert support["identity"] and support["jacobi"] and support["block_jacobi"]
        assert support["block_ssor"] and support["block_ichol"]
        assert not support["polynomial"]
