"""Regression: SpMV halo-exchange message counts/bytes vs. the plan.

Communication-volume accounting feeds every modeled-runtime number in
the paper tables, so it must not drift silently.  This pins, for a
fixed 2-D Poisson partition (8x8 grid, 4 block rows):

* the plan's per-pair ``I_{s,l}`` sets (literal expected values);
* the statistics actually recorded by ``SpMVExecutor.exchange_halo``
  against what the ``SpMVPlan`` promises (1 message per non-empty
  pair, 8 bytes per entry);
* linear growth of the counters over repeated multiplies (no hidden
  per-call drift).
"""

import numpy as np
import pytest

from repro.cluster import VirtualCluster, zero_cost_model
from repro.cluster.cost_model import BYTES_PER_FLOAT
from repro.distribution import (
    BlockRowPartition,
    DistributedMatrix,
    DistributedVector,
    SpMVExecutor,
)
from repro.distribution.spmv import HALO_CHANNEL
from repro.matrices import poisson_2d

GRID = 8
N_NODES = 4

#: 5-point stencil, block-row partition of 16 rows (= 2 grid rows) per
#: node: each adjacent node pair exchanges exactly one grid row of 8
#: entries in each direction, and non-adjacent pairs exchange nothing.
EXPECTED_PAIR_COUNTS = {
    (0, 1): 8,
    (1, 0): 8,
    (1, 2): 8,
    (2, 1): 8,
    (2, 3): 8,
    (3, 2): 8,
}
EXPECTED_MESSAGES = len(EXPECTED_PAIR_COUNTS)          # 6
EXPECTED_ENTRIES = sum(EXPECTED_PAIR_COUNTS.values())  # 48
EXPECTED_BYTES = EXPECTED_ENTRIES * BYTES_PER_FLOAT    # 384


@pytest.fixture
def setup():
    matrix = poisson_2d(GRID)
    cluster = VirtualCluster(N_NODES, cost_model=zero_cost_model(), seed=0)
    partition = BlockRowPartition.uniform(GRID * GRID, N_NODES)
    dmatrix = DistributedMatrix(cluster, partition, matrix)
    return cluster, partition, dmatrix


def test_plan_pins_expected_pair_sets(setup):
    _cluster, _partition, dmatrix = setup
    plan = dmatrix.plan
    observed = {
        (d.src, d.dst): d.count
        for sends in plan.sends
        for d in sends
        if d.count > 0
    }
    assert observed == EXPECTED_PAIR_COUNTS
    assert plan.total_halo_entries() == EXPECTED_ENTRIES


def test_exchange_halo_matches_plan_accounting(setup):
    cluster, partition, dmatrix = setup
    executor = SpMVExecutor(dmatrix)
    x = DistributedVector.from_global(cluster, partition, np.arange(float(GRID * GRID)))

    executor.exchange_halo(x)

    stats = cluster.stats
    assert stats.total_messages(HALO_CHANNEL) == EXPECTED_MESSAGES
    assert stats.total_bytes(HALO_CHANNEL) == EXPECTED_BYTES
    # the plan promises exactly this volume
    assert stats.total_messages(HALO_CHANNEL) == sum(
        1 for sends in dmatrix.plan.sends for d in sends if d.count > 0
    )
    assert stats.total_bytes(HALO_CHANNEL) == (
        dmatrix.plan.total_halo_entries() * BYTES_PER_FLOAT
    )
    # per-node ledger agrees with the per-channel ledger
    assert sum(stats.bytes_sent) == EXPECTED_BYTES
    assert sum(stats.bytes_received) == EXPECTED_BYTES


def test_repeated_multiplies_scale_linearly(setup):
    cluster, partition, dmatrix = setup
    executor = SpMVExecutor(dmatrix)
    x = DistributedVector.from_global(cluster, partition, np.ones(GRID * GRID))

    for repetition in range(1, 4):
        executor.multiply(x)
        assert cluster.stats.total_messages(HALO_CHANNEL) == repetition * EXPECTED_MESSAGES
        assert cluster.stats.total_bytes(HALO_CHANNEL) == repetition * EXPECTED_BYTES


def test_halo_payload_really_arrives(setup):
    """The accounting must describe real data movement, not phantom bytes."""
    cluster, partition, dmatrix = setup
    executor = SpMVExecutor(dmatrix)
    values = np.arange(float(GRID * GRID))
    x = DistributedVector.from_global(cluster, partition, values)

    result = executor.multiply(x)
    dense = poisson_2d(GRID).toarray() @ values
    np.testing.assert_allclose(result.to_global(), dense, rtol=1e-12)
