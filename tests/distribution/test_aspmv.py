"""Unit tests for the augmented SpMV (redundancy machinery of §2.2)."""

import numpy as np
import pytest

from repro.core.redundancy import RedundancyQueue
from repro.distribution import (
    ASpMVExecutor,
    DistributedVector,
    RedundancyPlan,
    eq1_destinations,
    gather_redundant_copy,
)
from repro.exceptions import ConfigurationError, IrrecoverableDataLossError
from repro.matrices import poisson_1d, random_banded_spd

from ..conftest import make_distributed


class TestEq1Destinations:
    def test_first_four_neighbours(self):
        # k odd: s + ceil(k/2); k even: s - k/2  =>  +1, -1, +2, -2
        assert eq1_destinations(5, 4, 16) == (6, 4, 7, 3)

    def test_wraparound(self):
        assert eq1_destinations(0, 2, 8) == (1, 7)
        assert eq1_destinations(7, 2, 8) == (0, 6)

    def test_phi_capped_at_n_minus_one(self):
        dests = eq1_destinations(0, 10, 4)
        assert len(dests) == 3
        assert set(dests) == {1, 2, 3}

    def test_no_self_and_no_duplicates(self):
        for n in (2, 3, 5, 8):
            for s in range(n):
                dests = eq1_destinations(s, n - 1, n)
                assert s not in dests
                assert len(set(dests)) == len(dests)

    def test_phi_zero_empty(self):
        assert eq1_destinations(3, 0, 8) == ()

    def test_negative_phi_rejected(self):
        with pytest.raises(ConfigurationError):
            eq1_destinations(0, -1, 8)


class TestRedundancyPlanInvariant:
    @pytest.mark.parametrize("rule", ["paper", "greedy"])
    @pytest.mark.parametrize("phi", [1, 2, 3])
    def test_min_copies_at_least_phi(self, rule, phi):
        matrix = random_banded_spd(32, bandwidth=5, density=0.6, seed=9)
        _, _, dmatrix = make_distributed(matrix, 4)
        plan = RedundancyPlan(dmatrix.plan, phi, rule=rule)
        assert plan.min_copies() >= min(phi, 3)

    @pytest.mark.parametrize("rule", ["paper", "greedy"])
    def test_invariant_on_diagonal_matrix(self, rule):
        # No natural halo at all: every entry must be sent explicitly.
        import scipy.sparse as sp

        matrix = sp.identity(16, format="csr")
        _, _, dmatrix = make_distributed(matrix, 4)
        plan = RedundancyPlan(dmatrix.plan, 2, rule=rule)
        assert plan.min_copies() >= 2
        # identity has zero natural sends, so extras = phi * n
        assert plan.extra_entries() == 2 * 16

    def test_greedy_never_sends_more_than_paper(self):
        matrix = random_banded_spd(40, bandwidth=7, density=0.5, seed=11)
        _, _, dmatrix = make_distributed(matrix, 5)
        for phi in (1, 2, 3):
            paper = RedundancyPlan(dmatrix.plan, phi, rule="paper")
            greedy = RedundancyPlan(dmatrix.plan, phi, rule="greedy")
            assert greedy.extra_entries() <= paper.extra_entries()

    def test_piggyback_detection(self):
        matrix = poisson_1d(16)  # neighbours exchange naturally
        _, _, dmatrix = make_distributed(matrix, 4)
        plan = RedundancyPlan(dmatrix.plan, 1, rule="paper")
        for src in range(4):
            for transfer in plan.extras[src]:
                natural = dmatrix.plan.natural_destinations(src)
                assert transfer.piggyback == (transfer.dst in natural)

    def test_invalid_rule_rejected(self):
        matrix = poisson_1d(8)
        _, _, dmatrix = make_distributed(matrix, 2)
        with pytest.raises(ConfigurationError):
            RedundancyPlan(dmatrix.plan, 1, rule="magic")

    def test_phi_zero_rejected(self):
        matrix = poisson_1d(8)
        _, _, dmatrix = make_distributed(matrix, 2)
        with pytest.raises(ConfigurationError):
            RedundancyPlan(dmatrix.plan, 0)


class TestAugmentedMultiply:
    def setup_executor(self, phi=2, n=24, n_nodes=4):
        matrix = random_banded_spd(n, bandwidth=4, density=0.7, seed=3)
        cluster, partition, dmatrix = make_distributed(matrix, n_nodes)
        executor = ASpMVExecutor(dmatrix, phi=phi)
        return matrix, cluster, partition, executor

    def test_product_matches_plain(self):
        matrix, cluster, partition, executor = self.setup_executor()
        x = np.random.default_rng(5).standard_normal(24)
        dx = DistributedVector.from_global(cluster, partition, x)
        queue = RedundancyQueue(2)
        result = executor.multiply_augmented(dx, 0, queue)
        assert np.allclose(result.to_global(), matrix @ x)

    def test_redundant_copy_reconstructs_input(self):
        matrix, cluster, partition, executor = self.setup_executor(phi=2)
        x = np.random.default_rng(6).standard_normal(24)
        dx = DistributedVector.from_global(cluster, partition, x)
        queue = RedundancyQueue(2)
        executor.multiply_augmented(dx, 7, queue)
        # Fail one node; its block must be recoverable from survivors.
        cluster.fail([1])
        cluster.replace([1])
        gathered = gather_redundant_copy(cluster, partition, 7, [1])
        lo, hi = partition.bounds(1)
        assert np.allclose(gathered[1], x[lo:hi])

    def test_two_simultaneous_failures_with_phi2(self):
        matrix, cluster, partition, executor = self.setup_executor(phi=2)
        x = np.random.default_rng(7).standard_normal(24)
        dx = DistributedVector.from_global(cluster, partition, x)
        queue = RedundancyQueue(2)
        executor.multiply_augmented(dx, 1, queue)
        cluster.fail([1, 2])
        cluster.replace([1, 2])
        gathered = gather_redundant_copy(cluster, partition, 1, [1, 2])
        for rank in (1, 2):
            lo, hi = partition.bounds(rank)
            assert np.allclose(gathered[rank], x[lo:hi])

    def test_gather_insufficient_redundancy_raises(self):
        matrix, cluster, partition, executor = self.setup_executor(phi=1)
        x = np.random.default_rng(8).standard_normal(24)
        dx = DistributedVector.from_global(cluster, partition, x)
        queue = RedundancyQueue(2)
        executor.multiply_augmented(dx, 0, queue)
        # phi=1 cannot survive 3 simultaneous failures of adjacent nodes.
        cluster.fail([0, 1, 2])
        cluster.replace([0, 1, 2])
        with pytest.raises(IrrecoverableDataLossError):
            gather_redundant_copy(cluster, partition, 0, [0, 1, 2])

    def test_gather_missing_iteration_raises(self):
        matrix, cluster, partition, executor = self.setup_executor(phi=1)
        x = DistributedVector.from_global(
            cluster, partition, np.ones(24)
        )
        queue = RedundancyQueue(2)
        executor.multiply_augmented(x, 0, queue)
        cluster.fail([1])
        cluster.replace([1])
        with pytest.raises(IrrecoverableDataLossError):
            gather_redundant_copy(cluster, partition, 99, [1])

    def test_queue_eviction_drops_node_stashes(self):
        matrix, cluster, partition, executor = self.setup_executor(phi=1)
        queue = RedundancyQueue(2)
        x = DistributedVector.from_global(cluster, partition, np.ones(24))
        for j in range(3):
            executor.multiply_augmented(x, j, queue)
        assert queue.items == (1, 2)
        for node in cluster.nodes:
            assert 0 not in node.redundancy

    def test_repush_same_iteration_replaces_stash(self):
        matrix, cluster, partition, executor = self.setup_executor(phi=1)
        queue = RedundancyQueue(3)
        x = DistributedVector.from_global(cluster, partition, np.ones(24))
        executor.multiply_augmented(x, 5, queue)
        executor.multiply_augmented(x, 5, queue)  # rollback re-execution
        assert queue.items == (5,)
        # stash must not have duplicated entries
        for node in cluster.nodes:
            piece = node.redundant_for(5, (node.rank + 1) % 4)
            if piece is not None:
                idx, _ = piece
                assert len(np.unique(idx)) == len(idx)

    def test_extra_channel_accounting(self):
        from repro.cluster import CostModel, VirtualCluster
        from repro.distribution import BlockRowPartition, DistributedMatrix

        matrix = poisson_1d(16)
        model = CostModel(alpha=0, beta=1.0, gamma=0, mu=0, hop_penalty=0)
        cluster = VirtualCluster(4, cost_model=model, seed=0)
        partition = BlockRowPartition.uniform(16, 4)
        dmatrix = DistributedMatrix(cluster, partition, matrix)
        executor = ASpMVExecutor(dmatrix, phi=1)
        queue = RedundancyQueue(2)
        dx = DistributedVector.from_global(cluster, partition, np.ones(16))
        executor.multiply_augmented(dx, 0, queue)
        extra_entries = executor.redundancy.extra_entries()
        assert cluster.stats.total_bytes("aspmv_extra") == 8 * extra_entries
        assert extra_entries > 0

    def test_phi_property(self):
        _, _, _, executor = self.setup_executor(phi=2)
        assert executor.phi == 2
