"""Unit tests for the block-row partition."""

import numpy as np
import pytest

from repro.distribution.partition import BlockRowPartition
from repro.exceptions import PartitionError


class TestUniform:
    def test_even_split(self):
        part = BlockRowPartition.uniform(12, 4)
        assert [part.size_of(r) for r in range(4)] == [3, 3, 3, 3]

    def test_remainder_goes_to_first_blocks(self):
        part = BlockRowPartition.uniform(10, 4)
        assert [part.size_of(r) for r in range(4)] == [3, 3, 2, 2]

    def test_covers_everything(self):
        part = BlockRowPartition.uniform(17, 5)
        union = np.concatenate([part.indices(r) for r in range(5)])
        assert np.array_equal(np.sort(union), np.arange(17))

    def test_too_many_nodes_rejected(self):
        with pytest.raises(PartitionError):
            BlockRowPartition.uniform(3, 4)

    def test_zero_nodes_rejected(self):
        with pytest.raises(PartitionError):
            BlockRowPartition.uniform(4, 0)


class TestFromSizes:
    def test_explicit_sizes(self):
        part = BlockRowPartition.from_sizes([2, 5, 3])
        assert part.n == 10
        assert part.bounds(1) == (2, 7)

    def test_empty_block_rejected(self):
        with pytest.raises(PartitionError):
            BlockRowPartition.from_sizes([2, 0, 3])


class TestAlignedToBlocks:
    def test_multiples_of_block(self):
        part = BlockRowPartition.aligned_to_blocks(30, 4, 3)
        for rank in range(4):
            assert part.size_of(rank) % 3 == 0

    def test_non_multiple_rejected(self):
        with pytest.raises(PartitionError):
            BlockRowPartition.aligned_to_blocks(31, 4, 3)

    def test_not_enough_groups_rejected(self):
        with pytest.raises(PartitionError):
            BlockRowPartition.aligned_to_blocks(9, 4, 3)


class TestQueries:
    @pytest.fixture
    def part(self):
        return BlockRowPartition.from_sizes([3, 4, 3])

    def test_owner(self, part):
        assert part.owner(0) == 0
        assert part.owner(2) == 0
        assert part.owner(3) == 1
        assert part.owner(9) == 2

    def test_owner_out_of_range(self, part):
        with pytest.raises(PartitionError):
            part.owner(10)

    def test_owners_vectorised(self, part):
        owners = part.owners(np.array([0, 3, 7, 9]))
        assert list(owners) == [0, 1, 2, 2]

    def test_owners_out_of_range(self, part):
        with pytest.raises(PartitionError):
            part.owners(np.array([0, 99]))

    def test_indices_of_union(self, part):
        assert list(part.indices_of([0, 2])) == [0, 1, 2, 7, 8, 9]

    def test_indices_of_dedupes(self, part):
        assert list(part.indices_of([1, 1])) == [3, 4, 5, 6]

    def test_complement(self, part):
        assert list(part.complement_indices([1])) == [0, 1, 2, 7, 8, 9]

    def test_complement_empty_failure_set(self, part):
        assert list(part.complement_indices([])) == list(range(10))

    def test_to_local(self, part):
        local = part.to_local(1, np.array([3, 6]))
        assert list(local) == [0, 3]

    def test_to_local_foreign_index_rejected(self, part):
        with pytest.raises(PartitionError):
            part.to_local(1, np.array([0]))

    def test_bounds_bad_rank(self, part):
        with pytest.raises(PartitionError):
            part.bounds(3)


class TestValidation:
    def test_offsets_must_start_at_zero(self):
        with pytest.raises(PartitionError):
            BlockRowPartition([1, 3, 5])

    def test_offsets_must_be_monotone(self):
        with pytest.raises(PartitionError):
            BlockRowPartition([0, 5, 3])

    def test_allow_empty_flag(self):
        part = BlockRowPartition([0, 2, 2, 4], allow_empty=True)
        assert part.size_of(1) == 0

    def test_equality_and_hash(self):
        a = BlockRowPartition.uniform(10, 2)
        b = BlockRowPartition.uniform(10, 2)
        c = BlockRowPartition.uniform(10, 5)
        assert a == b
        assert hash(a) == hash(b)
        assert a != c
