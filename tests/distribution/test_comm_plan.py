"""Unit tests for the SpMV communication plan (I_{s,l} sets)."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.distribution.comm_plan import SpMVPlan
from repro.distribution.partition import BlockRowPartition
from repro.exceptions import ConfigurationError
from repro.matrices import poisson_1d, random_banded_spd


def brute_force_halo(matrix: sp.csr_matrix, partition, src: int, dst: int):
    """Reference computation of I_{src,dst} straight from the definition."""
    lo_d, hi_d = partition.bounds(dst)
    lo_s, hi_s = partition.bounds(src)
    block = matrix[lo_d:hi_d, :].tocoo()
    needed = {
        int(c) for c in block.col if lo_s <= c < hi_s
    }
    return sorted(needed)


class TestPlanCorrectness:
    @pytest.mark.parametrize("n_nodes", [2, 3, 4])
    def test_halo_indices_match_brute_force(self, n_nodes):
        matrix = random_banded_spd(24, bandwidth=6, density=0.7, seed=3)
        partition = BlockRowPartition.uniform(24, n_nodes)
        plan = SpMVPlan(matrix, partition)
        for src in range(n_nodes):
            for dst in range(n_nodes):
                if src == dst:
                    continue
                expected = brute_force_halo(matrix, partition, src, dst)
                assert list(plan.halo_indices(src, dst)) == expected

    def test_own_indices_never_in_halo(self):
        matrix = random_banded_spd(20, bandwidth=5, seed=1)
        partition = BlockRowPartition.uniform(20, 4)
        plan = SpMVPlan(matrix, partition)
        for src in range(4):
            lo, hi = partition.bounds(src)
            for descriptor in plan.sends[src]:
                assert np.all(descriptor.global_indices >= lo)
                assert np.all(descriptor.global_indices < hi)
                assert descriptor.dst != src

    def test_compressed_local_matvec_matches_global(self):
        matrix = random_banded_spd(30, bandwidth=8, density=0.6, seed=5)
        partition = BlockRowPartition.uniform(30, 3)
        plan = SpMVPlan(matrix, partition)
        x = np.random.default_rng(0).standard_normal(30)
        expected = matrix @ x
        for rank in range(3):
            lo, hi = partition.bounds(rank)
            ghosts = plan.ghost_globals[rank]
            local_x = np.concatenate([x[lo:hi], x[ghosts]])
            assert np.allclose(plan.local_matrices[rank] @ local_x, expected[lo:hi])

    def test_tridiagonal_only_neighbours_communicate(self):
        matrix = poisson_1d(16)
        partition = BlockRowPartition.uniform(16, 4)
        plan = SpMVPlan(matrix, partition)
        for src in range(4):
            for descriptor in plan.sends[src]:
                assert abs(descriptor.dst - src) == 1
                assert descriptor.count == 1  # one boundary entry per side

    def test_multiplicity_counts_destinations(self):
        matrix = poisson_1d(16)
        partition = BlockRowPartition.uniform(16, 4)
        plan = SpMVPlan(matrix, partition)
        m = plan.multiplicity(1)  # middle node: rows 4..7
        # first entry goes to rank 0, last to rank 2, interior nowhere
        assert list(m) == [1, 0, 0, 1]

    def test_natural_destinations(self):
        matrix = poisson_1d(16)
        partition = BlockRowPartition.uniform(16, 4)
        plan = SpMVPlan(matrix, partition)
        assert plan.natural_destinations(0) == (1,)
        assert set(plan.natural_destinations(1)) == {0, 2}

    def test_total_halo_entries(self):
        matrix = poisson_1d(16)
        partition = BlockRowPartition.uniform(16, 4)
        plan = SpMVPlan(matrix, partition)
        # 3 internal boundaries, 2 entries each (one per direction)
        assert plan.total_halo_entries() == 6

    def test_ghost_positions_are_consistent(self):
        matrix = random_banded_spd(24, bandwidth=7, seed=2)
        partition = BlockRowPartition.uniform(24, 4)
        plan = SpMVPlan(matrix, partition)
        for dst in range(4):
            ghosts = plan.ghost_globals[dst]
            for descriptor in plan.recvs[dst]:
                assert np.array_equal(
                    ghosts[descriptor.ghost_positions], descriptor.global_indices
                )


class TestValidation:
    def test_non_square_rejected(self):
        matrix = sp.random(4, 6, density=0.5, format="csr")
        with pytest.raises(ConfigurationError):
            SpMVPlan(matrix, BlockRowPartition.uniform(4, 2))

    def test_size_mismatch_rejected(self):
        matrix = sp.identity(8, format="csr")
        with pytest.raises(ConfigurationError):
            SpMVPlan(matrix, BlockRowPartition.uniform(6, 2))

    def test_diagonal_matrix_has_no_communication(self):
        matrix = sp.identity(12, format="csr")
        plan = SpMVPlan(matrix, BlockRowPartition.uniform(12, 3))
        assert plan.total_halo_entries() == 0
        assert all(not sends for sends in plan.sends)
