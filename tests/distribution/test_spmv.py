"""Unit tests for the distributed SpMV executor."""

import numpy as np
import pytest

from repro.cluster import CostModel, VirtualCluster
from repro.distribution import (
    BlockRowPartition,
    DistributedMatrix,
    DistributedVector,
    SpMVExecutor,
)
from repro.exceptions import ConfigurationError
from repro.matrices import poisson_1d, poisson_2d, random_banded_spd

from ..conftest import make_distributed


class TestCorrectness:
    @pytest.mark.parametrize(
        "matrix_factory",
        [
            lambda: poisson_1d(24),
            lambda: poisson_2d(6),
            lambda: random_banded_spd(36, bandwidth=9, density=0.5, seed=4),
        ],
    )
    @pytest.mark.parametrize("n_nodes", [2, 3, 4])
    def test_multiply_matches_scipy(self, matrix_factory, n_nodes):
        matrix = matrix_factory()
        cluster, partition, dmatrix = make_distributed(matrix, n_nodes)
        executor = SpMVExecutor(dmatrix)
        x = np.random.default_rng(1).standard_normal(matrix.shape[0])
        dx = DistributedVector.from_global(cluster, partition, x)
        result = executor.multiply(dx)
        assert np.allclose(result.to_global(), matrix @ x)

    def test_repeated_multiplies_reuse_buffers(self, small_spd):
        cluster, partition, dmatrix = make_distributed(small_spd, 4)
        executor = SpMVExecutor(dmatrix)
        rng = np.random.default_rng(2)
        out = DistributedVector(cluster, partition)
        for _ in range(3):
            x = rng.standard_normal(40)
            dx = DistributedVector.from_global(cluster, partition, x)
            executor.multiply(dx, out=out)
            assert np.allclose(out.to_global(), small_spd @ x)

    def test_out_vector_allocated_when_missing(self, small_spd):
        cluster, partition, dmatrix = make_distributed(small_spd, 4)
        executor = SpMVExecutor(dmatrix)
        dx = DistributedVector(cluster, partition)
        result = executor.multiply(dx)
        assert result.n == 40

    def test_partition_mismatch_rejected(self, small_spd):
        cluster, partition, dmatrix = make_distributed(small_spd, 4)
        other = BlockRowPartition.from_sizes([20, 10, 5, 5])
        bad = DistributedVector(cluster, other)
        with pytest.raises(ConfigurationError):
            SpMVExecutor(dmatrix).multiply(bad)


class TestAccounting:
    def test_flops_charged_per_nnz(self):
        matrix = poisson_1d(16)
        model = CostModel(alpha=0, beta=0, gamma=1.0, mu=0, hop_penalty=0)
        cluster = VirtualCluster(4, cost_model=model, seed=0)
        partition = BlockRowPartition.uniform(16, 4)
        dmatrix = DistributedMatrix(cluster, partition, matrix)
        executor = SpMVExecutor(dmatrix)
        x = DistributedVector.from_global(cluster, partition, np.ones(16))
        executor.multiply(x)
        assert cluster.stats.total_flops() == pytest.approx(2 * matrix.nnz)

    def test_halo_bytes_charged(self):
        matrix = poisson_1d(16)
        cluster, partition, dmatrix = None, None, None
        model = CostModel(alpha=0, beta=1.0, gamma=0, mu=0, hop_penalty=0)
        cluster = VirtualCluster(4, cost_model=model, seed=0)
        partition = BlockRowPartition.uniform(16, 4)
        dmatrix = DistributedMatrix(cluster, partition, matrix)
        executor = SpMVExecutor(dmatrix)
        x = DistributedVector.from_global(cluster, partition, np.ones(16))
        executor.multiply(x)
        # 6 halo entries of 8 bytes each
        assert cluster.stats.total_bytes("spmv_halo") == 48

    def test_message_counts(self):
        matrix = poisson_1d(16)
        cluster, partition, dmatrix = make_distributed(matrix, 4)
        executor = SpMVExecutor(dmatrix)
        x = DistributedVector.from_global(cluster, partition, np.ones(16))
        executor.multiply(x)
        assert cluster.stats.total_messages("spmv_halo") == 6
