"""Unit tests for distributed vectors."""

import numpy as np
import pytest

from repro.cluster import VirtualCluster, zero_cost_model
from repro.distribution import BlockRowPartition, DistributedVector
from repro.exceptions import ConfigurationError

from ..conftest import make_distributed


def setup_pair(n=12, n_nodes=4, seed=0):
    cluster = VirtualCluster(n_nodes, cost_model=zero_cost_model(), seed=0)
    partition = BlockRowPartition.uniform(n, n_nodes)
    rng = np.random.default_rng(seed)
    a = rng.standard_normal(n)
    b = rng.standard_normal(n)
    va = DistributedVector.from_global(cluster, partition, a)
    vb = DistributedVector.from_global(cluster, partition, b)
    return cluster, partition, a, b, va, vb


class TestConstruction:
    def test_zero_vector_default(self):
        cluster = VirtualCluster(3, cost_model=zero_cost_model())
        partition = BlockRowPartition.uniform(9, 3)
        vec = DistributedVector(cluster, partition)
        assert np.all(vec.to_global() == 0.0)

    def test_from_global_roundtrip(self):
        _, _, a, _, va, _ = setup_pair()
        assert np.allclose(va.to_global(), a)

    def test_from_global_size_mismatch(self):
        cluster = VirtualCluster(3, cost_model=zero_cost_model())
        partition = BlockRowPartition.uniform(9, 3)
        with pytest.raises(ConfigurationError):
            DistributedVector.from_global(cluster, partition, np.zeros(5))

    def test_explicit_blocks_copied(self):
        cluster = VirtualCluster(2, cost_model=zero_cost_model())
        partition = BlockRowPartition.uniform(4, 2)
        source = [np.ones(2), np.zeros(2)]
        vec = DistributedVector(cluster, partition, source)
        source[0][:] = 99.0
        assert np.all(vec.blocks[0] == 1.0)

    def test_block_shape_mismatch(self):
        cluster = VirtualCluster(2, cost_model=zero_cost_model())
        partition = BlockRowPartition.uniform(4, 2)
        with pytest.raises(ConfigurationError):
            DistributedVector(cluster, partition, [np.ones(3), np.zeros(2)])

    def test_partition_cluster_mismatch(self):
        cluster = VirtualCluster(2, cost_model=zero_cost_model())
        partition = BlockRowPartition.uniform(9, 3)
        with pytest.raises(ConfigurationError):
            DistributedVector(cluster, partition)


class TestArithmetic:
    def test_axpy(self):
        _, _, a, b, va, vb = setup_pair()
        va.axpy(2.5, vb)
        assert np.allclose(va.to_global(), a + 2.5 * b)

    def test_aypx(self):
        _, _, a, b, va, vb = setup_pair()
        va.aypx(0.5, vb)  # va = vb + 0.5*va
        assert np.allclose(va.to_global(), b + 0.5 * a)

    def test_scale(self):
        _, _, a, _, va, _ = setup_pair()
        va.scale(-3.0)
        assert np.allclose(va.to_global(), -3.0 * a)

    def test_fill(self):
        _, _, _, _, va, _ = setup_pair()
        va.fill(7.0)
        assert np.all(va.to_global() == 7.0)

    def test_assign(self):
        _, _, _, b, va, vb = setup_pair()
        va.assign(vb, charge=False)
        assert np.allclose(va.to_global(), b)

    def test_apply_blockwise(self):
        _, _, a, _, va, _ = setup_pair()
        va.apply_blockwise(lambda rank, block: block * (rank + 1))
        expected = np.concatenate(
            [a[3 * r : 3 * r + 3] * (r + 1) for r in range(4)]
        )
        assert np.allclose(va.to_global(), expected)

    def test_incompatible_partitions_rejected(self):
        cluster = VirtualCluster(2, cost_model=zero_cost_model())
        p1 = BlockRowPartition.uniform(4, 2)
        p2 = BlockRowPartition.from_sizes([1, 3])
        v1 = DistributedVector(cluster, p1)
        v2 = DistributedVector(cluster, p2)
        with pytest.raises(ConfigurationError):
            v1.axpy(1.0, v2)


class TestReductions:
    def test_dot_matches_numpy(self):
        _, _, a, b, va, vb = setup_pair()
        assert va.dot(vb) == pytest.approx(float(a @ b))

    def test_dot_many_single_allreduce(self):
        cluster, _, a, b, va, vb = setup_pair()
        values = va.dot_many([vb, va])
        assert values[0] == pytest.approx(float(a @ b))
        assert values[1] == pytest.approx(float(a @ a))

    def test_norm2(self):
        _, _, a, _, va, _ = setup_pair()
        assert va.norm2() == pytest.approx(float(np.linalg.norm(a)))

    def test_dot_charges_allreduce(self):
        from repro.cluster import CostModel

        model = CostModel(alpha=1e-6, beta=0.0, gamma=0.0, hop_penalty=0.0)
        cluster = VirtualCluster(4, cost_model=model, seed=0)
        partition = BlockRowPartition.uniform(8, 4)
        v = DistributedVector.from_global(cluster, partition, np.ones(8))
        v.dot(v)
        assert cluster.elapsed() > 0


class TestFailureIntegration:
    def test_wipe_blocks(self):
        _, _, a, _, va, _ = setup_pair()
        va.wipe_blocks([1])
        out = va.to_global()
        assert np.all(out[3:6] == 0.0)
        assert np.allclose(out[:3], a[:3])

    def test_get_global_entries(self):
        _, _, a, _, va, _ = setup_pair()
        assert np.allclose(va.get_global_entries(np.array([0, 5, 11])), a[[0, 5, 11]])

    def test_copy_independent(self):
        _, _, a, _, va, _ = setup_pair()
        clone = va.copy()
        va.fill(0.0)
        assert np.allclose(clone.to_global(), a)

    def test_zeros_like(self):
        _, _, _, _, va, _ = setup_pair()
        z = DistributedVector.zeros_like(va)
        assert z.n == va.n
        assert np.all(z.to_global() == 0.0)

    def test_set_block_validates_shape(self):
        _, _, _, _, va, _ = setup_pair()
        with pytest.raises(ConfigurationError):
            va.set_block(0, np.zeros(99))

    def test_matrix_fixture_helper(self, small_spd):
        cluster, partition, dmatrix = make_distributed(small_spd, 4)
        assert dmatrix.n == 40
        assert partition.n_nodes == 4
