"""Unit tests for the distributed matrix wrapper."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.exceptions import ConfigurationError
from repro.matrices import random_banded_spd

from ..conftest import make_distributed


class TestBlocks:
    def test_row_block_matches_global(self, small_spd):
        _, partition, dmatrix = make_distributed(small_spd, 4)
        rows = dmatrix.row_block([1])
        lo, hi = partition.bounds(1)
        assert np.allclose(rows.toarray(), small_spd[lo:hi, :].toarray())

    def test_row_block_multiple_ranks(self, small_spd):
        _, partition, dmatrix = make_distributed(small_spd, 4)
        rows = dmatrix.row_block([0, 2])
        idx = partition.indices_of([0, 2])
        assert np.allclose(rows.toarray(), small_spd[idx, :].toarray())

    def test_submatrix(self, small_spd):
        _, partition, dmatrix = make_distributed(small_spd, 4)
        sub = dmatrix.submatrix([1, 2])
        idx = partition.indices_of([1, 2])
        assert np.allclose(sub.toarray(), small_spd[np.ix_(idx, idx)].toarray())

    def test_coupling_block(self, small_spd):
        _, partition, dmatrix = make_distributed(small_spd, 4)
        coupling = dmatrix.coupling_block([1])
        lost = partition.indices_of([1])
        kept = partition.complement_indices([1])
        assert np.allclose(
            coupling.toarray(), small_spd[np.ix_(lost, kept)].toarray()
        )

    def test_diagonal_block(self, small_spd):
        _, partition, dmatrix = make_distributed(small_spd, 4)
        lo, hi = partition.bounds(3)
        assert np.allclose(
            dmatrix.diagonal_block(3).toarray(), small_spd[lo:hi, lo:hi].toarray()
        )

    def test_diagonal(self, small_spd):
        _, _, dmatrix = make_distributed(small_spd, 4)
        assert np.allclose(dmatrix.diagonal(), small_spd.diagonal())

    def test_bandwidth(self):
        matrix = random_banded_spd(30, bandwidth=4, density=1.0, seed=0)
        _, _, dmatrix = make_distributed(matrix, 3)
        assert dmatrix.bandwidth() == 4

    def test_local_nnz_sums_to_total(self, small_spd):
        _, _, dmatrix = make_distributed(small_spd, 4)
        assert sum(dmatrix.local_nnz(r) for r in range(4)) == small_spd.nnz


class TestValidation:
    def test_non_square_rejected(self, cluster4):
        from repro.distribution import BlockRowPartition, DistributedMatrix

        with pytest.raises(ConfigurationError):
            DistributedMatrix(
                cluster4,
                BlockRowPartition.uniform(4, 4),
                sp.random(4, 5, density=0.5),
            )

    def test_partition_size_mismatch(self, cluster4):
        from repro.distribution import BlockRowPartition, DistributedMatrix

        with pytest.raises(ConfigurationError):
            DistributedMatrix(
                cluster4, BlockRowPartition.uniform(8, 4), sp.identity(6)
            )

    def test_nodes_mismatch(self, small_spd):
        from repro.cluster import VirtualCluster, zero_cost_model
        from repro.distribution import BlockRowPartition, DistributedMatrix

        cluster = VirtualCluster(2, cost_model=zero_cost_model())
        with pytest.raises(ConfigurationError):
            DistributedMatrix(cluster, BlockRowPartition.uniform(40, 4), small_spd)
