"""Unit tests for the inner reconstruction solver."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.exceptions import ConfigurationError, ConvergenceError
from repro.matrices import poisson_1d, random_banded_spd
from repro.solvers.inner import INNER_RTOL, inner_pcg, serial_block_jacobi


class TestSerialBlockJacobi:
    def test_apply_matches_block_inverse(self):
        matrix = random_banded_spd(20, bandwidth=3, seed=1)
        apply, flops = serial_block_jacobi(matrix, max_block_size=5)
        v = np.random.default_rng(0).standard_normal(20)
        expected = np.empty(20)
        dense = matrix.toarray()
        for lo in range(0, 20, 5):
            block = dense[lo : lo + 5, lo : lo + 5]
            expected[lo : lo + 5] = np.linalg.solve(block, v[lo : lo + 5])
        assert np.allclose(apply(v), expected)
        assert flops > 0

    def test_empty_matrix(self):
        apply, flops = serial_block_jacobi(sp.csr_matrix((0, 0)))
        assert flops == 0.0


class TestInnerPCG:
    def test_solves_to_paper_tolerance(self):
        matrix = random_banded_spd(50, bandwidth=4, seed=2)
        x_true = np.random.default_rng(1).standard_normal(50)
        rhs = matrix @ x_true
        x, report = inner_pcg(matrix, rhs)
        assert report.converged
        assert report.relative_residual <= INNER_RTOL
        assert np.allclose(x, x_true, atol=1e-8)

    def test_report_counts_iterations(self):
        matrix = poisson_1d(40)
        rhs = np.ones(40)
        _, report = inner_pcg(matrix, rhs)
        assert 0 < report.iterations <= 40 + 5
        assert report.flops > 0

    def test_zero_rhs_trivial(self):
        matrix = poisson_1d(10)
        x, report = inner_pcg(matrix, np.zeros(10))
        assert np.all(x == 0.0)
        assert report.iterations == 0

    def test_empty_system(self):
        x, report = inner_pcg(sp.csr_matrix((0, 0)), np.empty(0))
        assert x.size == 0
        assert report.converged

    def test_warm_start(self):
        matrix = poisson_1d(30)
        x_true = np.linspace(0, 1, 30)
        rhs = matrix @ x_true
        _, cold = inner_pcg(matrix, rhs)
        _, warm = inner_pcg(matrix, rhs, x0=x_true + 1e-10)
        assert warm.iterations < cold.iterations

    def test_indefinite_matrix_raises(self):
        # eigenvalues -1 and 3: CG hits a non-positive p·Ap direction
        matrix = sp.csr_matrix(np.array([[1.0, 2.0], [2.0, 1.0]]))
        with pytest.raises((ConvergenceError, ConfigurationError)):
            inner_pcg(matrix, np.array([1.0, 0.0]), max_block_size=1)

    def test_size_mismatch(self):
        with pytest.raises(ConfigurationError):
            inner_pcg(poisson_1d(5), np.ones(6))

    def test_budget_exhaustion_raises(self):
        matrix = poisson_1d(400)
        rhs = np.ones(400)
        with pytest.raises(ConvergenceError):
            inner_pcg(matrix, rhs, maxiter=3)
