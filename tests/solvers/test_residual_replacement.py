"""Tests for periodic residual replacement (Van der Vorst & Ye)."""

import numpy as np
import pytest

import repro
from repro.cluster import FailureSchedule, VirtualCluster, zero_cost_model
from repro.distribution import BlockRowPartition, DistributedMatrix
from repro.exceptions import ConfigurationError
from repro.harness.metrics import drift_from_result
from repro.preconditioners import make_preconditioner
from repro.solvers import NoResilience, PCGEngine, SolveOptions
from repro.solvers.residual_replacement import ResidualReplacer


def build_engine(matrix, b, strategy=None, n_nodes=4):
    cluster = VirtualCluster(n_nodes, cost_model=zero_cost_model(), seed=0)
    partition = BlockRowPartition.uniform(matrix.shape[0], n_nodes)
    dmatrix = DistributedMatrix(cluster, partition, matrix)
    return PCGEngine(
        matrix=dmatrix,
        b=b,
        preconditioner=make_preconditioner("block_jacobi"),
        strategy=strategy or NoResilience(),
        options=SolveOptions(rtol=1e-10),
    )


@pytest.fixture(scope="module")
def problem():
    matrix, b, _ = repro.matrices.load("emilia_923_like", scale="tiny")
    return matrix, b


class TestResidualReplacer:
    def test_still_converges_to_solution(self, problem):
        matrix, b = problem
        engine = build_engine(matrix, b)
        replacer = ResidualReplacer(engine, interval=10)
        result = replacer.attach().solve()
        assert result.converged
        true_res = np.linalg.norm(b - matrix @ result.x) / np.linalg.norm(b)
        assert true_res < 1e-8
        assert replacer.replacements > 0

    def test_replacement_counts(self, problem):
        matrix, b = problem
        engine = build_engine(matrix, b)
        replacer = ResidualReplacer(engine, interval=25)
        result = replacer.attach().solve()
        assert replacer.replacements == (result.iterations - 1) // 25

    def test_reduces_drift_magnitude(self, problem):
        matrix, b = problem
        plain = build_engine(matrix, b).solve()
        engine = build_engine(matrix, b)
        ResidualReplacer(engine, interval=10).attach()
        replaced = engine.solve()
        drift_plain = abs(drift_from_result(matrix, b, plain))
        drift_replaced = abs(drift_from_result(matrix, b, replaced))
        # replacement keeps |r| honest: drift must not grow, and is
        # usually smaller
        assert drift_replaced <= drift_plain * 1.5 + 1e-12

    def test_composes_with_resilience(self, problem):
        matrix, b = problem
        from repro.core import ESRPStrategy

        plain = build_engine(matrix, b).solve()
        engine = build_engine(matrix, b, strategy=ESRPStrategy(T=10, phi=1))
        ResidualReplacer(engine, interval=15).attach()
        engine.failures = FailureSchedule([repro.FailureEvent(22, (1,))])
        result = engine.solve()
        assert result.converged
        np.testing.assert_allclose(result.x, plain.x, atol=1e-7)

    def test_invalid_interval(self, problem):
        matrix, b = problem
        with pytest.raises(ConfigurationError):
            ResidualReplacer(build_engine(matrix, b), interval=0)


class TestSwitchAwareDestinations:
    def test_avoids_same_leaf(self):
        from repro.cluster.topology import FatTree
        from repro.distribution import switch_aware_destinations

        topology = FatTree(16, radix=4)
        for src in range(16):
            dests = switch_aware_destinations(src, 3, 16, topology)
            assert len(dests) == 3
            assert all(topology.leaf_of(d) != topology.leaf_of(src) for d in dests)

    def test_falls_back_when_cluster_is_one_leaf(self):
        from repro.cluster.topology import FatTree
        from repro.distribution import switch_aware_destinations

        topology = FatTree(4, radix=8)  # everything under one switch
        dests = switch_aware_destinations(0, 2, 4, topology)
        assert len(dests) == 2  # fallback to same-leaf candidates

    def test_switch_fault_recoverable_only_with_awareness(self, problem):
        """A whole-switch fault kills Eq.(1) copies but not switch-aware ones."""
        from repro.cluster.topology import FatTree
        from repro.events import EventKind

        matrix, b = problem
        topology = FatTree(8, radix=2)
        ranks = topology.ranks_under_leaf(1)  # (2, 3): a whole switch

        def run(destinations):
            cluster = VirtualCluster(8, topology=topology, cost_model=zero_cost_model())
            partition = BlockRowPartition.uniform(matrix.shape[0], 8)
            dmatrix = DistributedMatrix(cluster, partition, matrix)
            from repro.core import ESRStrategy

            engine = PCGEngine(
                matrix=dmatrix,
                b=b,
                preconditioner=make_preconditioner("block_jacobi"),
                strategy=ESRStrategy(phi=2, destinations=destinations),
                options=SolveOptions(rtol=1e-8),
                failures=FailureSchedule([repro.FailureEvent(30, ranks)]),
            )
            return engine.solve()

        aware = run("switch_aware")
        naive = run("eq1")
        assert aware.converged and naive.converged
        # with Eq.(1), rank 2's copies live at ranks 1 and 3 — rank 3
        # died with it, and the natural halo piece at rank 1 is partial,
        # so recovery may fall back to a full restart; switch-aware
        # placement never needs to.
        assert aware.events.first(EventKind.RESTART) is None

    def test_unknown_policy_rejected(self, problem):
        matrix, b = problem
        with pytest.raises(ConfigurationError):
            repro.solve(matrix, b, n_nodes=4, strategy="esr", destinations="astral")
