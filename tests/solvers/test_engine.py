"""Unit tests for the PCG engine and the reference solver."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.cluster import FailureEvent, FailureSchedule, VirtualCluster, zero_cost_model
from repro.distribution import BlockRowPartition, DistributedMatrix
from repro.events import EventKind
from repro.exceptions import ConfigurationError, ConvergenceError, NodeFailureError
from repro.matrices import poisson_2d, random_banded_spd
from repro.preconditioners import make_preconditioner
from repro.solvers import (
    NoResilience,
    PCGEngine,
    SolveOptions,
    solve_reference,
)
from repro.solvers.engine import WarmState

from ..conftest import make_distributed


def build_engine(matrix, n_nodes=4, precond="block_jacobi", options=None, failures=None):
    cluster, partition, dmatrix = make_distributed(matrix, n_nodes)
    rng = np.random.default_rng(42)
    b = matrix @ rng.standard_normal(matrix.shape[0])
    engine = PCGEngine(
        matrix=dmatrix,
        b=b,
        preconditioner=make_preconditioner(precond),
        strategy=NoResilience(),
        options=options,
        failures=failures,
    )
    return engine, b


class TestReferenceSolve:
    def test_matches_direct_solve(self):
        matrix = poisson_2d(8)
        engine, b = build_engine(matrix)
        result = engine.solve()
        assert result.converged
        direct = np.linalg.solve(matrix.toarray(), b)
        assert np.allclose(result.x, direct, atol=1e-5)

    def test_relative_residual_below_rtol(self):
        matrix = random_banded_spd(48, bandwidth=5, seed=3)
        engine, b = build_engine(matrix, options=SolveOptions(rtol=1e-10))
        result = engine.solve()
        assert result.relative_residual < 1e-10
        true_res = np.linalg.norm(b - matrix @ result.x) / np.linalg.norm(b)
        assert true_res < 1e-8

    def test_residual_history_monotone_overall(self):
        matrix = poisson_2d(8)
        engine, _ = build_engine(matrix)
        result = engine.solve()
        assert len(result.residual_history) == result.iterations
        assert result.residual_history[-1] < result.residual_history[0]

    def test_record_residuals_off(self):
        matrix = poisson_2d(6)
        engine, _ = build_engine(matrix, options=SolveOptions(record_residuals=False))
        assert engine.solve().residual_history == []

    def test_events_bracket_solve(self):
        matrix = poisson_2d(6)
        engine, _ = build_engine(matrix)
        result = engine.solve()
        assert result.events.first(EventKind.SOLVE_START) is not None
        end = result.events.last(EventKind.SOLVE_END)
        assert end is not None and end.detail["converged"]

    def test_x0_initial_guess(self):
        matrix = poisson_2d(8)
        engine, b = build_engine(matrix)
        exact = np.linalg.solve(matrix.toarray(), b)
        result = engine.solve(x0=exact)
        assert result.iterations <= 1

    def test_maxiter_raises_when_required(self):
        matrix = poisson_2d(10)
        engine, _ = build_engine(matrix, options=SolveOptions(maxiter=2))
        with pytest.raises(ConvergenceError):
            engine.solve()

    def test_maxiter_soft_when_not_required(self):
        matrix = poisson_2d(10)
        engine, _ = build_engine(
            matrix, options=SolveOptions(maxiter=2, require_convergence=False)
        )
        result = engine.solve()
        assert not result.converged
        assert result.executed_iterations == 2

    def test_non_spd_detected(self):
        matrix = sp.csr_matrix(np.diag([1.0] * 7 + [-1.0]))
        cluster, partition, dmatrix = make_distributed(matrix, 4)
        engine = PCGEngine(
            matrix=dmatrix,
            b=np.ones(8),
            preconditioner=make_preconditioner("identity"),
            strategy=NoResilience(),
        )
        with pytest.raises(ConvergenceError):
            engine.solve()

    def test_failure_is_fatal_without_resilience(self):
        matrix = poisson_2d(8)
        failures = FailureSchedule([FailureEvent(3, (1,))])
        engine, _ = build_engine(matrix, failures=failures)
        with pytest.raises(NodeFailureError):
            engine.solve()

    def test_solve_reference_helper(self):
        matrix = poisson_2d(6)
        cluster, partition, dmatrix = make_distributed(matrix, 3)
        b = np.ones(36)
        result = solve_reference(dmatrix, b, make_preconditioner("jacobi"))
        assert result.converged
        assert result.strategy == "reference"

    def test_modeled_time_positive_with_costs(self):
        from repro.cluster import CostModel

        matrix = poisson_2d(6)
        model = CostModel(alpha=1e-6, beta=1e-9, gamma=1e-9)
        cluster = VirtualCluster(3, cost_model=model, seed=0)
        partition = BlockRowPartition.uniform(36, 3)
        dmatrix = DistributedMatrix(cluster, partition, matrix)
        result = PCGEngine(
            matrix=dmatrix,
            b=np.ones(36),
            preconditioner=make_preconditioner("jacobi"),
            strategy=NoResilience(),
        ).solve()
        assert result.modeled_time > 0
        assert result.stats["total_flops"] > 0

    def test_wasted_iterations_zero_without_failures(self):
        matrix = poisson_2d(6)
        engine, _ = build_engine(matrix)
        result = engine.solve()
        assert result.wasted_iterations == 0
        assert result.recovery_time == 0.0


class TestWarmState:
    def test_warm_state_continues_trajectory(self):
        matrix = poisson_2d(8)
        engine, b = build_engine(matrix)
        # run a few iterations then capture the state
        capped, _ = build_engine(
            matrix, options=SolveOptions(maxiter=5, require_convergence=False)
        )
        partial = capped.solve()
        state = capped.final_state
        warm = WarmState(
            x=state.x.to_global(),
            r=state.r.to_global(),
            z=state.z.to_global(),
            p=state.p.to_global(),
            beta=state.beta,
            start_iteration=partial.iterations,
        )
        fresh, _ = build_engine(matrix)
        warm_result = fresh.solve(warm_state=warm)
        cold_result = engine.solve()
        assert warm_result.converged
        assert warm_result.iterations == cold_result.iterations
        assert np.allclose(warm_result.x, cold_result.x, atol=1e-8)

    def test_warm_and_x0_exclusive(self):
        matrix = poisson_2d(6)
        engine, _ = build_engine(matrix)
        warm = WarmState(
            x=np.zeros(36), r=np.zeros(36), z=np.zeros(36), p=np.zeros(36)
        )
        with pytest.raises(ConfigurationError):
            engine.solve(x0=np.zeros(36), warm_state=warm)


class TestValidation:
    def test_b_partition_mismatch(self):
        matrix = poisson_2d(6)
        cluster, partition, dmatrix = make_distributed(matrix, 3)
        from repro.distribution import DistributedVector

        other = BlockRowPartition.from_sizes([30, 3, 3])
        bad_b = DistributedVector(cluster, other)
        with pytest.raises(ConfigurationError):
            PCGEngine(
                matrix=dmatrix,
                b=bad_b,
                preconditioner=make_preconditioner("jacobi"),
                strategy=NoResilience(),
            )

    def test_invalid_maxiter(self):
        with pytest.raises(ConfigurationError):
            SolveOptions(maxiter=0).budget(10)

    def test_default_budget(self):
        assert SolveOptions().budget(100) == 1000

    def test_unbound_strategy_rejected(self):
        strategy = NoResilience()
        with pytest.raises(ConfigurationError):
            _ = strategy._engine
