"""Unit tests for the virtual cluster (clocks, accounting, failures)."""

import numpy as np
import pytest

from repro.cluster import CostModel, VirtualCluster, zero_cost_model
from repro.distribution import BlockRowPartition, DistributedVector
from repro.exceptions import ClusterError, ConfigurationError, DeadNodeError


def costed_cluster(n=4, alpha=1e-6, beta=1e-9, gamma=1e-9):
    model = CostModel(alpha=alpha, beta=beta, gamma=gamma, mu=1e-11, hop_penalty=0.0)
    return VirtualCluster(n, cost_model=model, seed=0)


class TestClocks:
    def test_initial_time_zero(self):
        assert costed_cluster().elapsed() == 0.0

    def test_compute_advances_one_clock(self):
        cluster = costed_cluster()
        cluster.compute(1, 1e6)
        assert cluster.clocks[1] == pytest.approx(1e-3)
        assert cluster.clocks[0] == 0.0

    def test_send_makes_receiver_wait_for_sender(self):
        cluster = costed_cluster()
        cluster.compute(0, 1e6)  # sender busy until 1e-3
        cluster.send(0, 1, 1000, channel="test")
        assert cluster.clocks[1] >= cluster.clocks[0]
        assert cluster.clocks[0] > 1e-3

    def test_send_does_not_rewind_receiver(self):
        cluster = costed_cluster()
        cluster.compute(1, 1e9)  # receiver far ahead
        before = cluster.clocks[1]
        cluster.send(0, 1, 8, channel="test")
        assert cluster.clocks[1] == before

    def test_allreduce_synchronises(self):
        cluster = costed_cluster()
        cluster.compute(2, 1e6)
        cluster.allreduce(8)
        assert np.all(cluster.clocks == cluster.clocks[0])
        assert cluster.clocks[0] > 1e-3

    def test_barrier_synchronises_without_cost(self):
        cluster = costed_cluster()
        cluster.compute(3, 1e6)
        cluster.barrier()
        assert np.all(cluster.clocks == cluster.clocks[3])

    def test_advance_raw(self):
        cluster = costed_cluster()
        cluster.advance(0, 0.5)
        assert cluster.clocks[0] == 0.5

    def test_advance_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            costed_cluster().advance(0, -1.0)

    def test_memcpy_charges_mu(self):
        cluster = costed_cluster()
        cluster.memcpy(0, 10**6)
        assert cluster.clocks[0] == pytest.approx(1e-5)


class TestAccounting:
    def test_send_records_channel(self):
        cluster = costed_cluster()
        cluster.send(0, 1, 100, channel="halo")
        assert cluster.stats.total_bytes("halo") == 100
        assert cluster.stats.total_messages("halo") == 1

    def test_piggyback_adds_bytes_not_messages(self):
        cluster = costed_cluster()
        cluster.send(0, 1, 100, channel="halo")
        cluster.piggyback(0, 1, 50, channel="extra")
        assert cluster.stats.total_bytes("extra") == 50
        assert cluster.stats.total_messages("extra") == 0

    def test_compute_records_flops(self):
        cluster = costed_cluster()
        cluster.compute(0, 123.0)
        assert cluster.stats.total_flops() == pytest.approx(123.0)

    def test_reset_stats_keeps_clocks(self):
        cluster = costed_cluster()
        cluster.compute(0, 1e6)
        t = cluster.elapsed()
        cluster.reset_stats()
        assert cluster.stats.total_flops() == 0.0
        assert cluster.elapsed() == t


class TestFailureSemantics:
    def test_fail_marks_dead(self):
        cluster = costed_cluster()
        cluster.fail([1, 2])
        assert cluster.dead_ranks() == (1, 2)
        assert cluster.alive_ranks() == (0, 3)

    def test_dead_node_cannot_compute(self):
        cluster = costed_cluster()
        cluster.fail([1])
        with pytest.raises(DeadNodeError):
            cluster.compute(1, 1.0)

    def test_dead_node_cannot_send_or_receive(self):
        cluster = costed_cluster()
        cluster.fail([1])
        with pytest.raises(DeadNodeError):
            cluster.send(0, 1, 8, channel="x")
        with pytest.raises(DeadNodeError):
            cluster.send(1, 0, 8, channel="x")

    def test_fail_wipes_registered_vector_blocks(self):
        cluster = VirtualCluster(4, cost_model=zero_cost_model(), seed=0)
        partition = BlockRowPartition.uniform(8, 4)
        vec = DistributedVector.from_global(cluster, partition, np.arange(8.0))
        cluster.fail([2])
        assert np.all(vec.blocks[2] == 0.0)
        assert np.all(vec.blocks[0] == [0.0, 1.0])

    def test_unregistered_vector_survives(self):
        cluster = VirtualCluster(4, cost_model=zero_cost_model(), seed=0)
        partition = BlockRowPartition.uniform(8, 4)
        vec = DistributedVector.from_global(
            cluster, partition, np.arange(8.0), register=False
        )
        cluster.fail([2])
        assert np.all(vec.blocks[2] == [4.0, 5.0])

    def test_fail_wipes_node_stores(self):
        cluster = costed_cluster()
        node = cluster.node(1)
        node.store["x"] = np.ones(3)
        node.scalars["beta"] = 2.0
        node.stash_redundant(5, 0, np.array([0]), np.array([1.0]))
        cluster.fail([1])
        assert node.store == {}
        assert node.scalars == {}
        assert node.redundancy == {}

    def test_fail_everything_rejected(self):
        with pytest.raises(ClusterError):
            costed_cluster().fail([0, 1, 2, 3])

    def test_fail_requires_ranks(self):
        with pytest.raises(ConfigurationError):
            costed_cluster().fail([])

    def test_double_fail_rejected(self):
        cluster = costed_cluster()
        cluster.fail([1])
        with pytest.raises(DeadNodeError):
            cluster.fail([1])

    def test_replace_revives_with_current_clock(self):
        cluster = costed_cluster()
        cluster.compute(0, 1e9)
        cluster.fail([1])
        cluster.replace([1])
        node = cluster.node(1)
        assert node.alive
        assert node.incarnation == 1
        assert cluster.clocks[1] == pytest.approx(cluster.elapsed())

    def test_replace_alive_rejected(self):
        cluster = costed_cluster()
        with pytest.raises(ClusterError):
            cluster.replace([0])

    def test_self_send_rejected(self):
        with pytest.raises(ClusterError):
            costed_cluster().send(1, 1, 8, channel="x")


class TestConstruction:
    def test_topology_size_mismatch_rejected(self):
        from repro.cluster.topology import Ring

        with pytest.raises(ConfigurationError):
            VirtualCluster(4, topology=Ring(8))

    def test_zero_nodes_rejected(self):
        with pytest.raises(ConfigurationError):
            VirtualCluster(0)

    def test_default_topology_is_fat_tree(self):
        from repro.cluster.topology import FatTree

        assert isinstance(VirtualCluster(4).topology, FatTree)

    def test_noise_reproducible_across_same_seed(self):
        model = CostModel(alpha=1e-6, beta=1e-9, gamma=1e-9, noise=0.1)
        times = []
        for _ in range(2):
            cluster = VirtualCluster(2, cost_model=model, seed=99)
            cluster.compute(0, 1e6)
            cluster.send(0, 1, 1000, channel="x")
            times.append(cluster.elapsed())
        assert times[0] == times[1]
