"""Unit tests for failure events, schedules and generators."""

import pytest

from repro.cluster.failures import (
    FailureEvent,
    FailureSchedule,
    block_failure_ranks,
    contiguous_ranks,
    poisson_schedule,
    switch_fault_ranks,
)
from repro.cluster.topology import FatTree
from repro.exceptions import ConfigurationError


class TestFailureEvent:
    def test_ranks_sorted_and_deduped(self):
        event = FailureEvent(5, (3, 1, 3))
        assert event.ranks == (1, 3)
        assert event.width == 2

    def test_negative_iteration_rejected(self):
        with pytest.raises(ConfigurationError):
            FailureEvent(-1, (0,))

    def test_empty_ranks_rejected(self):
        with pytest.raises(ConfigurationError):
            FailureEvent(0, ())


class TestFailureSchedule:
    def test_events_sorted_by_iteration(self):
        schedule = FailureSchedule([FailureEvent(9, (0,)), FailureEvent(2, (1,))])
        assert [e.iteration for e in schedule] == [2, 9]

    def test_pop_due_consumes_once(self):
        schedule = FailureSchedule([FailureEvent(5, (0,))])
        assert schedule.pop_due(4) is None
        event = schedule.pop_due(5)
        assert event is not None and event.iteration == 5
        assert schedule.pop_due(5) is None  # rollback re-execution safe

    def test_pending_and_reset(self):
        schedule = FailureSchedule([FailureEvent(1, (0,)), FailureEvent(2, (1,))])
        assert schedule.pending() == 2
        schedule.pop_due(1)
        assert schedule.pending() == 1
        schedule.reset()
        assert schedule.pending() == 2

    def test_len(self):
        assert len(FailureSchedule()) == 0


class TestContiguousRanks:
    def test_simple_block(self):
        assert contiguous_ranks(2, 3, 8) == (2, 3, 4)

    def test_wraparound(self):
        assert contiguous_ranks(6, 3, 8) == (0, 6, 7)

    def test_width_must_leave_survivor(self):
        with pytest.raises(ConfigurationError):
            contiguous_ranks(0, 8, 8)

    def test_width_positive(self):
        with pytest.raises(ConfigurationError):
            contiguous_ranks(0, 0, 8)


class TestBlockLocations:
    def test_start(self):
        assert block_failure_ranks("start", 3, 16) == (0, 1, 2)

    def test_center(self):
        assert block_failure_ranks("center", 3, 16) == (8, 9, 10)

    def test_unknown_location(self):
        with pytest.raises(ConfigurationError):
            block_failure_ranks("edge", 1, 16)


class TestSwitchFault:
    def test_whole_leaf(self):
        topo = FatTree(16, radix=4)
        assert switch_fault_ranks(topo, 1) == (4, 5, 6, 7)

    def test_partial_leaf(self):
        topo = FatTree(16, radix=4)
        assert switch_fault_ranks(topo, 1, width=2) == (4, 5)

    def test_width_bounds(self):
        topo = FatTree(16, radix=4)
        with pytest.raises(ConfigurationError):
            switch_fault_ranks(topo, 0, width=5)

    def test_cannot_kill_whole_cluster(self):
        topo = FatTree(4, radix=4)
        with pytest.raises(ConfigurationError):
            switch_fault_ranks(topo, 0)


class TestPoissonSchedule:
    def test_reproducible(self):
        a = poisson_schedule(50, 1000, 2, 16, seed=1)
        b = poisson_schedule(50, 1000, 2, 16, seed=1)
        assert [e.iteration for e in a] == [e.iteration for e in b]

    def test_within_horizon(self):
        schedule = poisson_schedule(20, 500, 1, 8, seed=3)
        assert all(0 <= e.iteration < 500 for e in schedule)

    def test_mean_rate_roughly_matches(self):
        schedule = poisson_schedule(25, 10000, 1, 8, seed=5)
        # expectation 400 events; allow generous slack
        assert 250 < len(schedule) < 550

    def test_width_respected(self):
        schedule = poisson_schedule(10, 300, 3, 8, seed=0)
        assert all(e.width == 3 for e in schedule)

    def test_invalid_mtbf(self):
        with pytest.raises(ConfigurationError):
            poisson_schedule(0, 100, 1, 8)

    def test_invalid_horizon(self):
        with pytest.raises(ConfigurationError):
            poisson_schedule(10, 0, 1, 8)

    def test_min_gap_enforced(self):
        schedule = poisson_schedule(1, 200, 1, 8, seed=2, min_gap=5)
        iterations = [e.iteration for e in schedule]
        assert all(b - a >= 5 for a, b in zip(iterations, iterations[1:]))
