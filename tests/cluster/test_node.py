"""Unit tests for per-node state (redundancy stashes, failure wipes)."""

import numpy as np

from repro.cluster.node import NodeState


class TestRedundancyStore:
    def test_stash_and_retrieve(self):
        node = NodeState(0)
        node.stash_redundant(3, 1, np.array([10, 11]), np.array([1.0, 2.0]))
        idx, vals = node.redundant_for(3, 1)
        assert list(idx) == [10, 11]
        assert list(vals) == [1.0, 2.0]

    def test_stash_concatenates_same_owner(self):
        node = NodeState(0)
        node.stash_redundant(3, 1, np.array([10]), np.array([1.0]))
        node.stash_redundant(3, 1, np.array([12]), np.array([3.0]))
        idx, vals = node.redundant_for(3, 1)
        assert sorted(idx) == [10, 12]
        assert len(vals) == 2

    def test_different_iterations_separate(self):
        node = NodeState(0)
        node.stash_redundant(3, 1, np.array([1]), np.array([1.0]))
        node.stash_redundant(4, 1, np.array([2]), np.array([2.0]))
        assert node.redundant_for(3, 1) is not None
        assert node.redundant_for(4, 1) is not None
        assert list(node.redundant_for(4, 1)[0]) == [2]

    def test_missing_returns_none(self):
        node = NodeState(0)
        assert node.redundant_for(1, 0) is None
        node.stash_redundant(1, 2, np.array([0]), np.array([0.5]))
        assert node.redundant_for(1, 3) is None

    def test_drop_redundant(self):
        node = NodeState(0)
        node.stash_redundant(3, 1, np.array([1]), np.array([1.0]))
        node.drop_redundant(3)
        assert node.redundant_for(3, 1) is None

    def test_drop_missing_is_noop(self):
        NodeState(0).drop_redundant(99)

    def test_redundancy_bytes_counts_everything(self):
        node = NodeState(0)
        assert node.redundancy_bytes() == 0
        node.stash_redundant(1, 2, np.arange(4, dtype=np.int64), np.zeros(4))
        node.store["x"] = np.zeros(8)
        node.buddy_checkpoints[3] = {"x": np.zeros(2), "iteration": 1}
        expected = 4 * 8 + 4 * 8 + 8 * 8 + 2 * 8
        assert node.redundancy_bytes() == expected


class TestFailure:
    def test_wipe_clears_everything(self):
        node = NodeState(2)
        node.store["a"] = np.ones(2)
        node.scalars["b"] = 1.0
        node.stash_redundant(0, 1, np.array([0]), np.array([1.0]))
        node.buddy_checkpoints[1] = {"x": np.ones(2)}
        node.wipe()
        assert not node.alive
        assert node.store == {}
        assert node.scalars == {}
        assert node.redundancy == {}
        assert node.buddy_checkpoints == {}

    def test_revive_increments_incarnation(self):
        node = NodeState(2)
        node.wipe()
        node.revive()
        assert node.alive
        assert node.incarnation == 1
        node.wipe()
        node.revive()
        assert node.incarnation == 2
