"""Unit tests for per-node/per-channel statistics."""

from repro.cluster.statistics import ClusterStats


class TestChannels:
    def test_message_updates_both_endpoints(self):
        stats = ClusterStats(4)
        stats.record_message(0, 2, 100, "halo")
        assert stats.bytes_sent[0] == 100
        assert stats.bytes_received[2] == 100
        assert stats.messages_sent[0] == 1
        assert stats.channels["halo"].bytes == 100

    def test_payload_counts_bytes_only(self):
        stats = ClusterStats(4)
        stats.record_payload(0, 1, 64, "extra")
        assert stats.channels["extra"].messages == 0
        assert stats.channels["extra"].bytes == 64
        assert stats.messages_sent[0] == 0

    def test_collective_touches_all_nodes(self):
        stats = ClusterStats(3)
        stats.record_collective(8)
        assert list(stats.bytes_sent) == [8, 8, 8]
        assert stats.channels["reduction"].bytes == 24

    def test_total_bytes_by_channel(self):
        stats = ClusterStats(2)
        stats.record_message(0, 1, 10, "a")
        stats.record_message(1, 0, 20, "b")
        assert stats.total_bytes("a") == 10
        assert stats.total_bytes("b") == 20
        assert stats.total_bytes() == 30

    def test_total_messages(self):
        stats = ClusterStats(2)
        stats.record_message(0, 1, 10, "a")
        stats.record_message(0, 1, 10, "a")
        assert stats.total_messages("a") == 2
        assert stats.total_messages() == 2


class TestComputeAndMemory:
    def test_flops_accumulate_per_node(self):
        stats = ClusterStats(2)
        stats.record_compute(0, 5.0)
        stats.record_compute(0, 7.0)
        assert stats.flops[0] == 12.0
        assert stats.total_flops() == 12.0

    def test_local_copy_bytes(self):
        stats = ClusterStats(2)
        stats.record_local_copy(1, 256)
        assert stats.local_copy_bytes[1] == 256

    def test_redundancy_footprint_keeps_peak(self):
        stats = ClusterStats(2)
        stats.record_redundancy_footprint(0, 100)
        stats.record_redundancy_footprint(0, 50)
        stats.record_redundancy_footprint(0, 200)
        assert stats.redundancy_peak_bytes[0] == 200


class TestSummary:
    def test_summary_keys(self):
        stats = ClusterStats(2)
        stats.record_message(0, 1, 10, "halo")
        stats.record_compute(0, 3.0)
        summary = stats.summary()
        assert summary["total_flops"] == 3.0
        assert summary["total_bytes"] == 10.0
        assert summary["bytes[halo]"] == 10.0
        assert summary["messages[halo]"] == 1.0
        assert "peak_redundancy_bytes" in summary
