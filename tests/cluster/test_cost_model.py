"""Unit tests for the α/β/γ machine cost model."""

import math

import numpy as np
import pytest

from repro.cluster.cost_model import BYTES_PER_FLOAT, CostModel, zero_cost_model
from repro.exceptions import ConfigurationError


def test_bytes_per_float_is_eight():
    assert BYTES_PER_FLOAT == 8


class TestMessageTime:
    def test_single_hop_is_alpha_plus_bytes_beta(self):
        model = CostModel(alpha=1e-6, beta=1e-9, hop_penalty=0.5)
        assert model.message_time(1000, hops=1) == pytest.approx(1e-6 + 1000 * 1e-9)

    def test_extra_hops_increase_latency_only(self):
        model = CostModel(alpha=1e-6, beta=1e-9, hop_penalty=0.5)
        t1 = model.message_time(1000, hops=1)
        t3 = model.message_time(1000, hops=3)
        assert t3 - t1 == pytest.approx(2 * 0.5 * 1e-6)

    def test_zero_bytes_costs_latency(self):
        model = CostModel(alpha=2e-6, beta=1e-9)
        assert model.message_time(0) == pytest.approx(2e-6)

    def test_hops_below_one_clamped(self):
        model = CostModel(alpha=1e-6, beta=0.0)
        assert model.message_time(10, hops=0) == model.message_time(10, hops=1)

    def test_negative_bytes_rejected(self):
        with pytest.raises(ConfigurationError):
            CostModel().message_time(-1)


class TestPayloadTime:
    def test_payload_has_no_latency(self):
        model = CostModel(alpha=1e-3, beta=1e-9)
        assert model.payload_time(1000) == pytest.approx(1000 * 1e-9)

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            CostModel().payload_time(-5)


class TestComputeAndMemcpy:
    def test_compute_time_linear_in_flops(self):
        model = CostModel(gamma=2e-9)
        assert model.compute_time(1e6) == pytest.approx(2e-3)

    def test_memcpy_time_linear_in_bytes(self):
        model = CostModel(mu=1e-10)
        assert model.memcpy_time(10**6) == pytest.approx(1e-4)

    def test_negative_flops_rejected(self):
        with pytest.raises(ConfigurationError):
            CostModel().compute_time(-1.0)

    def test_negative_memcpy_rejected(self):
        with pytest.raises(ConfigurationError):
            CostModel().memcpy_time(-1)


class TestCollectives:
    def test_allreduce_single_node_free(self):
        assert CostModel().allreduce_time(8, 1) == 0.0

    def test_allreduce_log_rounds(self):
        model = CostModel(alpha=1e-6, beta=1e-9)
        expected = 2 * math.ceil(math.log2(8)) * (1e-6 + 8e-9)
        assert model.allreduce_time(8, 8) == pytest.approx(expected)

    def test_allreduce_non_power_of_two(self):
        model = CostModel(alpha=1e-6, beta=0.0)
        # ceil(log2(5)) = 3 rounds each direction
        assert model.allreduce_time(0, 5) == pytest.approx(6e-6)

    def test_broadcast_half_of_allreduce(self):
        model = CostModel(alpha=1e-6, beta=1e-9)
        assert model.broadcast_time(64, 16) == pytest.approx(
            model.allreduce_time(64, 16) / 2
        )

    def test_invalid_node_count(self):
        with pytest.raises(ConfigurationError):
            CostModel().allreduce_time(8, 0)


class TestNoise:
    def test_no_noise_returns_input(self):
        model = CostModel(noise=0.0)
        rng = np.random.default_rng(0)
        assert model.perturb(1.5, rng) == 1.5

    def test_noise_is_multiplicative_and_positive(self):
        model = CostModel(noise=0.3)
        rng = np.random.default_rng(0)
        values = [model.perturb(2.0, rng) for _ in range(100)]
        assert all(v > 0 for v in values)
        assert any(abs(v - 2.0) > 1e-6 for v in values)

    def test_noise_seeded_reproducible(self):
        model = CostModel(noise=0.1)
        a = [model.perturb(1.0, np.random.default_rng(42)) for _ in range(1)]
        b = [model.perturb(1.0, np.random.default_rng(42)) for _ in range(1)]
        assert a == b

    def test_zero_cost_not_perturbed(self):
        model = CostModel(noise=0.5)
        assert model.perturb(0.0, np.random.default_rng(0)) == 0.0

    def test_with_noise_copies(self):
        model = CostModel(noise=0.0)
        noisy = model.with_noise(0.2)
        assert noisy.noise == 0.2
        assert model.noise == 0.0
        assert noisy.alpha == model.alpha


class TestValidation:
    @pytest.mark.parametrize("field", ["alpha", "beta", "gamma", "mu"])
    def test_negative_constants_rejected(self, field):
        with pytest.raises(ConfigurationError):
            CostModel(**{field: -1e-9})

    def test_negative_hop_penalty_rejected(self):
        with pytest.raises(ConfigurationError):
            CostModel(hop_penalty=-0.1)

    def test_negative_noise_rejected(self):
        with pytest.raises(ConfigurationError):
            CostModel(noise=-0.1)


def test_zero_cost_model_everything_free():
    model = zero_cost_model()
    assert model.message_time(10**9, hops=5) == 0.0
    assert model.compute_time(1e12) == 0.0
    assert model.allreduce_time(1024, 64) == 0.0
    assert model.memcpy_time(10**9) == 0.0
