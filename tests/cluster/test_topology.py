"""Unit tests for network topologies."""

import pytest

from repro.cluster.topology import FatTree, FullyConnected, Ring, make_topology
from repro.exceptions import ConfigurationError


class TestFullyConnected:
    def test_self_distance_zero(self):
        topo = FullyConnected(5)
        assert topo.hops(2, 2) == 0

    def test_all_pairs_one_hop(self):
        topo = FullyConnected(5)
        assert all(topo.hops(i, j) == 1 for i in range(5) for j in range(5) if i != j)

    def test_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError):
            FullyConnected(4).hops(0, 4)


class TestRing:
    def test_neighbours(self):
        topo = Ring(8)
        assert topo.hops(0, 1) == 1
        assert topo.hops(0, 7) == 1  # wraparound

    def test_antipode(self):
        assert Ring(8).hops(0, 4) == 4

    def test_symmetry(self):
        topo = Ring(7)
        for i in range(7):
            for j in range(7):
                assert topo.hops(i, j) == topo.hops(j, i)


class TestFatTree:
    def test_same_node(self):
        assert FatTree(16, radix=4).hops(3, 3) == 0

    def test_same_leaf_two_hops(self):
        topo = FatTree(16, radix=4)
        assert topo.hops(0, 3) == 2

    def test_cross_leaf_four_hops(self):
        topo = FatTree(16, radix=4)
        assert topo.hops(0, 4) == 4

    def test_leaf_of_contiguous_blocks(self):
        topo = FatTree(16, radix=4)
        assert topo.leaf_of(0) == 0
        assert topo.leaf_of(5) == 1
        assert topo.ranks_under_leaf(1) == (4, 5, 6, 7)

    def test_last_leaf_may_be_partial(self):
        topo = FatTree(10, radix=4)
        assert topo.n_leaves == 3
        assert topo.ranks_under_leaf(2) == (8, 9)

    def test_hops_match_graph_shortest_paths(self):
        topo = FatTree(12, radix=4)
        for src in range(12):
            for dst in range(12):
                if src == dst:
                    continue
                assert topo.hops(src, dst) == topo._shortest_path_hops(src, dst)

    def test_invalid_leaf_rejected(self):
        with pytest.raises(ConfigurationError):
            FatTree(8, radix=4).ranks_under_leaf(2)

    def test_invalid_radix_rejected(self):
        with pytest.raises(ConfigurationError):
            FatTree(8, radix=0)

    def test_graph_node_count(self):
        topo = FatTree(8, radix=4)
        graph = topo.graph()
        # 8 nodes + 2 leaves + 1 spine
        assert graph.number_of_nodes() == 11


class TestFactory:
    def test_names(self):
        assert isinstance(make_topology("fat_tree", 8), FatTree)
        assert isinstance(make_topology("fat-tree", 8), FatTree)
        assert isinstance(make_topology("ring", 8), Ring)
        assert isinstance(make_topology("full", 8), FullyConnected)

    def test_kwargs_forwarded(self):
        topo = make_topology("fat_tree", 16, radix=2)
        assert topo.radix == 2

    def test_unknown_rejected(self):
        with pytest.raises(ConfigurationError):
            make_topology("torus", 8)

    def test_zero_nodes_rejected(self):
        with pytest.raises(ConfigurationError):
            Ring(0)
