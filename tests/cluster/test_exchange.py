"""Tests for the concurrent communication-phase semantics.

The key property: a phase of simultaneous messages must cost
``max over nodes`` of their injection time, not the serialized chain
that per-message ``send()`` calls would accumulate (receivers resuming
their own sends only after a receive).
"""

import numpy as np
import pytest

from repro.cluster import CostModel, VirtualCluster
from repro.exceptions import ClusterError, DeadNodeError


def cluster_with(alpha=1e-6, beta=0.0, n=8):
    model = CostModel(alpha=alpha, beta=beta, gamma=0.0, mu=0.0, hop_penalty=0.0)
    return VirtualCluster(n, cost_model=model, seed=0)


class TestConcurrentPhase:
    def test_ring_phase_costs_one_message_not_n(self):
        cluster = cluster_with(alpha=1e-6, n=8)
        messages = [(s, (s + 1) % 8, 0, "x", False) for s in range(8)]
        cluster.exchange(messages)
        # each node sends one message concurrently: makespan = alpha
        assert cluster.elapsed() == pytest.approx(1e-6)

    def test_chained_sends_would_serialize(self):
        cluster = cluster_with(alpha=1e-6, n=8)
        for s in range(8):
            cluster.send(s, (s + 1) % 8, 0, channel="x")
        # the old per-message path chains: strictly more than one alpha
        assert cluster.elapsed() > 2e-6

    def test_multiple_sends_per_node_accumulate_on_sender(self):
        cluster = cluster_with(alpha=1e-6, n=4)
        messages = [(0, 1, 0, "x", False), (0, 2, 0, "x", False), (0, 3, 0, "x", False)]
        cluster.exchange(messages)
        assert cluster.clocks[0] == pytest.approx(3e-6)
        # receivers wait for the sender's injections to finish
        assert cluster.clocks[1] == pytest.approx(3e-6)

    def test_receiver_waits_for_latest_arrival(self):
        cluster = cluster_with(alpha=1e-6, n=4)
        cluster.advance(2, 5e-6)  # node 2 starts late
        messages = [(0, 1, 0, "x", False), (2, 1, 0, "x", False)]
        cluster.exchange(messages)
        assert cluster.clocks[1] == pytest.approx(6e-6)  # 5e-6 + alpha

    def test_piggyback_entries_add_bytes_without_latency(self):
        model = CostModel(alpha=1e-6, beta=1e-9, gamma=0.0, mu=0.0, hop_penalty=0.0)
        cluster = VirtualCluster(4, cost_model=model, seed=0)
        cluster.exchange(
            [(0, 1, 1000, "halo", False)],
            piggyback=[(0, 1, 500, "extra")],
        )
        assert cluster.clocks[0] == pytest.approx(1e-6 + 1500e-9)
        assert cluster.stats.total_messages("extra") == 0
        assert cluster.stats.total_bytes("extra") == 500

    def test_bytes_recorded_per_channel(self):
        cluster = cluster_with(beta=1e-9)
        cluster.exchange([(0, 1, 100, "a", False), (1, 2, 200, "b", False)])
        assert cluster.stats.total_bytes("a") == 100
        assert cluster.stats.total_bytes("b") == 200
        assert cluster.stats.total_messages() == 2

    def test_merged_flag_in_messages(self):
        cluster = cluster_with(alpha=1e-3, beta=1e-9)
        cluster.exchange([(0, 1, 100, "a", True)])  # merged: no alpha
        assert cluster.clocks[0] == pytest.approx(100e-9)

    def test_empty_phase_is_noop(self):
        cluster = cluster_with()
        cluster.exchange([])
        assert cluster.elapsed() == 0.0

    def test_dead_endpoints_rejected(self):
        cluster = cluster_with()
        cluster.fail([2])
        with pytest.raises(DeadNodeError):
            cluster.exchange([(0, 2, 8, "x", False)])
        with pytest.raises(DeadNodeError):
            cluster.exchange([(2, 0, 8, "x", False)])

    def test_self_message_rejected(self):
        cluster = cluster_with()
        with pytest.raises(ClusterError):
            cluster.exchange([(1, 1, 8, "x", False)])

    def test_clocks_never_go_backwards(self):
        cluster = cluster_with(alpha=1e-6)
        cluster.advance(1, 1.0)
        cluster.exchange([(0, 1, 0, "x", False)])
        assert cluster.clocks[1] == 1.0


class TestPhaseInteraction:
    def test_checkpoint_phase_scales_with_buddies_not_nodes(self):
        """The motivating bug: an all-nodes checkpoint round must cost
        O(phi) message times, not O(N)."""
        model = CostModel(alpha=1e-6, beta=0.0, gamma=0.0, mu=0.0, hop_penalty=0.0)
        costs = {}
        for n in (8, 32):
            cluster = VirtualCluster(n, cost_model=model, seed=0)
            messages = [
                (rank, (rank + k) % n, 1000, "checkpoint", False)
                for rank in range(n)
                for k in (1, 2)
            ]
            cluster.exchange(messages)
            costs[n] = cluster.elapsed()
        assert costs[8] == pytest.approx(costs[32])
        assert costs[8] == pytest.approx(2e-6)
