"""Service-layer tests: pool reuse/eviction, batching, stamps, drain.

Everything here drives :class:`repro.serve.service.SolverService`
directly (no HTTP); the transport has its own suite in
``test_http.py``.  The load-bearing assertions:

* pool reuse is real — a second request for a key performs **zero**
  additional setup work (checked through ``SolverSession.setup_events``);
* eviction is map-removal — the evicted configuration rebuilds on
  return, warm-starting its reference from a shared cache directory;
* served answers are bit-identical to direct ``SolverSession.solve()``
  (minus ``wall_time``, which the stamp deliberately excludes);
* identical requests yield identical ``response_digest`` values, and
  the digest verifies/falsifies correctly;
* ``close(drain=True)`` waits for in-flight solves and then refuses
  new work.
"""

import threading

import pytest

from repro.api import SolveRequest, SolverSession
from repro.exceptions import ConfigurationError
from repro.serve import (
    ServeRequest,
    ServiceClosed,
    SolverService,
    canonical_report,
    verify_response,
)


def serve_request(preconditioner="block_jacobi", with_reference=False,
                  **request_kwargs):
    request_kwargs.setdefault("strategy", "esr")
    request_kwargs.setdefault("T", 10)
    return ServeRequest(
        with_reference=with_reference,
        request=SolveRequest(preconditioner=preconditioner, **request_kwargs),
    )


class TestServeRequest:
    def test_round_trips_through_dict(self):
        original = serve_request(strategy="esrp", phi=2)
        clone = ServeRequest.from_dict(original.to_dict())
        assert clone == original
        assert clone.fingerprint == original.fingerprint

    def test_session_key_splits_like_a_campaign_config(self):
        assert serve_request().session_key == "emilia_923_like:tiny:n4:block_jacobi"
        assert serve_request(preconditioner="jacobi").session_key == (
            "emilia_923_like:tiny:n4:jacobi"
        )

    def test_rejects_unknown_problem_and_keys(self):
        with pytest.raises(ConfigurationError, match="unknown problem"):
            ServeRequest(problem="not_a_problem")
        with pytest.raises(ConfigurationError, match="unknown serve request keys"):
            ServeRequest.from_dict({"problme": "typo"})

    def test_rejects_previous_x0(self):
        # "previous" depends on scheduling order under pooling/batching;
        # a served answer must be a pure function of its request.
        with pytest.raises(ConfigurationError, match="not servable"):
            serve_request(x0="previous")


class TestPoolReuse:
    def test_second_request_for_a_key_does_no_setup_work(self):
        service = SolverService(pool_size=2)
        first = service.solve(serve_request())
        pooled = service.pool._slots[serve_request().session_key]
        after_first = dict(pooled.session.setup_events)
        second = service.solve(serve_request())
        after_second = dict(pooled.session.setup_events)
        assert first["pool"]["hit"] is False
        assert second["pool"]["hit"] is True
        # Only the solve counter moved; cluster/matrix/preconditioner/
        # reference were all reused.
        after_first["solve"] += 1
        assert after_second == after_first

    def test_lru_eviction_and_warm_restart_from_disk(self, tmp_path):
        service = SolverService(pool_size=1, cache_dir=tmp_path)
        service.solve(serve_request(with_reference=True))
        # A different preconditioner key evicts the only slot ...
        service.solve(serve_request(preconditioner="jacobi"))
        assert service.pool.evictions == 1
        assert service.pool.keys() == ["emilia_923_like:tiny:n4:jacobi"]
        # ... and the evicted configuration rebuilds, but pulls its
        # reference trajectory from the shared spool instead of
        # recomputing it.
        service.solve(serve_request(with_reference=True))
        rebuilt = service.pool._slots[serve_request().session_key]
        assert rebuilt.session.setup_events["reference_disk"] == 1
        assert rebuilt.session.setup_events["reference"] == 0

    def test_hit_rate_on_config_skewed_load(self):
        service = SolverService(pool_size=2)
        requests = [
            serve_request(preconditioner="jacobi" if i % 2 else "block_jacobi",
                          seed=i % 3)
            for i in range(20)
        ]
        for request in requests:
            service.solve(request)
        assert service.pool.stats()["hit_rate"] >= 0.9


class TestStamps:
    def test_identical_requests_identical_digests(self):
        service = SolverService(pool_size=1)
        replies = [service.solve(serve_request()) for _ in range(3)]
        digests = {reply["response_digest"] for reply in replies}
        assert len(digests) == 1
        assert all(verify_response(reply) for reply in replies)

    def test_different_requests_different_digests(self):
        service = SolverService(pool_size=1)
        a = service.solve(serve_request(seed=1))
        b = service.solve(serve_request(seed=2))
        assert a["response_digest"] != b["response_digest"]
        assert a["request_fingerprint"] != b["request_fingerprint"]
        assert a["problem_digest"] == b["problem_digest"]

    def test_tampered_reply_fails_verification(self):
        service = SolverService(pool_size=1)
        reply = service.solve(serve_request())
        assert verify_response(reply)
        reply["report"]["iterations"] += 1
        assert not verify_response(reply)

    def test_wall_time_lives_outside_the_digest(self):
        service = SolverService(pool_size=1)
        reply = service.solve(serve_request())
        assert "wall_time" not in reply["report"]
        assert reply["timing"]["wall_time"] > 0.0


class TestBitIdentity:
    def test_served_report_matches_direct_session_solve(self):
        request = serve_request(strategy="esrp", phi=2, seed=7)
        service = SolverService(pool_size=1)
        served = service.solve(request)

        session = SolverSession.from_problem(
            request.problem, request.scale, n_nodes=request.n_nodes
        )
        direct = session.solve(request.request)
        assert served["report"] == canonical_report(direct)
        assert served["problem_digest"] == session.problem_digest

    def test_concurrent_clients_all_get_the_identical_answer(self):
        # Many threads, one session key: the batch leader serves most
        # of them via solve_many, stragglers solo — every reply must
        # still be byte-identical.
        service = SolverService(pool_size=1, max_batch=4)
        request = serve_request()
        replies = [None] * 12
        errors = []

        def client(slot):
            try:
                replies[slot] = service.solve(request)
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        threads = [threading.Thread(target=client, args=(i,)) for i in range(12)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        digests = {reply["response_digest"] for reply in replies}
        assert len(digests) == 1

    def test_mixed_batch_gets_per_request_answers(self):
        # Different requests racing onto one session must each get
        # their own (correct, stable) report back, not a neighbour's.
        service = SolverService(pool_size=1, max_batch=8)
        requests = [serve_request(seed=i) for i in range(6)]
        expected = [service.solve(r)["response_digest"] for r in requests]

        replies = [None] * len(requests)

        def client(slot):
            replies[slot] = service.solve(requests[slot])

        threads = [
            threading.Thread(target=client, args=(i,))
            for i in range(len(requests))
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert [r["response_digest"] for r in replies] == expected


class TestErrorsAndLifecycle:
    def test_invalid_request_raises_configuration_error(self):
        service = SolverService(pool_size=1)
        with pytest.raises(ConfigurationError):
            service.solve({"problem": "not_a_problem"})
        assert service.errors == 1
        assert service.served == 0

    def test_batch_neighbours_survive_a_bad_request(self):
        # A request that validates but fails at solve time must fail
        # alone: the per-item fallback re-runs its batch neighbours.
        service = SolverService(pool_size=1, max_batch=8)
        good = serve_request()
        bad = serve_request()
        object.__setattr__(bad.request, "maxiter", -17)

        results = {}
        barrier = threading.Barrier(3)

        def client(name, request):
            barrier.wait()
            try:
                results[name] = service.solve(request)
            except Exception as exc:
                results[name] = exc

        threads = [
            threading.Thread(target=client, args=(name, request))
            for name, request in [("good1", good), ("bad", bad), ("good2", good)]
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert isinstance(results["bad"], Exception)
        assert verify_response(results["good1"])
        assert results["good1"]["response_digest"] == results["good2"]["response_digest"]

    def test_close_drains_inflight_then_refuses(self):
        service = SolverService(pool_size=1)
        started = threading.Event()
        finished = {}

        def slow_client():
            started.set()
            finished["reply"] = service.solve(serve_request())

        thread = threading.Thread(target=slow_client)
        thread.start()
        started.wait()
        service.close(drain=True)
        thread.join()
        # The in-flight request completed despite the close ...
        assert verify_response(finished["reply"])
        # ... and new work is refused.
        with pytest.raises(ServiceClosed):
            service.solve(serve_request())
        stats = service.stats()
        assert stats["closed"] is True
        assert stats["inflight"] == 0
