"""HTTP transport tests: routes, status mapping, concurrent clients.

A real ``ThreadingHTTPServer`` on an ephemeral port, driven through
the same ``urllib`` client the load driver uses — no mocks, so these
pin the actual wire contract ``repro serve`` exposes.
"""

import pytest

from repro.api import SolveRequest
from repro.serve import (
    ServeRequest,
    SolverServer,
    get_json,
    post_json,
    run_load,
    verify_response,
)


@pytest.fixture(scope="module")
def server():
    with SolverServer(pool_size=2, verbose=False) as running:
        yield running


def payload(**request_kwargs):
    request_kwargs.setdefault("strategy", "esr")
    request_kwargs.setdefault("T", 10)
    return ServeRequest(request=SolveRequest(**request_kwargs)).to_dict()


class TestRoutes:
    def test_health(self, server):
        body = get_json(server.url + "/health")
        assert body["status"] == "ok"
        assert body["engine"].startswith("repro-")

    def test_stats_exposes_pool_counters(self, server):
        body = get_json(server.url + "/stats")
        assert body["pool"]["capacity"] == 2
        assert {"served", "errors", "inflight", "closed"} <= set(body)

    def test_solve_round_trip(self, server):
        status, body = post_json(server.url + "/solve", payload())
        assert status == 200
        assert verify_response(body)
        assert body["report"]["converged"] is True

    def test_unknown_route_is_a_structured_400(self, server):
        status, body = post_json(server.url + "/nope", payload())
        assert status == 400
        assert body["error"]["type"] == "ConfigurationError"
        assert "no such route" in body["error"]["message"]


class TestErrorMapping:
    def test_bad_configuration_is_400(self, server):
        status, body = post_json(server.url + "/solve", {"problem": "not_a_problem"})
        assert status == 400
        assert body["error"]["type"] == "ConfigurationError"
        assert "unknown problem" in body["error"]["message"]

    def test_non_json_body_is_400(self, server):
        import urllib.request

        request = urllib.request.Request(
            server.url + "/solve", data=b"not json", method="POST"
        )
        try:
            with urllib.request.urlopen(request) as reply:  # pragma: no cover
                status = reply.status
        except urllib.error.HTTPError as exc:
            status = exc.code
            body = exc.read()
        assert status == 400
        assert b"not JSON" in body

    def test_empty_body_is_400(self, server):
        status, body = post_json(server.url + "/solve", {})
        # An empty object is a *valid* default request; an absent body
        # is not.  Check both sides of that line.
        assert status == 200
        import json
        import urllib.error
        import urllib.request

        request = urllib.request.Request(
            server.url + "/solve", data=b"", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request)
        assert excinfo.value.code == 400
        assert json.loads(excinfo.value.read())["error"]["type"] == (
            "ConfigurationError"
        )


class TestConcurrentLoad:
    def test_concurrent_clients_get_consistent_stamped_replies(self, server):
        payloads = [
            payload(preconditioner="jacobi" if i % 2 else "block_jacobi")
            for i in range(12)
        ]
        report = run_load(server.url, payloads, clients=4)
        assert report.ok == 12
        assert report.errors == 0
        assert report.digests_consistent
        assert report.p50_latency > 0.0
        assert report.p99_latency >= report.p50_latency


class TestShutdown:
    def test_stop_drains_and_late_requests_are_refused(self):
        # Fresh server (module fixture must stay up for other tests).
        server = SolverServer(pool_size=1, verbose=False).start()
        status, body = post_json(server.url + "/solve", payload())
        assert status == 200
        server.stop()
        # The listener is gone entirely; a new connection fails at the
        # socket level rather than reaching a closed service.
        import urllib.error

        with pytest.raises((urllib.error.URLError, ConnectionError, OSError)):
            post_json(server.url + "/solve", payload(), timeout=2.0)

    def test_closed_service_maps_to_503(self):
        server = SolverServer(pool_size=1, verbose=False).start()
        try:
            # Close the service but leave the listener up: requests now
            # reach a draining service and must get the 503 envelope.
            server.service.close(drain=True)
            status, body = post_json(server.url + "/solve", payload())
            assert status == 503
            assert body["error"]["type"] == "ServiceClosed"
            health = get_json(server.url + "/health")
            assert health["status"] == "draining"
        finally:
            server.stop()
