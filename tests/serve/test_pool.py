"""Unit tests for the bounded LRU session pool (no solver involved)."""

import threading

import pytest

from repro.exceptions import ConfigurationError
from repro.serve import SessionPool


def factory(token):
    return lambda: token


class TestLruSemantics:
    def test_hit_miss_and_counters(self):
        pool = SessionPool(2)
        a1, hit = pool.acquire("a", factory("A"))
        assert hit is False
        a2, hit = pool.acquire("a", factory("A'"))
        assert hit is True
        assert a2 is a1
        assert (pool.hits, pool.misses, pool.evictions) == (1, 1, 0)
        assert pool.hit_rate == 0.5

    def test_eviction_removes_least_recently_used(self):
        pool = SessionPool(2)
        pool.acquire("a", factory("A"))
        pool.acquire("b", factory("B"))
        pool.acquire("a", factory("A"))  # refresh a; b is now LRU
        pool.acquire("c", factory("C"))  # evicts b
        assert pool.keys() == ["a", "c"]
        assert pool.evictions == 1
        _, hit = pool.acquire("b", factory("B2"))
        assert hit is False  # b was really gone

    def test_capacity_must_be_positive(self):
        with pytest.raises(ConfigurationError, match=">= 1"):
            SessionPool(0)


class TestLazyBuild:
    def test_factory_runs_once_under_the_slot_lock(self):
        pool = SessionPool(1)
        built = []

        def build():
            built.append(threading.get_ident())
            return object()

        pooled, _ = pool.acquire("k", build)
        assert not pooled.built  # acquire never builds
        sessions = []

        def use():
            with pooled.lock:
                sessions.append(pooled.session)

        threads = [threading.Thread(target=use) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(built) == 1  # exactly one thread paid for the build
        assert len(set(map(id, sessions))) == 1

    def test_evicted_slot_keeps_serving_its_holder(self):
        # Eviction is map-removal: a thread still holding the evicted
        # PooledSession finishes on its private reference.
        pool = SessionPool(1)
        old, _ = pool.acquire("old", factory("OLD"))
        with old.lock:
            session = old.session
        pool.acquire("new", factory("NEW"))  # evicts "old"
        assert pool.keys() == ["new"]
        with old.lock:
            assert old.session is session  # still usable, unchanged


class TestConcurrentAcquire:
    def test_parallel_acquires_agree_on_one_slot_per_key(self):
        pool = SessionPool(4)
        slots = []

        def acquire():
            pooled, _ = pool.acquire("shared", factory("S"))
            slots.append(pooled)

        threads = [threading.Thread(target=acquire) for _ in range(16)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len({id(slot) for slot in slots}) == 1
        assert pool.misses == 1
        assert pool.hits == 15
