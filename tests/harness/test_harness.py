"""Tests for metrics, config, failure placement, tables and figures."""

import numpy as np
import pytest

import repro
from repro.exceptions import ConfigurationError
from repro.harness import (
    PAPER_TABLE2,
    PAPER_TABLE3,
    PAPER_TABLE4,
    ExperimentConfig,
    median,
    paper_table_config,
    place_worst_case_failure,
    relative_overhead,
    render_drift_table,
    render_overhead_table,
    residual_drift,
    true_residual_norm,
)
from repro.harness.figures import ascii_log_plot, overhead_series, render_queue_trace
from repro.harness.metrics import drift_from_result
from repro.matrices import poisson_1d


class TestMetrics:
    def test_relative_overhead(self):
        assert relative_overhead(11.0, 10.0) == pytest.approx(0.1)
        assert relative_overhead(9.0, 10.0) == pytest.approx(-0.1)

    def test_relative_overhead_needs_positive_reference(self):
        with pytest.raises(ConfigurationError):
            relative_overhead(1.0, 0.0)

    def test_median(self):
        assert median([3.0, 1.0, 2.0]) == 2.0
        assert median([1.0, 2.0, 3.0, 4.0]) == 2.5

    def test_median_empty(self):
        with pytest.raises(ConfigurationError):
            median([])

    def test_true_residual_norm(self):
        a = poisson_1d(10)
        x = np.ones(10)
        b = a @ x
        assert true_residual_norm(a, b, x) == pytest.approx(0.0, abs=1e-12)

    def test_residual_drift_sign_convention(self):
        a = poisson_1d(10)
        x = np.linspace(0, 1, 10)
        b = a @ x + 1e-6
        true_norm = true_residual_norm(a, b, x)
        # recursive norm smaller than true norm => negative drift
        assert residual_drift(a, b, x, 0.5 * true_norm) < 0
        # recursive norm larger => positive drift
        assert residual_drift(a, b, x, 2.0 * true_norm) > 0

    def test_drift_from_result_consistent(self):
        matrix, b, _ = repro.matrices.load("emilia_923_like", scale="tiny")
        result = repro.solve(matrix, b, n_nodes=4, strategy="reference")
        drift = drift_from_result(matrix, b, result)
        # converged solve: recursive and true residuals are both tiny,
        # drift is an O(1)-ish relative quantity
        assert np.isfinite(drift)
        assert abs(drift) < 1.0


class TestFailurePlacement:
    def test_esr_at_half(self):
        assert place_worst_case_failure("esr", 1, 1000) == 500

    def test_esrp_two_before_next_stage(self):
        # recovery points at kT+1 for T=50: 51, 101, ... C/2=500 sits in
        # [451, 501): next point 501 -> failure at 499
        assert place_worst_case_failure("esrp", 50, 1000) == 499

    def test_esrp_small_t(self):
        # T<=2 degenerates to ESR
        assert place_worst_case_failure("esrp", 1, 500) == 250

    def test_imcr_two_before_next_checkpoint(self):
        # checkpoints at kT for T=50; C/2=500 -> next checkpoint 550 -> 548
        assert place_worst_case_failure("imcr", 50, 1000) == 548

    def test_imcr_t20(self):
        # C = 10279: C/2 = 5139 sits in [5120, 5140); failure at 5138
        assert place_worst_case_failure("imcr", 20, 10279) == 5138

    def test_wasted_iterations_are_t_minus_2(self):
        # failure at next_point-2 means T-2 iterations are re-executed
        T, C = 20, 1000
        j_fail = place_worst_case_failure("esrp", T, C)
        k = (j_fail + 2 - 1) // T  # stage whose completion is j_fail+2
        resume = (k) * T + 1 - T  # previous completed stage
        assert (j_fail - ((k - 1) * T + 1)) == T - 2

    def test_unknown_strategy(self):
        with pytest.raises(ConfigurationError):
            place_worst_case_failure("magic", 10, 100)

    def test_invalid_iterations(self):
        with pytest.raises(ConfigurationError):
            place_worst_case_failure("esr", 1, 0)


class TestConfig:
    def test_paper_defaults(self):
        config = ExperimentConfig(problem="emilia_923_like")
        assert config.phis == (1, 3, 8)
        assert config.esrp_intervals == (1, 20, 50, 100)
        assert config.imcr_intervals == (20, 50, 100)
        assert config.locations == ("start", "center")

    def test_phi_must_fit_cluster(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig(problem="x", n_nodes=8, phis=(8,))

    def test_env_overrides(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "tiny")
        monkeypatch.setenv("REPRO_NODES", "4")
        monkeypatch.setenv("REPRO_REPS", "1")
        config = paper_table_config("emilia_923_like", quick=True)
        assert config.scale == "tiny"
        assert config.n_nodes == 4
        assert config.repetitions == 1

    def test_bad_env_int(self, monkeypatch):
        monkeypatch.setenv("REPRO_NODES", "lots")
        with pytest.raises(ConfigurationError):
            paper_table_config("emilia_923_like")


class TestPaperData:
    @pytest.mark.parametrize("table", [PAPER_TABLE2, PAPER_TABLE3])
    def test_tables_complete(self, table):
        assert set(table["cells"]) == {
            ("esrp", 1),
            ("esrp", 20),
            ("esrp", 50),
            ("esrp", 100),
            ("imcr", 20),
            ("imcr", 50),
            ("imcr", 100),
        }
        for cell in table["cells"].values():
            assert set(cell["failure_free"]) == {1, 3, 8}
            for loc in ("start", "center"):
                assert set(cell[(loc, "total")]) == {1, 3, 8}
                assert set(cell[(loc, "reconstruction")]) == {1, 3, 8}

    def test_imcr_reconstruction_zero_in_paper(self):
        for T in (20, 50, 100):
            cell = PAPER_TABLE2["cells"][("imcr", T)]
            assert all(v == 0.0 for v in cell[("start", "reconstruction")].values())

    def test_table4_entries(self):
        assert set(PAPER_TABLE4) == {"Emilia_923", "audikw_1"}
        for row in PAPER_TABLE4.values():
            assert row["minimum"] <= row["median"]


def fake_results():
    return {
        "t0": 1.0,
        "C": 100,
        "n": 64,
        "nnz": 300,
        "cells": {
            ("esrp", 1, 1): {
                "failure_free": 0.05,
                ("start", "total"): 0.10,
                ("start", "reconstruction"): 0.02,
                ("center", "total"): 0.09,
                ("center", "reconstruction"): 0.02,
            },
            ("imcr", 20, 1): {
                "failure_free": 0.03,
                ("start", "total"): 0.04,
                ("start", "reconstruction"): 0.0,
                ("center", "total"): 0.05,
                ("center", "reconstruction"): 0.0,
            },
        },
    }


class TestRenderers:
    def test_overhead_table_contains_cells(self):
        text = render_overhead_table(fake_results(), phis=(1,), title="Table X")
        assert "Table X" in text
        assert "ESR" in text  # esrp at T=1 is printed as ESR
        assert "IMCR" in text
        assert "10.0" in text and " 3.0" in text

    def test_overhead_table_with_paper_reference(self):
        text = render_overhead_table(
            fake_results(), phis=(1,), paper={"t0": 14.66, "C": 10279, "cells": {}}
        )
        assert "paper" in text

    def test_overhead_table_requires_cells(self):
        with pytest.raises(ConfigurationError):
            render_overhead_table({"t0": 1.0}, phis=(1,))

    def test_drift_table(self):
        text = render_drift_table(
            {"emilia_923_like": {"reference": -0.04, "median": -0.05, "minimum": -0.06}},
            paper={"emilia_923_like": {"reference": -0.044, "median": -0.047, "minimum": -0.056}},
        )
        assert "emilia_923_like" in text
        assert "[paper]" in text

    def test_overhead_series_extraction(self):
        series = overhead_series(fake_results(), phis=(1,), with_failures=False)
        esrp = next(s for s in series if s.strategy == "esrp")
        assert esrp.values == (0.05,)
        with_failures = overhead_series(fake_results(), phis=(1,), with_failures=True)
        esrp_f = next(s for s in with_failures if s.strategy == "esrp")
        assert esrp_f.values[0] == pytest.approx(0.095)  # median of both locations

    def test_ascii_plot_renders(self):
        series = overhead_series(fake_results(), phis=(1,), with_failures=False)
        text = ascii_log_plot(series, intervals=(20,), title="fig")
        assert "fig" in text
        assert "markers" in text

    def test_queue_trace_from_real_run(self):
        matrix, b, _ = repro.matrices.load("emilia_923_like", scale="tiny")
        result = repro.solve(matrix, b, n_nodes=4, strategy="esrp", T=10, phi=1)
        text = render_queue_trace(result.events, T=10)
        assert "p'(10)" in text
        assert "recovery point" in text
