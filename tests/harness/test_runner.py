"""End-to-end tests of the experiment runner on a tiny configuration."""

import pytest

from repro.harness import ExperimentConfig
from repro.harness.runner import ExperimentRunner


@pytest.fixture(scope="module")
def runner():
    config = ExperimentConfig(
        problem="emilia_923_like",
        scale="tiny",
        n_nodes=4,
        phis=(1, 2),
        esrp_intervals=(1, 10),
        imcr_intervals=(10,),
        locations=("start", "center"),
        repetitions=2,
        noise=0.005,
    )
    return ExperimentRunner(config)


class TestReference:
    def test_reference_cached(self, runner):
        t0_a, c_a = runner.run_reference()
        records_before = len(runner.records)
        t0_b, c_b = runner.run_reference()
        assert (t0_a, c_a) == (t0_b, c_b)
        assert len(runner.records) == records_before  # no re-run

    def test_reference_iterations_positive(self, runner):
        assert runner.reference_iterations > 20


class TestCells:
    def test_failure_free_cell(self, runner):
        summary = runner.run_cell("esrp", 10, 1, location=None)
        assert summary.failure_free_overhead is not None
        assert summary.total_overhead is None
        # resilience costs something (allow tiny negative under noise)
        assert summary.failure_free_overhead > -0.05

    def test_failure_cell(self, runner):
        summary = runner.run_cell("esrp", 10, 2, location="start")
        assert summary.total_overhead is not None
        assert summary.reconstruction_overhead is not None
        assert summary.total_overhead > 0
        assert summary.reconstruction_overhead >= 0

    def test_imcr_reconstruction_much_smaller_than_esrp(self, runner):
        esrp = runner.run_cell("esrp", 10, 2, location="start")
        imcr = runner.run_cell("imcr", 10, 2, location="start")
        assert imcr.reconstruction_overhead < esrp.reconstruction_overhead

    def test_records_accumulate(self, runner):
        runner.run_cell("esr", 1, 1, location="center")
        matching = [
            r
            for r in runner.records
            if r.strategy == "esr" and r.location == "center"
        ]
        assert len(matching) == runner.config.repetitions
        assert all(r.psi == 1 for r in matching)
        assert all(r.converged for r in matching)


class TestFullGrid:
    def test_run_table_structure(self):
        config = ExperimentConfig(
            problem="emilia_923_like",
            scale="tiny",
            n_nodes=4,
            phis=(1,),
            esrp_intervals=(1, 10),
            imcr_intervals=(10,),
            locations=("start",),
            repetitions=1,
            noise=0.0,
        )
        runner = ExperimentRunner(config)
        results = runner.run_table()
        assert set(results["cells"]) == {
            ("esrp", 1, 1),
            ("esrp", 10, 1),
            ("imcr", 10, 1),
        }
        for cell in results["cells"].values():
            assert "failure_free" in cell
            assert ("start", "total") in cell
            assert ("start", "reconstruction") in cell

        drift = runner.drift_summary()
        assert "reference" in drift and "median" in drift and "minimum" in drift
        assert drift["minimum"] <= drift["median"] + 1e-12
