"""Tests for the benchmark machine-model calibration."""

from repro.harness.calibration import BENCH_COST_MODEL, bench_cost_model, bench_noise_model


def test_bench_model_deterministic_by_default():
    assert BENCH_COST_MODEL.noise == 0.0
    assert bench_cost_model() is BENCH_COST_MODEL


def test_noise_model_wraps_same_constants():
    noisy = bench_noise_model(0.02)
    assert noisy.noise == 0.02
    assert noisy.alpha == BENCH_COST_MODEL.alpha
    assert noisy.gamma == BENCH_COST_MODEL.gamma


def test_regime_compute_dominates_one_extra_copy():
    """The calibration target: one ASpMV extra copy per iteration
    (phi=1, piggybacked) costs well under the local SpMV compute for a
    bench-scale block (DESIGN.md substitution rationale)."""
    n_local, nnz_per_row = 384, 19
    compute = BENCH_COST_MODEL.compute_time(2 * nnz_per_row * n_local)
    extra = BENCH_COST_MODEL.payload_time(n_local * 8)
    assert extra < 0.2 * compute
