"""Edge-case tests for the figure renderers."""

import math

import pytest

from repro.exceptions import ConfigurationError
from repro.harness.figures import OverheadSeries, ascii_log_plot, overhead_series


class TestOverheadSeriesEdge:
    def test_missing_cells_become_nan(self):
        results = {"cells": {("esrp", 20, 1): {"failure_free": 0.1}}}
        series = overhead_series(results, phis=(1, 3), with_failures=False)
        assert math.isnan(series[0].values[1])

    def test_missing_location_totals(self):
        results = {"cells": {("esrp", 20, 1): {("start", "total"): None}}}
        series = overhead_series(results, phis=(1,), with_failures=True)
        assert math.isnan(series[0].values[0])

    def test_requires_cells_key(self):
        with pytest.raises(ConfigurationError):
            overhead_series({}, phis=(1,), with_failures=False)

    def test_single_location_median(self):
        results = {"cells": {("imcr", 20, 1): {("start", "total"): 0.2}}}
        series = overhead_series(
            results, phis=(1,), with_failures=True, locations=("start",)
        )
        assert series[0].values == (0.2,)


class TestAsciiPlotEdge:
    def test_all_nan_series(self):
        series = [OverheadSeries("esrp", 20, (1,), (math.nan,))]
        text = ascii_log_plot(series, intervals=(20,), title="empty")
        assert "no positive overhead values" in text

    def test_non_positive_values_skipped(self):
        series = [
            OverheadSeries("esrp", 20, (1, 3), (-0.01, 0.05)),
            OverheadSeries("imcr", 20, (1, 3), (0.0, 0.1)),
        ]
        text = ascii_log_plot(series, intervals=(20,), title="fig")
        assert "E" in text and "I" in text

    def test_flat_values_get_valid_axis(self):
        series = [OverheadSeries("esrp", 20, (1,), (0.05,))]
        text = ascii_log_plot(series, intervals=(20,), title="flat")
        assert "%" in text

    def test_esr_line_replicated_per_cluster(self):
        series = [
            OverheadSeries("esrp", 1, (1,), (0.02,)),
            OverheadSeries("esrp", 20, (1,), (0.01,)),
            OverheadSeries("esrp", 50, (1,), (0.005,)),
        ]
        text = ascii_log_plot(series, intervals=(20, 50), title="fig")
        # the ESR marker appears in both interval clusters
        assert text.count("R") >= 2
