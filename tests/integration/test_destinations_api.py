"""Integration tests of the switch-aware destination policy via the API."""

import numpy as np
import pytest

import repro
from repro.cluster.topology import FatTree


@pytest.fixture(scope="module")
def problem():
    matrix, b, _ = repro.matrices.load("emilia_923_like", scale="tiny")
    return matrix, b


class TestDestinationsThroughSolve:
    def test_switch_aware_produces_same_math(self, problem):
        matrix, b = problem
        eq1 = repro.solve(matrix, b, n_nodes=8, strategy="esr", phi=2)
        aware = repro.solve(
            matrix, b, n_nodes=8, strategy="esr", phi=2,
            destinations="switch_aware",
        )
        # placement changes traffic, never the numerics
        assert aware.iterations == eq1.iterations
        np.testing.assert_array_equal(aware.x, eq1.x)

    def test_switch_aware_survives_whole_switch_with_phi_1(self, problem):
        matrix, b = problem
        topology = FatTree(8, radix=2)
        cluster = repro.VirtualCluster(8, topology=topology, seed=0)
        ranks = topology.ranks_under_leaf(2)
        result = repro.solve(
            matrix, b, cluster=cluster, strategy="esrp", T=10, phi=1,
            destinations="switch_aware",
            failures=[repro.FailureEvent(25, ranks)],
        )
        reference = repro.solve(matrix, b, n_nodes=8, strategy="reference")
        assert result.converged
        np.testing.assert_allclose(result.x, reference.x, atol=1e-7)
        # psi = 2 > phi = 1, yet no restart was needed
        assert result.events.first(repro.EventKind.RESTART) is None

    def test_esrp_with_switch_aware_failure_free_overhead(self, problem):
        """Cross-leaf extras ship more bytes: overhead ordering holds."""
        matrix, b = problem
        from repro.harness.calibration import BENCH_COST_MODEL

        reference = repro.solve(
            matrix, b, n_nodes=8, strategy="reference", cost_model=BENCH_COST_MODEL
        )
        eq1 = repro.solve(
            matrix, b, n_nodes=8, strategy="esr", phi=1, cost_model=BENCH_COST_MODEL
        )
        aware = repro.solve(
            matrix, b, n_nodes=8, strategy="esr", phi=1,
            destinations="switch_aware", cost_model=BENCH_COST_MODEL,
        )
        assert aware.modeled_time >= eq1.modeled_time > reference.modeled_time
