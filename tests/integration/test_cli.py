"""Tests for the command-line interface."""

import pytest

from repro.cli import _parse_failure, main
from repro.exceptions import ConfigurationError


class TestParseFailure:
    def test_single_rank(self):
        event = _parse_failure("40:2")
        assert event.iteration == 40
        assert event.ranks == (2,)

    def test_multiple_ranks(self):
        event = _parse_failure("10:0,1,2")
        assert event.ranks == (0, 1, 2)

    @pytest.mark.parametrize("bad", ["40", "x:1", "40:", "40:a,b", "-1:0"])
    def test_invalid_specs(self, bad):
        with pytest.raises(ConfigurationError):
            _parse_failure(bad)


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "esrp" in out
        assert "block_jacobi" in out
        assert "emilia_923_like" in out

    def test_solve_tiny(self, capsys):
        code = main(
            [
                "solve",
                "--problem", "emilia_923_like",
                "--scale", "tiny",
                "--nodes", "4",
                "--strategy", "esrp",
                "-T", "10",
                "--phi", "2",
                "--fail", "30:0,1",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "converged:          True" in out
        assert "failures survived:  1" in out

    def test_solve_with_events(self, capsys):
        code = main(
            ["solve", "--problem", "emilia_923_like", "--scale", "tiny",
             "--nodes", "4", "--strategy", "esr", "--fail", "20:1", "--events"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "event timeline:" in out
        assert "node_failure" in out

    def test_solve_matrix_file(self, capsys, tmp_path):
        from repro.matrices import random_banded_spd, write_matrix_market

        path = tmp_path / "m.mtx"
        write_matrix_market(path, random_banded_spd(32, bandwidth=3, seed=1))
        code = main(
            ["solve", "--matrix-file", str(path), "--nodes", "4",
             "--strategy", "reference"]
        )
        assert code == 0
        assert "m.mtx" in capsys.readouterr().out

    def test_bad_failure_spec_reports_error(self, capsys):
        code = main(
            ["solve", "--problem", "emilia_923_like", "--scale", "tiny",
             "--fail", "banana"]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0


class TestExperimentCommand:
    def test_experiment_quick_tiny(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "tiny")
        monkeypatch.setenv("REPRO_NODES", "4")
        monkeypatch.setenv("REPRO_REPS", "1")
        code = main(["experiment", "--problem", "emilia_923_like", "--quick"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Overheads for emilia_923_like" in out
        assert "ESR" in out and "IMCR" in out
