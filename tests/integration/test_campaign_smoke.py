"""End-to-end campaign smoke test: spec file -> pool -> report -> CSV.

Kept deliberately small (a 4-run campaign on the tiny problem) so the
whole module stays well under 30 seconds including process-pool
start-up.
"""

import json

import pytest

from repro.campaign import CampaignResult, CampaignSpec, execute_campaign
from repro.campaign.spec import expand_spec
from repro.cli import main

pytestmark = [pytest.mark.integration, pytest.mark.campaign]

SPEC = {
    "name": "smoke",
    "problems": [{"name": "emilia_923_like", "scale": "tiny"}],
    "n_nodes": 4,
    "preconditioners": ["block_jacobi"],
    "strategies": [
        {"name": "esrp", "intervals": [10]},
        {"name": "imcr", "intervals": [10]},
    ],
    "phis": [1],
    "scenarios": [
        {"kind": "worst_case", "location": "start"},
        {"kind": "storm", "count": 2},
    ],
    "repetitions": 1,
    "seed": 99,
}


def test_four_run_campaign_on_a_pool(tmp_path):
    spec = CampaignSpec.from_dict(SPEC)
    runs = expand_spec(spec)
    assert len(runs) == 4

    result = execute_campaign(spec, workers=2)
    assert len(result) == 4
    assert all(record.converged for record in result)
    assert all(record.n_failures >= 1 for record in result)
    assert all(record.solution_error < 1e-6 for record in result)

    # persistence + report round-trip
    json_path = result.to_json(tmp_path / "smoke.json")
    loaded = CampaignResult.from_json(json_path)
    assert loaded.render_summary() == result.render_summary()
    csv_path = result.to_csv(tmp_path / "smoke.csv")
    assert CampaignResult.from_csv(csv_path).records == result.records


def test_campaign_cli_run_and_report(tmp_path, capsys):
    spec_path = tmp_path / "spec.json"
    spec_path.write_text(json.dumps(SPEC))
    out_path = tmp_path / "results.json"

    code = main(
        ["campaign", "run", "--spec", str(spec_path), "--out", str(out_path),
         "--workers", "2", "--quiet"]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "4 runs" in out
    assert "Total overhead [%]" in out
    assert out_path.exists()

    csv_path = tmp_path / "results.csv"
    code = main(
        ["campaign", "report", "--results", str(out_path), "--csv", str(csv_path)]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "ESRP" in out and "IMCR" in out
    assert "Reconstruction [%]" in out
    assert csv_path.exists()


def test_campaign_cli_zero_run_spec_fails_cleanly(tmp_path, capsys):
    spec_path = tmp_path / "zero.json"
    spec_path.write_text(json.dumps({
        "name": "zero",
        "strategies": [{"name": "reference"}],
        "scenarios": [{"kind": "worst_case"}],
    }))
    code = main(["campaign", "run", "--spec", str(spec_path)])
    captured = capsys.readouterr()
    assert code == 2
    assert "zero runs" in captured.err


def test_campaign_cli_list(capsys):
    code = main(["campaign", "run", "--list"])
    out = capsys.readouterr().out
    assert code == 0
    assert "24 runs" in out
    assert "esrp" in out and "imcr" in out and "esr" in out
    assert "mtbf" in out and "worst_case" in out
