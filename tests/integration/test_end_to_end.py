"""End-to-end integration tests of the public API."""

import numpy as np
import pytest

import repro
from repro.cluster import FailureSchedule
from repro.events import EventKind
from repro.exceptions import ConfigurationError


@pytest.fixture(scope="module")
def problem():
    matrix, b, meta = repro.matrices.load("emilia_923_like", scale="tiny")
    return matrix, b


class TestSolveAPI:
    def test_default_strategy_is_esrp(self, problem):
        matrix, b = problem
        result = repro.solve(matrix, b, n_nodes=4)
        assert result.converged
        assert result.strategy == "esrp"

    def test_failures_as_list(self, problem):
        matrix, b = problem
        result = repro.solve(
            matrix, b, n_nodes=4, strategy="esr",
            failures=[repro.FailureEvent(10, (1,))],
        )
        assert result.converged

    def test_failures_as_schedule(self, problem):
        matrix, b = problem
        schedule = FailureSchedule([repro.FailureEvent(10, (1,))])
        result = repro.solve(matrix, b, n_nodes=4, strategy="esr", failures=schedule)
        assert result.converged

    def test_existing_cluster_reused(self, problem):
        matrix, b = problem
        cluster = repro.VirtualCluster(4, seed=1)
        first = repro.solve(matrix, b, cluster=cluster, strategy="reference")
        second = repro.solve(matrix, b, cluster=cluster, strategy="reference")
        # clock carries across solves on the same cluster
        assert second.modeled_time > first.modeled_time

    def test_preconditioner_kwargs_forwarded(self, problem):
        matrix, b = problem
        result = repro.solve(
            matrix, b, n_nodes=4, strategy="reference",
            preconditioner="block_jacobi", max_block_size=5,
        )
        assert result.converged

    def test_rtol_respected(self, problem):
        matrix, b = problem
        loose = repro.solve(matrix, b, n_nodes=4, strategy="reference", rtol=1e-4)
        tight = repro.solve(matrix, b, n_nodes=4, strategy="reference", rtol=1e-10)
        assert loose.iterations < tight.iterations

    def test_bad_strategy_name(self, problem):
        matrix, b = problem
        with pytest.raises(ConfigurationError):
            repro.solve(matrix, b, n_nodes=4, strategy="raid6")

    def test_version_exposed(self):
        assert repro.__version__


class TestDeterminism:
    def test_same_seed_same_modeled_time(self, problem):
        matrix, b = problem
        a = repro.solve(matrix, b, n_nodes=4, strategy="esrp", T=10, seed=3,
                        cost_model=repro.CostModel(noise=0.02))
        c = repro.solve(matrix, b, n_nodes=4, strategy="esrp", T=10, seed=3,
                        cost_model=repro.CostModel(noise=0.02))
        assert a.modeled_time == c.modeled_time
        assert np.array_equal(a.x, c.x)

    def test_different_noise_seed_changes_time_not_math(self, problem):
        matrix, b = problem
        a = repro.solve(matrix, b, n_nodes=4, seed=1,
                        cost_model=repro.CostModel(noise=0.05))
        c = repro.solve(matrix, b, n_nodes=4, seed=2,
                        cost_model=repro.CostModel(noise=0.05))
        assert a.modeled_time != c.modeled_time
        assert np.array_equal(a.x, c.x)


class TestAccountingConsistency:
    def test_aspmv_traffic_only_for_esr_family(self, problem):
        matrix, b = problem
        esrp = repro.solve(matrix, b, n_nodes=4, strategy="esrp", T=10, phi=2)
        imcr = repro.solve(matrix, b, n_nodes=4, strategy="imcr", T=10, phi=2)
        assert esrp.stats.get("bytes[aspmv_extra]", 0) > 0
        assert esrp.stats.get("bytes[checkpoint]", 0) == 0
        assert imcr.stats.get("bytes[checkpoint]", 0) > 0
        assert imcr.stats.get("bytes[aspmv_extra]", 0) == 0

    def test_recovery_traffic_only_with_failures(self, problem):
        matrix, b = problem
        quiet = repro.solve(matrix, b, n_nodes=4, strategy="esr", phi=1)
        noisy = repro.solve(
            matrix, b, n_nodes=4, strategy="esr", phi=1,
            failures=[repro.FailureEvent(20, (1,))],
        )
        assert quiet.stats.get("bytes[recovery]", 0) == 0
        assert noisy.stats.get("bytes[recovery]", 0) > 0

    def test_memory_footprint_tracked_for_resilience(self, problem):
        matrix, b = problem
        esrp = repro.solve(matrix, b, n_nodes=4, strategy="esrp", T=10, phi=2)
        assert esrp.stats["peak_redundancy_bytes"] > 0


class TestEventTimeline:
    def test_event_times_monotone(self, problem):
        matrix, b = problem
        result = repro.solve(
            matrix, b, n_nodes=4, strategy="esrp", T=10, phi=2,
            failures=[repro.FailureEvent(25, (1, 2))],
        )
        times = [e.time for e in result.events]
        assert all(b >= a - 1e-12 for a, b in zip(times, times[1:]))

    def test_rollback_event_has_waste(self, problem):
        matrix, b = problem
        result = repro.solve(
            matrix, b, n_nodes=4, strategy="imcr", T=10, phi=1,
            failures=[repro.FailureEvent(18, (1,))],
        )
        rollback = result.events.first(EventKind.ROLLBACK)
        assert rollback is not None
        assert rollback.detail["wasted"] == 18 - rollback.detail["resume_iteration"]
