"""Grid integration test: every strategy × ϕ × T × location recovers.

A compressed version of the paper's whole test constellation on a tiny
problem: all combinations must converge to the reference solution.
"""

import numpy as np
import pytest

import repro
from repro.harness import place_worst_case_failure


@pytest.fixture(scope="module")
def setup():
    matrix, b, _ = repro.matrices.load("emilia_923_like", scale="tiny")
    reference = repro.solve(matrix, b, n_nodes=8, strategy="reference")
    return matrix, b, reference


GRID = [
    (strategy, T, phi, location)
    for strategy, T in (("esr", 1), ("esrp", 10), ("esrp", 25), ("imcr", 10), ("imcr", 25))
    for phi in (1, 3)
    for location in ("start", "center")
]


@pytest.mark.parametrize("strategy,T,phi,location", GRID)
def test_grid_cell_recovers(setup, strategy, T, phi, location):
    matrix, b, reference = setup
    j_fail = place_worst_case_failure(strategy, T, reference.iterations)
    ranks = repro.block_failure_ranks(location, phi, 8)
    result = repro.solve(
        matrix,
        b,
        n_nodes=8,
        strategy=strategy,
        T=T,
        phi=phi,
        failures=[repro.FailureEvent(j_fail, ranks)],
    )
    assert result.converged
    np.testing.assert_allclose(result.x, reference.x, atol=1e-7)
    assert result.iterations == reference.iterations  # exact strategies
    expected_waste = 0 if strategy == "esr" else T - 2
    assert result.wasted_iterations == expected_waste


def test_drift_stays_small_across_grid(setup):
    """Eq. (2): recoveries do not degrade the converged accuracy."""
    from repro.harness.metrics import drift_from_result

    matrix, b, reference = setup
    reference_drift = drift_from_result(matrix, b, reference)
    drifts = []
    for strategy, T in (("esr", 1), ("esrp", 10), ("imcr", 10)):
        j_fail = place_worst_case_failure(strategy, T, reference.iterations)
        result = repro.solve(
            matrix, b, n_nodes=8, strategy=strategy, T=T, phi=2,
            failures=[repro.FailureEvent(j_fail, (0, 1))],
        )
        drifts.append(drift_from_result(matrix, b, result))
    for drift in drifts:
        assert abs(drift - reference_drift) < max(1.0, 5 * abs(reference_drift))
