"""Smoke-run every example script (they assert their own claims)."""

import os
import pathlib
import subprocess
import sys

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
EXAMPLES_DIR = REPO_ROOT / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def _env_with_src() -> dict[str, str]:
    """Subprocesses need src/ on PYTHONPATH even when pytest got it from pytest.ini."""
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src if not existing else f"{src}{os.pathsep}{existing}"
    return env


def test_examples_exist():
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names
    assert len(EXAMPLES) >= 3


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script):
    completed = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=600,
        env=_env_with_src(),
    )
    assert completed.returncode == 0, (
        f"{script.name} failed:\n{completed.stdout}\n{completed.stderr}"
    )
    assert completed.stdout.strip(), f"{script.name} produced no output"
