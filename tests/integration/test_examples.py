"""Smoke-run every example script (they assert their own claims)."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_exist():
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names
    assert len(EXAMPLES) >= 3


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script):
    completed = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert completed.returncode == 0, (
        f"{script.name} failed:\n{completed.stdout}\n{completed.stderr}"
    )
    assert completed.stdout.strip(), f"{script.name} produced no output"
