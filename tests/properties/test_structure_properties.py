"""Hypothesis property tests: partition laws, queue laws, Eq. (1)."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.redundancy import RedundancyQueue
from repro.distribution import BlockRowPartition, eq1_destinations


class TestPartitionLaws:
    @given(
        n=st.integers(min_value=1, max_value=500),
        n_nodes=st.integers(min_value=1, max_value=32),
    )
    @settings(max_examples=100, deadline=None)
    def test_uniform_partition_is_disjoint_cover(self, n, n_nodes):
        if n < n_nodes:
            return
        part = BlockRowPartition.uniform(n, n_nodes)
        union = np.concatenate([part.indices(r) for r in range(n_nodes)])
        assert union.size == n
        assert np.array_equal(np.sort(union), np.arange(n))
        sizes = [part.size_of(r) for r in range(n_nodes)]
        assert max(sizes) - min(sizes) <= 1

    @given(
        n=st.integers(min_value=4, max_value=300),
        n_nodes=st.integers(min_value=1, max_value=16),
        index=st.integers(min_value=0, max_value=299),
    )
    @settings(max_examples=100, deadline=None)
    def test_owner_is_consistent_with_indices(self, n, n_nodes, index):
        if n < n_nodes or index >= n:
            return
        part = BlockRowPartition.uniform(n, n_nodes)
        owner = part.owner(index)
        assert index in part.indices(owner)

    @given(
        sizes=st.lists(st.integers(min_value=1, max_value=20), min_size=1, max_size=8)
    )
    @settings(max_examples=100, deadline=None)
    def test_to_local_roundtrip(self, sizes):
        part = BlockRowPartition.from_sizes(sizes)
        for rank in range(part.n_nodes):
            global_idx = part.indices(rank)
            local = part.to_local(rank, global_idx)
            assert np.array_equal(local, np.arange(part.size_of(rank)))


class TestQueueLaws:
    @given(
        capacity=st.integers(min_value=1, max_value=5),
        pushes=st.lists(st.integers(min_value=0, max_value=50), max_size=40),
    )
    @settings(max_examples=100, deadline=None)
    def test_capacity_never_exceeded(self, capacity, pushes):
        queue = RedundancyQueue(capacity)
        for j in pushes:
            queue.push(j)
            assert len(queue) <= capacity

    @given(pushes=st.lists(st.integers(min_value=0, max_value=30), max_size=40))
    @settings(max_examples=100, deadline=None)
    def test_fifo_eviction_order(self, pushes):
        queue = RedundancyQueue(2)
        evicted: list[int] = []
        inserted: list[int] = []
        for j in pushes:
            if j in queue:
                continue
            inserted.append(j)
            out = queue.push(j)
            if out is not None:
                evicted.append(out)
        # evictions happen in insertion order
        assert evicted == inserted[: len(evicted)]


class TestEq1Laws:
    @given(
        n_nodes=st.integers(min_value=2, max_value=64),
        src=st.integers(min_value=0, max_value=63),
        phi=st.integers(min_value=1, max_value=63),
    )
    @settings(max_examples=150, deadline=None)
    def test_destinations_distinct_and_not_self(self, n_nodes, src, phi):
        if src >= n_nodes:
            return
        dests = eq1_destinations(src, phi, n_nodes)
        assert len(dests) == min(phi, n_nodes - 1)
        assert src not in dests
        assert len(set(dests)) == len(dests)

    @given(
        n_nodes=st.integers(min_value=8, max_value=64),
        src=st.integers(min_value=0, max_value=63),
    )
    @settings(max_examples=100, deadline=None)
    def test_nearest_neighbours_first(self, n_nodes, src):
        if src >= n_nodes:
            return
        dests = eq1_destinations(src, 4, n_nodes)
        ring = lambda a, b: min((a - b) % n_nodes, (b - a) % n_nodes)
        distances = [ring(src, d) for d in dests]
        # paper's Eq. (1): the phi nearest neighbours, alternating sides
        assert distances == [1, 1, 2, 2]
