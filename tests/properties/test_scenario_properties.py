"""Hypothesis properties of the campaign scenario generators.

Invariants:

* every generated schedule is recoverable by construction (block
  widths never exceed ϕ or leave no survivor, iterations stay inside
  the undisturbed trajectory);
* for *any* generated failure scenario, the exact strategies (ESR and
  ESRP) recover the reference PCG trajectory: the solve converges in
  the reference iteration count and reproduces the reference solution
  within tolerance.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

import repro
from repro.campaign import ScenarioContext, ScenarioSpec, generate_schedule

N_NODES = 4

scenario_specs = st.one_of(
    st.builds(
        lambda fraction, location, width: ScenarioSpec.make(
            "fraction", fraction=fraction, location=location, width=width
        ),
        fraction=st.floats(min_value=0.1, max_value=0.9),
        location=st.sampled_from(["start", "center"]),
        width=st.integers(min_value=1, max_value=3),
    ),
    st.builds(
        lambda location: ScenarioSpec.make("worst_case", location=location),
        location=st.sampled_from(["start", "center"]),
    ),
    st.builds(
        lambda width, fraction, start: ScenarioSpec.make(
            "multi_node", width=width, fraction=fraction, start=start
        ),
        width=st.integers(min_value=1, max_value=3),
        fraction=st.floats(min_value=0.1, max_value=0.9),
        start=st.integers(min_value=0, max_value=7),
    ),
    st.builds(
        lambda count: ScenarioSpec.make("storm", count=count),
        count=st.integers(min_value=1, max_value=3),
    ),
    st.builds(
        lambda mtbf_fraction, seed_shift: ScenarioSpec.make(
            "mtbf", mtbf_fraction=mtbf_fraction
        ),
        mtbf_fraction=st.floats(min_value=0.3, max_value=0.8),
        seed_shift=st.just(0),
    ),
    # The fail-stop members of the fault taxonomy (repro.faults): their
    # events are exact-recovery node failures, so they share every
    # invariant of the historical generators.
    st.builds(
        lambda count, fraction: ScenarioSpec.make(
            "lossy", count=count, fraction=fraction
        ),
        count=st.integers(min_value=1, max_value=3),
        fraction=st.floats(min_value=0.1, max_value=0.9),
    ),
    st.builds(
        lambda epoch_fraction, leave_probability: ScenarioSpec.make(
            "churn",
            epoch_fraction=epoch_fraction,
            leave_probability=leave_probability,
        ),
        epoch_fraction=st.floats(min_value=0.15, max_value=0.5),
        leave_probability=st.floats(min_value=0.0, max_value=1.0),
    ),
)

#: All nine generator kinds with representative parameters — the
#: determinism property must cover the silent-corruption kind too,
#: which cannot join `scenario_specs` (SDC is invisible to exact
#: strategies, so the trajectory-reproduction property excludes it).
all_kind_specs = st.one_of(
    scenario_specs,
    st.just(ScenarioSpec.make("failure_free")),
    st.builds(
        lambda probability, mode: ScenarioSpec.make(
            "sdc", probability=probability, mode=mode
        ),
        probability=st.floats(min_value=0.0, max_value=0.2),
        mode=st.sampled_from(["bitflip", "scale"]),
    ),
)


@given(
    spec=all_kind_specs,
    phi=st.integers(min_value=1, max_value=2),
    seed=st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=40, deadline=None)
def test_every_generator_is_seed_deterministic(spec, phi, seed):
    # Identical seeds must yield identical schedules (event for event),
    # for all nine kinds — the campaign byte-identity contract rests on
    # this.
    ctx = ScenarioContext(
        n_nodes=N_NODES,
        phi=phi,
        strategy="esrp",
        T=10,
        reference_iterations=80,
        seed=seed,
    )
    first = [event.to_dict() for event in generate_schedule(spec, ctx)]
    second = [event.to_dict() for event in generate_schedule(spec, ctx)]
    assert first == second


@given(
    spec=scenario_specs,
    strategy=st.sampled_from(["esr", "esrp"]),
    phi=st.integers(min_value=1, max_value=2),
    seed=st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=20, deadline=None)
def test_generated_schedules_are_recoverable(spec, strategy, phi, seed):
    ctx = ScenarioContext(
        n_nodes=N_NODES,
        phi=phi,
        strategy=strategy,
        T=10,
        reference_iterations=80,
        seed=seed,
    )
    schedule = generate_schedule(spec, ctx)
    iterations = [event.iteration for event in schedule]
    assert iterations == sorted(iterations)
    for event in schedule:
        assert 1 <= event.iteration < ctx.reference_iterations
        assert event.width <= min(phi, N_NODES - 1)
        assert all(0 <= rank < N_NODES for rank in event.ranks)


@pytest.fixture(scope="module")
def tiny_problem():
    matrix, b, _ = repro.matrices.load("emilia_923_like", scale="tiny", seed=3)
    reference = repro.solve(matrix, b, n_nodes=N_NODES, strategy="reference")
    return matrix, b, reference


@given(
    spec=scenario_specs,
    strategy=st.sampled_from(["esr", "esrp"]),
    phi=st.integers(min_value=1, max_value=2),
    seed=st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=15, deadline=None)
def test_esr_esrp_reproduce_reference_trajectory(tiny_problem, spec, strategy, phi, seed):
    matrix, b, reference = tiny_problem
    ctx = ScenarioContext(
        n_nodes=N_NODES,
        phi=phi,
        strategy=strategy,
        T=10,
        reference_iterations=reference.iterations,
        seed=seed,
    )
    schedule = generate_schedule(spec, ctx)
    result = repro.solve(
        matrix,
        b,
        n_nodes=N_NODES,
        strategy=strategy,
        T=10,
        phi=phi,
        failures=schedule,
    )
    assert result.converged
    # Exact recovery preserves the trajectory: same length, same solution.
    assert result.iterations == reference.iterations
    assert result.executed_iterations >= reference.iterations
    error = np.linalg.norm(result.x - reference.x) / np.linalg.norm(reference.x)
    assert error < 1e-6
