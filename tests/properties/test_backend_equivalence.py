"""Property: the kernel backends are interchangeable, bit for bit.

The acceptance bar of the kernel-backend layer: for every strategy,
preconditioner, ϕ and failure scenario — failure-free, worst-case and
storm regimes included — each backend produces the same
:class:`~repro.api.SolveReport` as its reference:

* bit-identical solution vectors and residual trajectories,
* identical per-channel :class:`~repro.cluster.statistics.ClusterStats`,
* identical simulated clocks (``modeled_time``), *including* under a
  noisy cost model, where equality additionally proves both backends
  consume the cost-noise RNG in the same charge order.

The pins form a chain: ``vectorized`` is pinned against the ``looped``
per-rank reference semantics, and ``compiled`` is pinned against
``vectorized`` exactly the same way — so all three are transitively
bit-identical and any backend can serve any stored record.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

import repro
from repro.campaign import ScenarioContext, ScenarioSpec, generate_schedule
from repro.cluster import CostModel
from repro.matrices import poisson_2d

N_NODES = 4
NOISY = CostModel(alpha=1e-6, beta=1e-9, gamma=1e-9, mu=1e-11, noise=0.05)

#: (reference, candidate) pins; each candidate must reproduce its
#: reference bit for bit.
BACKEND_PAIRS = (
    ("looped", "vectorized"),
    ("vectorized", "compiled"),
)


@pytest.fixture(scope="module")
def problem():
    matrix = poisson_2d(8)
    rng = np.random.default_rng(42)
    b = matrix @ rng.standard_normal(matrix.shape[0])
    return matrix, b


def _sessions(problem, pair, cost_model=None, seed=0):
    matrix, b = problem
    return tuple(
        repro.SolverSession(
            matrix, b, n_nodes=N_NODES, cost_model=cost_model, seed=seed,
            backend=backend,
        )
        for backend in pair
    )


def _assert_reports_identical(report_a, report_b, pair):
    assert report_a.backend == pair[0] and report_b.backend == pair[1]
    assert report_a.converged == report_b.converged
    assert report_a.iterations == report_b.iterations
    assert report_a.executed_iterations == report_b.executed_iterations
    assert report_a.relative_residual == report_b.relative_residual
    assert report_a.modeled_time == report_b.modeled_time
    assert report_a.recovery_time == report_b.recovery_time
    assert report_a.stats == report_b.stats
    np.testing.assert_array_equal(report_a.x, report_b.x)
    assert (
        report_a.result.residual_history == report_b.result.residual_history
    )


scenario_specs = st.one_of(
    st.just(ScenarioSpec.make("failure_free")),
    st.builds(
        lambda location: ScenarioSpec.make("worst_case", location=location),
        location=st.sampled_from(["start", "center"]),
    ),
    st.builds(
        lambda count: ScenarioSpec.make("storm", count=count),
        count=st.integers(min_value=1, max_value=3),
    ),
    st.builds(
        lambda width, fraction: ScenarioSpec.make(
            "multi_node", width=width, fraction=fraction
        ),
        width=st.integers(min_value=1, max_value=2),
        fraction=st.floats(min_value=0.1, max_value=0.9),
    ),
)


@settings(max_examples=25, deadline=None)
@given(
    pair=st.sampled_from(BACKEND_PAIRS),
    spec=scenario_specs,
    strategy=st.sampled_from(["reference", "esr", "esrp", "imcr"]),
    T=st.sampled_from([5, 10]),
    phi=st.integers(min_value=1, max_value=2),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_backends_bit_identical_over_random_scenarios(
    problem, pair, spec, strategy, T, phi, seed
):
    session_a, session_b = _sessions(problem, pair, seed=seed)
    reference = session_b.reference()

    if strategy == "reference" or not spec.injects_failures:
        failures = ()
    else:
        ctx = ScenarioContext(
            n_nodes=N_NODES,
            phi=phi,
            strategy=strategy,
            T=T,
            reference_iterations=reference.C,
            seed=seed,
        )
        failures = generate_schedule(spec, ctx)
    if strategy == "reference" and spec.injects_failures:
        failures = ()

    request = dict(strategy=strategy, T=T, phi=phi, failures=failures, seed=seed)
    report_a = session_a.solve(repro.SolveRequest(**request))
    report_b = session_b.solve(repro.SolveRequest(**request))
    _assert_reports_identical(report_a, report_b, pair)


@pytest.mark.parametrize("pair", BACKEND_PAIRS, ids="/".join)
@pytest.mark.parametrize("strategy", ["reference", "esr", "esrp", "imcr"])
def test_backends_identical_under_noisy_cost_model(problem, pair, strategy):
    """Noise forces both backends through the same RNG draw sequence."""
    session_a, session_b = _sessions(problem, pair, cost_model=NOISY, seed=7)
    failures = (
        [repro.FailureEvent(12, (1,))] if strategy != "reference" else []
    )
    request = dict(strategy=strategy, T=8, phi=1, failures=failures)
    _assert_reports_identical(
        session_a.solve(repro.SolveRequest(**request)),
        session_b.solve(repro.SolveRequest(**request)),
        pair,
    )


@pytest.mark.parametrize("pair", BACKEND_PAIRS, ids="/".join)
@pytest.mark.parametrize("preconditioner", ["identity", "jacobi", "block_ssor"])
def test_backends_identical_across_preconditioners(problem, pair, preconditioner):
    session_a, session_b = _sessions(problem, pair, seed=3)
    request = dict(
        strategy="esrp", T=6, phi=1,
        preconditioner=preconditioner,
        failures=[repro.FailureEvent(9, (2,))],
    )
    _assert_reports_identical(
        session_a.solve(repro.SolveRequest(**request)),
        session_b.solve(repro.SolveRequest(**request)),
        pair,
    )


@pytest.mark.parametrize("pair", BACKEND_PAIRS, ids="/".join)
def test_backends_identical_with_polynomial_and_imcr(problem, pair):
    """A *global* preconditioner: its SpMVs ride the backend too."""
    session_a, session_b = _sessions(problem, pair, seed=5)
    request = dict(
        strategy="imcr", T=6, phi=1,
        preconditioner="polynomial",
        failures=[repro.FailureEvent(9, (0,))],
    )
    _assert_reports_identical(
        session_a.solve(repro.SolveRequest(**request)),
        session_b.solve(repro.SolveRequest(**request)),
        pair,
    )
