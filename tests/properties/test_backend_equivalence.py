"""Property: looped and vectorized backends are interchangeable, bit for bit.

The acceptance bar of the kernel-backend layer: for every strategy,
preconditioner, ϕ and failure scenario — failure-free, worst-case and
storm regimes included — the ``vectorized`` backend produces the same
:class:`~repro.api.SolveReport` as the ``looped`` reference semantics:

* bit-identical solution vectors and residual trajectories,
* identical per-channel :class:`~repro.cluster.statistics.ClusterStats`,
* identical simulated clocks (``modeled_time``), *including* under a
  noisy cost model, where equality additionally proves both backends
  consume the cost-noise RNG in the same charge order.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

import repro
from repro.campaign import ScenarioContext, ScenarioSpec, generate_schedule
from repro.cluster import CostModel
from repro.matrices import poisson_2d

N_NODES = 4
NOISY = CostModel(alpha=1e-6, beta=1e-9, gamma=1e-9, mu=1e-11, noise=0.05)


@pytest.fixture(scope="module")
def problem():
    matrix = poisson_2d(8)
    rng = np.random.default_rng(42)
    b = matrix @ rng.standard_normal(matrix.shape[0])
    return matrix, b


def _sessions(problem, cost_model=None, seed=0):
    matrix, b = problem
    return tuple(
        repro.SolverSession(
            matrix, b, n_nodes=N_NODES, cost_model=cost_model, seed=seed,
            backend=backend,
        )
        for backend in ("looped", "vectorized")
    )


def _assert_reports_identical(report_l, report_v):
    assert report_v.backend == "vectorized" and report_l.backend == "looped"
    assert report_l.converged == report_v.converged
    assert report_l.iterations == report_v.iterations
    assert report_l.executed_iterations == report_v.executed_iterations
    assert report_l.relative_residual == report_v.relative_residual
    assert report_l.modeled_time == report_v.modeled_time
    assert report_l.recovery_time == report_v.recovery_time
    assert report_l.stats == report_v.stats
    np.testing.assert_array_equal(report_l.x, report_v.x)
    assert (
        report_l.result.residual_history == report_v.result.residual_history
    )


scenario_specs = st.one_of(
    st.just(ScenarioSpec.make("failure_free")),
    st.builds(
        lambda location: ScenarioSpec.make("worst_case", location=location),
        location=st.sampled_from(["start", "center"]),
    ),
    st.builds(
        lambda count: ScenarioSpec.make("storm", count=count),
        count=st.integers(min_value=1, max_value=3),
    ),
    st.builds(
        lambda width, fraction: ScenarioSpec.make(
            "multi_node", width=width, fraction=fraction
        ),
        width=st.integers(min_value=1, max_value=2),
        fraction=st.floats(min_value=0.1, max_value=0.9),
    ),
)


@settings(max_examples=25, deadline=None)
@given(
    spec=scenario_specs,
    strategy=st.sampled_from(["reference", "esr", "esrp", "imcr"]),
    T=st.sampled_from([5, 10]),
    phi=st.integers(min_value=1, max_value=2),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_backends_bit_identical_over_random_scenarios(
    problem, spec, strategy, T, phi, seed
):
    session_l, session_v = _sessions(problem, seed=seed)
    reference = session_v.reference()

    if strategy == "reference" or not spec.injects_failures:
        failures = ()
    else:
        ctx = ScenarioContext(
            n_nodes=N_NODES,
            phi=phi,
            strategy=strategy,
            T=T,
            reference_iterations=reference.C,
            seed=seed,
        )
        failures = generate_schedule(spec, ctx)
    if strategy == "reference" and spec.injects_failures:
        failures = ()

    request = dict(strategy=strategy, T=T, phi=phi, failures=failures, seed=seed)
    report_l = session_l.solve(repro.SolveRequest(**request))
    report_v = session_v.solve(repro.SolveRequest(**request))
    _assert_reports_identical(report_l, report_v)


@pytest.mark.parametrize("strategy", ["reference", "esr", "esrp", "imcr"])
def test_backends_identical_under_noisy_cost_model(problem, strategy):
    """Noise forces both backends through the same RNG draw sequence."""
    session_l, session_v = _sessions(problem, cost_model=NOISY, seed=7)
    failures = (
        [repro.FailureEvent(12, (1,))] if strategy != "reference" else []
    )
    request = dict(strategy=strategy, T=8, phi=1, failures=failures)
    _assert_reports_identical(
        session_l.solve(repro.SolveRequest(**request)),
        session_v.solve(repro.SolveRequest(**request)),
    )


@pytest.mark.parametrize("preconditioner", ["identity", "jacobi", "block_ssor"])
def test_backends_identical_across_preconditioners(problem, preconditioner):
    session_l, session_v = _sessions(problem, seed=3)
    request = dict(
        strategy="esrp", T=6, phi=1,
        preconditioner=preconditioner,
        failures=[repro.FailureEvent(9, (2,))],
    )
    _assert_reports_identical(
        session_l.solve(repro.SolveRequest(**request)),
        session_v.solve(repro.SolveRequest(**request)),
    )


def test_backends_identical_with_polynomial_and_imcr(problem):
    """A *global* preconditioner: its SpMVs ride the backend too."""
    session_l, session_v = _sessions(problem, seed=5)
    request = dict(
        strategy="imcr", T=6, phi=1,
        preconditioner="polynomial",
        failures=[repro.FailureEvent(9, (0,))],
    )
    _assert_reports_identical(
        session_l.solve(repro.SolveRequest(**request)),
        session_v.solve(repro.SolveRequest(**request)),
    )
