"""Hypothesis property tests on the resilient solver itself.

Invariants:
* PCG on random SPD systems converges to the true solution;
* a failure at a random admissible iteration, recovered by any of the
  exact strategies, still converges to the true solution with the same
  iteration count as the undisturbed run (trajectory preservation).
"""

import numpy as np
from hypothesis import given, settings, strategies as st

import repro
from repro.matrices import random_banded_spd


@given(
    n=st.integers(min_value=16, max_value=64),
    bandwidth=st.integers(min_value=1, max_value=6),
    seed=st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=20, deadline=None)
def test_reference_pcg_solves_random_spd(n, bandwidth, seed):
    bandwidth = min(bandwidth, n - 1)
    matrix = random_banded_spd(n, bandwidth=bandwidth, density=0.8, seed=seed)
    x_true = np.random.default_rng(seed).standard_normal(n)
    b = matrix @ x_true
    result = repro.solve(matrix, b, n_nodes=4, strategy="reference", rtol=1e-10)
    assert result.converged
    np.testing.assert_allclose(result.x, x_true, atol=1e-6)


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    strategy=st.sampled_from(["esr", "esrp", "imcr"]),
    phi=st.integers(min_value=1, max_value=2),
    fraction=st.floats(min_value=0.2, max_value=0.9),
)
@settings(max_examples=15, deadline=None)
def test_recovery_preserves_solution_and_trajectory(seed, strategy, phi, fraction):
    matrix, b, _ = repro.matrices.load("emilia_923_like", scale="tiny", seed=seed % 7)
    reference = repro.solve(matrix, b, n_nodes=4, strategy="reference")
    T = 10
    j_fail = max(1, int(reference.iterations * fraction))
    ranks = tuple(range(1, 1 + phi))
    result = repro.solve(
        matrix,
        b,
        n_nodes=4,
        strategy=strategy,
        T=T,
        phi=phi,
        failures=[repro.FailureEvent(j_fail, ranks)],
    )
    assert result.converged
    np.testing.assert_allclose(result.x, reference.x, atol=1e-6)
    # Exact strategies preserve the trajectory (unless an early failure
    # forced a fallback restart, which shows as a RESTART event).
    from repro.events import EventKind

    if result.events.first(EventKind.RESTART) is None:
        assert result.iterations == reference.iterations
