"""Hypothesis property tests for the ASpMV redundancy invariant.

The paper's claim (§2.2.1): after the augmented product, every entry of
the input vector is held by at least ϕ nodes other than its owner, so
any simultaneous failure of up to ϕ nodes leaves at least one copy.
We check it over random matrices, partitions and ϕ, for both selection
rules.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.cluster import VirtualCluster, zero_cost_model
from repro.core.redundancy import RedundancyQueue
from repro.distribution import (
    ASpMVExecutor,
    BlockRowPartition,
    DistributedMatrix,
    DistributedVector,
    RedundancyPlan,
    gather_redundant_copy,
)
from repro.matrices import random_banded_spd


matrix_params = st.tuples(
    st.integers(min_value=12, max_value=40),  # n
    st.integers(min_value=0, max_value=8),  # bandwidth
    st.floats(min_value=0.1, max_value=1.0),  # density
    st.integers(min_value=0, max_value=1000),  # seed
)


@given(
    params=matrix_params,
    n_nodes=st.integers(min_value=2, max_value=6),
    phi=st.integers(min_value=1, max_value=5),
    rule=st.sampled_from(["paper", "greedy"]),
)
@settings(max_examples=60, deadline=None)
def test_every_entry_has_phi_nonowner_copies(params, n_nodes, phi, rule):
    n, bandwidth, density, seed = params
    bandwidth = min(bandwidth, n - 1)
    matrix = random_banded_spd(n, bandwidth=bandwidth, density=density, seed=seed)
    partition = BlockRowPartition.uniform(n, n_nodes)
    cluster = VirtualCluster(n_nodes, cost_model=zero_cost_model(), seed=0)
    dmatrix = DistributedMatrix(cluster, partition, matrix)
    plan = RedundancyPlan(dmatrix.plan, phi, rule=rule)
    effective_phi = min(phi, n_nodes - 1)
    assert plan.min_copies() >= effective_phi


@given(
    params=matrix_params,
    n_nodes=st.integers(min_value=3, max_value=6),
    phi=st.integers(min_value=1, max_value=3),
    start=st.integers(min_value=0, max_value=5),
    rule=st.sampled_from(["paper", "greedy"]),
)
@settings(max_examples=30, deadline=None)
def test_contiguous_failures_always_recoverable(params, n_nodes, phi, start, rule):
    """Any contiguous block of ψ ≤ ϕ failures leaves a recoverable copy."""
    n, bandwidth, density, seed = params
    bandwidth = min(bandwidth, n - 1)
    phi = min(phi, n_nodes - 1)
    matrix = random_banded_spd(n, bandwidth=bandwidth, density=density, seed=seed)
    partition = BlockRowPartition.uniform(n, n_nodes)
    cluster = VirtualCluster(n_nodes, cost_model=zero_cost_model(), seed=0)
    dmatrix = DistributedMatrix(cluster, partition, matrix)
    executor = ASpMVExecutor(dmatrix, phi=phi, rule=rule)
    queue = RedundancyQueue(2)

    rng = np.random.default_rng(seed)
    x = rng.standard_normal(n)
    dx = DistributedVector.from_global(cluster, partition, x)
    executor.multiply_augmented(dx, 0, queue)

    failed = tuple(sorted(((start + i) % n_nodes) for i in range(phi)))
    cluster.fail(failed)
    cluster.replace(failed)
    gathered = gather_redundant_copy(cluster, partition, 0, failed)
    for rank in failed:
        lo, hi = partition.bounds(rank)
        np.testing.assert_allclose(gathered[rank], x[lo:hi])


@given(
    params=matrix_params,
    n_nodes=st.integers(min_value=2, max_value=6),
    phi=st.integers(min_value=1, max_value=3),
)
@settings(max_examples=30, deadline=None)
def test_augmented_product_equals_plain_product(params, n_nodes, phi):
    n, bandwidth, density, seed = params
    bandwidth = min(bandwidth, n - 1)
    matrix = random_banded_spd(n, bandwidth=bandwidth, density=density, seed=seed)
    partition = BlockRowPartition.uniform(n, n_nodes)
    cluster = VirtualCluster(n_nodes, cost_model=zero_cost_model(), seed=0)
    dmatrix = DistributedMatrix(cluster, partition, matrix)
    executor = ASpMVExecutor(dmatrix, phi=min(phi, n_nodes - 1))
    queue = RedundancyQueue(2)
    x = np.random.default_rng(seed).standard_normal(n)
    dx = DistributedVector.from_global(cluster, partition, x)
    result = executor.multiply_augmented(dx, 0, queue)
    np.testing.assert_allclose(result.to_global(), matrix @ x, atol=1e-10)
