"""Seeded chaos/property harness for the durable work queue.

One *schedule* is a randomized — but fully seeded and reproducible —
adversarial scenario driven against real worker subprocesses:

* **SIGKILL** — workers are killed at random points mid-sweep;
* **injected task failures** — a deterministic *fail-N-times* hook:
  selected runs raise on their first N execution attempts, where the
  attempt number is read from the store's retry ledger, so the failure
  pattern is exact regardless of which worker (or how many, or after
  how many crashes) executes the task;
* **lease expiry** — "ghost" claims that never heartbeat strand tasks
  behind soon-to-expire leases that survivors must reclaim;
* **mid-compaction kills** — workers compact aggressively with a
  widened publish→truncate window, so kills land inside compaction.

After every schedule the rescuer drains the queue and the harness
asserts the subsystem's whole contract at once:

* the collect is **byte-identical** to a serial run of the same spec
  (minus exactly the dead-lettered runs, when the schedule injects
  unrecoverable failures) — no record lost, none duplicated;
* the retry ledger holds **exactly** ``min(N, max_attempts)`` entries
  per injected run — crashes never masquerade as failures — and every
  entry carries the injected error;
* dead-letter markers exist for precisely the runs whose injected
  failure count reaches ``max_attempts``, with full provenance, and
  ``status`` reports them (never silently drops them).
"""

from __future__ import annotations

import dataclasses
import os
import pathlib
import random
import signal
import subprocess
import sys
import threading
import time

from repro.campaign.results import CampaignResult
from repro.campaign.spec import CampaignSpec, expand_spec
from repro.queue import QueueStore, collect, run_worker

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
SRC = REPO_ROOT / "src"

#: Queue-wide retry bound used by every schedule (small enough that
#: seeded fail-counts regularly reach it and dead-letter).
MAX_ATTEMPTS = 2


class ChaosInjectedError(RuntimeError):
    """The deterministic failure raised by the fail-N-times hook."""


@dataclasses.dataclass(frozen=True)
class ChaosPlan:
    """One seeded adversarial schedule."""

    seed: int
    n_workers: int
    #: Per worker: seconds after spawn to SIGKILL it (None = let live).
    kill_after: tuple[float | None, ...]
    #: Seconds each worker sleeps per task (widens the kill window).
    task_delay: float
    ttl: float
    #: Worker compaction cadence (None = no compaction this schedule).
    compact_every: int | None
    #: Seconds to stall between segment publish and shard truncate.
    compact_pause: float
    #: run_id -> fail the first N execution attempts.
    injected: dict[str, int]
    #: Tasks pre-claimed by ghosts whose leases must expire + reclaim.
    ghost_leases: int
    affine: bool
    #: Task-store layout the schedule submits with (3 = sharded
    #: segments, 2 = legacy per-task files — the compat pin).
    layout: int = 3
    #: Max tasks per v3 task segment; small values force multiple
    #: shards per configuration group, exercising shard-wise claiming.
    shard_size: int = 1024

    @property
    def dead_runs(self) -> frozenset[str]:
        """Runs whose injected failures exhaust the retry budget."""
        return frozenset(
            run_id for run_id, n in self.injected.items() if n >= MAX_ATTEMPTS
        )


def make_plan(seed: int, spec: CampaignSpec) -> ChaosPlan:
    """Derive one schedule from a seed (pure function of the inputs)."""
    rng = random.Random(seed)
    run_ids = [run.run_id for run in expand_spec(spec)]
    n_workers = rng.choice((1, 2, 2, 3))
    kill_after = tuple(
        rng.uniform(0.2, 1.2) if rng.random() < 0.6 else None
        for _ in range(n_workers)
    )
    injected_ids = rng.sample(run_ids, k=rng.randint(0, min(3, len(run_ids))))
    injected = {
        run_id: rng.randint(1, MAX_ATTEMPTS) for run_id in injected_ids
    }
    compacting = rng.random() < 0.7
    return ChaosPlan(
        seed=seed,
        n_workers=n_workers,
        kill_after=kill_after,
        task_delay=rng.uniform(0.03, 0.1),
        ttl=rng.uniform(0.8, 1.5),
        compact_every=rng.choice((2, 3, 5)) if compacting else None,
        compact_pause=rng.uniform(0.01, 0.05) if compacting else 0.0,
        injected=injected,
        ghost_leases=rng.randint(0, 2),
        affine=rng.random() < 0.7,
        shard_size=rng.choice((3, 5, 1024)),
    )


def install_chaos_hooks(queue_dir, plan: ChaosPlan, task_delay: float):
    """Wrap the campaign executor with the schedule's failure injection.

    The fail-N-times hook is **ledger-driven**: a selected run raises
    while the store's retry ledger for its task holds fewer than N
    entries.  Attempts that never reach a ledger write (SIGKILLed
    mid-task) don't count — exactly like the retry protocol itself —
    so the end state is deterministic: the ledger ends with exactly
    ``min(N, max_attempts)`` injected failures no matter the schedule.

    Returns the original ``run_one`` so callers can restore it.
    """
    import repro.campaign.executor as executor_module

    store = QueueStore(queue_dir)
    task_by_run = {task.run_id: task.task_id for task in store.iter_tasks()}
    real_run_one = executor_module.run_one

    def chaotic_run_one(run):
        if task_delay:
            time.sleep(task_delay)
        budget = plan.injected.get(run.run_id, 0)
        if budget:
            attempts = len(store.read_retries(task_by_run[run.run_id]))
            if attempts < budget:
                raise ChaosInjectedError(
                    f"chaos-injected failure #{attempts + 1} for {run.run_id}"
                )
        return real_run_one(run)

    executor_module.run_one = chaotic_run_one
    if plan.compact_pause:
        QueueStore._compact_pause = plan.compact_pause
    return real_run_one


def restore_hooks(real_run_one) -> None:
    import repro.campaign.executor as executor_module

    executor_module.run_one = real_run_one
    QueueStore._compact_pause = 0.0


_CHILD_TEMPLATE = """
import sys
sys.path.insert(0, {src!r})
sys.path.insert(0, {root!r})
from tests.queue.chaos import ChaosPlan, install_chaos_hooks
import json
plan = ChaosPlan(**json.loads({plan_json!r}))
install_chaos_hooks({queue!r}, plan, task_delay=plan.task_delay)
from repro.queue import run_worker
run_worker(
    {queue!r},
    worker_id={worker_id!r},
    ttl=plan.ttl,
    affine=plan.affine,
    compact_every=plan.compact_every,
)
"""


def _plan_json(plan: ChaosPlan) -> str:
    import json

    payload = dataclasses.asdict(plan)
    payload["kill_after"] = list(plan.kill_after)
    return json.dumps(payload)


def _spawn_chaos_worker(queue_dir, plan: ChaosPlan, index: int) -> subprocess.Popen:
    code = _CHILD_TEMPLATE.format(
        src=str(SRC),
        root=str(REPO_ROOT),
        plan_json=_plan_json(plan),
        queue=str(queue_dir),
        worker_id=f"chaos{index}",
    )
    return subprocess.Popen(
        [sys.executable, "-c", code],
        stdout=subprocess.DEVNULL,
        stderr=subprocess.PIPE,
    )


def run_schedule(
    tmp_path: pathlib.Path,
    spec: CampaignSpec,
    serial: CampaignResult,
    plan: ChaosPlan,
) -> None:
    """Execute one schedule end to end and assert the queue contract."""
    queue_dir = tmp_path / f"chaos-{plan.seed}"
    store = QueueStore.submit(
        spec, queue_dir, max_attempts=MAX_ATTEMPTS,
        layout=plan.layout, shard_size=plan.shard_size,
    )

    # Lease expiry: ghosts claim tasks and vanish without heartbeating.
    for index in range(plan.ghost_leases):
        store.claim(f"ghost{index}", ttl=min(plan.ttl, 1.0))

    # The storm: N real worker subprocesses, some SIGKILLed mid-sweep.
    procs = [
        _spawn_chaos_worker(queue_dir, plan, index)
        for index in range(plan.n_workers)
    ]
    started = time.monotonic()
    kills = sorted(
        (delay, index)
        for index, delay in enumerate(plan.kill_after)
        if delay is not None
    )
    for delay, index in kills:
        remaining = started + delay - time.monotonic()
        if remaining > 0:
            time.sleep(remaining)
        if procs[index].poll() is None:
            os.kill(procs[index].pid, signal.SIGKILL)
    for index, proc in enumerate(procs):
        _, stderr = proc.communicate(timeout=180)
        if plan.kill_after[index] is None:
            assert proc.returncode == 0, stderr.decode()

    # Recovery: a clean rescuer (still honouring the injection plan —
    # the fail-N budget is global, not per-worker) drains what's left,
    # waiting out stranded leases.
    real = install_chaos_hooks(queue_dir, plan, task_delay=0.0)
    try:
        run_worker(
            queue_dir,
            worker_id="rescuer",
            ttl=plan.ttl,
            wait=True,
            affine=plan.affine,
            compact_every=plan.compact_every,
        )
    finally:
        restore_hooks(real)

    _assert_contract(tmp_path, store, spec, serial, plan)


def legacy_heartbeat(store: QueueStore, task_id: str, worker_id: str) -> bool:
    """The pre-fix renewal: read the lease, then *rewrite the path*.

    Kept as the regression foil for the resurrection schedule below —
    between its ownership check and its ``_atomic_write_json`` a
    reclaimer can tombstone the lease and claim the task, after which
    this replace recreates the stalled worker's lease over the
    reclaimer's: the exact race :meth:`QueueStore.heartbeat` now
    prevents.
    """
    from repro.queue.store import _atomic_write_json

    lease = store.read_lease(task_id)
    if lease is None or lease.worker_id != worker_id:
        return False
    if store._heartbeat_pause:
        time.sleep(store._heartbeat_pause)
    _atomic_write_json(
        store.lease_path(task_id), lease.renewed(time.time()).to_dict()
    )
    return True


def run_resurrection_schedule(tmp_path, spec: CampaignSpec, renew) -> dict:
    """Deterministic heartbeat-vs-reclaim interleaving (the resurrection race).

    A "stalled" worker claims a task with a tiny TTL and goes silent
    past expiry.  Its renewal then runs with the store's
    ``_heartbeat_pause`` test hook widening the window between the
    renewal's ownership check and the renewal itself; mid-pause, a
    reclaimer tombstones the expired lease and claims the task.  The
    schedule reports what happened so callers can assert either
    direction:

    * ``renew=QueueStore.heartbeat`` (post-fix) — the renewal must
      return ``False`` and the reclaimer's lease must survive;
    * ``renew=legacy_heartbeat`` (pre-fix foil) — the renewal
      resurrects the stalled worker's lease over the reclaimer's,
      demonstrating the schedule really does reproduce the race.
    """
    queue_dir = tmp_path / "resurrection"
    store = QueueStore.submit(spec, queue_dir, max_attempts=MAX_ATTEMPTS)
    ttl = 0.2
    task = store.claim("stalled", ttl=ttl)
    assert task is not None
    time.sleep(ttl * 1.5)  # the stalled worker sleeps past its TTL

    outcome: dict = {}
    QueueStore._heartbeat_pause = 0.5
    try:
        renewal = threading.Thread(
            target=lambda: outcome.update(
                renewed=renew(store, task.task_id, "stalled")
            )
        )
        renewal.start()
        # Let the renewal pass its ownership check and enter the pause,
        # then reclaim + re-claim from a fresh handle (another process,
        # as far as the store is concerned).
        time.sleep(0.25)
        claimed = QueueStore(queue_dir).try_claim_task(
            task.task_id, "reclaimer", ttl=60
        )
        renewal.join(timeout=30)
    finally:
        QueueStore._heartbeat_pause = 0.0
    final = store.read_lease(task.task_id)
    return {
        "renewed": outcome.get("renewed"),
        "reclaimer_got_task": claimed is not None,
        "final_holder": final.worker_id if final is not None else None,
        "final_lease_live": final is not None and not final.expired(time.time()),
    }


def _assert_contract(tmp_path, store, spec, serial, plan: ChaosPlan) -> None:
    status = store.status()
    assert status.drained, f"schedule {plan.seed}: {status.render()}"

    # --- retry / dead-letter accounting matches the injection exactly.
    task_by_run = {task.run_id: task.task_id for task in store.iter_tasks()}
    dead_runs = plan.dead_runs
    failed_markers = {o.run_id: o for o in store.failed_outcomes()}
    assert set(failed_markers) == set(dead_runs), (
        f"schedule {plan.seed}: dead-letter set mismatch "
        f"({sorted(failed_markers)} != {sorted(dead_runs)})"
    )
    for run_id, budget in plan.injected.items():
        ledger = store.read_retries(task_by_run[run_id])
        expected = min(budget, MAX_ATTEMPTS)
        assert len(ledger) == expected, (
            f"schedule {plan.seed}: run {run_id} has {len(ledger)} ledger "
            f"entries, expected {expected}"
        )
        assert all("chaos-injected" in e["error"] for e in ledger)
        assert [e["attempt"] for e in ledger] == list(range(1, expected + 1))
    for run_id, task_id in task_by_run.items():
        if run_id not in plan.injected:
            # Crashes must never masquerade as failures.
            assert store.read_retries(task_id) == []
    assert status.retried == len(plan.injected)
    assert status.failed == len(dead_runs)
    for run_id, outcome in failed_markers.items():
        assert outcome.attempts == MAX_ATTEMPTS
        assert len(outcome.failure_log) == MAX_ATTEMPTS

    # --- the collect is byte-identical to serial (minus dead runs):
    # nothing lost, nothing duplicated, dedupe verified by equality.
    if dead_runs:
        merged = collect(store.queue_dir, allow_partial=True)
        expected_result = CampaignResult(
            spec=spec.to_dict(),
            records=[r for r in serial.records if r.run_id not in dead_runs],
        )
    else:
        merged = collect(store.queue_dir)
        expected_result = serial
    a = expected_result.to_json(tmp_path / f"expected-{plan.seed}.json")
    b = merged.to_json(tmp_path / f"collected-{plan.seed}.json")
    assert a.read_bytes() == b.read_bytes(), (
        f"schedule {plan.seed}: collect is not byte-identical to serial"
    )

    # --- compaction actually participated when the plan asked for it.
    # A killed worker may die before any cadence boundary, but the
    # rescuer is never killed: once *it* completed a full cadence of
    # records, its segments must exist.
    if plan.compact_every is not None:
        rescuer_done = sum(
            1 for o in store.outcomes()
            if o.status == "done" and o.worker_id == "rescuer"
        )
        if rescuer_done >= plan.compact_every:
            assert store.segment_paths("rescuer"), (
                f"schedule {plan.seed}: rescuer completed {rescuer_done} "
                "records but published no compacted segment"
            )
