"""CLI surface of the queue: submit → worker → status → collect."""

import json

import pytest

from repro.campaign import CampaignResult
from repro.cli import main

from .conftest import queue_spec

pytestmark = [pytest.mark.campaign, pytest.mark.integration]


@pytest.fixture
def spec_file(tmp_path):
    path = tmp_path / "spec.json"
    path.write_text(json.dumps(queue_spec().to_dict()))
    return path


def test_full_queue_lifecycle_via_cli(tmp_path, spec_file, capsys):
    queue = str(tmp_path / "sweep.queue")
    out = tmp_path / "campaign.json"
    csv = tmp_path / "campaign.csv"

    assert main(["campaign", "submit", "--queue", queue, "--spec", str(spec_file)]) == 0
    submitted = capsys.readouterr().out
    assert "4 tasks submitted" in submitted

    assert main(["campaign", "status", "--queue", queue]) == 0
    assert "4 pending" in capsys.readouterr().out

    assert main(["campaign", "worker", "--queue", queue, "--id", "cli-w1"]) == 0
    worker_out = capsys.readouterr().out
    assert "cli-w1" in worker_out
    assert "4 done, 0 retried, 0 dead-lettered" in worker_out
    assert "s/task" in worker_out  # the progress/ETA line rendered

    assert main(["campaign", "status", "--queue", queue, "--json"]) == 0
    status = json.loads(capsys.readouterr().out)
    assert status["done"] == 4 and status["workers"] == {"cli-w1": 4}

    assert main([
        "campaign", "collect", "--queue", queue,
        "--out", str(out), "--csv", str(csv), "--quiet",
    ]) == 0
    capsys.readouterr()
    result = CampaignResult.from_json(out)
    assert len(result.records) == 4
    assert len(CampaignResult.from_csv(csv).records) == 4


def test_run_with_queue_dir_mode(tmp_path, spec_file, capsys):
    queue = str(tmp_path / "run.queue")
    out = tmp_path / "campaign.json"
    assert main([
        "campaign", "run", "--spec", str(spec_file),
        "--queue-dir", queue, "--workers", "1", "--out", str(out),
    ]) == 0
    assert "queue worker(s)" in capsys.readouterr().out
    assert len(CampaignResult.from_json(out).records) == 4


def test_worker_on_unsubmitted_queue_fails_cleanly(tmp_path, capsys):
    code = main(["campaign", "worker", "--queue", str(tmp_path / "nope")])
    assert code == 2
    assert "not a submitted queue" in capsys.readouterr().err
