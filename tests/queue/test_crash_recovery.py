"""Crash recovery: SIGKILL a real worker process mid-sweep, resume, verify.

The acceptance property of the queue subsystem (and the poetic heart
of this PR — checkpoint-recovery for the sweep infrastructure itself):

* no completed run is lost (its spooled record survives the kill),
* at most the in-flight tasks are re-executed after the lease TTL,
* the collected result is byte-identical to a serial run.
"""

import os
import pathlib
import signal
import subprocess
import sys
import time

import pytest

from repro.campaign import execute_campaign
from repro.queue import QueueStore, collect, iter_shard_records, run_worker

from .conftest import queue_spec

pytestmark = [pytest.mark.campaign, pytest.mark.integration, pytest.mark.slow]

SRC = str(pathlib.Path(__file__).resolve().parents[2] / "src")

#: Enough runs that the worker is reliably mid-sweep when killed.
CRASH_SPEC = queue_spec(name="crash", repetitions=3)  # 12 tasks

#: Worker child that sleeps before each solve, so the kill window per
#: task is wide and deterministic-enough without being slow.
CHILD_TEMPLATE = """
import sys, time
sys.path.insert(0, {src!r})
import repro.campaign.executor as executor_module
real_run_one = executor_module.run_one
def slowed(run):
    time.sleep({delay})
    return real_run_one(run)
executor_module.run_one = slowed
from repro.queue import run_worker
run_worker({queue!r}, worker_id={worker_id!r}, ttl={ttl})
"""


def _spawn_worker(queue_dir, worker_id, delay=0.25, ttl=1.5) -> subprocess.Popen:
    code = CHILD_TEMPLATE.format(
        src=SRC, queue=str(queue_dir), worker_id=worker_id, delay=delay, ttl=ttl
    )
    return subprocess.Popen(
        [sys.executable, "-c", code],
        stdout=subprocess.DEVNULL,
        stderr=subprocess.PIPE,
    )


def _wait_for_done(store, minimum, timeout=60.0):
    deadline = time.time() + timeout
    while time.time() < deadline:
        if store.status().done >= minimum:
            return
        time.sleep(0.05)
    raise AssertionError(f"worker never completed {minimum} task(s)")


def test_sigkilled_worker_loses_no_completed_work(tmp_path):
    queue_dir = tmp_path / "queue"
    store = QueueStore.submit(CRASH_SPEC, queue_dir)
    total = store.n_tasks

    victim = _spawn_worker(queue_dir, "victim", delay=0.25, ttl=1.5)
    try:
        _wait_for_done(store, minimum=2)
        os.kill(victim.pid, signal.SIGKILL)
    finally:
        victim.wait(timeout=30)

    status = store.status()
    survived = status.done
    assert 2 <= survived < total, "kill landed outside the sweep window"
    # The victim's in-flight claim (if any) is stranded until its TTL.
    assert status.claimed + status.expired <= 1

    # Recovery: a fresh worker (same TTL, wait=True so it outlives the
    # stranded lease) drains the remainder.
    summary = run_worker(queue_dir, worker_id="rescuer", ttl=1.5, wait=True)
    assert store.status().drained

    # No completed run was lost: the rescuer executed only what was
    # missing, plus at most the single in-flight task.
    assert summary.done <= (total - survived) + 1
    assert summary.done >= total - survived

    # At most the in-flight task was re-executed: spool lines (incl.
    # duplicates) exceed the task count by at most one.
    spooled = sum(
        1
        for shard in (queue_dir / "spool").glob("*.jsonl")
        for _ in iter_shard_records(shard)
    )
    assert total <= spooled <= total + 1

    # And the merged result is byte-identical to a serial run.
    merged = collect(queue_dir)
    serial = execute_campaign(CRASH_SPEC, workers=0)
    a = serial.to_json(tmp_path / "serial.json")
    b = merged.to_json(tmp_path / "merged.json")
    assert a.read_bytes() == b.read_bytes()


def test_two_concurrent_worker_processes_partition_the_queue(tmp_path):
    queue_dir = tmp_path / "queue"
    store = QueueStore.submit(CRASH_SPEC, queue_dir)
    total = store.n_tasks

    workers = [
        _spawn_worker(queue_dir, f"proc{i}", delay=0.05, ttl=30.0)
        for i in range(2)
    ]
    for proc in workers:
        _, stderr = proc.communicate(timeout=120)
        assert proc.returncode == 0, stderr.decode()

    status = store.status(with_workers=True)
    assert status.drained and status.failed == 0
    # Both processes did real work and no task ran twice.
    assert sorted(status.workers) == ["proc0", "proc1"]
    assert sum(status.workers.values()) == total
    spooled = sum(
        1
        for shard in (queue_dir / "spool").glob("*.jsonl")
        for _ in iter_shard_records(shard)
    )
    assert spooled == total

    merged = collect(queue_dir)
    serial = execute_campaign(CRASH_SPEC, workers=0)
    a = serial.to_json(tmp_path / "serial.json")
    b = merged.to_json(tmp_path / "merged.json")
    assert a.read_bytes() == b.read_bytes()
