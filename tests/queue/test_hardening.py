"""Queue hardening: configuration-affine claiming, spool compaction,
retry ledger mechanics, and the adversarial-filesystem gate."""

import json

import pytest

from repro.campaign import execute_campaign
from repro.campaign.spec import expand_spec
from repro.exceptions import ConfigurationError
from repro.queue import (
    QueueStore,
    QueueWorker,
    UNSAFE_LINK_ENV,
    collect,
    config_digest,
    iter_segment_records,
    run_worker,
    task_config,
)
from repro.queue.collect import read_segment_footer

from .conftest import fake_record, queue_spec

pytestmark = pytest.mark.campaign


def multi_config_spec(**overrides):
    """Two preconditioners -> two configuration groups (8 tasks)."""
    return queue_spec(
        name="affine-unit",
        preconditioners=("block_jacobi", "jacobi"),
        **overrides,
    )


@pytest.fixture
def multi_store(tmp_path) -> QueueStore:
    return QueueStore.submit(multi_config_spec(), tmp_path / "queue")


class TestTaskIdConfigDigest:
    def test_task_ids_embed_the_config_digest(self, multi_store):
        for task in multi_store.iter_tasks():
            assert task_config(task.task_id) == config_digest(task.run.config_key)

    def test_config_groups_are_contiguous_and_complete(self, multi_store):
        groups = multi_store.config_groups()
        assert len(groups) == 2  # one per preconditioner
        flattened = [t for _, task_ids in groups for t in task_ids]
        assert flattened == multi_store.task_ids()  # contiguous spans
        for config, task_ids in groups:
            assert {task_config(t) for t in task_ids} == {config}

    def test_malformed_task_id_rejected(self):
        with pytest.raises(ConfigurationError, match="malformed task id"):
            task_config("000001-deadbeef")


class TestAffineClaiming:
    def test_single_worker_drains_configuration_contiguously(self, multi_store):
        worker = QueueWorker(multi_store, worker_id="w1", ttl=60)
        claimed = []
        while True:
            task = worker._next_task()
            if task is None:
                break
            claimed.append(task.task_id)
            shard = multi_store.append_record("w1", fake_record(task))
            multi_store.complete(task, "w1", shard)
        assert sorted(claimed) == multi_store.task_ids()
        configs = [task_config(t) for t in claimed]
        # Never returns to an earlier configuration: contiguous chunks.
        seen, order = set(), []
        for config in configs:
            if config not in seen:
                seen.add(config)
                order.append(config)
        assert len(order) == 2
        assert configs == sorted(configs, key=order.index)

    def test_second_worker_avoids_foreign_active_configuration(self, multi_store):
        first = QueueWorker(multi_store, worker_id="w1", ttl=60)
        task_a = first._next_task()  # leases the first task of group 1
        second = QueueWorker(multi_store, worker_id="w2", ttl=60)
        task_b = second._next_task()
        assert task_a is not None and task_b is not None
        assert task_config(task_b.task_id) != task_config(task_a.task_id)

    def test_tail_stealing_when_every_group_is_foreign_active(self, tmp_path):
        # One configuration left, another worker active in it: an
        # affine worker must steal rather than idle.
        store = QueueStore.submit(queue_spec(), tmp_path / "queue")
        first = QueueWorker(store, worker_id="w1", ttl=60)
        assert first._next_task() is not None  # w1 active in the only group
        second = QueueWorker(store, worker_id="w2", ttl=60)
        stolen = second._next_task()
        assert stolen is not None  # stole from the foreign-active group

    def test_non_affine_mode_claims_in_scan_order(self, multi_store):
        worker = QueueWorker(multi_store, worker_id="w1", ttl=60, affine=False)
        task = worker._next_task()
        assert task.task_id == multi_store.task_ids()[0]

    def test_affine_and_scan_order_collects_are_byte_identical(self, tmp_path):
        spec = multi_config_spec()
        serial = execute_campaign(spec, workers=0)
        paths = {}
        for mode, affine in (("affine", True), ("scan", False)):
            queue_dir = tmp_path / f"queue-{mode}"
            QueueStore.submit(spec, queue_dir)
            run_worker(queue_dir, worker_id="w1", affine=affine)
            paths[mode] = collect(queue_dir).to_json(tmp_path / f"{mode}.json")
        expected = serial.to_json(tmp_path / "serial.json").read_bytes()
        assert paths["affine"].read_bytes() == expected
        assert paths["scan"].read_bytes() == expected


class TestScanReuse:
    def test_progress_scans_are_pinned_to_chunk_boundaries(self, multi_store):
        # The progress/ETA snapshot must reuse the chunk claim's
        # directory scan: one scan per chunk selection (2 groups + the
        # final nothing-left probe), never one per task.
        scans = 0
        real_status = multi_store.status

        def counting_status(*args, **kwargs):
            nonlocal scans
            scans += 1
            return real_status(*args, **kwargs)

        multi_store.status = counting_status
        seen = []
        worker = QueueWorker(
            multi_store, worker_id="w1", status_interval=3600.0,
            progress=lambda summary, status, record: seen.append(status.done),
        )

        import repro.campaign.executor as executor_module
        real_run_one = executor_module.run_one
        try:
            executor_module.run_one = lambda run: fake_record(
                multi_store.load_task(
                    next(
                        t for t in multi_store.task_ids()
                        if multi_store.load_task(t).run_id == run.run_id
                    )
                )
            )
            worker.run()
        finally:
            executor_module.run_one = real_run_one
        n_groups = len(multi_store.config_groups())
        assert scans == n_groups + 1
        assert seen == list(range(1, multi_store.n_tasks + 1))


class TestCompaction:
    def test_worker_compacts_and_collect_streams_segments(self, spec, tmp_path):
        serial = execute_campaign(spec, workers=0)
        queue_dir = tmp_path / "queue"
        store = QueueStore.submit(spec, queue_dir)
        run_worker(queue_dir, worker_id="w1", compact_every=2)
        segments = store.segment_paths()
        assert len(segments) == store.n_tasks // 2
        # The shard holds only the residual tail (< compact_every).
        residual = store.shard_path("w1").read_text().splitlines()
        assert len(residual) < 2
        merged = collect(queue_dir)
        a = serial.to_json(tmp_path / "serial.json")
        b = merged.to_json(tmp_path / "queued.json")
        assert a.read_bytes() == b.read_bytes()

    def test_segment_layout_round_trips(self, spec, tmp_path):
        store = QueueStore.submit(spec, tmp_path / "queue")
        tasks = list(store.iter_tasks())
        records = {}
        for task in tasks:
            store.append_record("w1", fake_record(task))
            records[task.run_id] = fake_record(task)
        path = store.compact_shard("w1")
        footer = read_segment_footer(path)
        assert footer["count"] == len(tasks)
        assert footer["worker_id"] == "w1"
        loaded = list(iter_segment_records(path))
        assert [r.run_id for r in loaded] == sorted(records)  # sorted by run id
        assert all(records[r.run_id] == r for r in loaded)
        assert store.shard_path("w1").stat().st_size == 0  # truncated

    def test_empty_shard_compacts_to_nothing(self, spec, tmp_path):
        store = QueueStore.submit(spec, tmp_path / "queue")
        assert store.compact_shard("w1") is None
        store.shard_path("w1").write_bytes(b'{"torn": "frag')  # only a torn tail
        assert store.compact_shard("w1") is None

    def test_crash_between_segment_publish_and_truncate_is_deduped(
        self, spec, tmp_path
    ):
        # The mid-compaction crash window: the segment is published but
        # the shard survives untruncated -> every record exists twice.
        serial = execute_campaign(spec, workers=0)
        queue_dir = tmp_path / "queue"
        store = QueueStore.submit(spec, queue_dir)
        run_worker(queue_dir, worker_id="w1")
        shard_bytes = store.shard_path("w1").read_bytes()
        store.compact_shard("w1")
        store.shard_path("w1").write_bytes(shard_bytes)  # "crash" undid truncate
        merged = collect(queue_dir)
        a = serial.to_json(tmp_path / "serial.json")
        b = merged.to_json(tmp_path / "merged.json")
        assert a.read_bytes() == b.read_bytes()

    def test_corrupt_segment_trailer_is_rejected(self, spec, tmp_path):
        store = QueueStore.submit(spec, tmp_path / "queue")
        task = next(store.iter_tasks())
        store.append_record("w1", fake_record(task))
        path = store.compact_shard("w1")
        path.write_bytes(path.read_bytes()[:-2])  # clip the magic
        with pytest.raises(ConfigurationError, match="segment trailer"):
            list(iter_segment_records(path))

    def test_conflicting_duplicate_across_segment_and_shard_rejected(
        self, spec, tmp_path
    ):
        store = QueueStore.submit(spec, tmp_path / "queue")
        task = next(store.iter_tasks())
        store.append_record("w1", fake_record(task))
        store.compact_shard("w1")
        import dataclasses

        mutated = dataclasses.replace(fake_record(task), iterations=99)
        store.append_record("w2", mutated)
        with pytest.raises(ConfigurationError, match="conflicting duplicate"):
            collect(tmp_path / "queue", allow_partial=True)


class TestRetryLedger:
    def test_record_failure_requeues_until_the_bound(self, spec, tmp_path):
        # retry_backoff=0 so the re-claims below need not sleep the
        # backoff window out (it has its own tests).
        store = QueueStore.submit(
            spec, tmp_path / "queue", max_attempts=3, retry_backoff=0.0
        )
        task = store.claim("w1", ttl=60)
        assert store.record_failure(task, "w1", "boom #1") is None
        assert store.read_lease(task.task_id) is None  # released, claimable
        assert not store.is_terminal(task.task_id)
        task2 = store.try_claim_task(task.task_id, "w2", ttl=60)
        assert task2 is not None
        assert store.record_failure(task2, "w2", "boom #2") is None
        task3 = store.try_claim_task(task.task_id, "w3", ttl=60)
        outcome = store.record_failure(task3, "w3", "boom #3")
        assert outcome is not None and outcome.status == "failed"
        assert outcome.attempts == 3
        assert [e["worker_id"] for e in outcome.failure_log] == ["w1", "w2", "w3"]
        assert store.is_terminal(task.task_id)
        # Dead tasks are never claimable again.
        assert store.try_claim_task(task.task_id, "w4", ttl=60) is None

    def test_interrupted_dead_letter_is_finalised_on_claim(self, spec, tmp_path):
        # A worker can die between the final ledger write and the
        # dead-letter marker; the next claimer must finalise the
        # dead-letter instead of burning an extra attempt.
        from repro.queue.store import _atomic_write_json

        store = QueueStore.submit(spec, tmp_path / "queue", max_attempts=2)
        task = store.claim("w1", ttl=60)
        store.release(task.task_id, "w1")
        attempts = [
            {"attempt": 1, "worker_id": "w1", "error": "boom #1", "at": 0.0},
            {"attempt": 2, "worker_id": "w2", "error": "boom #2", "at": 0.0},
        ]
        _atomic_write_json(
            store.retries_path(task.task_id),
            {"task_id": task.task_id, "run_id": task.run_id, "attempts": attempts},
        )
        assert store.try_claim_task(task.task_id, "w3", ttl=60) is None
        outcome = store.read_outcome(task.task_id)
        assert outcome is not None and outcome.status == "failed"
        assert outcome.attempts == 2
        assert "boom #2" in outcome.error

    def test_max_attempts_one_dead_letters_immediately(self, spec, tmp_path):
        store = QueueStore.submit(spec, tmp_path / "queue", max_attempts=1)
        task = store.claim("w1", ttl=60)
        outcome = store.record_failure(task, "w1", "boom")
        assert outcome is not None and outcome.attempts == 1

    def test_submit_rejects_non_positive_max_attempts(self, spec, tmp_path):
        with pytest.raises(ConfigurationError, match="max_attempts"):
            QueueStore.submit(spec, tmp_path / "queue", max_attempts=0)

    def test_max_attempts_round_trips_through_spec_json(self, spec, tmp_path):
        QueueStore.submit(spec, tmp_path / "queue", max_attempts=5)
        assert QueueStore(tmp_path / "queue").max_attempts == 5


class TestUnsafeLinkGate:
    def test_declared_adversarial_filesystem_refuses_claims(
        self, spec, tmp_path, monkeypatch
    ):
        store = QueueStore.submit(spec, tmp_path / "queue")
        monkeypatch.setenv(UNSAFE_LINK_ENV, "1")
        with pytest.raises(ConfigurationError, match="NFSv2"):
            store.claim("w1", ttl=60)
        monkeypatch.setenv(UNSAFE_LINK_ENV, "0")
        assert store.claim("w1", ttl=60) is not None


class TestStatusGoldenShape:
    def test_status_json_shape_with_retry_counters(
        self, tmp_path, monkeypatch, capsys
    ):
        from repro.cli import main
        import repro.campaign.executor as executor_module

        spec = queue_spec()
        queue_dir = tmp_path / "queue"
        spec_file = tmp_path / "spec.json"
        spec_file.write_text(json.dumps(spec.to_dict()))
        assert main([
            "campaign", "submit", "--queue", str(queue_dir),
            "--spec", str(spec_file), "--max-attempts", "2",
        ]) == 0
        store = QueueStore(queue_dir)
        assert store.max_attempts == 2
        poisoned_run = store.load_task(store.task_ids()[0]).run_id
        real_run_one = executor_module.run_one

        def exploding(run):
            if run.run_id == poisoned_run:
                raise ZeroDivisionError("injected fault")
            return real_run_one(run)

        monkeypatch.setattr(executor_module, "run_one", exploding)
        capsys.readouterr()
        assert main([
            "campaign", "worker", "--queue", str(queue_dir), "--id", "w1",
            "--quiet",
        ]) == 1  # dead-lettered task -> non-zero exit
        capsys.readouterr()
        assert main(["campaign", "status", "--queue", str(queue_dir), "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        # The golden machine-readable shape (retry counters included).
        assert sorted(payload) == [
            "claimed", "done", "expired", "failed", "pending",
            "retried", "total", "workers",
        ]
        assert payload["failed"] == 1      # dead-lettered
        assert payload["retried"] == 1     # the ledger saw the task
        assert payload["done"] == store.n_tasks - 1
        assert payload["workers"] == {"w1": store.n_tasks - 1}

    def test_partial_collect_round_trips_through_merge(
        self, tmp_path, monkeypatch, capsys
    ):
        from repro.campaign import CampaignResult
        from repro.cli import main
        import repro.campaign.executor as executor_module

        spec = queue_spec()
        serial = execute_campaign(spec, workers=0)
        queue_dir = tmp_path / "queue"
        store = QueueStore.submit(spec, queue_dir, max_attempts=2)
        poisoned_run = store.load_task(store.task_ids()[1]).run_id
        real_run_one = executor_module.run_one

        def exploding(run):
            if run.run_id == poisoned_run:
                raise ZeroDivisionError("injected fault")
            return real_run_one(run)

        monkeypatch.setattr(executor_module, "run_one", exploding)
        run_worker(queue_dir, worker_id="w1")
        out = tmp_path / "partial.json"
        assert main([
            "campaign", "collect", "--queue", str(queue_dir),
            "--out", str(out), "--allow-partial", "--quiet",
        ]) == 0
        stdout = capsys.readouterr().out
        assert "DEAD-LETTERED after 2 attempt(s)" in stdout
        assert poisoned_run in stdout

        partial = CampaignResult.from_json(out)
        assert len(partial.records) == store.n_tasks - 1
        assert all(r.run_id != poisoned_run for r in partial.records)
        # Round-trip: merging the partial records with a serial run of
        # the same spec reproduces the full result byte-for-byte (the
        # overlap deduplicates by verified equality).
        merged = CampaignResult.merge(
            spec=spec.to_dict(), parts=[partial.records, serial.records]
        )
        a = serial.to_json(tmp_path / "serial.json")
        b = merged.to_json(tmp_path / "merged.json")
        assert a.read_bytes() == b.read_bytes()


class TestRunSpecConfigKey:
    def test_config_key_is_the_session_defining_prefix(self):
        runs = expand_spec(multi_config_spec())
        for run in runs:
            assert run.seed_key.startswith(run.config_key + ":")
            assert run.config_key == (
                f"{run.problem}:{run.scale}:n{run.n_nodes}:{run.preconditioner}"
            )
        assert len({run.config_key for run in runs}) == 2


class TestRetryBackoff:
    def test_failed_attempt_records_retry_after_and_blocks_claims(
        self, spec, tmp_path
    ):
        import time

        store = QueueStore.submit(
            spec, tmp_path / "queue", max_attempts=3, retry_backoff=0.2
        )
        task = store.claim("w1", ttl=60)
        before = time.time()
        assert store.record_failure(task, "w1", "boom") is None
        (entry,) = store.read_retries(task.task_id)
        # Jittered exponential: base * 2**0 * uniform(1, 2).
        assert before + 0.2 <= entry["retry_after"] <= time.time() + 0.4
        # Inside the window the task is pending but not claimable...
        assert store.try_claim_task(task.task_id, "w2", ttl=60) is None
        assert store.read_lease(task.task_id) is None  # ...and released
        # ...and claimable again once the window passes.
        time.sleep(max(0.0, entry["retry_after"] - time.time()) + 0.01)
        assert store.try_claim_task(task.task_id, "w2", ttl=60) is not None

    def test_zero_backoff_requeues_immediately(self, spec, tmp_path):
        store = QueueStore.submit(
            spec, tmp_path / "queue", max_attempts=3, retry_backoff=0.0
        )
        task = store.claim("w1", ttl=60)
        assert store.record_failure(task, "w1", "boom") is None
        assert store.try_claim_task(task.task_id, "w2", ttl=60) is not None

    def test_backoff_round_trips_through_spec_json(self, spec, tmp_path):
        QueueStore.submit(spec, tmp_path / "queue", retry_backoff=0.75)
        assert QueueStore(tmp_path / "queue").retry_backoff == 0.75

    def test_submit_rejects_negative_backoff(self, spec, tmp_path):
        with pytest.raises(ConfigurationError, match="retry_backoff"):
            QueueStore.submit(spec, tmp_path / "queue", retry_backoff=-0.1)

    def test_worker_polls_through_the_backoff_window(
        self, spec, tmp_path, monkeypatch
    ):
        # A wait=False worker must not abandon a non-drained queue just
        # because its only remaining task is sitting out a backoff.
        import repro.campaign.executor as executor_module

        queue_dir = tmp_path / "queue"
        store = QueueStore.submit(spec, queue_dir, max_attempts=2)
        flaky_run = store.load_task(store.task_ids()[0]).run_id
        real_run_one = executor_module.run_one

        def flaky(run):
            if (
                run.run_id == flaky_run
                and not store.read_retries(store.task_ids()[0])
            ):
                raise ZeroDivisionError("transient fault")
            return real_run_one(run)

        monkeypatch.setattr(executor_module, "run_one", flaky)
        summary = run_worker(queue_dir, worker_id="w1")
        assert summary.retried == 1 and summary.failed == 0
        assert summary.done == store.n_tasks
        assert store.status().drained


class TestRetryDeadLetters:
    def test_resurrection_preserves_provenance_and_requeues(
        self, spec, tmp_path
    ):
        store = QueueStore.submit(spec, tmp_path / "queue", max_attempts=1)
        task = store.claim("w1", ttl=60)
        assert store.record_failure(task, "w1", "boom") is not None
        assert store.is_terminal(task.task_id)

        resurrected = store.retry_dead_letters(requeued_by="operator")
        assert [o.task_id for o in resurrected] == [task.task_id]
        # Claimable again, with a fresh attempt budget.
        assert not store.is_terminal(task.task_id)
        assert store.read_retries(task.task_id) == []
        assert store.try_claim_task(task.task_id, "w2", ttl=60) is not None
        # Full provenance survives as an audit manifest.
        manifest = json.loads(
            (store.manifests_dir() / f"{task.task_id}.00.json").read_text()
        )
        assert manifest["requeued_by"] == "operator"
        assert manifest["outcome"]["status"] == "failed"
        assert manifest["outcome"]["error"] == "boom"
        assert [e["error"] for e in manifest["ledger"]] == ["boom"]

    def test_repeated_resurrections_get_sequenced_manifests(self, spec, tmp_path):
        store = QueueStore.submit(spec, tmp_path / "queue", max_attempts=1)
        for round_no in range(2):
            task = store.try_claim_task(store.task_ids()[0], "w1", ttl=60)
            assert store.record_failure(task, "w1", f"boom #{round_no}") is not None
            assert len(store.retry_dead_letters()) == 1
        names = sorted(p.name for p in store.manifests_dir().glob("*.json"))
        task_id = store.task_ids()[0]
        assert names == [f"{task_id}.00.json", f"{task_id}.01.json"]

    def test_gapped_manifest_sequence_never_clobbers(self, spec, tmp_path):
        # Regression: the next manifest sequence number must be
        # max-existing + 1, never the file *count*.  With task.00 and
        # task.02 on disk (an operator pruned task.01), counting would
        # allocate "02" and silently overwrite the surviving manifest.
        store = QueueStore.submit(spec, tmp_path / "queue", max_attempts=1)
        task = store.try_claim_task(store.task_ids()[0], "w1", ttl=60)
        assert store.record_failure(task, "w1", "boom") is not None
        preexisting = {
            f"{task.task_id}.00.json": '{"marker": "zero"}\n',
            f"{task.task_id}.02.json": '{"marker": "two"}\n',
        }
        for name, body in preexisting.items():
            (store.manifests_dir() / name).write_text(body)

        assert len(store.retry_dead_letters()) == 1

        names = sorted(p.name for p in store.manifests_dir().glob("*.json"))
        assert names == sorted(preexisting) + [f"{task.task_id}.03.json"]
        for name, body in preexisting.items():
            assert (store.manifests_dir() / name).read_text() == body

    def test_no_dead_letters_is_a_no_op(self, spec, tmp_path):
        store = QueueStore.submit(spec, tmp_path / "queue")
        assert store.retry_dead_letters() == []

    def test_end_to_end_fix_retry_collect(self, tmp_path, monkeypatch):
        # Dead-letter under a bug, "fix" it, resurrect, drain, collect:
        # the final result must match the serial run exactly.
        import repro.campaign.executor as executor_module

        spec = queue_spec()
        serial = execute_campaign(spec, workers=0)
        queue_dir = tmp_path / "queue"
        store = QueueStore.submit(queue_dir=queue_dir, spec=spec, max_attempts=1)
        poisoned_run = store.load_task(store.task_ids()[0]).run_id
        real_run_one = executor_module.run_one

        def exploding(run):
            if run.run_id == poisoned_run:
                raise ZeroDivisionError("injected fault")
            return real_run_one(run)

        monkeypatch.setattr(executor_module, "run_one", exploding)
        run_worker(queue_dir, worker_id="w1")
        assert len(store.failed_outcomes()) == 1

        monkeypatch.setattr(executor_module, "run_one", real_run_one)  # the fix
        assert len(store.retry_dead_letters()) == 1
        run_worker(queue_dir, worker_id="w1b")
        assert store.status().drained and not store.failed_outcomes()
        merged = collect(queue_dir)
        a = serial.to_json(tmp_path / "serial.json").read_bytes()
        b = merged.to_json(tmp_path / "merged.json").read_bytes()
        assert a == b

    def test_cli_campaign_retry(self, tmp_path, monkeypatch, capsys):
        from repro.cli import main
        import repro.campaign.executor as executor_module

        spec = queue_spec()
        queue_dir = tmp_path / "queue"
        store = QueueStore.submit(spec, queue_dir, max_attempts=1)
        poisoned_run = store.load_task(store.task_ids()[0]).run_id
        real_run_one = executor_module.run_one

        def exploding(run):
            if run.run_id == poisoned_run:
                raise ZeroDivisionError("injected fault")
            return real_run_one(run)

        monkeypatch.setattr(executor_module, "run_one", exploding)
        main(["campaign", "worker", "--queue", str(queue_dir), "--quiet"])
        capsys.readouterr()
        assert main(["campaign", "retry", "--queue", str(queue_dir)]) == 0
        out = capsys.readouterr().out
        assert "1 task(s)" in out and poisoned_run in out
        assert not store.failed_outcomes()
        # Nothing to do the second time around.
        assert main(["campaign", "retry", "--queue", str(queue_dir)]) == 0
        assert "no dead-lettered tasks" in capsys.readouterr().out


class TestAtomicWriteConcurrency:
    def test_same_pid_threads_never_collide_on_temp_names(self, tmp_path):
        # Pre-fix temp names were .{name}.tmp.{pid}: a heartbeat thread
        # and its worker's main thread replacing the same target raced
        # each other's temp file (FileNotFoundError from os.replace).
        import threading

        from repro.queue.store import _atomic_write_json

        target = tmp_path / "shared.json"
        errors = []

        def hammer(thread_no):
            try:
                for i in range(200):
                    _atomic_write_json(target, {"thread": thread_no, "i": i})
            except OSError as exc:  # pragma: no cover - the regression
                errors.append(exc)

        threads = [
            threading.Thread(target=hammer, args=(n,)) for n in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        payload = json.loads(target.read_text())
        assert set(payload) == {"thread", "i"}  # some complete write won
        assert list(tmp_path.glob(".*tmp*")) == []  # no temp litter


class TestWorkerSummaryEta:
    def test_abandoned_attempts_count_toward_seconds_per_task(self):
        from repro.queue import WorkerSummary

        summary = WorkerSummary(
            worker_id="w1", done=2, abandoned=2, busy_seconds=8.0
        )
        assert summary.seconds_per_task == 2.0

    def test_no_attempts_means_no_estimate(self):
        from repro.queue import WorkerSummary

        assert WorkerSummary(worker_id="w1").seconds_per_task is None


class TestHeartbeatThreadRobustness:
    def test_invalid_lease_json_does_not_kill_the_heartbeat(
        self, spec, tmp_path, caplog
    ):
        # A transiently corrupt lease read surfaces as
        # ConfigurationError; the heartbeat thread must log once,
        # keep ticking, and resume renewing once the lease is
        # readable again.
        import logging
        import time

        from repro.queue.worker import _HeartbeatThread

        store = QueueStore.submit(spec, tmp_path / "queue")
        task = store.claim("w1", ttl=60)
        lease_path = store.lease_path(task.task_id)
        good = lease_path.read_text()
        lease_path.write_text("{half a lease")

        thread = _HeartbeatThread(store, task.task_id, "w1", every=0.02)
        with caplog.at_level(logging.WARNING, logger="repro.queue.worker"):
            thread.start()
            time.sleep(0.2)
            assert thread.is_alive() and not thread.lost
            lease_path.write_text(good)
            time.sleep(0.1)
            thread.stop()
        assert not thread.lost
        warnings = [
            r for r in caplog.records if "ConfigurationError" in r.getMessage()
        ]
        assert len(warnings) == 1  # logged once, not once per tick
