"""Chaos/property suite: randomized seeded schedules against the queue.

Each test case runs one :class:`~tests.queue.chaos.ChaosPlan` — a
seeded random composition of worker SIGKILLs, deterministic
fail-N-times task failures, never-heartbeating ghost leases and
aggressive (pause-widened) compaction — and asserts the queue's whole
contract afterwards: byte-identical collects, exact retry/dead-letter
accounting, no record lost or duplicated.  See
:mod:`tests.queue.chaos` for the harness.

The ``smoke`` subset is what CI's dedicated chaos step runs
(``pytest tests/queue/test_chaos.py -q -m smoke``); the full sweep
(25 schedules) runs in the regular tier-1 suite.
"""

import dataclasses

import pytest

from repro.campaign import execute_campaign
from repro.queue import QueueStore

from .chaos import (
    legacy_heartbeat,
    make_plan,
    run_resurrection_schedule,
    run_schedule,
)
from .conftest import queue_spec

pytestmark = [pytest.mark.campaign, pytest.mark.integration, pytest.mark.slow]

#: The sweep every schedule is driven against: two configuration
#: groups (affine chunks matter), 16 tasks (2 strategies x 2 scenarios
#: x 2 preconditioners x 2 repetitions — enough mid-sweep surface for
#: kills), all tiny (fast solves; the injected per-task delay is what
#: widens the kill window).
CHAOS_SPEC = queue_spec(
    name="chaos",
    preconditioners=("block_jacobi", "jacobi"),
    repetitions=2,
)

#: Seeds whose schedules run in the CI smoke step.
SMOKE_SEEDS = tuple(range(3))
#: The remaining schedules of the >= 25 required locally.
FULL_SEEDS = tuple(range(3, 25))


@pytest.fixture(scope="module")
def serial_result():
    return execute_campaign(CHAOS_SPEC, workers=0)


@pytest.mark.smoke
@pytest.mark.parametrize("seed", SMOKE_SEEDS)
def test_chaos_schedule_smoke(seed, serial_result, tmp_path):
    run_schedule(tmp_path, CHAOS_SPEC, serial_result, make_plan(seed, CHAOS_SPEC))


@pytest.mark.parametrize("seed", FULL_SEEDS)
def test_chaos_schedule(seed, serial_result, tmp_path):
    run_schedule(tmp_path, CHAOS_SPEC, serial_result, make_plan(seed, CHAOS_SPEC))


@pytest.mark.smoke
def test_chaos_schedule_on_legacy_v2_layout(serial_result, tmp_path):
    # The whole adversarial contract must keep holding on a store
    # submitted with the legacy per-task-file layout: v3 workers drain
    # v2 queues (mutable state is layout-identical), and nothing in
    # crash recovery, retries or collect regressed for existing queues.
    plan = dataclasses.replace(make_plan(1, CHAOS_SPEC), layout=2)
    run_schedule(tmp_path, CHAOS_SPEC, serial_result, plan)


@pytest.mark.smoke
def test_heartbeat_cannot_resurrect_a_reclaimed_lease(tmp_path):
    # The pause-widened heartbeat-vs-reclaim interleaving: the stalled
    # worker's renewal lands strictly after a reclaimer tombstoned its
    # expired lease and claimed the task.  The renewal must report the
    # lease lost and leave the reclaimer's claim untouched.
    def renew(store, task_id, worker_id):
        return store.heartbeat(task_id, worker_id)

    outcome = run_resurrection_schedule(tmp_path, CHAOS_SPEC, renew)
    assert outcome["reclaimer_got_task"]
    assert outcome["renewed"] is False
    assert outcome["final_holder"] == "reclaimer"
    assert outcome["final_lease_live"]


@pytest.mark.smoke
def test_resurrection_schedule_catches_the_legacy_heartbeat(tmp_path):
    # The same schedule driven through the pre-fix read-then-replace
    # renewal must reproduce the race: the stalled worker resurrects
    # its lease over the reclaimer's.  This pins the schedule itself —
    # if it stops being able to demonstrate the bug, it is no longer
    # guarding the fix.
    outcome = run_resurrection_schedule(tmp_path, CHAOS_SPEC, legacy_heartbeat)
    assert outcome["reclaimer_got_task"]
    assert outcome["renewed"] is True
    assert outcome["final_holder"] == "stalled"
