"""Worker loop + collector: equivalence with serial execution, dedupe,
partial collection, failure surfacing."""

import json

import pytest

from repro.campaign import execute_campaign
from repro.campaign.spec import expand_spec
from repro.exceptions import ConfigurationError
from repro.queue import QueueStore, QueueWorker, collect, run_worker

from .conftest import queue_spec

pytestmark = pytest.mark.campaign


@pytest.fixture(scope="module")
def serial_result():
    return execute_campaign(queue_spec(), workers=0)


class TestWorkerLoop:
    def test_single_worker_drains_and_collect_matches_serial_bytes(
        self, spec, serial_result, tmp_path
    ):
        queue_dir = tmp_path / "queue"
        QueueStore.submit(spec, queue_dir)
        summary = run_worker(queue_dir, worker_id="w1")
        assert summary.done == len(expand_spec(spec))
        assert summary.failed == summary.abandoned == 0

        merged = collect(queue_dir)
        a = serial_result.to_json(tmp_path / "serial.json")
        b = merged.to_json(tmp_path / "queued.json")
        assert a.read_bytes() == b.read_bytes()

    def test_two_sequential_workers_split_the_queue(self, spec, tmp_path):
        queue_dir = tmp_path / "queue"
        store = QueueStore.submit(spec, queue_dir)
        first = run_worker(queue_dir, worker_id="w1", max_tasks=2)
        second = run_worker(queue_dir, worker_id="w2")
        assert first.done == 2
        assert second.done == store.n_tasks - 2
        assert store.status(with_workers=True).workers == {
            "w1": 2, "w2": store.n_tasks - 2,
        }
        assert len(collect(queue_dir).records) == store.n_tasks

    def test_progress_callback_sees_every_task(self, spec, tmp_path):
        queue_dir = tmp_path / "queue"
        store = QueueStore.submit(spec, queue_dir)
        seen = []
        worker = QueueWorker(
            store, worker_id="w1",
            progress=lambda summary, status, record: seen.append(
                (summary.done, status.done, record.run_id)
            ),
        )
        worker.run()
        assert [done for done, _, _ in seen] == list(range(1, store.n_tasks + 1))
        # the queue-wide status the progress line renders tracks along
        assert [qdone for _, qdone, _ in seen] == list(range(1, store.n_tasks + 1))

    def test_error_after_lost_lease_writes_no_failure_marker(
        self, spec, tmp_path, monkeypatch
    ):
        # A stalled worker that lost its lease to a reclaimer must not
        # write a permanent failed/ marker when its own (now moot)
        # solve errors out — the reclaimer owns the task.
        import repro.campaign.executor as executor_module

        queue_dir = tmp_path / "queue"
        store = QueueStore.submit(spec, queue_dir)

        def steal_then_explode(run):
            # Simulate the TTL expiring mid-solve: the lease is
            # tombstoned and re-claimed by another worker.
            task_id = store.task_ids()[0]
            lease = store.read_lease(task_id)
            store._reclaim(task_id, lease, "thief")
            store._try_claim(task_id, "thief", 60.0)
            raise MemoryError("stall victim finally died")

        monkeypatch.setattr(executor_module, "run_one", steal_then_explode)
        worker = QueueWorker(store, worker_id="w1")
        worker.run(max_tasks=1)
        assert worker.summary.abandoned == 1
        assert worker.summary.failed == 0
        assert store.read_outcome(store.task_ids()[0]) is None  # no marker

    def test_path_escaping_worker_id_rejected_eagerly(self, spec, tmp_path):
        queue_dir = tmp_path / "queue"
        store = QueueStore.submit(spec, queue_dir)
        # ("" is not here: a falsy id means "generate a default".)
        for bad in ("../evil", "a/b", ".hidden", "w1\n"):
            with pytest.raises(ConfigurationError, match="invalid worker id"):
                QueueWorker(store, worker_id=bad)
        with pytest.raises(ConfigurationError, match="invalid worker id"):
            store.claim("../evil", ttl=60)

    def test_failed_task_is_retried_then_dead_lettered(self, tmp_path, monkeypatch):
        import repro.campaign.executor as executor_module

        spec = queue_spec()
        queue_dir = tmp_path / "queue"
        store = QueueStore.submit(spec, queue_dir)  # default max_attempts = 3
        poisoned = store.task_ids()[1]
        real_run_one = executor_module.run_one

        def exploding(run):
            if run.run_id == store.load_task(poisoned).run_id:
                raise ZeroDivisionError("injected fault")
            return real_run_one(run)

        monkeypatch.setattr(executor_module, "run_one", exploding)
        summary = run_worker(queue_dir, worker_id="w1")
        # Deterministic failure: retried up to the bound, then dead.
        assert summary.failed == 1
        assert summary.retried == store.max_attempts - 1
        assert summary.done == store.n_tasks - 1
        outcome = store.read_outcome(poisoned)
        assert outcome.status == "failed"
        assert outcome.attempts == store.max_attempts
        assert len(outcome.failure_log) == store.max_attempts
        assert all("ZeroDivisionError" in e["error"] for e in outcome.failure_log)
        assert "ZeroDivisionError" in outcome.error
        # The ledger and the status counters agree.
        assert len(store.read_retries(poisoned)) == store.max_attempts
        status = store.status()
        assert status.retried == 1 and status.failed == 1

        with pytest.raises(ConfigurationError, match="dead-lettered task"):
            collect(queue_dir)
        partial = collect(queue_dir, allow_partial=True)
        assert len(partial.records) == store.n_tasks - 1

    def test_transient_failure_recovers_with_provenance(
        self, tmp_path, monkeypatch
    ):
        # A task that fails once and then succeeds must be retried
        # transparently: the sweep completes, the collect is full, and
        # the done marker carries the failure provenance.
        import repro.campaign.executor as executor_module

        spec = queue_spec()
        queue_dir = tmp_path / "queue"
        store = QueueStore.submit(spec, queue_dir)
        flaky = store.task_ids()[0]
        real_run_one = executor_module.run_one

        def flaky_once(run):
            if (
                run.run_id == store.load_task(flaky).run_id
                and not store.read_retries(flaky)
            ):
                raise OSError("transient fault")
            return real_run_one(run)

        monkeypatch.setattr(executor_module, "run_one", flaky_once)
        summary = run_worker(queue_dir, worker_id="w1")
        assert summary.done == store.n_tasks
        assert summary.retried == 1 and summary.failed == 0
        outcome = store.read_outcome(flaky)
        assert outcome.status == "done"
        assert outcome.attempts == 2
        assert "transient fault" in outcome.failure_log[0]["error"]
        assert store.status().retried == 1
        assert len(collect(queue_dir).records) == store.n_tasks


class TestTornShardRepair:
    def test_restarted_worker_id_repairs_its_torn_shard(self, spec, tmp_path):
        # A worker killed mid-append leaves a newline-less fragment; a
        # restarted worker with the SAME id must not concatenate onto
        # it (that would corrupt a mid-file line and make the queue
        # uncollectable forever).
        queue_dir = tmp_path / "queue"
        store = QueueStore.submit(spec, queue_dir)
        run_worker(queue_dir, worker_id="w1", max_tasks=2)
        shard = store.shard_path("w1")
        with shard.open("a") as handle:
            handle.write('{"torn": "frag')  # killed mid-append
        summary = run_worker(queue_dir, worker_id="w1")  # same id restarts
        assert summary.done == store.n_tasks - 2
        lines = shard.read_text().splitlines()
        assert all(json.loads(line) for line in lines)  # every line parses
        merged = collect(queue_dir)
        assert len(merged.records) == store.n_tasks

    def test_torn_fragment_longer_than_scan_chunk(self, spec, tmp_path):
        queue_dir = tmp_path / "queue"
        store = QueueStore.submit(spec, queue_dir)
        run_worker(queue_dir, worker_id="w1", max_tasks=1)
        shard = store.shard_path("w1")
        with shard.open("a") as handle:
            handle.write("x" * 10_000)  # torn tail spanning chunks
        run_worker(queue_dir, worker_id="w1")
        assert len(collect(queue_dir).records) == store.n_tasks


class TestProgressStatusThrottle:
    def test_full_scans_are_rate_limited(self, spec, tmp_path):
        queue_dir = tmp_path / "queue"
        store = QueueStore.submit(spec, queue_dir)
        scans = 0
        real_status = store.status

        def counting_status(*args, **kwargs):
            nonlocal scans
            scans += 1
            return real_status(*args, **kwargs)

        store.status = counting_status
        seen = []
        worker = QueueWorker(
            store, worker_id="w1", status_interval=3600.0,
            progress=lambda summary, status, record: seen.append(status.done),
        )
        worker.run()
        # One scan per chunk boundary (the initial chunk selection plus
        # the final is-anything-left selection), never one per task;
        # later progress lines advance the cache.
        assert scans == 2
        # ...and the advanced cache still counts this worker honestly.
        assert seen == list(range(1, store.n_tasks + 1))


class TestQueueModeExecutor:
    def test_execute_campaign_queue_dir_matches_serial_bytes(
        self, spec, serial_result, tmp_path
    ):
        result = execute_campaign(spec, workers=2, queue_dir=tmp_path / "queue")
        a = serial_result.to_json(tmp_path / "serial.json")
        b = result.to_json(tmp_path / "queued.json")
        assert a.read_bytes() == b.read_bytes()

    def test_execute_campaign_resumes_a_half_drained_queue(self, spec, tmp_path):
        queue_dir = tmp_path / "queue"
        store = QueueStore.submit(spec, queue_dir)
        run_worker(queue_dir, worker_id="w1", max_tasks=2)  # partial drain
        result = execute_campaign(spec, workers=1, queue_dir=queue_dir)
        assert len(result.records) == store.n_tasks

    def test_execute_campaign_waits_out_an_orphaned_lease(self, spec, tmp_path):
        # A killed driver leaves a live-but-orphaned lease behind; the
        # resumed run must poll past its TTL and reclaim the task
        # rather than give up with "not drained".
        queue_dir = tmp_path / "queue"
        store = QueueStore.submit(spec, queue_dir)
        orphan = store.claim("ghost", ttl=0.6)  # never heartbeats again
        result = execute_campaign(spec, workers=1, queue_dir=queue_dir)
        assert len(result.records) == store.n_tasks
        assert orphan.task_id in {p.stem for p in (queue_dir / "done").glob("*")}

    def test_execute_campaign_refuses_foreign_queue(self, spec, tmp_path):
        queue_dir = tmp_path / "queue"
        QueueStore.submit(queue_spec(name="other", repetitions=2), queue_dir)
        with pytest.raises(ConfigurationError, match="different campaign"):
            execute_campaign(spec, workers=1, queue_dir=queue_dir)


class TestCollect:
    def test_duplicate_identical_records_are_merged(self, spec, tmp_path):
        # A crash between spool-append and done-marker makes the task
        # run twice; determinism makes both records byte-equal and the
        # collector must fold them into one.
        queue_dir = tmp_path / "queue"
        store = QueueStore.submit(spec, queue_dir)
        run_worker(queue_dir, worker_id="w1")
        shard = store.shard_path("w1")
        first_line = shard.read_text().splitlines()[0]
        store.shard_path("w2").write_text(first_line + "\n")  # duplicate shard
        merged = collect(queue_dir)
        assert len(merged.records) == store.n_tasks

    def test_conflicting_duplicates_rejected(self, spec, tmp_path):
        queue_dir = tmp_path / "queue"
        store = QueueStore.submit(spec, queue_dir)
        run_worker(queue_dir, worker_id="w1")
        payload = json.loads(store.shard_path("w1").read_text().splitlines()[0])
        payload["iterations"] += 1  # a determinism bug, in effigy
        store.shard_path("w2").write_text(json.dumps(payload) + "\n")
        with pytest.raises(ConfigurationError, match="conflicting duplicate"):
            collect(queue_dir)

    def test_torn_final_line_is_ignored(self, spec, tmp_path):
        queue_dir = tmp_path / "queue"
        store = QueueStore.submit(spec, queue_dir)
        run_worker(queue_dir, worker_id="w1")
        with store.shard_path("w1").open("a") as handle:
            handle.write('{"run_id": "half-written')  # no newline: torn append
        assert len(collect(queue_dir).records) == store.n_tasks

    def test_torn_middle_line_is_an_error(self, spec, tmp_path):
        queue_dir = tmp_path / "queue"
        store = QueueStore.submit(spec, queue_dir)
        run_worker(queue_dir, worker_id="w1")
        lines = store.shard_path("w1").read_text().splitlines()
        lines[0] = '{"broken'
        store.shard_path("w1").write_text("\n".join(lines) + "\n")
        with pytest.raises(ConfigurationError, match="invalid record JSON"):
            collect(queue_dir)

    def test_undrained_queue_refused_without_allow_partial(self, spec, tmp_path):
        queue_dir = tmp_path / "queue"
        store = QueueStore.submit(spec, queue_dir)
        run_worker(queue_dir, worker_id="w1", max_tasks=1)
        with pytest.raises(ConfigurationError, match="not drained"):
            collect(queue_dir)
        assert len(collect(queue_dir, allow_partial=True).records) == 1
        del store

    def test_stray_records_always_rejected(self, spec, tmp_path):
        queue_dir = tmp_path / "queue"
        store = QueueStore.submit(spec, queue_dir)
        run_worker(queue_dir, worker_id="w1")
        payload = json.loads(store.shard_path("w1").read_text().splitlines()[0])
        payload["run_id"] = "not:a:known:run"
        store.shard_path("w2").write_text(json.dumps(payload) + "\n")
        with pytest.raises(ConfigurationError, match="not in the task store"):
            collect(queue_dir, allow_partial=True)
