"""Queue-state dataclasses: validation, expiry logic, JSON round-trips."""

import pytest

from repro.campaign.spec import expand_spec
from repro.exceptions import ConfigurationError
from repro.queue import Lease, QueueStatus, QueueTask, TaskOutcome

from .conftest import queue_spec

pytestmark = pytest.mark.campaign


def _lease(**overrides) -> Lease:
    defaults = dict(
        task_id="000001-abc", worker_id="w1",
        claimed_at=100.0, heartbeat_at=100.0, ttl=10.0,
    )
    defaults.update(overrides)
    return Lease(**defaults)


class TestQueueTask:
    def test_round_trip(self):
        run = expand_spec(queue_spec())[0]
        task = QueueTask(task_id="000000-deadbeef00", run=run)
        loaded = QueueTask.from_dict(task.to_dict())
        assert loaded == task
        assert loaded.run_id == run.run_id

    def test_empty_id_rejected(self):
        run = expand_spec(queue_spec())[0]
        with pytest.raises(ConfigurationError):
            QueueTask(task_id="", run=run)


class TestLease:
    def test_round_trip(self):
        lease = _lease()
        assert Lease.from_dict(lease.to_dict()) == lease

    def test_expiry_window(self):
        lease = _lease()
        assert not lease.expired(109.9)
        assert lease.expired(110.0)

    def test_renewed_extends_expiry(self):
        lease = _lease().renewed(105.0)
        assert lease.heartbeat_at == 105.0
        assert lease.expires_at == 115.0
        assert lease.claimed_at == 100.0  # the original claim is kept

    def test_bad_ttl_rejected(self):
        with pytest.raises(ConfigurationError):
            _lease(ttl=0.0)

    def test_heartbeat_before_claim_rejected(self):
        with pytest.raises(ConfigurationError):
            _lease(heartbeat_at=99.0)


class TestTaskOutcome:
    def test_done_round_trip(self):
        outcome = TaskOutcome(
            task_id="000000-ab", run_id="r", worker_id="w1",
            status="done", shard="w1.jsonl",
        )
        assert TaskOutcome.from_dict(outcome.to_dict()) == outcome

    def test_failed_round_trip(self):
        outcome = TaskOutcome(
            task_id="000000-ab", run_id="r", worker_id="w1",
            status="failed", error="boom",
        )
        assert TaskOutcome.from_dict(outcome.to_dict()) == outcome

    def test_unknown_status_rejected(self):
        with pytest.raises(ConfigurationError):
            TaskOutcome(task_id="t", run_id="r", worker_id="w", status="maybe")

    def test_done_requires_shard(self):
        with pytest.raises(ConfigurationError):
            TaskOutcome(task_id="t", run_id="r", worker_id="w", status="done")


class TestQueueStatus:
    def test_round_trip_and_counters(self):
        status = QueueStatus(
            total=10, pending=3, claimed=2, expired=1, done=3, failed=1,
            retried=2, workers={"w1": 2, "w2": 1},
        )
        assert QueueStatus.from_dict(status.to_dict()) == status
        assert status.remaining == 6
        assert not status.drained

    def test_pre_retry_status_payload_loads(self):
        # Status JSON stored before the retry counters existed.
        status = QueueStatus.from_dict({
            "total": 4, "pending": 1, "claimed": 1, "expired": 0,
            "done": 2, "failed": 0,
        })
        assert status.retried == 0

    def test_drained(self):
        status = QueueStatus(
            total=4, pending=0, claimed=0, expired=0, done=4, failed=0
        )
        assert status.drained
        assert "4/4 done" in status.render()

    def test_render_flags_failures_retries_and_expiry(self):
        status = QueueStatus(
            total=4, pending=0, claimed=1, expired=1, done=1, failed=1,
            retried=2,
        )
        text = status.render()
        assert "1 DEAD-LETTERED" in text
        assert "2 retried" in text
        assert "expired" in text
