"""Shared fixtures for the durable work-queue tests."""

from __future__ import annotations

import pytest

from repro.campaign import CampaignSpec, ScenarioSpec, StrategySpec


def queue_spec(**overrides) -> CampaignSpec:
    """A small, fast sweep (4 runs by default) for queue-level tests."""
    defaults = dict(
        name="queue-unit",
        problems=(("emilia_923_like", "tiny"),),
        n_nodes=4,
        strategies=(StrategySpec("esr"), StrategySpec("esrp", (10,))),
        phis=(1,),
        scenarios=(
            ScenarioSpec.make("failure_free"),
            ScenarioSpec.make("worst_case", location="start"),
        ),
        repetitions=1,
    )
    defaults.update(overrides)
    return CampaignSpec(**defaults)


@pytest.fixture
def spec() -> CampaignSpec:
    return queue_spec()


def fake_record(task):
    """A cheap fake record for store-level tests (no solve needed)."""
    from repro.campaign.results import CampaignRunRecord

    run = task.run
    return CampaignRunRecord(
        run_id=run.run_id, problem=run.problem, scale=run.scale,
        n_nodes=run.n_nodes, preconditioner=run.preconditioner,
        strategy=run.strategy, T=run.T, phi=run.phi,
        scenario_kind=run.scenario.kind,
        scenario_params=dict(run.scenario.params),
        repetition=run.repetition, seed=run.seed, converged=True,
        iterations=5, executed_iterations=5, relative_residual=1e-9,
        modeled_time=1.0, recovery_time=0.0, reference_time=1.0,
        reference_iterations=5, total_overhead=0.0, recovery_overhead=0.0,
        n_failures=0, failure_iterations=(), solution_error=0.0,
    )
