"""Shared fixtures for the durable work-queue tests."""

from __future__ import annotations

import pytest

from repro.campaign import CampaignSpec, ScenarioSpec, StrategySpec


def queue_spec(**overrides) -> CampaignSpec:
    """A small, fast sweep (4 runs by default) for queue-level tests."""
    defaults = dict(
        name="queue-unit",
        problems=(("emilia_923_like", "tiny"),),
        n_nodes=4,
        strategies=(StrategySpec("esr"), StrategySpec("esrp", (10,))),
        phis=(1,),
        scenarios=(
            ScenarioSpec.make("failure_free"),
            ScenarioSpec.make("worst_case", location="start"),
        ),
        repetitions=1,
    )
    defaults.update(overrides)
    return CampaignSpec(**defaults)


@pytest.fixture
def spec() -> CampaignSpec:
    return queue_spec()
