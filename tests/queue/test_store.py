"""QueueStore: layout, lease protocol, claim races, status accounting."""

import concurrent.futures
import json
import threading

import pytest

from repro.campaign.spec import expand_spec
from repro.exceptions import ConfigurationError
from repro.queue import QueueStore, task_id_for

from .conftest import queue_spec

pytestmark = pytest.mark.campaign


@pytest.fixture
def store(spec, tmp_path) -> QueueStore:
    return QueueStore.submit(spec, tmp_path / "queue")


class TestSubmit:
    def test_one_task_file_per_run_in_expansion_order(self, spec, store):
        runs = expand_spec(spec)
        task_ids = store.task_ids()
        assert len(task_ids) == len(runs) == store.n_tasks
        assert task_ids == [task_id_for(i, run) for i, run in enumerate(runs)]
        assert [store.load_task(t).run for t in task_ids] == runs

    def test_spec_round_trips(self, spec, store):
        assert store.spec == spec
        assert store.spec_dict == spec.to_dict()

    def test_resubmit_refused(self, spec, store):
        with pytest.raises(ConfigurationError, match="already exists"):
            QueueStore.submit(spec, store.queue_dir)

    def test_unsubmitted_directory_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError, match="not a submitted queue"):
            QueueStore(tmp_path).task_ids()

    def test_layout_version_checked(self, store):
        payload = json.loads(store.spec_path.read_text())
        payload["version"] = 999
        store.spec_path.write_text(json.dumps(payload))
        with pytest.raises(ConfigurationError, match="layout version"):
            QueueStore(store.queue_dir).task_ids()


class TestShardedLayout:
    """Layout v3: per-shard task segments + the spec.json manifest."""

    def test_manifest_matches_segments_and_bounds(self, spec, tmp_path):
        store = QueueStore.submit(spec, tmp_path / "q", shard_size=3)
        shards = store.shards()
        assert all(shard.count <= 3 for shard in shards)
        assert sum(shard.count for shard in shards) == store.n_tasks
        # Shards tile the expansion order exactly, in order.
        next_index = 0
        for shard in shards:
            assert shard.first_index == next_index
            next_index = shard.end_index
        # One segment file per manifest entry, and nothing per-task.
        stems = sorted(p.stem for p in (tmp_path / "q" / "tasks").glob("*.seg"))
        assert stems == sorted(shard.key for shard in shards)
        assert not list((tmp_path / "q" / "tasks").glob("*.json"))

    def test_shards_are_configuration_pure(self, spec, tmp_path):
        from repro.queue import task_config

        store = QueueStore.submit(spec, tmp_path / "q", shard_size=2)
        for shard in store.shards():
            assert {
                task_config(task_id)
                for task_id in store.shard_task_ids(shard)
            } == {shard.config}

    def test_random_access_load_matches_streaming(self, spec, tmp_path):
        store = QueueStore.submit(spec, tmp_path / "q", shard_size=2)
        streamed = {task.task_id: task for task in store.iter_tasks()}
        assert set(streamed) == set(store.task_ids())
        # A fresh handle per lookup: load_task must not depend on any
        # state warmed by iter_tasks.
        for task_id, task in streamed.items():
            assert QueueStore(store.queue_dir).load_task(task_id) == task

    def test_unknown_task_rejected(self, spec, tmp_path):
        store = QueueStore.submit(spec, tmp_path / "q")
        with pytest.raises(ConfigurationError, match="unknown task"):
            store.load_task("999999-abcdef-0123456789")
        with pytest.raises(ConfigurationError, match="unknown task"):
            store.load_task("not-a-task")

    def test_shard_for_task_and_terminal_counts(self, spec, tmp_path):
        store = QueueStore.submit(spec, tmp_path / "q", shard_size=2)
        ids = store.task_ids()
        for task_id in ids:
            shard = store.shard_for_task(task_id)
            assert shard is not None
            assert task_id in store.shard_task_ids(shard)
        assert store.shard_for_task("999999-abcdef-0123456789") is None
        counts = store.shard_terminal_counts(frozenset(ids[:3]))
        assert sum(counts.values()) == 3

    def test_manifest_footer_mismatch_detected(self, spec, tmp_path):
        store = QueueStore.submit(spec, tmp_path / "q", shard_size=2)
        payload = json.loads(store.spec_path.read_text())
        payload["shards"][0]["count"] += 1
        store.spec_path.write_text(json.dumps(payload))
        fresh = QueueStore(store.queue_dir)
        with pytest.raises(ConfigurationError, match="disagrees with the shard manifest"):
            fresh.shard_task_ids(fresh.shards()[0])

    def test_shard_size_validated(self, spec, tmp_path):
        with pytest.raises(ConfigurationError, match="shard_size"):
            QueueStore.submit(spec, tmp_path / "q", shard_size=0)


class TestClaim:
    def test_claims_follow_task_order(self, store):
        first = store.claim("w1", ttl=60)
        second = store.claim("w2", ttl=60)
        ids = store.task_ids()
        assert first.task_id == ids[0]
        assert second.task_id == ids[1]

    def test_drained_queue_claims_none(self, store):
        for _ in range(store.n_tasks):
            task = store.claim("w1", ttl=60)
            store.complete(task, "w1", store.append_record("w1", _record(task)))
        assert store.claim("w1", ttl=60) is None

    def test_live_lease_blocks_reclaim(self, store):
        task = store.claim("w1", ttl=60)
        others = {store.claim("w2", ttl=60).task_id for _ in range(store.n_tasks - 1)}
        assert task.task_id not in others
        assert store.claim("w2", ttl=60) is None  # everything is leased

    def test_expired_lease_is_reclaimed_on_claim(self, store):
        task = store.claim("w1", ttl=0.05)
        _wait_past(store, task.task_id)
        reclaimed_ids = [
            store.claim("w2", ttl=60).task_id for _ in range(store.n_tasks)
        ]
        assert task.task_id in reclaimed_ids  # w2 took over the dead claim
        lease = store.read_lease(task.task_id)
        assert lease is not None and lease.worker_id == "w2"
        tombstones = list((store.queue_dir / "reclaimed").iterdir())
        assert len(tombstones) == 1

    def test_two_workers_never_double_claim(self, spec, tmp_path):
        # Hammer one small store from many threads; every task must be
        # handed out exactly once (O_EXCL is the only arbiter).
        store = QueueStore.submit(
            queue_spec(name="race", repetitions=3), tmp_path / "race-queue"
        )
        claimed: list[str] = []
        lock = threading.Lock()

        def drain(worker_id):
            own = QueueStore(store.queue_dir)  # independent handle
            while True:
                task = own.claim(worker_id, ttl=60)
                if task is None:
                    return
                with lock:
                    claimed.append(task.task_id)

        with concurrent.futures.ThreadPoolExecutor(max_workers=8) as pool:
            list(pool.map(drain, [f"w{i}" for i in range(8)]))
        assert sorted(claimed) == store.task_ids()  # no dupes, no gaps

    def test_racing_reclaim_of_one_expired_lease_has_one_winner(self, store):
        task = store.claim("dead", ttl=0.05)
        _wait_past(store, task.task_id)
        results = []

        def reclaim(worker_id):
            own = QueueStore(store.queue_dir)
            lease = own.read_lease(task.task_id)
            if lease is not None:
                results.append((worker_id, own._reclaim(task.task_id, lease, worker_id)))

        threads = [
            threading.Thread(target=reclaim, args=(f"w{i}",)) for i in range(6)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sum(1 for _, won in results if won) == 1


class TestHeartbeat:
    def test_heartbeat_renews_own_lease(self, store):
        task = store.claim("w1", ttl=60)
        before = store.read_lease(task.task_id)
        assert store.heartbeat(task.task_id, "w1")
        after = store.read_lease(task.task_id)
        assert after.heartbeat_at >= before.heartbeat_at
        assert after.claimed_at == before.claimed_at

    def test_heartbeat_reports_lost_lease(self, store):
        task = store.claim("w1", ttl=0.05)
        _wait_past(store, task.task_id)
        store.reclaim_expired()
        assert not store.heartbeat(task.task_id, "w1")

    def test_heartbeat_refuses_foreign_lease(self, store):
        task = store.claim("w1", ttl=60)
        assert not store.heartbeat(task.task_id, "w2")

    def test_release_refuses_foreign_lease(self, store):
        task = store.claim("w1", ttl=60)
        store.release(task.task_id, "w2")
        assert store.read_lease(task.task_id).worker_id == "w1"


class TestOutcomes:
    def test_complete_records_shard_and_releases(self, store):
        task = store.claim("w1", ttl=60)
        shard = store.append_record("w1", _record(task))
        outcome = store.complete(task, "w1", shard)
        assert outcome.status == "done" and outcome.shard == shard
        assert store.read_lease(task.task_id) is None
        assert store.is_terminal(task.task_id)
        assert store.read_outcome(task.task_id) == outcome

    def test_fail_records_error(self, store):
        task = store.claim("w1", ttl=60)
        outcome = store.fail(task, "w1", "ZeroDivisionError: boom")
        assert outcome.status == "failed" and "boom" in outcome.error
        assert store.is_terminal(task.task_id)

    def test_completed_task_is_never_reclaimed(self, store):
        task = store.claim("w1", ttl=60)
        shard = store.append_record("w1", _record(task))
        store.complete(task, "w1", shard)
        remaining = {store.claim("w2", ttl=60).task_id for _ in range(store.n_tasks - 1)}
        assert task.task_id not in remaining


class TestStatus:
    def test_counters_track_transitions(self, store):
        total = store.n_tasks
        assert store.status().to_dict() == {
            "total": total, "pending": total, "claimed": 0, "expired": 0,
            "done": 0, "failed": 0, "retried": 0, "workers": {},
        }
        task = store.claim("w1", ttl=60)
        assert store.status().claimed == 1
        shard = store.append_record("w1", _record(task))
        store.complete(task, "w1", shard)
        status = store.status(with_workers=True)
        assert (status.done, status.claimed, status.pending) == (1, 0, total - 1)
        assert status.workers == {"w1": 1}

    def test_expired_lease_counted_separately(self, store):
        store.claim("w1", ttl=0.05)
        _wait_any_expired(store)
        status = store.status()
        assert status.expired == 1 and status.claimed == 0
        assert status.pending == store.n_tasks - 1


def _record(task):
    """A cheap fake record for store-level tests (no solve needed)."""
    from repro.campaign.results import CampaignRunRecord

    run = task.run
    return CampaignRunRecord(
        run_id=run.run_id, problem=run.problem, scale=run.scale,
        n_nodes=run.n_nodes, preconditioner=run.preconditioner,
        strategy=run.strategy, T=run.T, phi=run.phi,
        scenario_kind=run.scenario.kind,
        scenario_params=dict(run.scenario.params),
        repetition=run.repetition, seed=run.seed, converged=True,
        iterations=5, executed_iterations=5, relative_residual=1e-9,
        modeled_time=1.0, recovery_time=0.0, reference_time=1.0,
        reference_iterations=5, total_overhead=0.0, recovery_overhead=0.0,
        n_failures=0, failure_iterations=(), solution_error=0.0,
    )


def _wait_past(store, task_id, timeout=5.0):
    """Busy-wait until the task's lease is expired."""
    import time

    deadline = time.time() + timeout
    while time.time() < deadline:
        lease = store.read_lease(task_id)
        if lease is None or lease.expired(time.time()):
            return
        time.sleep(0.01)
    raise AssertionError("lease never expired")


def _wait_any_expired(store, timeout=5.0):
    import time

    deadline = time.time() + timeout
    while time.time() < deadline:
        if store.status().expired:
            return
        time.sleep(0.01)
    raise AssertionError("no lease expired in time")
