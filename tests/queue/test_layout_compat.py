"""Layout v2 → v3 compatibility: old stores, new workers, same bytes.

The checked-in fixture queue (``tests/queue/fixtures/v2-queue``) was
created by the layout-v2 ``submit`` (one JSON file per task) and is
never regenerated: it pins the promise that a queue submitted before
the sharded-segment layout stays claimable and collectable — with a
byte-identical result — by every later worker.
"""

from __future__ import annotations

import json
import pathlib
import shutil

import pytest

from repro.campaign import execute_campaign
from repro.queue import QueueStore, QueueWorker, collect
from repro.queue.store import DEFAULT_SHARD_SIZE, task_config

from .conftest import queue_spec

pytestmark = [pytest.mark.campaign, pytest.mark.integration]

FIXTURE = pathlib.Path(__file__).parent / "fixtures" / "v2-queue"


@pytest.fixture
def v2_queue(tmp_path) -> pathlib.Path:
    """A writable copy of the frozen v2 fixture queue."""
    queue_dir = tmp_path / "v2-queue"
    shutil.copytree(FIXTURE, queue_dir)
    return queue_dir


class TestV2Fixture:
    def test_fixture_really_is_layout_v2(self):
        # Guards the fixture itself: regenerating it with a v3-default
        # submit would silently stop testing compatibility.
        payload = json.loads((FIXTURE / "spec.json").read_text())
        assert payload["version"] == 2
        assert "shards" not in payload
        task_files = sorted((FIXTURE / "tasks").glob("*.json"))
        assert len(task_files) == payload["n_tasks"] == 4
        assert not list((FIXTURE / "tasks").glob("*.seg"))

    def test_v2_store_opens_with_task_api_intact(self, v2_queue):
        store = QueueStore(v2_queue)
        assert store.layout_version == 2
        ids = store.task_ids()
        assert len(ids) == store.n_tasks
        # The shard view is synthesised from the task listing, so the
        # worker's shard-wise selection runs unchanged against v2.
        shards = store.shards()
        assert sum(shard.count for shard in shards) == store.n_tasks
        assert [
            task_id
            for shard in shards
            for task_id in store.shard_task_ids(shard)
        ] == ids
        for task_id in ids:
            assert store.load_task(task_id).task_id == task_id

    def test_v2_queue_drains_byte_identical_to_serial(self, v2_queue, tmp_path):
        store = QueueStore(v2_queue)
        serial = execute_campaign(store.spec, workers=0)
        summary = QueueWorker(store, worker_id="v3worker").run()
        assert summary.done == store.n_tasks
        merged = collect(v2_queue)
        a = serial.to_json(tmp_path / "serial.json")
        b = merged.to_json(tmp_path / "collected.json")
        assert a.read_bytes() == b.read_bytes()


class TestLayoutEquivalence:
    def test_both_layouts_expose_identical_tasks(self, tmp_path):
        spec = queue_spec()
        v2 = QueueStore.submit(spec, tmp_path / "v2", layout=2)
        v3 = QueueStore.submit(spec, tmp_path / "v3", layout=3, shard_size=3)
        assert v2.task_ids() == v3.task_ids()
        assert v2.config_groups() == v3.config_groups()
        for task_id in v2.task_ids():
            assert v2.load_task(task_id) == v3.load_task(task_id)
        assert [t.to_dict() for t in v2.iter_tasks()] == [
            t.to_dict() for t in v3.iter_tasks()
        ]

    def test_unsupported_layout_refused_at_submit(self, tmp_path):
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError, match="unsupported queue layout"):
            QueueStore.submit(queue_spec(), tmp_path / "q", layout=1)


class TestSubmitLayoutFlag:
    def _submit(self, queue_dir, *extra):
        from repro.cli import main

        argv = [
            "campaign", "submit", "--queue", str(queue_dir),
            "--scale", "tiny", *extra,
        ]
        assert main(argv) == 0

    def test_default_submit_is_sharded_v3(self, tmp_path, capsys):
        self._submit(tmp_path / "q")
        assert "layout v3" in capsys.readouterr().out
        store = QueueStore(tmp_path / "q")
        assert store.layout_version == 3
        assert list((tmp_path / "q" / "tasks").glob("*.seg"))
        assert not list((tmp_path / "q" / "tasks").glob("*.json"))

    def test_layout_v2_flag_writes_legacy_store(self, tmp_path, capsys):
        self._submit(tmp_path / "q", "--layout", "v2")
        assert "layout v2" in capsys.readouterr().out
        store = QueueStore(tmp_path / "q")
        assert store.layout_version == 2
        assert not list((tmp_path / "q" / "tasks").glob("*.seg"))
        assert len(list((tmp_path / "q" / "tasks").glob("*.json"))) == store.n_tasks

    def test_shard_size_flag_bounds_segments(self, tmp_path):
        self._submit(tmp_path / "q", "--shard-size", "2")
        store = QueueStore(tmp_path / "q")
        assert all(shard.count <= 2 for shard in store.shards())
        assert json.loads(store.spec_path.read_text())["shard_size"] == 2

    def test_shard_size_default_is_documented_value(self, tmp_path):
        self._submit(tmp_path / "q")
        payload = json.loads((tmp_path / "q" / "spec.json").read_text())
        assert payload["shard_size"] == DEFAULT_SHARD_SIZE


def test_v2_task_config_matches_shard_config(v2_queue):
    store = QueueStore(v2_queue)
    for shard in store.shards():
        assert all(
            task_config(task_id) == shard.config
            for task_id in store.shard_task_ids(shard)
        )
