"""Unit tests for the Poisson-family generators."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.matrices.analysis import is_spd, is_symmetric
from repro.matrices.poisson import (
    apply_scaling,
    layered_kappa_field,
    layered_scaling,
    poisson_1d,
    poisson_2d,
    poisson_3d,
    poisson_3d_27pt,
    variable_poisson_3d,
)


class TestConstantCoefficient:
    def test_poisson_1d_structure(self):
        a = poisson_1d(5).toarray()
        assert np.allclose(np.diag(a), 2.0)
        assert np.allclose(np.diag(a, 1), -1.0)

    def test_poisson_2d_size_and_spd(self):
        a = poisson_2d(4, 5)
        assert a.shape == (20, 20)
        assert is_spd(a)

    def test_poisson_3d_size_and_spd(self):
        a = poisson_3d(3, 4, 2)
        assert a.shape == (24, 24)
        assert is_spd(a)

    def test_poisson_3d_7_point_rows(self):
        a = poisson_3d(5)
        counts = np.diff(a.indptr)
        assert counts.max() == 7

    def test_27pt_interior_row_density(self):
        a = poisson_3d_27pt(5)
        counts = np.diff(a.tocsr().indptr)
        assert counts.max() == 27

    def test_27pt_spd(self):
        assert is_spd(poisson_3d_27pt(4))

    def test_27pt_anisotropy_validation(self):
        with pytest.raises(ConfigurationError):
            poisson_3d_27pt(4, anisotropy=(1.0, 0.0, 1.0))

    def test_zero_size_rejected(self):
        with pytest.raises(ConfigurationError):
            poisson_1d(0)


class TestKappaField:
    def test_shape_is_znyx(self):
        field = layered_kappa_field((3, 4, 5), seed=0)
        assert field.shape == (5, 4, 3)

    def test_positive(self):
        field = layered_kappa_field((4, 4, 8), contrast=100.0, seed=1)
        assert np.all(field > 0)

    def test_contrast_respected(self):
        field = layered_kappa_field((2, 2, 12), contrast=1000.0, inclusion_sigma=0.0, seed=2)
        layers = field[:, 0, 0]
        assert layers.max() / layers.min() == pytest.approx(1000.0)

    def test_seeded_reproducible(self):
        a = layered_kappa_field((3, 3, 6), seed=7)
        b = layered_kappa_field((3, 3, 6), seed=7)
        assert np.array_equal(a, b)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            layered_kappa_field((2, 2, 4), n_layers=0)
        with pytest.raises(ConfigurationError):
            layered_kappa_field((2, 2, 4), contrast=0.5)
        with pytest.raises(ConfigurationError):
            layered_kappa_field((2, 2, 4), inclusion_sigma=-1.0)


class TestVariablePoisson:
    def test_symmetric_and_spd(self):
        shape = (3, 3, 5)
        kappa = layered_kappa_field(shape, contrast=10.0, seed=3)
        a = variable_poisson_3d(shape, kappa)
        assert is_symmetric(a)
        assert is_spd(a)

    def test_constant_kappa_matches_poisson_3d(self):
        shape = (3, 4, 5)
        kappa = np.ones((5, 4, 3))
        a = variable_poisson_3d(shape, kappa)
        b = poisson_3d(*shape)
        assert np.allclose(a.toarray(), b.toarray())

    def test_neumann_sides_spd_with_long_axis_dirichlet(self):
        shape = (3, 3, 8)
        kappa = np.ones((8, 3, 3))
        a = variable_poisson_3d(shape, kappa, dirichlet_axes=(0,))
        assert is_spd(a)

    def test_pure_neumann_rejected(self):
        shape = (2, 2, 2)
        kappa = np.ones((2, 2, 2))
        with pytest.raises(ConfigurationError):
            variable_poisson_3d(shape, kappa, dirichlet_axes=())

    def test_invalid_axis_rejected(self):
        kappa = np.ones((2, 2, 2))
        with pytest.raises(ConfigurationError):
            variable_poisson_3d((2, 2, 2), kappa, dirichlet_axes=(3,))

    def test_kappa_shape_mismatch(self):
        with pytest.raises(ConfigurationError):
            variable_poisson_3d((2, 3, 4), np.ones((2, 3, 4)))

    def test_nonpositive_kappa_rejected(self):
        kappa = np.ones((2, 2, 2))
        kappa[0, 0, 0] = 0.0
        with pytest.raises(ConfigurationError):
            variable_poisson_3d((2, 2, 2), kappa)

    def test_row_sums_zero_on_neumann_interior(self):
        # With Dirichlet only on z, rows away from z-walls must sum to 0.
        shape = (3, 3, 6)
        kappa = layered_kappa_field(shape, contrast=5.0, seed=4)
        a = variable_poisson_3d(shape, kappa, dirichlet_axes=(0,))
        sums = np.asarray(a.sum(axis=1)).ravel()
        interior = slice(9 * 2, 9 * 4)  # z in {2,3}: away from both walls
        assert np.allclose(sums[interior], 0.0, atol=1e-12)


class TestScaling:
    def test_apply_scaling_symmetric(self):
        a = poisson_2d(4)
        d = np.linspace(1.0, 2.0, 16)
        scaled = apply_scaling(a, d)
        assert is_symmetric(scaled)
        assert np.allclose(scaled.toarray(), np.diag(d) @ a.toarray() @ np.diag(d))

    def test_apply_scaling_size_mismatch(self):
        with pytest.raises(ConfigurationError):
            apply_scaling(poisson_2d(4), np.ones(5))

    def test_layered_scaling_shape(self):
        d = layered_scaling((3, 4, 5), n_layers=2, contrast=4.0, seed=0)
        assert d.shape == (60,)
        assert np.all(d > 0)

    def test_layered_scaling_dofs(self):
        d = layered_scaling((2, 2, 2), dofs_per_point=3, seed=0)
        assert d.shape == (24,)
        # consecutive dof triples share the same scaling
        assert np.allclose(d[0::3], d[1::3])
