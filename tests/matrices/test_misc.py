"""Unit tests for elasticity, random SPD, MatrixMarket I/O and analysis."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.matrices.analysis import (
    condition_estimate,
    extreme_eigenvalues,
    is_spd,
    is_symmetric,
    sparsity_stats,
)
from repro.matrices.elasticity import coupling_block, elasticity_3d, n_unknowns
from repro.matrices.io_mm import (
    read_matrix_market,
    read_vector,
    write_matrix_market,
    write_vector,
)
from repro.matrices.poisson import poisson_1d, poisson_2d
from repro.matrices.random_spd import random_banded_spd, random_spd_dense_spectrum


class TestElasticity:
    def test_coupling_block_spd(self):
        c = coupling_block(0.4)
        assert np.allclose(c, c.T)
        assert np.all(np.linalg.eigvalsh(c) > 0)

    def test_coupling_bounds(self):
        with pytest.raises(ConfigurationError):
            coupling_block(1.0)
        with pytest.raises(ConfigurationError):
            coupling_block(-0.1)

    def test_elasticity_size(self):
        a = elasticity_3d(3, 3, 2)
        assert a.shape == (n_unknowns(3, 3, 2),) * 2
        assert n_unknowns(3, 3, 2) == 54

    def test_elasticity_spd(self):
        assert is_spd(elasticity_3d(3, coupling=0.3))

    def test_interior_row_density_81(self):
        a = elasticity_3d(5, coupling=0.3)
        counts = np.diff(a.tocsr().indptr)
        assert counts.max() == 81

    def test_zero_coupling_decouples(self):
        a = elasticity_3d(3, coupling=0.0).toarray()
        # dof 0 of a point never couples to dof 1 of any point
        assert np.allclose(a[0::3, 1::3], 0.0)


class TestRandomSPD:
    def test_spd(self):
        a = random_banded_spd(30, bandwidth=4, density=0.8, seed=1)
        assert is_spd(a)

    def test_bandwidth_bound(self):
        a = random_banded_spd(40, bandwidth=3, density=1.0, seed=2)
        coo = a.tocoo()
        assert np.abs(coo.row - coo.col).max() <= 3

    def test_zero_bandwidth_is_diagonal(self):
        a = random_banded_spd(10, bandwidth=0, seed=0)
        assert a.nnz == 10

    def test_density_increases_nnz(self):
        sparse = random_banded_spd(60, bandwidth=6, density=0.2, seed=3)
        dense = random_banded_spd(60, bandwidth=6, density=0.9, seed=3)
        assert dense.nnz > sparse.nnz

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            random_banded_spd(10, bandwidth=10)
        with pytest.raises(ConfigurationError):
            random_banded_spd(10, bandwidth=2, density=0.0)
        with pytest.raises(ConfigurationError):
            random_banded_spd(0, bandwidth=0)

    def test_dense_spectrum_condition(self):
        a = random_spd_dense_spectrum(20, condition=100.0, seed=4)
        lam_min, lam_max = extreme_eigenvalues(a)
        assert lam_max / lam_min == pytest.approx(100.0, rel=1e-3)

    def test_dense_spectrum_validation(self):
        with pytest.raises(ConfigurationError):
            random_spd_dense_spectrum(10, condition=0.5)


class TestMatrixMarketIO:
    def test_matrix_roundtrip(self, tmp_path):
        a = random_banded_spd(15, bandwidth=3, seed=5)
        path = tmp_path / "test.mtx"
        write_matrix_market(path, a, comment="roundtrip")
        b = read_matrix_market(path)
        assert (a != b).nnz == 0

    def test_vector_roundtrip(self, tmp_path):
        v = np.linspace(-1, 1, 17)
        path = tmp_path / "vec.mtx"
        write_vector(path, v)
        assert np.allclose(read_vector(path), v)

    def test_missing_file(self, tmp_path):
        with pytest.raises(ConfigurationError):
            read_matrix_market(tmp_path / "nope.mtx")
        with pytest.raises(ConfigurationError):
            read_vector(tmp_path / "nope.mtx")

    def test_non_square_rejected(self, tmp_path):
        import scipy.io
        import scipy.sparse as sp

        path = tmp_path / "rect.mtx"
        scipy.io.mmwrite(str(path), sp.random(3, 5, density=0.5))
        with pytest.raises(ConfigurationError):
            read_matrix_market(path)


class TestAnalysis:
    def test_sparsity_stats_poisson(self):
        stats = sparsity_stats(poisson_1d(10))
        assert stats.n == 10
        assert stats.nnz == 28
        assert stats.bandwidth == 1
        assert stats.symmetric
        assert stats.nnz_per_row_max == 3

    def test_is_symmetric_detects_asymmetry(self):
        import scipy.sparse as sp

        a = sp.csr_matrix(np.array([[1.0, 2.0], [0.0, 1.0]]))
        assert not is_symmetric(a)

    def test_extreme_eigenvalues_poisson(self):
        lam_min, lam_max = extreme_eigenvalues(poisson_1d(20))
        h = np.pi / 21
        assert lam_min == pytest.approx(2 - 2 * np.cos(h), rel=1e-3)
        assert lam_max == pytest.approx(2 - 2 * np.cos(20 * h), rel=1e-3)

    def test_condition_estimate(self):
        cond = condition_estimate(poisson_2d(5))
        assert cond > 1.0

    def test_is_spd_rejects_indefinite(self):
        import scipy.sparse as sp

        a = sp.csr_matrix(np.diag([1.0, -1.0, 2.0]))
        assert not is_spd(a)

    def test_non_square_stats_rejected(self):
        import scipy.sparse as sp

        with pytest.raises(ConfigurationError):
            sparsity_stats(sp.random(3, 4, density=0.5))
