"""Unit tests for the named test-problem registry."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.matrices import suite
from repro.matrices.analysis import is_spd


class TestLoad:
    def test_available_problems(self):
        assert {"emilia_923_like", "audikw_1_like", "poisson3d"} <= set(
            suite.available_problems()
        )

    def test_available_scales(self):
        assert set(suite.available_scales()) == {"tiny", "small", "bench", "large"}

    @pytest.mark.parametrize("name", ["emilia_923_like", "audikw_1_like"])
    def test_tiny_problems_are_spd(self, name):
        matrix, b, meta = suite.load(name, scale="tiny")
        assert is_spd(matrix)
        assert b.shape == (matrix.shape[0],)

    def test_meta_fields(self):
        matrix, b, meta = suite.load("emilia_923_like", scale="tiny")
        assert meta.name == "emilia_923_like"
        assert meta.scale == "tiny"
        assert meta.n == matrix.shape[0]
        assert meta.nnz == matrix.nnz
        assert meta.source == "synthetic-stand-in"
        assert meta.paper["paper_matrix"] == "Emilia_923"
        assert meta.paper["paper_iterations"] == 10_279

    def test_b_is_consistent_with_exact_solution(self):
        matrix, b, _ = suite.load("emilia_923_like", scale="tiny", seed=5)
        # b was built as A @ x_exact; solving must reproduce some x with
        # residual ~ machine precision at the linear-algebra level.
        x = np.linalg.solve(matrix.toarray(), b)
        assert np.linalg.norm(b - matrix @ x) / np.linalg.norm(b) < 1e-10

    def test_seeded_determinism(self):
        a1, b1, _ = suite.load("audikw_1_like", scale="tiny", seed=3)
        a2, b2, _ = suite.load("audikw_1_like", scale="tiny", seed=3)
        assert np.array_equal(b1, b2)
        assert (a1 != a2).nnz == 0

    def test_different_seed_changes_matrix(self):
        a1, _, _ = suite.load("emilia_923_like", scale="tiny", seed=1)
        a2, _, _ = suite.load("emilia_923_like", scale="tiny", seed=2)
        assert (a1 != a2).nnz > 0

    def test_audikw_has_denser_rows(self):
        _, _, meta_e = suite.load("emilia_923_like", scale="tiny")
        _, _, meta_a = suite.load("audikw_1_like", scale="tiny")
        assert meta_a.nnz_per_row > 2 * meta_e.nnz_per_row

    def test_audikw_dofs(self):
        _, _, meta = suite.load("audikw_1_like", scale="tiny")
        assert meta.dofs_per_point == 3
        assert meta.n % 3 == 0

    def test_unknown_problem(self):
        with pytest.raises(ConfigurationError):
            suite.load("bcsstk18")

    def test_unknown_scale(self):
        with pytest.raises(ConfigurationError):
            suite.load("emilia_923_like", scale="huge")

    def test_scales_are_ordered_by_size(self):
        sizes = []
        for scale in ("tiny", "small", "bench"):
            _, _, meta = suite.load("emilia_923_like", scale=scale)
            sizes.append(meta.n)
        assert sizes == sorted(sizes)
        assert sizes[0] < sizes[-1]

    def test_real_matrix_dir_miss_is_ignored(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_MATRIX_DIR", str(tmp_path))
        matrix, _, meta = suite.load("emilia_923_like", scale="tiny")
        assert meta.source == "synthetic-stand-in"

    def test_real_matrix_dir_hit_is_used(self, monkeypatch, tmp_path):
        from repro.matrices.io_mm import write_matrix_market
        from repro.matrices.random_spd import random_banded_spd

        real = random_banded_spd(12, bandwidth=2, seed=0)
        write_matrix_market(tmp_path / "Emilia_923.mtx", real)
        monkeypatch.setenv("REPRO_MATRIX_DIR", str(tmp_path))
        matrix, b, meta = suite.load("emilia_923_like")
        assert meta.source == "suitesparse"
        assert meta.scale == "native"
        assert matrix.shape == (12, 12)
