"""Periodic-verification CG: SDC detection, rollback, and recovery paths.

The contract (arXiv:1511.04478 adapted to the engine): every T-th
iteration ``pv`` recomputes the true residual b − A·x and compares it
against the recursive residual; a gap above the threshold rejects the
iteration — backward mode rolls back to the last verified checkpoint,
forward mode adopts the true residual and restarts the direction.
Strategies without verification converge on the (consistent) recursive
residual while the corrupted x silently drifts from the true solution.
"""

import numpy as np
import pytest

import repro
from repro.faults import FaultSchedule, SDCEvent
from repro.matrices import poisson_2d

pytestmark = pytest.mark.smoke

N_NODES = 4


@pytest.fixture(scope="module")
def problem():
    matrix = poisson_2d(16)
    b = np.ones(matrix.shape[0])
    reference = repro.solve(matrix, b, n_nodes=N_NODES, strategy="reference")
    return matrix, b, reference


def corruption(iteration, magnitude=1e-2):
    """A deterministic, comfortably-detectable strike on rank 1's x block."""
    return FaultSchedule([
        SDCEvent(iteration=iteration, rank=1, vector="x", mode="scale",
                 magnitude=magnitude, seed=42),
    ])


class TestDetection:
    def test_pv_detects_and_recovers(self, problem):
        matrix, b, reference = problem
        result = repro.solve(
            matrix, b, n_nodes=N_NODES, strategy="pv", T=10, phi=1,
            failures=corruption(12),
        )
        assert result.converged
        assert result.stats["faults[sdc]"] == 1
        assert result.stats["faults[sdc_detected]"] == 1
        assert result.stats["faults[rollback]"] >= 1
        assert result.stats["faults[verification]"] >= 1
        # rollback re-executes work: more iterations run than counted
        assert result.executed_iterations > result.iterations
        error = np.linalg.norm(result.x - reference.x) / np.linalg.norm(reference.x)
        assert error < 1e-6

    def test_pv_forward_detects_and_recovers(self, problem):
        matrix, b, reference = problem
        result = repro.solve(
            matrix, b, n_nodes=N_NODES, strategy="pv_forward", T=10, phi=1,
            failures=corruption(12),
        )
        assert result.converged
        assert result.stats["faults[sdc_detected]"] == 1
        error = np.linalg.norm(result.x - reference.x) / np.linalg.norm(reference.x)
        assert error < 1e-6

    def test_blind_strategy_misses_the_corruption(self, problem):
        # ESRP has no verification: the corrupted x silently converges
        # (the recursive residual stays consistent) to a wrong solution.
        matrix, b, reference = problem
        blind = repro.solve(
            matrix, b, n_nodes=N_NODES, strategy="esrp", T=10, phi=1,
            failures=corruption(12),
        )
        assert blind.converged
        assert blind.stats["faults[sdc]"] == 1
        assert "faults[sdc_detected]" not in blind.stats
        checked = repro.solve(
            matrix, b, n_nodes=N_NODES, strategy="pv", T=10, phi=1,
            failures=corruption(12),
        )
        blind_error = np.linalg.norm(blind.x - reference.x)
        checked_error = np.linalg.norm(checked.x - reference.x)
        assert blind_error > 100 * checked_error

    def test_failure_free_pv_matches_reference_trajectory(self, problem):
        matrix, b, reference = problem
        result = repro.solve(matrix, b, n_nodes=N_NODES, strategy="pv", T=10)
        assert result.converged
        assert result.iterations == reference.iterations
        assert "faults[sdc_detected]" not in result.stats
        error = np.linalg.norm(result.x - reference.x) / np.linalg.norm(reference.x)
        assert error < 1e-10


class TestDeterminism:
    def test_pv_solve_is_reproducible(self, problem):
        matrix, b, _ = problem
        runs = [
            repro.solve(
                matrix, b, n_nodes=N_NODES, strategy="pv", T=10, phi=1,
                failures=corruption(12), seed=5,
            )
            for _ in range(2)
        ]
        np.testing.assert_array_equal(runs[0].x, runs[1].x)
        assert runs[0].stats == runs[1].stats
        assert runs[0].executed_iterations == runs[1].executed_iterations

    def test_corruption_is_backend_invariant(self, problem):
        matrix, b, _ = problem
        results = {}
        for backend in ("vectorized", "compiled"):
            results[backend] = repro.solve(
                matrix, b, n_nodes=N_NODES, strategy="pv", T=10, phi=1,
                failures=corruption(12), backend=backend, seed=5,
            )
        np.testing.assert_array_equal(
            results["vectorized"].x, results["compiled"].x
        )
        assert results["vectorized"].stats == results["compiled"].stats


class TestNodeFailureFallback:
    def test_pv_survives_fail_stop_via_restart(self, problem):
        # pv keeps no cross-node redundancy; a fail-stop event degrades
        # to a checkpoint-less restart but must still converge.
        matrix, b, _ = problem
        result = repro.solve(
            matrix, b, n_nodes=N_NODES, strategy="pv", T=10, phi=1,
            failures=[(15, (1,))],
        )
        assert result.converged
        assert result.stats["faults[node_failure]"] == 1
