"""Fault-model registry, events, schedules and request pass-through.

The taxonomy contract (see :mod:`repro.faults`): every registered model
turns a :class:`ScenarioContext` into a schedule deterministically from
``ctx.seed``; events round-trip through dicts; silent-corruption events
are split from fail-stop events by :class:`FaultSchedule`; and requests
carry taxonomy events through JSON unchanged (API and serve layers).
"""

import json

import numpy as np
import pytest

from repro.api.request import SolveRequest
from repro.campaign import ScenarioContext
from repro.cluster.failures import FailureEvent, FailureSchedule
from repro.exceptions import ConfigurationError
from repro.faults import (
    ChurnEvent,
    CompressionModel,
    FaultSchedule,
    SDCEvent,
    event_from_dict,
    fault_kinds,
    make_fault_model,
)

pytestmark = pytest.mark.smoke


def make_ctx(n_nodes=4, phi=1, strategy="esrp", T=10, C=40, seed=7):
    return ScenarioContext(
        n_nodes=n_nodes,
        phi=phi,
        strategy=strategy,
        T=T,
        reference_iterations=C,
        seed=seed,
    )


class TestRegistry:
    def test_all_kinds_registered(self):
        kinds = fault_kinds()
        for kind in ("node_failure", "sdc", "lossy_checkpoint", "churn"):
            assert kind in kinds

    def test_aliases_resolve(self):
        assert type(make_fault_model("fail_stop")) is type(
            make_fault_model("node_failure")
        )
        assert type(make_fault_model("silent_data_corruption")) is type(
            make_fault_model("sdc")
        )
        assert type(make_fault_model("lossy")) is type(
            make_fault_model("lossy_checkpoint")
        )
        assert type(make_fault_model("node_churn")) is type(
            make_fault_model("churn")
        )

    def test_unknown_kind_raises(self):
        with pytest.raises(ConfigurationError):
            make_fault_model("bitrot")

    def test_schedules_deterministic_per_seed(self):
        ctx = make_ctx(seed=13)
        for kind in fault_kinds():
            model = make_fault_model(kind)
            first = [e.to_dict() for e in model.schedule(ctx)]
            second = [e.to_dict() for e in model.schedule(ctx)]
            assert first == second, kind


class TestNodeFailureModel:
    def test_matches_historical_fraction_generator(self):
        # The registered fail-stop model IS the old inline `fraction`
        # generator; campaigns stored before the taxonomy must replay
        # onto identical schedules.
        from repro.campaign import ScenarioSpec, generate_schedule

        ctx = make_ctx()
        spec = ScenarioSpec.make(
            "fraction", fraction=0.5, location="start", width=1
        )
        via_scenario = [e.to_dict() for e in generate_schedule(spec, ctx)]
        via_model = [
            e.to_dict()
            for e in make_fault_model(
                "node_failure", fraction=0.5, location="start", width=1
            ).schedule(ctx)
        ]
        assert via_scenario == via_model
        assert via_model == [{"iteration": 20, "ranks": [0]}]


class TestSDC:
    def test_event_apply_is_deterministic(self):
        event = SDCEvent(iteration=5, rank=1, seed=42)
        a = np.linspace(1.0, 2.0, 16)
        b = a.copy()
        info_a = event.apply(a)
        info_b = event.apply(b)
        assert info_a == info_b
        np.testing.assert_array_equal(a, b)
        assert np.all(np.isfinite(a))
        assert a[info_a["index"]] != info_a["old"]

    def test_scale_mode_perturbs(self):
        event = SDCEvent(iteration=5, rank=0, mode="scale", magnitude=0.5, seed=3)
        block = np.ones(8)
        info = event.apply(block)
        assert info["new"] == pytest.approx(info["old"] + 0.5 * 2.0)

    def test_empty_block_is_skipped(self):
        info = SDCEvent(iteration=1, rank=0).apply(np.empty(0))
        assert info == {"skipped": True}

    def test_event_roundtrip(self):
        event = SDCEvent(iteration=9, rank=2, vector="r", mode="scale",
                         magnitude=0.25, seed=11)
        assert event_from_dict(event.to_dict()) == event

    def test_model_validation(self):
        with pytest.raises(ConfigurationError):
            make_fault_model("sdc", probability=1.5)
        with pytest.raises(ConfigurationError):
            make_fault_model("sdc", vector="q")
        with pytest.raises(ConfigurationError):
            make_fault_model("sdc", mode="gamma_ray")

    def test_corruption_chances_cycle_over_ranks(self):
        # Rank 1 and 3 have probability 0, so no strikes land there.
        model = make_fault_model(
            "sdc", corruption_chances=(0.9, 0.0), max_events=None
        )
        schedule = model.schedule(make_ctx(seed=5))
        assert len(schedule) > 0
        assert all(e.rank in (0, 2) for e in schedule)

    def test_max_events_truncates(self):
        model = make_fault_model("sdc", probability=0.9, max_events=2)
        assert len(model.schedule(make_ctx(seed=1))) == 2


class TestChurn:
    def test_event_roundtrip(self):
        event = ChurnEvent(iteration=7, ranks=(1, 2), epoch=3,
                           critical_size=3, sufficient_size=4)
        restored = event_from_dict(event.to_dict())
        assert restored == event
        assert restored.fault_kind == "churn"

    def test_draw_count_independent_of_outcomes(self):
        # Outcome-independent RNG consumption: schedules with different
        # leave probabilities still place surviving events at the same
        # iterations (the rank/width draws are always made).
        always = make_fault_model("churn", leave_probability=1.0)
        sometimes = make_fault_model("churn", leave_probability=0.5)
        ctx = make_ctx(C=60, seed=21)
        all_iters = [e.iteration for e in always.schedule(ctx)]
        some_iters = [e.iteration for e in sometimes.schedule(ctx)]
        assert set(some_iters) <= set(all_iters)


class TestLossyCompression:
    def test_error_bound_respected(self):
        model = CompressionModel(error_bound=1e-3, ratio=4.0, seed=2)
        rng = np.random.default_rng(0)
        block = rng.normal(size=256)
        restored = model.compress(block)
        assert np.max(np.abs(restored - block)) <= 1e-3 + 1e-12

    def test_compression_is_deterministic(self):
        block = np.linspace(-1, 1, 64)
        a = CompressionModel(error_bound=1e-4, seed=9).compress(block)
        b = CompressionModel(error_bound=1e-4, seed=9).compress(block)
        np.testing.assert_array_equal(a, b)

    def test_compressed_bytes(self):
        model = CompressionModel(error_bound=1e-4, ratio=4.0)
        assert model.compressed_bytes(4000) == 1000
        assert model.compressed_bytes(4) == 8  # floor: one float
        assert model.compressed_bytes(0) == 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CompressionModel(error_bound=0.0)
        with pytest.raises(ConfigurationError):
            make_fault_model("lossy_checkpoint", ratio=0.5)


class TestFaultSchedule:
    def make_mixed(self):
        return FaultSchedule([
            FailureEvent(10, (0,)),
            SDCEvent(iteration=5, rank=1, seed=1),
            SDCEvent(iteration=10, rank=2, seed=2),
        ])

    def test_len_counts_both_families(self):
        assert len(self.make_mixed()) == 3

    def test_iter_is_merged_and_sorted(self):
        iters = [e.iteration for e in self.make_mixed()]
        assert iters == sorted(iters)

    def test_pop_split(self):
        schedule = self.make_mixed()
        assert [e.rank for e in schedule.pop_corruptions(5)] == [1]
        due = schedule.pop_due(10)
        assert due is not None and due.ranks == (0,)
        assert [e.rank for e in schedule.pop_corruptions(10)] == [2]
        # consumed once: replaying the same iterations yields nothing
        assert schedule.pop_due(10) is None
        assert list(schedule.pop_corruptions(10)) == []

    def test_reset_restores_everything(self):
        schedule = self.make_mixed()
        schedule.pop_corruptions(5)
        schedule.pop_due(10)
        assert schedule.pending() == 1
        schedule.reset()
        assert schedule.pending() == 3

    def test_plain_schedule_has_no_corruptions(self):
        schedule = FailureSchedule([FailureEvent(3, (1,))])
        assert list(schedule.pop_corruptions(3)) == []


class TestRequestPassThrough:
    def make_request(self):
        return SolveRequest(
            strategy="pv",
            T=10,
            phi=1,
            failures=(
                SDCEvent(iteration=12, rank=1, seed=99),
                FailureEvent(20, (0,)),
            ),
            seed=3,
        )

    def test_json_roundtrip_preserves_taxonomy_events(self):
        request = self.make_request()
        restored = SolveRequest.from_json(request.to_json())
        assert restored == request
        assert isinstance(restored.failures[0], SDCEvent)

    def test_schedule_materialises_fault_schedule(self):
        assert isinstance(self.make_request().schedule(), FaultSchedule)
        plain = SolveRequest(failures=((5, (0,)),))
        assert not isinstance(plain.schedule(), FaultSchedule)

    def test_strategy_params_roundtrip(self):
        request = SolveRequest(
            strategy="lossy_imcr",
            T=10,
            strategy_params={"error_bound": 1e-4, "ratio": 4.0, "seed": 5},
        )
        restored = SolveRequest.from_json(request.to_json())
        assert restored.strategy_params == request.strategy_params

    def test_serve_request_passes_events_through(self):
        from repro.serve.service import ServeRequest

        serve = ServeRequest(
            problem="poisson3d",
            scale="tiny",
            n_nodes=4,
            request=self.make_request(),
        )
        blob = json.dumps(serve.to_dict(), sort_keys=True)
        restored = ServeRequest.from_dict(json.loads(blob))
        assert restored == serve
        assert isinstance(restored.request.failures[0], SDCEvent)
