"""Campaign-level fault contract: determinism, invariance, counters.

The acceptance bar of the fault subsystem: an ``sdc`` + ``lossy``
campaign is byte-identical across repeated seeded executions and across
kernel backends, and the per-run ``faults[...]`` counters in each
record's stats match the injected schedule exactly (recomputable from
the record's own scenario params and seed).
"""

import dataclasses

import pytest

from repro.campaign import (
    ScenarioContext,
    execute_campaign,
    faults_spec,
    generate_schedule,
)
from repro.faults import SDCEvent

pytestmark = [pytest.mark.campaign, pytest.mark.smoke]


def small_faults_spec(**overrides):
    spec = faults_spec(scale="tiny", repetitions=1, n_nodes=4)
    base = dict(
        problems=(("poisson3d", "tiny"),),
        strategies=tuple(
            s for s in spec.strategies if s.name in ("esrp", "pv", "lossy_imcr")
        ),
    )
    base.update(overrides)
    return dataclasses.replace(spec, **base)


@pytest.fixture(scope="module")
def campaign():
    return execute_campaign(small_faults_spec(), workers=0)


class TestByteIdenticalResults:
    def test_repeated_runs_serialise_identically(self, campaign, tmp_path):
        again = execute_campaign(small_faults_spec(), workers=0)
        a = campaign.to_json(tmp_path / "a.json")
        b = again.to_json(tmp_path / "b.json")
        assert a.read_bytes() == b.read_bytes()

    def test_report_has_fault_columns(self, campaign):
        text = campaign.render_summary()
        assert "inj" in text and "det" in text and "rb" in text
        rows = campaign.overhead_rows()
        pv_sdc = [
            r for r in rows if r["strategy"] == "pv" and "sdc" in r["scenario"]
        ]
        assert pv_sdc and pv_sdc[0]["faults_injected"] > 0
        assert pv_sdc[0]["faults_detected"] >= 1
        assert pv_sdc[0]["rollbacks"] >= 1


class TestBackendInvariance:
    def test_vectorized_and_compiled_agree(self):
        spec = small_faults_spec(
            strategies=tuple(
                s
                for s in faults_spec(n_nodes=4).strategies
                if s.name in ("pv", "lossy_imcr")
            ),
            backends=("vectorized", "compiled"),
        )
        result = execute_campaign(spec, workers=0)
        by_key = {}
        for rec in result.records:
            key = (
                rec.strategy,
                rec.T,
                rec.phi,
                rec.scenario_kind,
                tuple(sorted(rec.scenario_params.items())),
                rec.repetition,
            )
            by_key.setdefault(key, {})[rec.backend] = rec
        assert by_key
        for key, sides in by_key.items():
            assert set(sides) == {"vectorized", "compiled"}, key
            a, b = sides["vectorized"], sides["compiled"]
            for field in (
                "converged",
                "iterations",
                "executed_iterations",
                "relative_residual",
                "solution_error",
                "n_failures",
                "failure_iterations",
                "seed",
                "stats",
            ):
                assert getattr(a, field) == getattr(b, field), (key, field)


class TestCountersMatchSchedule:
    def test_injected_counts_recompute_from_record(self, campaign):
        # Every record carries enough identity (scenario params + seed)
        # to regenerate its schedule; the faults[...] counters must
        # agree with it event for event.
        for rec in campaign.records:
            if rec.strategy == "reference":
                continue
            ctx = ScenarioContext(
                n_nodes=rec.n_nodes,
                phi=rec.phi,
                strategy=rec.strategy,
                T=rec.T,
                reference_iterations=rec.reference_iterations,
                seed=rec.seed,
            )
            from repro.campaign import ScenarioSpec

            schedule = generate_schedule(
                ScenarioSpec.make(rec.scenario_kind, **rec.scenario_params), ctx
            )
            sdc = sum(1 for e in schedule if isinstance(e, SDCEvent))
            fail_stop = len(schedule) - sdc
            assert rec.stats.get("faults[sdc]", 0.0) == sdc, rec.run_id
            injected_fail_stop = rec.stats.get(
                "faults[node_failure]", 0.0
            ) + rec.stats.get("faults[churn]", 0.0)
            assert injected_fail_stop == fail_stop, rec.run_id
            # n_failures counts every injected fault event, silent ones
            # included (it is len(request.failures)).
            assert rec.n_failures == len(schedule), rec.run_id
