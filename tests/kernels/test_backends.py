"""Unit tests of the compute-kernel backend layer.

The backend contract (see :mod:`repro.kernels.base`) demands
bit-identical numerics *and* identical accounting — clocks, per-channel
statistics, cost-noise RNG consumption — across ``looped``,
``vectorized`` and ``compiled``.  These tests check each kernel in
isolation against the ``looped`` reference; the end-to-end enforcement
lives in ``tests/properties/test_backend_equivalence.py``.
"""

from __future__ import annotations

import pathlib
import warnings

import numpy as np
import pytest

import repro
from repro.api.registry import KERNELS
from repro.cluster import CostModel, VirtualCluster, zero_cost_model
from repro.core.redundancy import RedundancyQueue
from repro.distribution import (
    ASpMVExecutor,
    BlockRowPartition,
    DistributedMatrix,
    DistributedVector,
    SpMVExecutor,
)
from repro.kernels import (
    DEFAULT_BACKEND,
    CompiledBackend,
    KernelBackend,
    LoopedBackend,
    VectorizedBackend,
    available_backends,
    resolve_backend,
)
from repro.matrices import poisson_2d
from repro.preconditioners import make_preconditioner

from ..conftest import make_distributed, random_vector

NOISY = CostModel(alpha=1e-6, beta=1e-9, gamma=1e-9, mu=1e-11, noise=0.1)


# ---------------------------------------------------------------------------
# registry and resolution
# ---------------------------------------------------------------------------


def test_builtin_backends_registered():
    assert "looped" in available_backends()
    assert "vectorized" in available_backends()
    assert "compiled" in available_backends()
    assert DEFAULT_BACKEND == "vectorized"


def test_resolve_backend_names_aliases_and_instances():
    assert isinstance(resolve_backend("looped"), LoopedBackend)
    assert isinstance(resolve_backend("vectorized"), VectorizedBackend)
    assert isinstance(resolve_backend("fused"), VectorizedBackend)  # alias
    assert isinstance(resolve_backend("compiled"), CompiledBackend)
    assert isinstance(resolve_backend("jit"), CompiledBackend)  # alias
    assert isinstance(resolve_backend(None), VectorizedBackend)  # default
    instance = LoopedBackend()
    assert resolve_backend(instance) is instance


class TestLoopedDemotion:
    """The looped backend is test-only: deprecated outside test runs,
    but still registered and exercised by the equivalence suite."""

    def test_non_test_construction_warns(self, monkeypatch):
        # Simulate a production process: no pytest marker env var.
        monkeypatch.delenv("PYTEST_CURRENT_TEST", raising=False)
        monkeypatch.delenv("REPRO_ALLOW_LOOPED", raising=False)
        with pytest.warns(DeprecationWarning, match="'looped' kernel backend"):
            LoopedBackend()
        # ...including through the registry path every selector uses.
        with pytest.warns(DeprecationWarning, match="deprecated"):
            resolve_backend("looped")

    def test_allow_env_opts_back_in_silently(self, monkeypatch):
        monkeypatch.delenv("PYTEST_CURRENT_TEST", raising=False)
        monkeypatch.setenv("REPRO_ALLOW_LOOPED", "1")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            LoopedBackend()

    def test_under_pytest_construction_stays_silent(self):
        # The equivalence property suite constructs looped freely; a
        # warning here would explode under filterwarnings=error.
        assert "PYTEST_CURRENT_TEST" in __import__("os").environ
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            resolve_backend("looped")

    def test_looped_remains_registered_and_equivalence_tested(self):
        assert "looped" in available_backends()
        # The equivalence suite pins looped as its baseline — keep the
        # demotion honest by asserting the suite really exercises it.
        import tests.properties.test_backend_equivalence as equivalence

        source = pathlib.Path(equivalence.__file__).read_text()
        assert "looped" in source


def test_cluster_default_backend_and_switching(monkeypatch):
    monkeypatch.delenv("REPRO_BACKEND", raising=False)
    cluster = VirtualCluster(4, cost_model=zero_cost_model())
    assert cluster.kernels.name == "vectorized"
    cluster.kernels = "looped"
    assert cluster.kernels.name == "looped"
    cluster.reset()
    assert cluster.kernels.name == "looped"  # reset keeps the backend


def test_register_backend_plugin_roundtrip():
    @repro.register_backend("unit_test_backend")
    class _Plugin(LoopedBackend):
        name = "unit_test_backend"

    try:
        cluster = VirtualCluster(2, kernels="unit_test_backend")
        assert cluster.kernels.name == "unit_test_backend"
    finally:
        KERNELS.unregister("unit_test_backend")
    assert "unit_test_backend" not in available_backends()


def test_request_override_is_scoped_on_adopted_clusters():
    """A per-request backend override must not rebind an adopted cluster."""
    matrix = poisson_2d(8)
    rng = np.random.default_rng(2)
    b = matrix @ rng.standard_normal(matrix.shape[0])
    cluster = VirtualCluster(4, kernels="looped")
    session = repro.SolverSession(matrix, b, cluster=cluster)
    report = session.solve(repro.SolveRequest(strategy="esr", backend="vectorized"))
    assert report.backend == "vectorized"
    assert cluster.kernels.name == "looped"  # caller's choice restored
    assert session.solve(repro.SolveRequest(strategy="esr")).backend == "looped"


def test_unknown_backend_rejected():
    with pytest.raises(repro.ConfigurationError):
        resolve_backend("no_such_backend")
    with pytest.raises(repro.ConfigurationError):
        repro.SolveRequest(backend="no_such_backend")


# ---------------------------------------------------------------------------
# batched charge API
# ---------------------------------------------------------------------------


def test_batched_charge_equals_individual_calls_under_noise():
    a = VirtualCluster(4, cost_model=NOISY, seed=123)
    b = VirtualCluster(4, cost_model=NOISY, seed=123)

    for rank, flops in [(0, 100), (1, 250), (2, 10), (3, 77)]:
        a.compute(rank, flops)
    for rank, nbytes in [(1, 4096), (3, 64)]:
        a.memcpy(rank, nbytes)

    b.charge(
        compute=[(0, 100), (1, 250), (2, 10), (3, 77)],
        memcpy=[(1, 4096), (3, 64)],
    )

    np.testing.assert_array_equal(a.clocks, b.clocks)
    assert a.stats.summary() == b.stats.summary()
    # RNG streams consumed identically: the next draw matches.
    assert a.rng.random() == b.rng.random()


def test_charge_validates_liveness():
    cluster = VirtualCluster(4, cost_model=zero_cost_model())
    cluster.fail([2])
    with pytest.raises(repro.DeadNodeError):
        cluster.charge(compute=[(0, 1.0), (2, 1.0)])


# ---------------------------------------------------------------------------
# kernel-by-kernel equivalence
# ---------------------------------------------------------------------------


#: Fused backends pinned kernel-by-kernel against the looped reference.
FUSED_BACKENDS = ("vectorized", "compiled")


def _pair(n_nodes=4, n=64, cost_model=None, seed=9, backend="vectorized"):
    """Two identical (cluster, partition, matrix) stacks: looped + ``backend``."""
    matrix = poisson_2d(8)
    stacks = []
    for kernels in ("looped", backend):
        cluster = VirtualCluster(
            n_nodes, cost_model=cost_model or NOISY, seed=seed, kernels=kernels
        )
        partition = BlockRowPartition.uniform(matrix.shape[0], n_nodes)
        dmatrix = DistributedMatrix(cluster, partition, matrix)
        stacks.append((cluster, partition, dmatrix))
    return stacks


def _assert_cluster_equal(a: VirtualCluster, b: VirtualCluster):
    np.testing.assert_array_equal(a.clocks, b.clocks)
    assert a.stats.summary() == b.stats.summary()


@pytest.mark.parametrize("backend", FUSED_BACKENDS)
@pytest.mark.parametrize(
    "op",
    ["axpy", "aypx", "scale", "subtract", "assign", "dot_many", "fill"],
)
def test_vector_ops_bit_identical(op, backend):
    (cl_l, part_l, _), (cl_v, part_v, _) = _pair(backend=backend)
    rng = np.random.default_rng(3)
    base = rng.standard_normal(part_l.n)
    other = rng.standard_normal(part_l.n)

    results = []
    for cluster, partition in ((cl_l, part_l), (cl_v, part_v)):
        y = DistributedVector.from_global(cluster, partition, base)
        x = DistributedVector.from_global(cluster, partition, other)
        value = None
        if op == "axpy":
            y.axpy(0.37, x)
        elif op == "aypx":
            y.aypx(-1.25, x)
        elif op == "scale":
            y.scale(3.5)
        elif op == "subtract":
            z = DistributedVector(cluster, partition)
            z.subtract(y, x)
            y = z
        elif op == "assign":
            y.assign(x, charge=True)
        elif op == "dot_many":
            value = y.dot_many([x, y])
        elif op == "fill":
            y.fill(1.5)
        results.append((y.to_global(), value))

    (data_l, val_l), (data_v, val_v) = results
    np.testing.assert_array_equal(data_l, data_v)
    assert val_l == val_v
    _assert_cluster_equal(cl_l, cl_v)


def test_vector_blocks_are_views_of_flat_data():
    cluster = VirtualCluster(4, cost_model=zero_cost_model())
    partition = BlockRowPartition.uniform(64, 4)
    vec = DistributedVector.from_global(cluster, partition, np.arange(64.0))
    assert vec.data.flags["C_CONTIGUOUS"]
    vec.blocks[2][0] = -1.0
    assert vec.data[partition.bounds(2)[0]] == -1.0
    vec.data[:] = 0.0
    assert all(float(block.sum()) == 0.0 for block in vec.blocks)


@pytest.mark.parametrize("backend", FUSED_BACKENDS)
def test_spmv_bit_identical_and_same_accounting(backend):
    (cl_l, part_l, m_l), (cl_v, part_v, m_v) = _pair(backend=backend)
    x = random_vector(part_l.n, seed=11)

    out_l = SpMVExecutor(m_l).multiply(
        DistributedVector.from_global(cl_l, part_l, x)
    )
    out_v = SpMVExecutor(m_v).multiply(
        DistributedVector.from_global(cl_v, part_v, x)
    )

    np.testing.assert_array_equal(out_l.to_global(), out_v.to_global())
    _assert_cluster_equal(cl_l, cl_v)


def test_spmv_matches_direct_product():
    matrix = poisson_2d(8)
    cluster, partition, dmatrix = make_distributed(matrix, n_nodes=4)
    x = random_vector(partition.n, seed=5)
    out = SpMVExecutor(dmatrix).multiply(
        DistributedVector.from_global(cluster, partition, x)
    )
    np.testing.assert_allclose(out.to_global(), matrix @ x, rtol=1e-13)


@pytest.mark.parametrize("backend", FUSED_BACKENDS)
def test_aspmv_bit_identical_including_stashes(backend):
    (cl_l, part_l, m_l), (cl_v, part_v, m_v) = _pair(backend=backend)
    x = random_vector(part_l.n, seed=21)
    outs = []
    for cluster, partition, dmatrix in ((cl_l, part_l, m_l), (cl_v, part_v, m_v)):
        executor = ASpMVExecutor(dmatrix, phi=2)
        queue = RedundancyQueue(capacity=2)
        vec = DistributedVector.from_global(cluster, partition, x)
        out = executor.multiply_augmented(vec, iteration=7, queue=queue)
        outs.append(out.to_global())
    np.testing.assert_array_equal(outs[0], outs[1])
    _assert_cluster_equal(cl_l, cl_v)

    # The redundancy stores hold the same pieces on every node.
    for node_l, node_v in zip(cl_l.nodes, cl_v.nodes):
        assert node_l.redundancy.keys() == node_v.redundancy.keys()
        for iteration in node_l.redundancy:
            per_l = node_l.redundancy[iteration]
            per_v = node_v.redundancy[iteration]
            assert per_l.keys() == per_v.keys()
            for owner in per_l:
                np.testing.assert_array_equal(per_l[owner][0], per_v[owner][0])
                np.testing.assert_array_equal(per_l[owner][1], per_v[owner][1])


@pytest.mark.parametrize("backend", FUSED_BACKENDS)
@pytest.mark.parametrize(
    "name",
    ["identity", "jacobi", "block_jacobi", "block_ssor", "block_ichol"],
)
def test_preconditioner_apply_bit_identical(name, backend):
    (cl_l, part_l, m_l), (cl_v, part_v, m_v) = _pair(backend=backend)
    r_values = random_vector(part_l.n, seed=13)
    outs = []
    for cluster, partition, dmatrix in ((cl_l, part_l, m_l), (cl_v, part_v, m_v)):
        precond = make_preconditioner(name)
        precond.setup(dmatrix)
        r = DistributedVector.from_global(cluster, partition, r_values)
        out = DistributedVector(cluster, partition)
        precond.apply(r, out)
        outs.append(out.to_global())
    np.testing.assert_array_equal(outs[0], outs[1])
    _assert_cluster_equal(cl_l, cl_v)


def test_flat_apply_matches_blockwise_apply():
    matrix = poisson_2d(8)
    _, partition, dmatrix = make_distributed(matrix, n_nodes=4)
    values = random_vector(partition.n, seed=17)
    for name in ("identity", "jacobi", "block_jacobi"):
        precond = make_preconditioner(name)
        precond.setup(dmatrix)
        flat = precond.flat_apply(values)
        assert flat is not None
        blockwise = np.concatenate(
            [
                precond._apply_local(
                    rank, values[partition.bounds(rank)[0] : partition.bounds(rank)[1]]
                )
                for rank in range(partition.n_nodes)
            ]
        )
        np.testing.assert_array_equal(flat, blockwise)


def test_triangular_preconditioners_have_no_flat_path():
    matrix = poisson_2d(8)
    _, partition, dmatrix = make_distributed(matrix, n_nodes=4)
    for name in ("block_ssor", "block_ichol"):
        precond = make_preconditioner(name)
        precond.setup(dmatrix)
        assert precond.flat_apply(np.zeros(partition.n)) is None


def test_stacked_spmv_cache_shape_and_reuse():
    matrix = poisson_2d(8)
    _, partition, dmatrix = make_distributed(matrix, n_nodes=4)
    cache = dmatrix.plan.flat_cache()
    assert cache.stacked_matrix.shape == (partition.n, partition.n + cache.total_ghosts)
    assert cache.stacked_matrix.nnz == matrix.nnz
    assert dmatrix.plan.flat_cache() is cache  # built once
    template = dmatrix.plan.message_template("spmv_halo")
    assert dmatrix.plan.message_template("spmv_halo") is template
    assert all(entry[3] == "spmv_halo" for entry in template)


def test_fused_spmv_cache_shape_and_reuse():
    matrix = poisson_2d(8)
    _, partition, dmatrix = make_distributed(matrix, n_nodes=4)
    cache = dmatrix.plan.flat_cache()
    fused = cache.fused_matrix()
    assert fused.shape == (partition.n, partition.n)
    assert fused.nnz == cache.stacked_matrix.nnz
    assert cache.fused_matrix() is fused  # built once

    # The remap is exact: applying the fused matrix to the flat vector
    # equals applying the stacked matrix to [flat, gathered ghosts] —
    # bit for bit, because the per-row data order is untouched.
    values = random_vector(partition.n, seed=23)
    stacked_in = np.concatenate([values, values[cache.ghost_gather]])
    np.testing.assert_array_equal(
        fused @ values, cache.stacked_matrix @ stacked_in
    )


@pytest.mark.parametrize("backend", FUSED_BACKENDS)
def test_cg_update_bit_identical_and_same_accounting(backend):
    """The fused CG tail matches the looped composition, charges included."""
    (cl_l, part_l, m_l), (cl_v, part_v, m_v) = _pair(backend=backend)
    n = part_l.n
    x_g = random_vector(n, seed=31)
    r_g = random_vector(n, seed=32)
    p_g = random_vector(n, seed=33)
    rho_g = random_vector(n, seed=34)
    alpha, rz_old = 0.37, 1.25

    results = []
    for cluster, partition, dmatrix in ((cl_l, part_l, m_l), (cl_v, part_v, m_v)):
        precond = make_preconditioner("block_jacobi")
        precond.setup(dmatrix)
        x = DistributedVector.from_global(cluster, partition, x_g)
        r = DistributedVector.from_global(cluster, partition, r_g)
        z = DistributedVector(cluster, partition)
        p = DistributedVector.from_global(cluster, partition, p_g)
        rho = DistributedVector.from_global(cluster, partition, rho_g)
        rz_new, r_norm_sq, beta = cluster.kernels.cg_update(
            x, r, z, p, rho, alpha, rz_old, precond
        )
        results.append(
            (rz_new, r_norm_sq, beta,
             x.to_global(), r.to_global(), z.to_global(), p.to_global())
        )

    (rz_l, rn_l, beta_l, *vecs_l), (rz_v, rn_v, beta_v, *vecs_v) = results
    assert rz_l == rz_v
    assert rn_l == rn_v
    assert beta_l == beta_v
    for vec_l, vec_v in zip(vecs_l, vecs_v):
        np.testing.assert_array_equal(vec_l, vec_v)
    _assert_cluster_equal(cl_l, cl_v)
