"""Registry-level behaviour of the kernel-backend layer.

Selection ergonomics live here: the error message for an unknown
backend, alphabetical stability of :func:`available_backends`, the
``REPRO_BACKEND`` environment override, and the exactly-once
degradation warning when the ``compiled`` backend runs without numba.
Bit-identity of the backends themselves is covered by
``test_backends.py`` and the equivalence property suite.
"""

from __future__ import annotations

import warnings

import pytest

from repro.exceptions import ConfigurationError
from repro.kernels import (
    BACKEND_ENV,
    DEFAULT_BACKEND,
    CompiledBackend,
    available_backends,
    default_backend,
    resolve_backend,
)
from repro.kernels import compiled as compiled_mod


# ---------------------------------------------------------------------------
# resolution errors and listing stability
# ---------------------------------------------------------------------------


def test_unknown_backend_error_lists_available_names():
    with pytest.raises(ConfigurationError) as excinfo:
        resolve_backend("nope")
    message = str(excinfo.value)
    assert "nope" in message
    for name in available_backends():
        assert name in message


def test_available_backends_includes_compiled_and_is_sorted():
    names = available_backends()
    assert "compiled" in names
    assert "looped" in names
    assert "vectorized" in names
    # Alphabetical, so docs / error messages / CLI help stay stable as
    # plugins register more backends.
    assert list(names) == sorted(names)


# ---------------------------------------------------------------------------
# environment-variable default
# ---------------------------------------------------------------------------


def test_env_override_selects_backend(monkeypatch):
    monkeypatch.setenv(BACKEND_ENV, "compiled")
    assert default_backend() == "compiled"
    assert resolve_backend(None).name == "compiled"


def test_env_override_blank_falls_back_to_default(monkeypatch):
    monkeypatch.setenv(BACKEND_ENV, "   ")
    assert default_backend() == DEFAULT_BACKEND
    monkeypatch.delenv(BACKEND_ENV)
    assert default_backend() == DEFAULT_BACKEND


def test_env_override_bad_name_raises_with_listing(monkeypatch):
    monkeypatch.setenv(BACKEND_ENV, "bogus")
    with pytest.raises(ConfigurationError, match="bogus"):
        resolve_backend(None)


# ---------------------------------------------------------------------------
# graceful degradation without numba
# ---------------------------------------------------------------------------


def test_degradation_warns_exactly_once_without_numba(monkeypatch):
    monkeypatch.setattr(compiled_mod, "HAVE_NUMBA", False)
    monkeypatch.setattr(compiled_mod, "_WARNED_NO_NUMBA", False)
    with pytest.warns(RuntimeWarning, match="numba") as record:
        CompiledBackend()
    assert len(record) == 1
    # Subsequent constructions stay silent — one process, one warning.
    with warnings.catch_warnings():
        warnings.simplefilter("error", RuntimeWarning)
        CompiledBackend()
        resolve_backend("compiled")


@pytest.mark.skipif(compiled_mod.HAVE_NUMBA, reason="numba installed")
def test_degraded_backend_still_resolves_and_names_itself():
    backend = resolve_backend("compiled")
    assert isinstance(backend, CompiledBackend)
    assert backend.name == "compiled"
