"""CampaignResult persistence (JSON/CSV round-trips) and aggregation."""

import pytest

from repro.campaign import (
    CampaignResult,
    CampaignRunRecord,
    CampaignSpec,
    ScenarioSpec,
    StrategySpec,
    execute_campaign,
)
from repro.exceptions import ConfigurationError

pytestmark = pytest.mark.campaign


@pytest.fixture(scope="module")
def small_result() -> CampaignResult:
    spec = CampaignSpec(
        name="results-unit",
        problems=(("emilia_923_like", "tiny"),),
        n_nodes=4,
        strategies=(StrategySpec("esr"), StrategySpec("imcr", (10,))),
        phis=(1,),
        scenarios=(
            ScenarioSpec.make("failure_free"),
            ScenarioSpec.make("worst_case", location="start"),
        ),
        repetitions=2,
    )
    return execute_campaign(spec, workers=0)


class TestCanonicalOrdering:
    def test_shuffled_records_serialise_identically(self, small_result, tmp_path):
        # Regression guard for result nondeterminism: however the
        # records were produced or permuted (pool scheduling, queue
        # workers finishing out of order), the serialised JSON and CSV
        # are byte-identical because CampaignResult sorts by run key.
        import random

        shuffled = list(small_result.records)
        random.Random(7).shuffle(shuffled)
        assert shuffled != small_result.records  # the permutation is real
        permuted = CampaignResult(spec=small_result.spec, records=shuffled)

        a = small_result.to_json(tmp_path / "a.json")
        b = permuted.to_json(tmp_path / "b.json")
        assert a.read_bytes() == b.read_bytes()

        c = small_result.to_csv(tmp_path / "a.csv")
        d = permuted.to_csv(tmp_path / "b.csv")
        assert c.read_bytes() == d.read_bytes()

    def test_loading_restores_canonical_order(self, small_result, tmp_path):
        path = small_result.to_json(tmp_path / "result.json")
        loaded = CampaignResult.from_json(path)
        run_ids = [r.run_id for r in loaded]
        assert run_ids == sorted(run_ids)


class TestMerge:
    def test_merge_deduplicates_equal_records(self, small_result):
        merged = CampaignResult.merge(
            small_result.spec,
            [small_result.records, small_result.records[:3]],
        )
        assert merged.records == small_result.records

    def test_merge_rejects_conflicting_duplicates(self, small_result):
        import dataclasses

        tampered = dataclasses.replace(small_result.records[0], iterations=999)
        with pytest.raises(ConfigurationError, match="conflicting duplicate"):
            CampaignResult.merge(
                small_result.spec, [small_result.records, [tampered]]
            )


class TestJsonRoundTrip:
    def test_lossless(self, small_result, tmp_path):
        path = small_result.to_json(tmp_path / "result.json")
        loaded = CampaignResult.from_json(path)
        assert loaded.spec == small_result.spec
        assert [r.to_dict() for r in loaded] == [r.to_dict() for r in small_result]

    def test_summary_survives_round_trip(self, small_result, tmp_path):
        path = small_result.to_json(tmp_path / "result.json")
        loaded = CampaignResult.from_json(path)
        assert loaded.render_summary() == small_result.render_summary()


class TestCsvRoundTrip:
    def test_records_round_trip(self, small_result, tmp_path):
        path = small_result.to_csv(tmp_path / "result.csv")
        loaded = CampaignResult.from_csv(path)
        assert [r.to_dict() for r in loaded] == [r.to_dict() for r in small_result]

    def test_csv_has_header_and_rows(self, small_result, tmp_path):
        path = small_result.to_csv(tmp_path / "result.csv")
        lines = path.read_text().strip().splitlines()
        assert lines[0].startswith("run_id,problem,scale")
        assert len(lines) == len(small_result) + 1


class TestAggregation:
    def test_overhead_rows_group_by_cell(self, small_result):
        rows = small_result.overhead_rows()
        # 2 strategies x 2 scenarios x 1 phi; repetitions collapse into cells
        assert len(rows) == 4
        for row in rows:
            assert row["runs"] == 2
            assert row["converged"]
        keys = {(r["strategy"], r["T"], r["scenario"], r["phi"]) for r in rows}
        assert ("esr", 1, "worst_case(location=start)", 1) in keys
        assert ("imcr", 10, "failure_free", 1) in keys

    def test_failure_cells_report_recovery(self, small_result):
        failure_rows = [
            r for r in small_result.overhead_rows() if "worst_case" in r["scenario"]
        ]
        assert failure_rows
        for row in failure_rows:
            assert row["recovery_overhead"] > 0

    def test_render_summary_table_shape(self, small_result):
        text = small_result.render_summary()
        assert "Total overhead [%]" in text
        assert "Reconstruction [%]" in text
        assert "ESR" in text and "IMCR" in text
        assert "worst_case(location=start)" in text

    def test_empty_result_cannot_render(self):
        with pytest.raises(ConfigurationError):
            CampaignResult(spec={}, records=[]).render_summary()

    def test_record_from_dict_round_trip(self, small_result):
        record = small_result.records[0]
        assert CampaignRunRecord.from_dict(record.to_dict()) == record


class TestNoDataCells:
    """Reports render "no data" cells instead of raising.

    Stored baseline files written by older revisions may carry ``null``
    overhead fields (e.g. runs recorded before a reference existed) or
    lack whole cells present in current results; both used to crash
    ``campaign report``.
    """

    @pytest.fixture()
    def degraded(self, small_result) -> CampaignResult:
        import dataclasses

        records = [
            dataclasses.replace(
                r, total_overhead=None, recovery_overhead=None
            )
            for r in small_result.records
        ]
        return CampaignResult(spec=small_result.spec, records=records)

    def test_overhead_rows_skip_null_fields(self, degraded):
        rows = degraded.overhead_rows()
        assert rows
        for row in rows:
            assert row["total_overhead"] is None
            assert row["recovery_overhead"] is None

    def test_render_summary_shows_dash_for_null_cells(self, degraded):
        text = degraded.render_summary()
        assert "Total overhead [%]" in text
        assert "-" in text

    def test_compare_against_degraded_baseline(self, small_result, degraded):
        rows = small_result.compare(degraded)
        assert rows
        for row in rows:
            assert row["delta_total_overhead"] is None
        out = small_result.render_comparison(degraded)
        assert "vs." in out

    def test_compare_against_missing_cells(self, small_result):
        # A baseline holding only a strict subset of the cells: the
        # unmatched rows render as "no data", not a KeyError/TypeError.
        subset = CampaignResult(
            spec=small_result.spec, records=small_result.records[:2]
        )
        rows = small_result.compare(subset)
        assert any(row["baseline_runs"] == 0 for row in rows)
        out = small_result.render_comparison(subset)
        assert "vs." in out
