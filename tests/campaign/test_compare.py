"""A/B campaign comparison and per-channel statistics in records."""

import dataclasses

import pytest

from repro.campaign import (
    CampaignResult,
    CampaignSpec,
    ScenarioSpec,
    StrategySpec,
    execute_campaign,
)
from repro.cli import main
from repro.exceptions import ConfigurationError

pytestmark = pytest.mark.campaign


@pytest.fixture(scope="module")
def ab_results() -> tuple[CampaignResult, CampaignResult]:
    spec = CampaignSpec(
        name="ab-unit",
        problems=(("emilia_923_like", "tiny"),),
        n_nodes=4,
        strategies=(StrategySpec("esr"), StrategySpec("imcr", (10,))),
        phis=(1,),
        scenarios=(
            ScenarioSpec.make("failure_free"),
            ScenarioSpec.make("worst_case", location="start"),
        ),
        repetitions=1,
    )
    current = execute_campaign(spec, workers=0)
    # the "baseline" revision: same constellation, different seed, and
    # one cell (imcr) missing entirely
    baseline_spec = dataclasses.replace(
        spec, name="ab-baseline", seed=2021, strategies=(StrategySpec("esr"),)
    )
    baseline = execute_campaign(baseline_spec, workers=0)
    return current, baseline


class TestChannelStats:
    def test_records_carry_channel_stats(self, ab_results):
        current, _ = ab_results
        for record in current:
            assert record.stats, f"record {record.run_id} has no stats"
            assert record.stats["bytes[spmv_halo]"] > 0
            assert "messages[spmv_halo]" in record.stats

    def test_esr_records_show_aspmv_traffic(self, ab_results):
        current, _ = ab_results
        esr = [r for r in current if r.strategy == "esr"]
        assert esr
        for record in esr:
            assert record.stats.get("bytes[aspmv_extra]", 0) > 0

    def test_communication_rows_aggregate_channels(self, ab_results):
        current, _ = ab_results
        rows = current.communication_rows()
        assert rows
        channels = {row["channel"] for row in rows}
        assert "spmv_halo" in channels
        for row in rows:
            assert row["bytes"] >= 0
            assert row["runs"] >= 1

    def test_stats_survive_json_and_csv_round_trips(self, ab_results, tmp_path):
        current, _ = ab_results
        json_path = current.to_json(tmp_path / "r.json")
        loaded = CampaignResult.from_json(json_path)
        assert [r.stats for r in loaded] == [r.stats for r in current]
        csv_path = current.to_csv(tmp_path / "r.csv")
        loaded_csv = CampaignResult.from_csv(csv_path)
        assert [r.stats for r in loaded_csv] == [r.stats for r in current]

    def test_pre_stats_records_load_as_empty(self, ab_results, tmp_path):
        """Result files written before the stats column must still load."""
        import json

        current, _ = ab_results
        path = current.to_json(tmp_path / "old.json")
        payload = json.loads(path.read_text())
        for record in payload["records"]:
            del record["stats"]
        path.write_text(json.dumps(payload))
        loaded = CampaignResult.from_json(path)
        assert all(record.stats == {} for record in loaded)


class TestCompare:
    def test_matched_cells_have_deltas(self, ab_results):
        current, baseline = ab_results
        rows = current.compare(baseline)
        matched = [r for r in rows if r["strategy"] == "esr"]
        assert matched
        for row in matched:
            assert row["delta_total_overhead"] is not None
            assert row["delta_total_overhead"] == pytest.approx(
                row["total_overhead"] - row["baseline_total_overhead"]
            )

    def test_one_sided_cells_have_none_deltas(self, ab_results):
        current, baseline = ab_results
        rows = current.compare(baseline)
        imcr_only = [r for r in rows if r["strategy"] == "imcr"]
        assert imcr_only
        for row in imcr_only:
            assert row["baseline_runs"] == 0
            assert row["delta_total_overhead"] is None

    def test_self_comparison_is_zero(self, ab_results):
        current, _ = ab_results
        for row in current.compare(current):
            assert row["delta_total_overhead"] == pytest.approx(0.0)
            assert row["delta_recovery_overhead"] == pytest.approx(0.0)

    def test_render_comparison_table(self, ab_results):
        current, baseline = ab_results
        text = current.render_comparison(baseline)
        assert "vs. baseline 'ab-baseline'" in text
        assert "Δpp" in text
        assert "esr" in text and "imcr" in text

    def test_empty_comparison_rejected(self):
        empty = CampaignResult(spec={}, records=[])
        with pytest.raises(ConfigurationError, match="nothing to compare"):
            empty.render_comparison(empty)


class TestCliBaselineReport:
    def test_report_baseline_flag(self, ab_results, tmp_path, capsys):
        current, baseline = ab_results
        current_path = current.to_json(tmp_path / "current.json")
        baseline_path = baseline.to_json(tmp_path / "baseline.json")
        code = main([
            "campaign", "report",
            "--results", str(current_path),
            "--baseline", str(baseline_path),
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "vs. baseline" in out
        assert "Δpp" in out

    def test_report_without_baseline_unchanged(self, ab_results, tmp_path, capsys):
        current, _ = ab_results
        path = current.to_json(tmp_path / "current.json")
        code = main(["campaign", "report", "--results", str(path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "Total overhead [%]" in out
        assert "vs. baseline" not in out
