"""Tests for the scenario-campaign engine."""
