"""The backend column: spec sweeps, record round-trips, A/B comparisons."""

from __future__ import annotations

import dataclasses

import pytest

from repro.campaign import (
    CampaignResult,
    CampaignRunRecord,
    CampaignSpec,
    ScenarioSpec,
    execute_campaign,
)
from repro.campaign.spec import StrategySpec, demo_spec, expand_spec
from repro.exceptions import ConfigurationError


def _ab_spec() -> CampaignSpec:
    return CampaignSpec(
        name="ab",
        problems=(("emilia_923_like", "tiny"),),
        n_nodes=4,
        strategies=(StrategySpec("esr"),),
        phis=(1,),
        scenarios=(ScenarioSpec.make("worst_case", location="start"),),
        backends=("looped", "vectorized"),
    )


def test_spec_backends_round_trip():
    spec = _ab_spec()
    restored = CampaignSpec.from_dict(spec.to_dict())
    assert restored.backends == ("looped", "vectorized")
    assert restored == spec


def test_spec_requires_a_backend():
    with pytest.raises(ConfigurationError):
        dataclasses.replace(demo_spec(), backends=())


def test_expansion_sweeps_backends_with_shared_seeds():
    runs = expand_spec(_ab_spec())
    assert len(runs) == 2
    by_backend = {run.backend: run for run in runs}
    assert set(by_backend) == {"looped", "vectorized"}
    # Distinct run ids, same derived seed: the A/B pair sees the same
    # noise stream, so backend comparisons are bit-for-bit.
    assert by_backend["looped"].run_id != by_backend["vectorized"].run_id
    assert by_backend["looped"].seed == by_backend["vectorized"].seed
    assert by_backend["looped"].run_id.endswith(":looped")


def test_default_backend_keeps_historical_run_ids():
    (run,) = expand_spec(dataclasses.replace(_ab_spec(), backends=("vectorized",)))
    assert ":vectorized" not in run.run_id
    assert run.run_id.endswith(":rep0")


def test_record_round_trip_keeps_backend(tmp_path):
    spec = _ab_spec()
    result = execute_campaign(spec, workers=0)
    assert sorted(r.backend for r in result) == ["looped", "vectorized"]

    json_path = result.to_json(tmp_path / "ab.json")
    restored = CampaignResult.from_json(json_path)
    assert sorted(r.backend for r in restored) == ["looped", "vectorized"]

    csv_path = result.to_csv(tmp_path / "ab.csv")
    from_csv = CampaignResult.from_csv(csv_path)
    assert sorted(r.backend for r in from_csv) == ["looped", "vectorized"]


def test_legacy_records_load_with_default_backend():
    payload = {
        "run_id": "x", "problem": "p", "scale": "tiny", "n_nodes": 4,
        "preconditioner": "block_jacobi", "strategy": "esr", "T": 1, "phi": 1,
        "scenario_kind": "failure_free", "scenario_params": {}, "repetition": 0,
        "seed": 0, "converged": True, "iterations": 10,
        "executed_iterations": 10, "relative_residual": 1e-9,
        "modeled_time": 1.0, "recovery_time": 0.0, "wall_time": 0.1,
        "reference_time": 1.0, "reference_iterations": 10,
        "total_overhead": 0.0, "recovery_overhead": 0.0, "n_failures": 0,
        "failure_iterations": (), "solution_error": 0.0,
    }
    record = CampaignRunRecord.from_dict(payload)
    assert record.backend == "vectorized"


def test_ab_campaign_backends_agree_cell_by_cell():
    result = execute_campaign(_ab_spec(), workers=0)
    rows = {row["backend"]: row for row in result.overhead_rows()}
    assert rows["looped"]["total_overhead"] == rows["vectorized"]["total_overhead"]
    assert (
        rows["looped"]["recovery_overhead"] == rows["vectorized"]["recovery_overhead"]
    )


def test_compare_communication_deltas():
    result = execute_campaign(_ab_spec(), workers=0)
    rows = result.compare_communication(result)
    assert rows
    channels = {row["channel"] for row in rows}
    assert "spmv_halo" in channels
    for row in rows:
        assert row["delta_bytes"] == 0
        assert row["delta_messages"] == 0
        assert row["rel_bytes"] == 0 or row["rel_bytes"] is None
    # Rendered A/B report mentions the channels and backend labels.
    text = result.render_communication_comparison(result)
    assert "spmv_halo" in text
    assert "[looped]" in text and "[vectorized]" in text


def test_overhead_comparison_matches_on_backend():
    result = execute_campaign(_ab_spec(), workers=0)
    rows = result.compare(result)
    assert {row["backend"] for row in rows} == {"looped", "vectorized"}
    for row in rows:
        assert row["delta_total_overhead"] == 0
