"""Campaign execution: worker correctness and pool/serial equivalence."""

import pytest

from repro.campaign import (
    CampaignSpec,
    ScenarioSpec,
    StrategySpec,
    execute_campaign,
    run_one,
)
from repro.campaign.executor import default_workers, execute_runs
from repro.campaign.spec import expand_spec
from repro.exceptions import ConfigurationError

pytestmark = pytest.mark.campaign


def tiny_spec(**overrides) -> CampaignSpec:
    defaults = dict(
        name="exec-unit",
        problems=(("emilia_923_like", "tiny"),),
        n_nodes=4,
        strategies=(StrategySpec("esr"), StrategySpec("esrp", (10,))),
        phis=(1,),
        scenarios=(
            ScenarioSpec.make("failure_free"),
            ScenarioSpec.make("fraction", fraction=0.5),
        ),
        repetitions=1,
    )
    defaults.update(overrides)
    return CampaignSpec(**defaults)


def comparable(record) -> dict:
    # Records carry no measured host wall-clock; every field is a
    # deterministic function of the RunSpec, so whole dicts compare.
    return record.to_dict()


class TestRunOne:
    def test_failure_free_run(self):
        run = next(
            r for r in expand_spec(tiny_spec()) if r.scenario.kind == "failure_free"
        )
        record = run_one(run)
        assert record.converged
        assert record.n_failures == 0
        assert record.failure_iterations == ()
        assert record.iterations == record.reference_iterations
        assert record.solution_error < 1e-6
        assert record.total_overhead > 0  # redundancy is never free
        assert record.recovery_overhead == 0.0

    def test_failure_run_records_recovery(self):
        run = next(
            r for r in expand_spec(tiny_spec()) if r.scenario.kind == "fraction"
        )
        record = run_one(run)
        assert record.converged
        assert record.n_failures == 1
        assert len(record.failure_iterations) == 1
        assert record.recovery_time > 0
        assert record.recovery_overhead > 0
        assert record.solution_error < 1e-6

    def test_run_one_is_deterministic(self):
        run = expand_spec(tiny_spec())[0]
        assert comparable(run_one(run)) == comparable(run_one(run))

    def test_reference_strategy_run(self):
        spec = tiny_spec(strategies=(StrategySpec("reference"),))
        (run,) = expand_spec(spec)
        record = run_one(run)
        assert record.strategy == "reference"
        assert record.total_overhead == pytest.approx(0.0, abs=1e-12)


class TestPoolEqualsSerial:
    def test_pool_matches_serial_result_for_result(self):
        spec = tiny_spec()
        serial = execute_campaign(spec, workers=0)
        pooled = execute_campaign(spec, workers=3)
        assert len(serial) == len(pooled) == len(expand_spec(spec))
        for a, b in zip(serial, pooled):
            assert comparable(a) == comparable(b)

    def test_record_order_is_canonical(self):
        # CampaignResult keeps records in canonical (sorted-by-run-key)
        # order regardless of execution/completion order, so pool,
        # serial and queue results serialise byte-identically.
        spec = tiny_spec()
        runs = expand_spec(spec)
        result = execute_campaign(spec, workers=2)
        assert [r.run_id for r in result] == sorted(r.run_id for r in runs)


class TestDriver:
    def test_progress_callback_sees_every_run(self):
        spec = tiny_spec()
        seen = []
        execute_campaign(spec, workers=0, progress=lambda i, n, rec: seen.append((i, n)))
        total = len(expand_spec(spec))
        assert seen == [(i + 1, total) for i in range(total)]

    def test_negative_workers_rejected(self):
        with pytest.raises(ConfigurationError):
            execute_runs(expand_spec(tiny_spec()), workers=-1)

    def test_empty_campaign_rejected(self):
        spec = tiny_spec(
            strategies=(StrategySpec("reference"),),
            scenarios=(ScenarioSpec.make("fraction"),),
        )
        with pytest.raises(ConfigurationError):
            execute_campaign(spec)  # reference + failure scenario prunes to zero

    def test_default_workers_bounds(self):
        assert 1 <= default_workers(1) <= 1
        assert default_workers(1000) <= 8
