"""Campaign spec expansion: deterministic, duplicate-free, well-seeded."""

import pytest

from repro.campaign import CampaignSpec, ScenarioSpec, StrategySpec, demo_spec
from repro.campaign.spec import derive_seed, expand_spec
from repro.exceptions import ConfigurationError


def sweep_spec(**overrides) -> CampaignSpec:
    defaults = dict(
        name="unit",
        problems=(("emilia_923_like", "tiny"),),
        n_nodes=8,
        strategies=(
            StrategySpec("esr"),
            StrategySpec("esrp", (20, 50)),
            StrategySpec("imcr", (20,)),
        ),
        phis=(1, 2),
        scenarios=(
            ScenarioSpec.make("failure_free"),
            ScenarioSpec.make("worst_case", location="start"),
        ),
        repetitions=2,
    )
    defaults.update(overrides)
    return CampaignSpec(**defaults)


class TestExpansion:
    def test_cartesian_size(self):
        runs = expand_spec(sweep_spec())
        # 4 (strategy,T) rows x 2 phis x 2 scenarios x 2 reps
        assert len(runs) == 4 * 2 * 2 * 2

    def test_deterministic_order_and_seeds(self):
        a = expand_spec(sweep_spec())
        b = expand_spec(sweep_spec())
        assert [r.run_id for r in a] == [r.run_id for r in b]
        assert [r.seed for r in a] == [r.seed for r in b]

    def test_duplicate_free(self):
        runs = expand_spec(sweep_spec())
        assert len({r.run_id for r in runs}) == len(runs)

    def test_esrp_small_T_collapses_to_esr(self):
        spec = sweep_spec(
            strategies=(StrategySpec("esr"), StrategySpec("esrp", (1, 2))),
            phis=(1,),
            scenarios=(ScenarioSpec.make("failure_free"),),
            repetitions=1,
        )
        runs = expand_spec(spec)
        # esr, esrp@1 and esrp@2 are the same configuration -> one run
        assert len(runs) == 1
        assert runs[0].strategy == "esr"
        assert runs[0].T == 1

    def test_reference_only_failure_free(self):
        spec = sweep_spec(
            strategies=(StrategySpec("reference"),),
            phis=(1, 2),
            repetitions=1,
        )
        runs = expand_spec(spec)
        assert len(runs) == 1  # failure scenarios and phi sweep pruned
        assert runs[0].scenario.kind == "failure_free"
        assert runs[0].phi == 1

    def test_per_run_seeds_differ(self):
        runs = expand_spec(sweep_spec())
        seeds = [r.seed for r in runs]
        assert len(set(seeds)) == len(seeds)

    def test_base_seed_changes_all_run_seeds(self):
        a = expand_spec(sweep_spec(seed=1))
        b = expand_spec(sweep_spec(seed=2))
        assert all(ra.seed != rb.seed for ra, rb in zip(a, b))

    def test_derive_seed_is_stable(self):
        assert derive_seed(7, "some:run") == derive_seed(7, "some:run")
        assert derive_seed(7, "some:run") != derive_seed(8, "some:run")


class TestRoundTrip:
    def test_spec_dict_round_trip(self):
        spec = sweep_spec()
        clone = CampaignSpec.from_dict(spec.to_dict())
        assert clone == spec
        assert [r.run_id for r in expand_spec(clone)] == [
            r.run_id for r in expand_spec(spec)
        ]

    def test_spec_json_round_trip(self, tmp_path):
        import json

        spec = demo_spec()
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(spec.to_dict()))
        assert CampaignSpec.from_json(path) == spec

    def test_runspec_dict_round_trip(self):
        from repro.campaign import RunSpec

        run = expand_spec(sweep_spec())[0]
        assert RunSpec.from_dict(run.to_dict()) == run


class TestValidation:
    def test_unknown_scenario_kind(self):
        with pytest.raises(ConfigurationError):
            ScenarioSpec.make("meteor_strike")

    def test_unknown_spec_key(self):
        with pytest.raises(ConfigurationError):
            CampaignSpec.from_dict({"name": "x", "surprise": 1})

    def test_problem_entry_forms(self):
        spec = CampaignSpec.from_dict({
            "problems": [
                "emilia_923_like",                               # bare name
                {"name": "audikw_1_like", "scale": "small"},     # object
                ["emilia_923_like", "small"],                    # pair
            ],
        })
        assert spec.problems == (
            ("emilia_923_like", "tiny"),
            ("audikw_1_like", "small"),
            ("emilia_923_like", "small"),
        )

    def test_malformed_problem_entries(self):
        with pytest.raises(ConfigurationError):
            CampaignSpec.from_dict({"problems": [{"scale": "tiny"}]})
        with pytest.raises(ConfigurationError):
            CampaignSpec.from_dict({"problems": [["too", "many", "parts"]]})

    def test_phi_out_of_range(self):
        with pytest.raises(ConfigurationError):
            sweep_spec(phis=(8,))  # phi must stay < n_nodes

    def test_empty_strategy_intervals(self):
        with pytest.raises(ConfigurationError):
            StrategySpec("esrp", ())

    def test_demo_spec_covers_acceptance_floor(self):
        """The built-in sweep must stay >= 24 runs / 3 strategies / 2 generators."""
        runs = expand_spec(demo_spec())
        assert len(runs) >= 24
        assert {r.strategy for r in runs} >= {"esr", "esrp", "imcr"}
        assert len({r.scenario.kind for r in runs}) >= 2
