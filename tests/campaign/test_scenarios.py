"""Scenario generators produce valid, recoverable failure schedules."""

import pytest

from repro.campaign import ScenarioContext, ScenarioSpec, generate_schedule
from repro.campaign.scenarios import scenario_kinds
from repro.exceptions import ConfigurationError


def ctx(**overrides) -> ScenarioContext:
    defaults = dict(
        n_nodes=8, phi=2, strategy="esrp", T=20, reference_iterations=100, seed=11
    )
    defaults.update(overrides)
    return ScenarioContext(**defaults)


@pytest.mark.parametrize("kind", scenario_kinds())
def test_every_kind_generates_a_valid_schedule(kind):
    context = ctx()
    schedule = generate_schedule(ScenarioSpec.make(kind), context)
    for event in schedule:
        assert 1 <= event.iteration < context.reference_iterations
        assert 1 <= event.width <= context.phi
        assert all(0 <= r < context.n_nodes for r in event.ranks)


def test_failure_free_is_empty():
    assert len(generate_schedule(ScenarioSpec.make("failure_free"), ctx())) == 0


def test_worst_case_matches_harness_placement():
    from repro.harness.runner import place_worst_case_failure

    context = ctx(strategy="esrp", T=20, reference_iterations=100)
    schedule = generate_schedule(
        ScenarioSpec.make("worst_case", location="center"), context
    )
    (event,) = schedule
    assert event.iteration == place_worst_case_failure("esrp", 20, 100)
    assert event.ranks == (4, 5)  # center block of width phi=2 on 8 nodes


def test_fraction_places_at_fraction_of_C():
    schedule = generate_schedule(
        ScenarioSpec.make("fraction", fraction=0.25), ctx(reference_iterations=200)
    )
    (event,) = schedule
    assert event.iteration == 50
    assert event.ranks == (0, 1)


def test_width_clamped_to_phi_and_survivors():
    # requested width 5 exceeds phi=2 -> clamped to recoverable width
    schedule = generate_schedule(
        ScenarioSpec.make("multi_node", width=5), ctx(phi=2)
    )
    (event,) = schedule
    assert event.width == 2
    # phi larger than N-1 still leaves one survivor
    schedule = generate_schedule(
        ScenarioSpec.make("multi_node", width=7), ctx(n_nodes=4, phi=7)
    )
    (event,) = schedule
    assert event.width == 3


def test_storm_produces_distinct_ordered_events():
    schedule = generate_schedule(
        ScenarioSpec.make("storm", count=4), ctx(reference_iterations=100)
    )
    iterations = [event.iteration for event in schedule]
    assert len(iterations) == 4
    assert iterations == sorted(iterations)
    assert len(set(iterations)) == 4
    # rotating block positions: not every event hits the same ranks
    assert len({event.ranks for event in schedule}) > 1


def test_storm_on_short_trajectory_emits_fewer_but_valid_events():
    # C=3 leaves only iterations {1, 2}; a 4-event storm must shrink
    # instead of placing events past the end of the solve.
    context = ctx(reference_iterations=3)
    schedule = generate_schedule(ScenarioSpec.make("storm", count=4), context)
    iterations = [event.iteration for event in schedule]
    assert 1 <= len(iterations) <= 2
    assert all(1 <= i <= 2 for i in iterations)
    assert len(set(iterations)) == len(iterations)


def test_mtbf_is_seed_deterministic():
    spec = ScenarioSpec.make("mtbf", mtbf_fraction=0.2)
    a = generate_schedule(spec, ctx(seed=3, reference_iterations=300))
    b = generate_schedule(spec, ctx(seed=3, reference_iterations=300))
    c = generate_schedule(spec, ctx(seed=4, reference_iterations=300))
    assert a.events == b.events
    assert len(a) >= 1
    assert a.events != c.events


def test_bad_parameters_raise_configuration_error():
    with pytest.raises(ConfigurationError):
        generate_schedule(ScenarioSpec.make("fraction", fraction=1.5), ctx())
    with pytest.raises(ConfigurationError):
        generate_schedule(ScenarioSpec.make("storm", count=0), ctx())
    with pytest.raises(ConfigurationError):
        generate_schedule(ScenarioSpec.make("worst_case", location="edge"), ctx())
    with pytest.raises(ConfigurationError):
        # unknown keyword for the generator
        generate_schedule(ScenarioSpec("fraction", (("surprise", 1),)), ctx())


def test_scenario_labels_are_stable():
    spec = ScenarioSpec.make("worst_case", width=2, location="start")
    assert spec.label == "worst_case(location=start,width=2)"
    assert ScenarioSpec.make("failure_free").label == "failure_free"
