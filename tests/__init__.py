"""Test package for the repro test suite (enables relative conftest imports)."""
