"""Edge-case recovery scenarios beyond the paper's single-event protocol."""

import numpy as np
import pytest

import repro
from repro.cluster import FailureSchedule
from repro.core import ESRPStrategy, ESRStrategy, IMCRStrategy
from repro.events import EventKind
from repro.preconditioners import make_preconditioner
from repro.solvers import PCGEngine, SolveOptions

from ..conftest import make_distributed


@pytest.fixture(scope="module")
def problem():
    matrix, b, _ = repro.matrices.load("emilia_923_like", scale="tiny")
    return matrix, b


def run(problem, strategy, failures, n_nodes=8, maxiter=None):
    matrix, b = problem
    cluster, partition, dmatrix = make_distributed(matrix, n_nodes)
    engine = PCGEngine(
        matrix=dmatrix,
        b=b,
        preconditioner=make_preconditioner("block_jacobi"),
        strategy=strategy,
        options=SolveOptions(rtol=1e-8, maxiter=maxiter),
        failures=FailureSchedule(failures),
    )
    return engine.solve()


class TestRepeatedFailures:
    def test_same_rank_fails_twice(self, problem):
        """A replaced node can fail again later and be replaced again."""
        result = run(
            problem,
            ESRStrategy(phi=1),
            [repro.FailureEvent(20, (3,)), repro.FailureEvent(40, (3,))],
        )
        assert result.converged
        assert len(result.events.of_kind(EventKind.NODE_FAILURE)) == 2

    def test_back_to_back_failures_within_one_interval(self, problem):
        """Two events inside one ESRP interval: the second one hits the
        partially-degraded queue and must still converge (possibly via
        the restart fallback)."""
        result = run(
            problem,
            ESRPStrategy(T=10, phi=1),
            [repro.FailureEvent(14, (1,)), repro.FailureEvent(16, (2,))],
        )
        assert result.converged

    def test_failure_of_all_but_one_node(self, problem):
        """phi = N-1: the maximal protection level on this cluster."""
        matrix, b = problem
        reference = repro.solve(matrix, b, n_nodes=4, strategy="reference")
        result = repro.solve(
            matrix, b, n_nodes=4, strategy="esr", phi=3,
            failures=[repro.FailureEvent(reference.iterations // 2, (0, 1, 2))],
        )
        assert result.converged
        np.testing.assert_allclose(result.x, reference.x, atol=1e-7)

    def test_imcr_buddy_chain_fallback(self, problem):
        """Second failure kills a buddy holding the first victim's data:
        retrieval walks to the next buddy or restarts — never corrupts."""
        result = run(
            problem,
            IMCRStrategy(T=10, phi=2),
            [repro.FailureEvent(15, (2,)), repro.FailureEvent(17, (3,))],
        )
        assert result.converged

    def test_failure_on_the_very_last_iterations(self, problem):
        matrix, b = problem
        reference = repro.solve(matrix, b, n_nodes=8, strategy="reference")
        result = run(
            problem,
            ESRStrategy(phi=1),
            [repro.FailureEvent(reference.iterations - 1, (5,))],
        )
        assert result.converged
        assert result.iterations == reference.iterations


class TestDegenerateConfigurations:
    def test_interval_longer_than_solve(self, problem):
        """T > C: no storage stage ever completes; failures restart."""
        matrix, b = problem
        reference = repro.solve(matrix, b, n_nodes=8, strategy="reference")
        result = run(
            problem,
            ESRPStrategy(T=10 * reference.iterations, phi=1),
            [repro.FailureEvent(reference.iterations // 2, (1,))],
        )
        assert result.converged
        assert result.events.first(EventKind.RESTART) is not None

    def test_phi_exceeding_cluster_is_capped(self, problem):
        result = run(problem, ESRStrategy(phi=100), [repro.FailureEvent(20, (1,))])
        assert result.converged

    def test_two_node_cluster(self, problem):
        matrix, b = problem
        result = repro.solve(
            matrix, b, n_nodes=2, strategy="esr", phi=1,
            failures=[repro.FailureEvent(25, (0,))],
        )
        assert result.converged

    def test_failure_free_run_touches_no_recovery_machinery(self, problem):
        result = run(problem, ESRPStrategy(T=10, phi=2), [])
        assert result.recovery_time == 0.0
        assert not result.events.of_kind(EventKind.RECOVERY_START)
        assert not result.events.of_kind(EventKind.NODE_FAILURE)
