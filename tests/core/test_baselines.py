"""Tests for the approximate-recovery baselines (related-work methods)."""

import numpy as np
import pytest

import repro
from repro.cluster import FailureEvent, FailureSchedule
from repro.core import make_strategy
from repro.core.baselines import (
    FullRestartStrategy,
    LeastSquaresRecovery,
    LinearInterpolationRecovery,
)
from repro.events import EventKind
from repro.preconditioners import make_preconditioner
from repro.solvers import PCGEngine, SolveOptions

from ..conftest import make_distributed

N_NODES = 4


@pytest.fixture(scope="module")
def problem():
    matrix, b, _ = repro.matrices.load("emilia_923_like", scale="tiny")
    return matrix, b


def run(problem, strategy, failures=None, maxiter=None):
    matrix, b = problem
    cluster, partition, dmatrix = make_distributed(matrix, N_NODES)
    engine = PCGEngine(
        matrix=dmatrix,
        b=b,
        preconditioner=make_preconditioner("block_jacobi"),
        strategy=strategy,
        options=SolveOptions(rtol=1e-8, maxiter=maxiter),
        failures=FailureSchedule(failures or []),
    )
    return engine.solve()


@pytest.fixture(scope="module")
def reference(problem):
    return run(problem, repro.solvers.NoResilience())


class TestFullRestart:
    def test_converges_after_failure(self, problem, reference):
        mid = reference.iterations // 2
        result = run(problem, FullRestartStrategy(), [FailureEvent(mid, (1,))])
        assert result.converged
        assert np.allclose(result.x, reference.x, atol=1e-6)

    def test_costs_roughly_double(self, problem, reference):
        mid = reference.iterations // 2
        result = run(problem, FullRestartStrategy(), [FailureEvent(mid, (1,))])
        # restart from scratch at C/2: total iterations ~ 1.5x C
        assert result.iterations > reference.iterations * 1.2

    def test_no_failure_free_overhead_traffic(self, problem):
        result = run(problem, FullRestartStrategy())
        assert result.stats.get("bytes[aspmv_extra]", 0.0) == 0.0
        assert result.stats.get("bytes[checkpoint]", 0.0) == 0.0


class TestLinearInterpolation:
    def test_converges_after_failure(self, problem, reference):
        mid = reference.iterations // 2
        result = run(
            problem, LinearInterpolationRecovery(), [FailureEvent(mid, (1,))]
        )
        assert result.converged
        assert np.allclose(result.x, reference.x, atol=1e-6)

    def test_cheaper_than_full_restart(self, problem, reference):
        mid = reference.iterations // 2
        restart = run(problem, FullRestartStrategy(), [FailureEvent(mid, (1,))])
        lininterp = run(
            problem, LinearInterpolationRecovery(), [FailureEvent(mid, (1,))]
        )
        assert lininterp.iterations < restart.iterations

    def test_more_expensive_than_exact_esr(self, problem, reference):
        mid = reference.iterations // 2
        esr = run(problem, make_strategy("esr", phi=1), [FailureEvent(mid, (1,))])
        lininterp = run(
            problem, LinearInterpolationRecovery(), [FailureEvent(mid, (1,))]
        )
        # exact reconstruction preserves the trajectory; interpolation
        # restarts the Krylov space and needs extra iterations
        assert esr.iterations <= lininterp.iterations

    def test_multi_node_failure(self, problem, reference):
        mid = reference.iterations // 2
        result = run(
            problem, LinearInterpolationRecovery(), [FailureEvent(mid, (1, 2))]
        )
        assert result.converged


class TestLeastSquares:
    def test_converges_after_failure(self, problem, reference):
        mid = reference.iterations // 2
        result = run(problem, LeastSquaresRecovery(), [FailureEvent(mid, (1,))])
        assert result.converged
        assert np.allclose(result.x, reference.x, atol=1e-6)

    def test_residual_not_much_worse_after_recovery(self, problem, reference):
        """Agullo et al.: the post-recovery residual never increases.

        We check the residual right after recovery against the residual
        right before the failure using the recorded history.
        """
        matrix, b = problem
        mid = reference.iterations // 2
        result = run(problem, LeastSquaresRecovery(), [FailureEvent(mid, (1,))])
        history = result.residual_history
        # the iteration after the failure must not blow up
        assert history[mid] < 10 * history[mid - 1]

    def test_events_mark_recovery(self, problem, reference):
        mid = reference.iterations // 2
        result = run(problem, LeastSquaresRecovery(), [FailureEvent(mid, (2,))])
        assert len(result.events.of_kind(EventKind.RECOVERY_START)) == 1


class TestFactoryNames:
    def test_aliases(self):
        assert isinstance(make_strategy("lininterp"), LinearInterpolationRecovery)
        assert isinstance(make_strategy("li"), LinearInterpolationRecovery)
        assert isinstance(make_strategy("lsq"), LeastSquaresRecovery)
        assert isinstance(make_strategy("full_restart"), FullRestartStrategy)
        assert isinstance(make_strategy("cr", T=10), repro.IMCRStrategy)

    def test_unknown_strategy(self):
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError):
            make_strategy("raid5")
