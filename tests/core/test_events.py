"""Unit tests for the structured event log."""

from repro.events import Event, EventKind, EventLog


class TestEventLog:
    def test_record_appends_and_returns(self):
        log = EventLog()
        event = log.record(EventKind.ITERATION, iteration=5, time=1.0, note="x")
        assert isinstance(event, Event)
        assert len(log) == 1
        assert log[0].detail["note"] == "x"

    def test_iteration_defaults(self):
        log = EventLog()
        event = log.record(EventKind.SOLVE_START)
        assert event.iteration == -1
        assert event.time == 0.0

    def test_of_kind_filters(self):
        log = EventLog()
        log.record(EventKind.CHECKPOINT, iteration=10)
        log.record(EventKind.NODE_FAILURE, iteration=12)
        log.record(EventKind.CHECKPOINT, iteration=20)
        assert [e.iteration for e in log.of_kind(EventKind.CHECKPOINT)] == [10, 20]

    def test_first_and_last(self):
        log = EventLog()
        assert log.first(EventKind.WARNING) is None
        assert log.last(EventKind.WARNING) is None
        log.record(EventKind.WARNING, iteration=1)
        log.record(EventKind.WARNING, iteration=2)
        assert log.first(EventKind.WARNING).iteration == 1
        assert log.last(EventKind.WARNING).iteration == 2

    def test_iterable(self):
        log = EventLog()
        log.record(EventKind.SOLVE_START)
        log.record(EventKind.SOLVE_END)
        kinds = [e.kind for e in log]
        assert kinds == [EventKind.SOLVE_START, EventKind.SOLVE_END]


class TestRecoveryTime:
    def test_single_span(self):
        log = EventLog()
        log.record(EventKind.RECOVERY_START, time=2.0)
        log.record(EventKind.RECOVERY_END, time=5.5)
        assert log.recovery_time() == 3.5

    def test_multiple_spans_accumulate(self):
        log = EventLog()
        log.record(EventKind.RECOVERY_START, time=1.0)
        log.record(EventKind.RECOVERY_END, time=2.0)
        log.record(EventKind.RECOVERY_START, time=10.0)
        log.record(EventKind.RECOVERY_END, time=14.0)
        assert log.recovery_time() == 5.0

    def test_unclosed_span_ignored(self):
        log = EventLog()
        log.record(EventKind.RECOVERY_START, time=1.0)
        assert log.recovery_time() == 0.0

    def test_no_spans(self):
        assert EventLog().recovery_time() == 0.0

    def test_intervening_events_do_not_break_span(self):
        log = EventLog()
        log.record(EventKind.RECOVERY_START, time=0.0)
        log.record(EventKind.WARNING, time=0.5)
        log.record(EventKind.RESTART, time=0.7)
        log.record(EventKind.RECOVERY_END, time=1.0)
        assert log.recovery_time() == 1.0
