"""Direct unit tests of Alg. 2 (reconstruction) in isolation.

Builds a genuine mid-solve PCG state, snapshots it, wipes nodes, and
verifies that :func:`reconstruct_lost_state` rebuilds the lost blocks
from the redundant copies to within the inner-solve tolerance — without
going through the full engine recovery path.
"""

import numpy as np
import pytest

import repro
from repro.cluster import VirtualCluster, zero_cost_model
from repro.core.reconstruction import reconstruct_lost_state
from repro.core.redundancy import RedundancyQueue
from repro.distribution import (
    ASpMVExecutor,
    BlockRowPartition,
    DistributedMatrix,
    gather_redundant_copy,
)
from repro.exceptions import ReconstructionUnsupportedError
from repro.preconditioners import make_preconditioner
from repro.solvers import NoResilience, PCGEngine, SolveOptions

N_NODES = 4


@pytest.fixture()
def mid_solve():
    """An engine + state captured mid-solve, with redundant p copies."""
    matrix_csr, b, _ = repro.matrices.load("emilia_923_like", scale="tiny")
    cluster = VirtualCluster(N_NODES, cost_model=zero_cost_model(), seed=0)
    partition = BlockRowPartition.uniform(matrix_csr.shape[0], N_NODES)
    dmatrix = DistributedMatrix(cluster, partition, matrix_csr)
    engine = PCGEngine(
        matrix=dmatrix,
        b=b,
        preconditioner=make_preconditioner("block_jacobi"),
        strategy=NoResilience(),
        options=SolveOptions(maxiter=21, require_convergence=False),
    )
    engine.solve()
    state = engine.final_state

    # Manually create the redundant copies for two consecutive "iterations":
    # p'(20) := p of the captured state; p'(19) := a consistent previous
    # direction derived from the recursion p = z + beta*p_prev.
    beta = state.beta
    p_prev_global = (state.p.to_global() - state.z.to_global()) / beta
    aspmv = ASpMVExecutor(dmatrix, phi=2)
    queue = RedundancyQueue(2)
    from repro.distribution import DistributedVector

    p_prev = DistributedVector.from_global(cluster, partition, p_prev_global)
    aspmv.multiply_augmented(p_prev, 19, queue)
    aspmv.multiply_augmented(state.p, 20, queue)
    return engine, state, beta


class TestReconstructLostState:
    @pytest.mark.parametrize("failed", [(1,), (2, 3), (0, 1)])
    def test_rebuilds_state_exactly(self, mid_solve, failed):
        engine, state, beta = mid_solve
        snapshot = {
            name: vec.to_global().copy() for name, vec in state.vectors().items()
        }
        engine.cluster.fail(failed)
        engine.cluster.replace(failed)

        p_curr = gather_redundant_copy(engine.cluster, engine.partition, 20, failed)
        p_prev = gather_redundant_copy(engine.cluster, engine.partition, 19, failed)
        report = reconstruct_lost_state(
            engine,
            state,
            tuple(failed),
            target_iteration=20,
            p_curr=p_curr,
            p_prev=p_prev,
            beta_prev=beta,
        )
        assert report.failed_ranks == tuple(sorted(failed))
        assert report.lost_rows == sum(
            engine.partition.size_of(r) for r in failed
        )
        assert report.inner_relative_residual <= 1e-10
        for name in ("x", "r", "z", "p"):
            rebuilt = state.vectors()[name].to_global()
            scale = max(np.linalg.norm(snapshot[name]), 1e-30)
            error = np.linalg.norm(rebuilt - snapshot[name]) / scale
            assert error < 1e-9, f"{name} reconstruction error {error:.2e}"

    def test_report_counts_gathered_entries(self, mid_solve):
        engine, state, beta = mid_solve
        engine.cluster.fail([1])
        engine.cluster.replace([1])
        p_curr = gather_redundant_copy(engine.cluster, engine.partition, 20, [1])
        p_prev = gather_redundant_copy(engine.cluster, engine.partition, 19, [1])
        report = reconstruct_lost_state(
            engine, state, (1,), 20, p_curr, p_prev, beta
        )
        assert report.gathered_x_entries > 0
        assert report.inner_iterations > 0

    def test_unsupported_preconditioner_raises(self, mid_solve):
        engine, state, beta = mid_solve
        engine.preconditioner = make_preconditioner("polynomial")
        engine.preconditioner.setup(engine.matrix)
        with pytest.raises(ReconstructionUnsupportedError):
            reconstruct_lost_state(engine, state, (1,), 20, {}, {}, beta)
