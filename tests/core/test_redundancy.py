"""Unit tests for the redundancy queue (Fig. 1 semantics)."""

import pytest

from repro.core.redundancy import RedundancyQueue
from repro.exceptions import ConfigurationError


class TestQueueBasics:
    def test_capacity_respected(self):
        queue = RedundancyQueue(3)
        for j in range(5):
            queue.push(j)
        assert len(queue) == 3
        assert queue.items == (2, 3, 4)

    def test_push_returns_evicted(self):
        queue = RedundancyQueue(2)
        assert queue.push(0) is None
        assert queue.push(1) is None
        assert queue.push(2) == 0

    def test_idempotent_repush(self):
        queue = RedundancyQueue(2)
        queue.push(0)
        queue.push(1)
        assert queue.push(1) is None  # rollback re-execution
        assert queue.items == (0, 1)

    def test_contains(self):
        queue = RedundancyQueue(2)
        queue.push(7)
        assert 7 in queue
        assert 8 not in queue

    def test_clear(self):
        queue = RedundancyQueue(2)
        queue.push(1)
        queue.clear()
        assert len(queue) == 0

    def test_invalid_capacity(self):
        with pytest.raises(ConfigurationError):
            RedundancyQueue(0)


class TestPairs:
    def test_holds_pair(self):
        queue = RedundancyQueue(3)
        queue.push(20)
        queue.push(21)
        assert queue.holds_pair(20, 21)
        assert not queue.holds_pair(19, 20)

    def test_latest_consecutive_pair(self):
        queue = RedundancyQueue(3)
        queue.push(20)
        queue.push(21)
        queue.push(40)
        assert queue.latest_consecutive_pair() == (20, 21)

    def test_no_pair(self):
        queue = RedundancyQueue(3)
        queue.push(20)
        queue.push(40)
        assert queue.latest_consecutive_pair() is None

    def test_newest_pair_wins(self):
        queue = RedundancyQueue(4)
        for j in (20, 21, 40, 41):
            queue.push(j)
        assert queue.latest_consecutive_pair() == (40, 41)


class TestFig1Trace:
    """Replicates Fig. 1 of the paper exactly, for T = 20."""

    def test_queue_states_follow_figure(self):
        T = 20
        queue = RedundancyQueue(3)
        # start: [_, _, _]
        assert queue.render() == "[_, _, _]"
        # j = T: first push of the first storage stage
        queue.push(T)
        assert queue.render() == "[_, _, p'(20)]"
        # j = T + 1: second push completes the stage
        queue.push(T + 1)
        assert queue.render() == "[_, p'(20), p'(21)]"
        # j = 2T: the next stage's first push evicts nothing yet
        queue.push(2 * T)
        assert queue.render() == "[p'(20), p'(21), p'(40)]"
        # a failure here must still recover iteration T+1
        assert queue.holds_pair(T, T + 1)
        # j = 2T + 1: completes stage two, evicting p'(20)
        assert queue.push(2 * T + 1) == T
        assert queue.render() == "[p'(21), p'(40), p'(41)]"
        assert queue.holds_pair(2 * T, 2 * T + 1)
        assert not queue.holds_pair(T, T + 1)

    def test_esr_two_slot_rolling_pair(self):
        queue = RedundancyQueue(2)
        for j in range(10):
            queue.push(j)
            if j >= 1:
                assert queue.holds_pair(j - 1, j)
