"""ESR / ESRP / IMCR recovery behaviour, exactness and edge cases.

The central claims of the paper that these tests pin down:

* exact state reconstruction recovers the *same trajectory* as the
  undisturbed solver (iterates agree to floating-point noise),
* ESRP rolls back to the last completed storage stage (T-2 wasted
  iterations in the worst case), ESR rolls back nothing,
* IMCR rolls back to the last checkpoint,
* early failures (before any recovery data exists) fall back to a
  restart from the initial guess and still converge.
"""

import numpy as np
import pytest

import repro
from repro.cluster import FailureEvent, FailureSchedule, zero_cost_model
from repro.core import ESRPStrategy, ESRStrategy, IMCRStrategy, make_strategy
from repro.events import EventKind
from repro.exceptions import ConfigurationError, ReconstructionUnsupportedError
from repro.matrices import random_banded_spd
from repro.preconditioners import make_preconditioner
from repro.solvers import PCGEngine, SolveOptions

from ..conftest import make_distributed

N_NODES = 4


@pytest.fixture(scope="module")
def problem():
    # emilia-tiny: C ≈ 80 iterations, so failure points around C/2 and
    # multi-interval schedules all fit comfortably before convergence.
    matrix, b, _ = repro.matrices.load("emilia_923_like", scale="tiny")
    return matrix, b


def run(problem, strategy, failures=None, precond="block_jacobi", **opts):
    matrix, b = problem
    cluster, partition, dmatrix = make_distributed(matrix, N_NODES)
    engine = PCGEngine(
        matrix=dmatrix,
        b=b,
        preconditioner=make_preconditioner(precond),
        strategy=strategy,
        options=SolveOptions(rtol=1e-9, **opts),
        failures=FailureSchedule(failures or []),
    )
    return engine.solve()


@pytest.fixture(scope="module")
def reference(problem):
    return run(problem, repro.solvers.NoResilience())


class TestESR:
    def test_failure_free_same_trajectory(self, problem, reference):
        result = run(problem, ESRStrategy(phi=1))
        assert result.iterations == reference.iterations
        assert np.allclose(result.x, reference.x)

    @pytest.mark.parametrize("phi,ranks", [(1, (1,)), (2, (1, 2)), (3, (0, 1, 2))])
    def test_recovery_is_exact(self, problem, reference, phi, ranks):
        mid = reference.iterations // 2
        result = run(problem, ESRStrategy(phi=phi), [FailureEvent(mid, ranks)])
        assert result.converged
        assert result.iterations == reference.iterations
        assert result.wasted_iterations == 0  # ESR loses no work
        assert np.allclose(result.x, reference.x, atol=1e-9)

    def test_failure_at_iteration_zero_restarts(self, problem):
        result = run(problem, ESRStrategy(phi=1), [FailureEvent(0, (1,))])
        assert result.converged
        restart = result.events.first(EventKind.RESTART)
        assert restart is not None

    def test_events_record_recovery(self, problem, reference):
        mid = reference.iterations // 2
        result = run(problem, ESRStrategy(phi=1), [FailureEvent(mid, (2,))])
        assert len(result.events.of_kind(EventKind.NODE_FAILURE)) == 1
        assert len(result.events.of_kind(EventKind.RECOVERY_START)) == 1
        assert len(result.events.of_kind(EventKind.RECOVERY_END)) == 1
        assert result.recovery_time >= 0.0

    def test_unsupported_preconditioner_rejected(self, problem):
        with pytest.raises(ReconstructionUnsupportedError):
            run(problem, ESRStrategy(phi=1), precond="polynomial")

    def test_invalid_phi(self):
        with pytest.raises(ConfigurationError):
            ESRStrategy(phi=0)


class TestESRP:
    def test_requires_t_at_least_3(self):
        with pytest.raises(ConfigurationError):
            ESRPStrategy(T=2)

    def test_factory_degenerates_to_esr(self):
        assert isinstance(make_strategy("esrp", T=1), ESRStrategy)
        assert isinstance(make_strategy("esrp", T=2), ESRStrategy)
        assert isinstance(make_strategy("esrp", T=5), ESRPStrategy)

    def test_failure_free_same_trajectory(self, problem, reference):
        result = run(problem, ESRPStrategy(T=10, phi=2))
        assert result.iterations == reference.iterations
        assert np.allclose(result.x, reference.x)

    def test_storage_stages_logged(self, problem, reference):
        result = run(problem, ESRPStrategy(T=10, phi=1))
        stages = result.events.of_kind(EventKind.STORAGE_STAGE)
        first_push = [e for e in stages if e.detail["phase"] == "first_push"]
        complete = [e for e in stages if e.detail["phase"] == "complete"]
        assert first_push and complete
        assert all(e.iteration % 10 == 0 for e in first_push)
        assert all((e.iteration - 1) % 10 == 0 for e in complete)

    @pytest.mark.parametrize("T", [5, 10])
    @pytest.mark.parametrize("phi,ranks", [(1, (2,)), (2, (0, 1))])
    def test_recovery_rolls_back_to_stage(self, problem, reference, T, phi, ranks):
        C = reference.iterations
        # place the failure 2 iterations before the end of the interval
        # containing C/2 (the paper's worst case)
        from repro.harness import place_worst_case_failure

        j_fail = place_worst_case_failure("esrp", T, C)
        result = run(problem, ESRPStrategy(T=T, phi=phi), [FailureEvent(j_fail, ranks)])
        assert result.converged
        assert result.iterations == reference.iterations
        assert result.wasted_iterations == T - 2
        assert np.allclose(result.x, reference.x, atol=1e-8)

    def test_failure_during_storage_stage_uses_previous_stage(self, problem, reference):
        # fail exactly at j = 2T (first push of a stage done, second not):
        # recovery must target the previous stage's completion T+1.
        T = 10
        result = run(problem, ESRPStrategy(T=T, phi=1), [FailureEvent(2 * T, (1,))])
        assert result.converged
        rollback = result.events.first(EventKind.ROLLBACK)
        assert rollback.detail["resume_iteration"] == T + 1
        assert np.allclose(result.x, reference.x, atol=1e-8)

    def test_failure_right_after_stage_completion(self, problem, reference):
        T = 10
        result = run(problem, ESRPStrategy(T=T, phi=1), [FailureEvent(T + 1, (1,))])
        assert result.converged
        rollback = result.events.first(EventKind.ROLLBACK)
        assert rollback.detail["resume_iteration"] == T + 1
        assert result.wasted_iterations == 0

    def test_early_failure_restarts(self, problem):
        result = run(problem, ESRPStrategy(T=10, phi=1), [FailureEvent(3, (1,))])
        assert result.converged
        assert result.events.first(EventKind.RESTART) is not None

    def test_two_failures_in_different_intervals(self, problem, reference):
        T = 8
        C = reference.iterations
        events = [FailureEvent(T + 3, (1,)), FailureEvent(3 * T + 2, (2,))]
        result = run(problem, ESRPStrategy(T=T, phi=1), events)
        assert result.converged
        assert np.allclose(result.x, reference.x, atol=1e-8)
        assert len(result.events.of_kind(EventKind.NODE_FAILURE)) == 2

    def test_unsupported_preconditioner_rejected(self, problem):
        with pytest.raises(ReconstructionUnsupportedError):
            run(problem, ESRPStrategy(T=10, phi=1), precond="polynomial")


class TestIMCR:
    def test_failure_free_same_trajectory(self, problem, reference):
        result = run(problem, IMCRStrategy(T=10, phi=1))
        assert result.iterations == reference.iterations
        assert np.allclose(result.x, reference.x)

    def test_checkpoints_logged(self, problem):
        result = run(problem, IMCRStrategy(T=10, phi=2))
        checkpoints = result.events.of_kind(EventKind.CHECKPOINT)
        assert checkpoints
        assert all(e.iteration % 10 == 0 for e in checkpoints)

    @pytest.mark.parametrize("phi,ranks", [(1, (1,)), (2, (2, 3)), (3, (1, 2, 3))])
    def test_recovery_rolls_back_to_checkpoint(self, problem, reference, phi, ranks):
        T = 10
        from repro.harness import place_worst_case_failure

        j_fail = place_worst_case_failure("imcr", T, reference.iterations)
        result = run(problem, IMCRStrategy(T=T, phi=phi), [FailureEvent(j_fail, ranks)])
        assert result.converged
        assert result.iterations == reference.iterations
        assert result.wasted_iterations == T - 2
        assert np.allclose(result.x, reference.x, atol=1e-10)

    def test_rollback_is_bitwise_exact(self, problem, reference):
        # IMCR restores checkpmemointed data verbatim: the trajectory is
        # bit-identical to the undisturbed run, not merely close.
        result = run(problem, IMCRStrategy(T=10, phi=1), [FailureEvent(15, (1,))])
        assert result.iterations == reference.iterations
        assert np.array_equal(result.x, reference.x)

    def test_early_failure_restarts(self, problem):
        result = run(problem, IMCRStrategy(T=10, phi=1), [FailureEvent(4, (2,))])
        assert result.converged
        assert result.events.first(EventKind.RESTART) is not None

    def test_works_with_polynomial_preconditioner(self, problem):
        result = run(
            problem,
            IMCRStrategy(T=10, phi=1),
            [FailureEvent(15, (1,))],
            precond="polynomial",
        )
        assert result.converged

    def test_imcr_reconstruction_cost_is_communication_only(self, problem, reference):
        result = run(problem, IMCRStrategy(T=10, phi=1), [FailureEvent(15, (1,))])
        # recovery happens, but involves no inner solves: the recovery
        # span should be tiny compared to ESRP's
        assert result.recovery_time >= 0.0
        end = result.events.last(EventKind.RECOVERY_END)
        assert "inner_iterations" not in end.detail

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            IMCRStrategy(T=0)
        with pytest.raises(ConfigurationError):
            IMCRStrategy(T=5, phi=0)


class TestScheduleInteraction:
    def test_consumed_event_does_not_retrigger_after_rollback(self, problem):
        # ESRP rolls back past the failure iteration; the event must not
        # fire again when the iteration is re-executed.
        T = 10
        result = run(problem, ESRPStrategy(T=T, phi=1), [FailureEvent(2 * T - 1, (1,))])
        assert len(result.events.of_kind(EventKind.NODE_FAILURE)) == 1
        assert result.converged
