"""Tests for the reconstruction report, interval formulas and no-spare ESR."""

import math

import numpy as np
import pytest

import repro
from repro.cluster import FailureEvent
from repro.core.interval import (
    daly_interval,
    expected_waste_fraction,
    optimal_interval_iterations,
    young_interval,
)
from repro.core.no_spare import solve_without_spares
from repro.exceptions import ConfigurationError
from repro.solvers import SolveOptions


class TestYoungDaly:
    def test_young_closed_form(self):
        assert young_interval(10.0, 2000.0) == pytest.approx(math.sqrt(2 * 10 * 2000))

    def test_daly_close_to_young_for_small_delta(self):
        y = young_interval(1.0, 1e6)
        d = daly_interval(1.0, 1e6)
        assert d == pytest.approx(y, rel=1e-2)

    def test_daly_saturates_at_mtbf(self):
        assert daly_interval(100.0, 40.0) == 40.0

    def test_waste_minimised_near_young(self):
        delta, mtbf = 5.0, 1000.0
        t_opt = young_interval(delta, mtbf)
        w_opt = expected_waste_fraction(t_opt, delta, mtbf)
        assert w_opt < expected_waste_fraction(t_opt / 3, delta, mtbf)
        assert w_opt < expected_waste_fraction(t_opt * 3, delta, mtbf)

    def test_optimal_interval_iterations(self):
        t = optimal_interval_iterations(
            checkpoint_cost_seconds=0.01,
            mtbf_seconds=100.0,
            seconds_per_iteration=0.001,
            formula="young",
        )
        assert t == pytest.approx(math.sqrt(2 * 0.01 * 100) / 0.001, rel=0.01)

    def test_minimum_interval_enforced(self):
        t = optimal_interval_iterations(1e-9, 1e-6, 1.0, formula="young")
        assert t == 3  # ESRP requires T >= 3

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            young_interval(-1.0, 10.0)
        with pytest.raises(ConfigurationError):
            young_interval(1.0, 0.0)
        with pytest.raises(ConfigurationError):
            expected_waste_fraction(0.0, 1.0, 10.0)
        with pytest.raises(ConfigurationError):
            optimal_interval_iterations(1.0, 1.0, 0.0)
        with pytest.raises(ConfigurationError):
            optimal_interval_iterations(1.0, 1.0, 1.0, formula="magic")


class TestNoSpare:
    @pytest.fixture(scope="class")
    def problem(self):
        matrix, b, _ = repro.matrices.load("emilia_923_like", scale="tiny")
        return matrix, b

    def test_failure_free_case(self, problem):
        matrix, b = problem
        outcome = solve_without_spares(matrix, b, n_nodes=4, failure=None)
        assert outcome.result.converged
        assert outcome.failure_iteration is None
        assert outcome.survivors == 4

    def test_continues_on_survivors(self, problem):
        matrix, b = problem
        reference = repro.solve(matrix, b, n_nodes=4, strategy="reference")
        failure = FailureEvent(reference.iterations // 2, (1,))
        outcome = solve_without_spares(
            matrix, b, n_nodes=4, failure=failure, phi=1
        )
        assert outcome.result.converged
        assert outcome.survivors == 3
        assert outcome.migrated_bytes > 0
        assert np.allclose(outcome.result.x, reference.x, atol=1e-6)

    def test_continuation_restarts_from_exact_iterand(self, problem):
        """The iterand is exact; the recursion restarts on the new cluster.

        Total work = C/2 before the failure + a fresh solve started from
        the recovered x — which must converge faster than from scratch.
        """
        matrix, b = problem
        reference = repro.solve(matrix, b, n_nodes=4, strategy="reference")
        failure = FailureEvent(reference.iterations // 2, (2,))
        outcome = solve_without_spares(matrix, b, n_nodes=4, failure=failure)
        continuation = outcome.result.iterations
        assert continuation < reference.iterations  # warm start helps
        assert outcome.result.converged

    def test_multiple_failed_ranks(self, problem):
        matrix, b = problem
        reference = repro.solve(matrix, b, n_nodes=4, strategy="reference")
        failure = FailureEvent(reference.iterations // 2, (1, 2))
        outcome = solve_without_spares(
            matrix, b, n_nodes=4, failure=failure, phi=2
        )
        assert outcome.result.converged
        assert outcome.survivors == 2

    def test_options_forwarded(self, problem):
        matrix, b = problem
        outcome = solve_without_spares(
            matrix,
            b,
            n_nodes=4,
            failure=None,
            options=SolveOptions(rtol=1e-6),
        )
        assert outcome.result.relative_residual < 1e-6
