"""The solver service: pooled sessions, batched solves, stamped replies.

A :class:`ServeRequest` names a registered problem constellation plus
the :class:`~repro.api.request.SolveRequest` to run against it; a
:class:`SolverService` serves many of them concurrently:

* sessions come from a bounded LRU :class:`~repro.serve.pool.SessionPool`
  keyed by :attr:`ServeRequest.session_key`;
* requests against one session are **batched**: every HTTP thread
  appends ``(request, future)`` to the session's pending deque, and
  whoever acquires the session lock first becomes the batch leader,
  draining the deque through
  :meth:`~repro.api.session.SolverSession.solve_many` in ``max_batch``
  groups while later arrivals simply wait on their futures;
* replies are **hash-stamped** (see :func:`stamp_response`): the digest
  covers the engine version, the problem-content digest, the request
  fingerprint and the canonical report, so a reply is verifiable and
  cacheable by content — identical requests produce byte-identical
  stamped payloads.

Wall-clock timing and pool metadata ride *outside* the digest (the
``timing`` / ``pool`` keys): they describe this particular execution,
not the answer.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import threading
from concurrent.futures import Future
from itertools import groupby
from time import perf_counter
from typing import Any, Mapping

from .. import __version__
from ..api.request import SolveReport, SolveRequest
from ..api.session import SolverSession
from ..exceptions import ConfigurationError, ReproError
from .pool import PooledSession, SessionPool

#: Response payload schema version.
RESPONSE_VERSION = 1

#: Engine tag stamped into (and covered by) every response digest.
ENGINE = f"repro-{__version__}"

#: Default session-pool capacity.
DEFAULT_POOL_SIZE = 4

#: Default batch-group bound for one ``solve_many`` drain.
DEFAULT_MAX_BATCH = 8


class ServiceClosed(ReproError):
    """The service is draining/closed and accepts no new requests."""


def _canonical(payload: Mapping[str, Any]) -> bytes:
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode()


@dataclasses.dataclass(frozen=True)
class ServeRequest:
    """One servable solve: a named problem plus the solve description.

    Unlike a bare :class:`SolveRequest`, a serve request must carry the
    *problem* too (the service owns no implicit matrix), and it must be
    order-independent: ``x0="previous"`` is rejected because under
    pooling and batching "the previous solve" depends on scheduling,
    which would make replies non-deterministic and the hash stamp
    meaningless.
    """

    problem: str = "emilia_923_like"
    scale: str = "tiny"
    n_nodes: int = 4
    request: SolveRequest = dataclasses.field(default_factory=SolveRequest)
    with_reference: bool = False

    def __post_init__(self) -> None:
        from ..matrices import available_problems, available_scales

        if self.problem not in available_problems():
            raise ConfigurationError(
                f"unknown problem {self.problem!r} "
                f"(available: {', '.join(available_problems())})"
            )
        if self.scale not in available_scales():
            raise ConfigurationError(
                f"unknown scale {self.scale!r} "
                f"(available: {', '.join(available_scales())})"
            )
        if not isinstance(self.request, SolveRequest):
            raise ConfigurationError(
                f"request must be a SolveRequest, got {type(self.request).__name__}"
            )
        if self.request.x0 is not None:
            raise ConfigurationError(
                "x0='previous' is not servable: under a pooled, batched "
                "service the previous solve is scheduling-dependent"
            )
        self.request.validate_for(self.n_nodes)

    @property
    def session_key(self) -> str:
        """The pool key (mirrors ``RunSpec.config_key``)."""
        return (
            f"{self.problem}:{self.scale}:n{self.n_nodes}"
            f":{self.request.preconditioner}"
        )

    @property
    def fingerprint(self) -> str:
        """Stable sha256 of the canonical request payload."""
        return hashlib.sha256(_canonical(self.to_dict())).hexdigest()

    def to_dict(self) -> dict[str, Any]:
        return {
            "problem": self.problem,
            "scale": self.scale,
            "n_nodes": self.n_nodes,
            "with_reference": self.with_reference,
            "request": self.request.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ServeRequest":
        if not isinstance(data, Mapping):
            raise ConfigurationError(
                f"serve request must be a JSON object, got {type(data).__name__}"
            )
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ConfigurationError(
                f"unknown serve request keys: {sorted(unknown)}"
            )
        payload = dict(data)
        request = payload.get("request")
        if request is not None and not isinstance(request, SolveRequest):
            payload["request"] = SolveRequest.from_dict(request)
        return cls(**payload)


def canonical_report(report: "SolveReport | Mapping[str, Any]") -> dict[str, Any]:
    """The deterministic part of a report (what the stamp covers).

    ``wall_time`` is measured host wall-clock — two runs of the same
    request legitimately differ — so it is stripped here and reported
    under the response's ``timing`` key instead.  Everything else in a
    report is modeled/deterministic by the engine's bit-identity
    contract.
    """
    payload = report.to_dict() if isinstance(report, SolveReport) else dict(report)
    payload.pop("wall_time", None)
    return payload


def stamp_response(
    problem_digest: str,
    request_fingerprint: str,
    report: dict[str, Any],
) -> dict[str, Any]:
    """Assemble the versioned, hash-stamped reply body.

    ``response_digest`` is the sha256 of the canonical JSON of every
    *deterministic* field — version, engine, problem digest, request
    fingerprint, report — so clients can verify a reply (recompute and
    compare) and cache it by content.
    """
    body = {
        "version": RESPONSE_VERSION,
        "engine": ENGINE,
        "problem_digest": problem_digest,
        "request_fingerprint": request_fingerprint,
        "report": report,
    }
    body["response_digest"] = hashlib.sha256(_canonical(body)).hexdigest()
    return body


def verify_response(response: Mapping[str, Any]) -> bool:
    """Recompute a reply's digest over its deterministic fields."""
    body = {
        key: response[key]
        for key in (
            "version", "engine", "problem_digest", "request_fingerprint",
            "report",
        )
        if key in response
    }
    expected = hashlib.sha256(_canonical(body)).hexdigest()
    return response.get("response_digest") == expected


def error_response(exc: BaseException) -> dict[str, Any]:
    """The structured error body (same envelope version as successes)."""
    return {
        "version": RESPONSE_VERSION,
        "engine": ENGINE,
        "error": {
            "type": type(exc).__name__,
            "message": str(exc),
        },
    }


class SolverService:
    """Serve :class:`ServeRequest`\\ s against a bounded session pool."""

    def __init__(
        self,
        pool_size: int = DEFAULT_POOL_SIZE,
        *,
        cache_dir=None,
        max_batch: int = DEFAULT_MAX_BATCH,
        problem_seed: int = 2020,
    ):
        if max_batch < 1:
            raise ConfigurationError(f"max_batch must be >= 1, got {max_batch}")
        self.pool = SessionPool(pool_size)
        self.cache_dir = cache_dir
        self.max_batch = int(max_batch)
        self.problem_seed = int(problem_seed)
        self.served = 0
        self.errors = 0
        self._state = threading.Condition()
        self._inflight = 0
        self._closed = False

    # --------------------------------------------------------------- serving

    def solve(self, serve_request: "ServeRequest | Mapping[str, Any]") -> dict:
        """Serve one request; returns the stamped response payload.

        Raises :class:`ServiceClosed` after :meth:`close`,
        :class:`~repro.exceptions.ConfigurationError` on invalid
        requests; anything else is an internal error the transport
        layer maps to a 500.
        """
        with self._state:
            if self._closed:
                raise ServiceClosed("the solver service is shut down")
            self._inflight += 1
        started = perf_counter()
        try:
            if not isinstance(serve_request, ServeRequest):
                serve_request = ServeRequest.from_dict(serve_request)
            pooled, hit = self.pool.acquire(
                serve_request.session_key,
                lambda: self._build_session(serve_request),
            )
            report = self._solve_batched(pooled, serve_request)
            response = stamp_response(
                problem_digest=pooled.session.problem_digest,
                request_fingerprint=serve_request.fingerprint,
                report=canonical_report(report),
            )
            response["pool"] = {"session": pooled.key, "hit": hit}
            response["timing"] = {
                "wall_time": report.wall_time,
                "service_seconds": perf_counter() - started,
            }
            self.served += 1
            return response
        except BaseException:
            self.errors += 1
            raise
        finally:
            with self._state:
                self._inflight -= 1
                self._state.notify_all()

    def _build_session(self, serve_request: ServeRequest) -> SolverSession:
        return SolverSession.from_problem(
            serve_request.problem,
            serve_request.scale,
            n_nodes=serve_request.n_nodes,
            problem_seed=self.problem_seed,
            cache_dir=self.cache_dir,
        )

    def _solve_batched(
        self, pooled: PooledSession, serve_request: ServeRequest
    ) -> SolveReport:
        """Enqueue, then serve as batch leader or wait as passenger.

        Whoever wins the session lock drains the whole pending deque —
        including requests that arrived while earlier groups were
        solving — so a thread that blocks on the lock typically finds
        its future already completed by the leader.
        """
        future: Future = Future()
        pooled.pending.append((serve_request, future))
        with pooled.lock:
            if not future.done():
                self._drain_pending(pooled)
        return future.result()

    def _drain_pending(self, pooled: PooledSession) -> None:
        """Serve every pending request (call with the session lock held)."""
        while True:
            batch = []
            while pooled.pending and len(batch) < self.max_batch:
                try:
                    batch.append(pooled.pending.popleft())
                except IndexError:  # pragma: no cover - racing producers
                    break
            if not batch:
                return
            for with_ref, group_iter in groupby(
                batch, key=lambda item: item[0].with_reference
            ):
                group = list(group_iter)
                try:
                    reports = pooled.session.solve_many(
                        [item[0].request for item in group],
                        with_reference=with_ref,
                    )
                except Exception:
                    # One bad request must not fail its batch
                    # neighbours: fall back to per-item solves and give
                    # each future its own outcome.
                    for serve_req, future in group:
                        try:
                            future.set_result(pooled.session.solve(
                                serve_req.request,
                                with_reference=serve_req.with_reference,
                            ))
                        except Exception as exc:
                            future.set_exception(exc)
                else:
                    for (_, future), report in zip(group, reports):
                        future.set_result(report)

    # --------------------------------------------------------------- lifecycle

    def close(self, drain: bool = True, timeout: float = 60.0) -> None:
        """Stop accepting requests; optionally wait for in-flight solves.

        Idempotent.  With ``drain=True`` (the default) the call blocks
        until every already-accepted request has finished (or
        ``timeout`` expires); new :meth:`solve` calls fail fast with
        :class:`ServiceClosed` either way.
        """
        with self._state:
            self._closed = True
            if drain:
                self._state.wait_for(
                    lambda: self._inflight == 0, timeout=timeout
                )

    @property
    def closed(self) -> bool:
        return self._closed

    # ------------------------------------------------------------- inspection

    def stats(self) -> dict:
        with self._state:
            inflight = self._inflight
        return {
            "version": RESPONSE_VERSION,
            "engine": ENGINE,
            "served": self.served,
            "errors": self.errors,
            "inflight": inflight,
            "closed": self._closed,
            "pool": self.pool.stats(),
        }
