"""``repro.serve`` — the pooled, batched, hash-stamped solver service.

ROADMAP open item 1.  Turns the library's :class:`~repro.api.session.
SolverSession` into a long-lived HTTP service (``repro serve``) that
amortises setup cost across requests instead of paying it per process.

Architecture — three layers, each usable alone:

``pool``
    :class:`SessionPool`: a bounded LRU of solver sessions keyed by
    ``problem:scale:n{nodes}:{preconditioner}`` (the same configuration
    split as a campaign's ``config_key``).  Eviction is map-removal
    only — in-flight work finishes on its private reference — and an
    evicted configuration warm-starts from the shared disk trajectory
    cache when it returns.

``service``
    :class:`SolverService`: validates :class:`ServeRequest`\\ s, runs
    them through the pool with **request batching** (concurrent
    requests for one session are drained by a single batch leader via
    ``solve_many``), and wraps every answer in a **versioned,
    hash-stamped response**: ``response_digest`` is the sha256 over the
    canonical JSON of ``{version, engine, problem_digest,
    request_fingerprint, report}``.  Wall-clock timing and pool hit
    metadata live *outside* the digest; the report inside it excludes
    ``wall_time``.  Identical requests therefore yield byte-identical
    stamped payloads — the serving analogue of the queue's
    byte-identical collect.  Shutdown drains in-flight solves before
    refusing new work (:class:`ServiceClosed` → HTTP 503).

``http`` / ``load``
    A stdlib ``ThreadingHTTPServer`` transport (``GET /health``,
    ``GET /stats``, ``POST /solve``; structured JSON errors with
    ``ConfigurationError`` → 400) and a thread-pool load driver that
    measures latency percentiles / throughput and checks the stamp
    contract end to end.
"""

from .load import LoadReport, get_json, post_json, run_load
from .pool import PooledSession, SessionPool
from .service import (
    DEFAULT_MAX_BATCH,
    DEFAULT_POOL_SIZE,
    ENGINE,
    RESPONSE_VERSION,
    ServeRequest,
    ServiceClosed,
    SolverService,
    canonical_report,
    error_response,
    stamp_response,
    verify_response,
)
from .http import SolverServer

__all__ = [
    "DEFAULT_MAX_BATCH",
    "DEFAULT_POOL_SIZE",
    "ENGINE",
    "RESPONSE_VERSION",
    "LoadReport",
    "PooledSession",
    "ServeRequest",
    "ServiceClosed",
    "SessionPool",
    "SolverServer",
    "SolverService",
    "canonical_report",
    "error_response",
    "get_json",
    "post_json",
    "run_load",
    "stamp_response",
    "verify_response",
]
