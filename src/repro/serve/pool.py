"""Bounded LRU pool of :class:`~repro.api.session.SolverSession`.

The serve layer's economics rest on session reuse: one session owns a
problem's cluster, distributed matrix, factorised preconditioners and
reference trajectories, so the marginal request against a *warm*
session pays only its solve.  The pool keeps at most ``capacity``
sessions, keyed by the request's session key (problem / scale / nodes /
preconditioner — the same configuration split as
:attr:`repro.campaign.spec.RunSpec.config_key`), and evicts the least
recently used key when full.

Eviction is map-removal only: a thread still batching against an
evicted session keeps its (now private) reference and finishes
normally; the next request for that key builds a fresh session.  With
a shared ``cache_dir`` the fresh session warm-starts its reference
trajectory from the PR 3 disk spool instead of recomputing it, so an
eviction costs setup work, never correctness.

Each pooled entry carries its own lock and pending-request deque — the
batching substrate of :class:`repro.serve.service.SolverService` — and
the underlying :class:`SolverSession` is built lazily under that lock,
so concurrent first requests for one key build exactly one session.
"""

from __future__ import annotations

import collections
import threading
from typing import Callable

from ..api.session import SolverSession
from ..exceptions import ConfigurationError


class PooledSession:
    """One pool slot: a lazily-built session plus its batching state."""

    def __init__(self, key: str, factory: Callable[[], SolverSession]):
        self.key = key
        #: Serialises solves against this session (sessions are not
        #: thread-safe); whoever holds it is the batch leader.
        self.lock = threading.Lock()
        #: ``(ServeRequest, Future)`` pairs awaiting a batch leader.
        self.pending: collections.deque = collections.deque()
        self._factory = factory
        self._session: SolverSession | None = None

    @property
    def session(self) -> SolverSession:
        """The session, built on first use (call with :attr:`lock` held)."""
        if self._session is None:
            self._session = self._factory()
        return self._session

    @property
    def built(self) -> bool:
        return self._session is not None


class SessionPool:
    """Thread-safe bounded LRU map of session key → :class:`PooledSession`."""

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ConfigurationError(
                f"session pool capacity must be >= 1, got {capacity}"
            )
        self.capacity = int(capacity)
        self._mutex = threading.Lock()
        self._slots: "collections.OrderedDict[str, PooledSession]" = (
            collections.OrderedDict()
        )
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def acquire(
        self, key: str, factory: Callable[[], SolverSession]
    ) -> tuple[PooledSession, bool]:
        """The pooled session for ``key`` (created if absent) and hit/miss.

        A hit moves the key to most-recently-used; a miss inserts a
        fresh slot and evicts the LRU slot beyond capacity.  The actual
        :class:`SolverSession` build happens later, under the slot's
        own lock, so the pool mutex is never held across matrix setup.
        """
        with self._mutex:
            pooled = self._slots.get(key)
            if pooled is not None:
                self._slots.move_to_end(key)
                self.hits += 1
                return pooled, True
            pooled = PooledSession(key, factory)
            self._slots[key] = pooled
            self.misses += 1
            while len(self._slots) > self.capacity:
                self._slots.popitem(last=False)
                self.evictions += 1
            return pooled, False

    # ------------------------------------------------------------- inspection

    def keys(self) -> list[str]:
        with self._mutex:
            return list(self._slots)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict:
        with self._mutex:
            return {
                "capacity": self.capacity,
                "size": len(self._slots),
                "sessions": list(self._slots),
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "hit_rate": self.hit_rate,
            }
