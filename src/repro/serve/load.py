"""Concurrent load driver for a running solver service.

Used three ways: by ``repro serve --load`` (self-test a freshly
started server), by ``benchmarks/bench_serve.py`` (the latency /
throughput / pool-hit-rate gates) and by the serve tests.  It is a
plain ``urllib`` + thread-pool client on purpose: it exercises the
real HTTP path with zero extra dependencies, and a handful of threads
is plenty to saturate a pool of tiny-problem sessions.

Besides latency percentiles and request rate, :func:`run_load` checks
the serve contract itself: every 200-reply must verify against its
hash stamp, and all replies sharing a request fingerprint must carry
the same ``response_digest`` (the served answer is a pure function of
the request).
"""

from __future__ import annotations

import dataclasses
import json
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor
from time import perf_counter
from typing import Any, Mapping, Sequence

from .service import verify_response

DEFAULT_TIMEOUT = 120.0


def post_json(
    url: str, payload: Mapping[str, Any], timeout: float = DEFAULT_TIMEOUT
) -> tuple[int, dict]:
    """POST ``payload`` as JSON; returns ``(status, decoded body)``.

    Error statuses are returned, not raised — the service replies with
    a structured JSON error body that callers want to see.
    """
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as reply:
            return reply.status, json.loads(reply.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def get_json(url: str, timeout: float = DEFAULT_TIMEOUT) -> dict:
    with urllib.request.urlopen(url, timeout=timeout) as reply:
        return json.loads(reply.read())


def _percentile(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of an ascending-sorted sample."""
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, int(round(q * (len(sorted_values) - 1))))
    return sorted_values[index]


@dataclasses.dataclass
class LoadReport:
    """What one load run measured (seconds / requests-per-second)."""

    requests: int
    clients: int
    ok: int
    errors: int
    elapsed: float
    p50_latency: float
    p99_latency: float
    requests_per_second: float
    #: True iff every success verified against its stamp AND replies
    #: with equal request fingerprints carried equal response digests.
    digests_consistent: bool
    #: Pool counters scraped from ``GET /stats`` after the run.
    pool: dict

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)


def run_load(
    base_url: str,
    payloads: Sequence[Mapping[str, Any]],
    clients: int = 4,
    timeout: float = DEFAULT_TIMEOUT,
) -> LoadReport:
    """Fire ``payloads`` at ``POST {base_url}/solve`` from a thread pool."""
    latencies: list[float] = []
    ok = errors = 0
    stamps_valid = True
    by_fingerprint: dict[str, str] = {}

    def one(payload: Mapping[str, Any]) -> None:
        nonlocal ok, errors, stamps_valid
        started = perf_counter()
        status, body = post_json(f"{base_url}/solve", payload, timeout=timeout)
        latency = perf_counter() - started
        latencies.append(latency)
        if status == 200:
            ok += 1
            if not verify_response(body):
                stamps_valid = False
            fingerprint = body.get("request_fingerprint", "")
            digest = body.get("response_digest", "")
            previous = by_fingerprint.setdefault(fingerprint, digest)
            if previous != digest:
                stamps_valid = False
        else:
            errors += 1

    started = perf_counter()
    with ThreadPoolExecutor(max_workers=max(1, clients)) as executor:
        list(executor.map(one, payloads))
    elapsed = perf_counter() - started

    latencies.sort()
    try:
        pool = get_json(f"{base_url}/stats").get("pool", {})
    except (OSError, ValueError):
        pool = {}
    return LoadReport(
        requests=len(payloads),
        clients=clients,
        ok=ok,
        errors=errors,
        elapsed=elapsed,
        p50_latency=_percentile(latencies, 0.50),
        p99_latency=_percentile(latencies, 0.99),
        requests_per_second=len(payloads) / elapsed if elapsed > 0 else 0.0,
        digests_consistent=stamps_valid,
        pool=pool,
    )
