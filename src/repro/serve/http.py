"""Stdlib HTTP transport for :class:`~repro.serve.service.SolverService`.

A deliberately small surface on ``http.server`` (no web framework in
the toolchain):

* ``GET /health``  — liveness + engine/version tag;
* ``GET /stats``   — service and pool counters;
* ``POST /solve``  — one :class:`~repro.serve.service.ServeRequest`
  as JSON; replies with the stamped response payload.

Every reply — success or failure — is a JSON object.  Errors carry the
structured ``{"error": {"type", "message"}}`` envelope from
:func:`~repro.serve.service.error_response`, mapped onto status codes:
:class:`~repro.exceptions.ConfigurationError` (a bad request) is 400,
:class:`~repro.serve.service.ServiceClosed` is 503, anything else is a
500 with the exception type preserved for the client.

:class:`SolverServer` wraps a ``ThreadingHTTPServer`` (daemon request
threads; each POST runs in its own thread, which is exactly what the
service's batch-leader design expects) and shuts down gracefully:
``stop()`` closes the service first — draining in-flight solves — then
tears the listener down.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from ..exceptions import ConfigurationError
from .service import ServiceClosed, SolverService, error_response

#: Cap on accepted request bodies (a serve request is tiny; anything
#: bigger is a client bug, not a bigger problem).
MAX_BODY_BYTES = 1 << 20


class _Handler(BaseHTTPRequestHandler):
    """Routes requests to the server's :class:`SolverService`."""

    server_version = "repro-serve"
    protocol_version = "HTTP/1.1"

    @property
    def service(self) -> SolverService:
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if getattr(self.server, "verbose", False):
            super().log_message(format, *args)

    # ------------------------------------------------------------------ plumbing

    def _reply(self, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _reply_error(self, exc: BaseException) -> None:
        if isinstance(exc, ServiceClosed):
            status = 503
        elif isinstance(exc, ConfigurationError):
            status = 400
        else:
            status = 500
        self._reply(status, error_response(exc))

    # -------------------------------------------------------------------- routes

    def do_GET(self):  # noqa: N802 - stdlib dispatch name
        if self.path == "/health":
            self._reply(200, {
                "status": "draining" if self.service.closed else "ok",
                "engine": self.service.stats()["engine"],
            })
        elif self.path == "/stats":
            self._reply(200, self.service.stats())
        else:
            self._reply_error(ConfigurationError(f"no such route: GET {self.path}"))

    def do_POST(self):  # noqa: N802 - stdlib dispatch name
        if self.path != "/solve":
            self._reply_error(ConfigurationError(f"no such route: POST {self.path}"))
            return
        try:
            length = int(self.headers.get("Content-Length") or 0)
            if length <= 0 or length > MAX_BODY_BYTES:
                raise ConfigurationError(
                    f"request body must be 1..{MAX_BODY_BYTES} bytes, got {length}"
                )
            try:
                payload = json.loads(self.rfile.read(length))
            except ValueError as exc:
                raise ConfigurationError(f"request body is not JSON: {exc}") from exc
            self._reply(200, self.service.solve(payload))
        except Exception as exc:
            self._reply_error(exc)


class SolverServer:
    """A :class:`SolverService` behind a threading HTTP listener.

    ``port=0`` binds an ephemeral port (the default, right for tests
    and the load driver); read the resolved address from
    :attr:`address` / :attr:`url` after :meth:`start`.  Usable as a
    context manager::

        with SolverServer(pool_size=4) as server:
            post_json(server.url + "/solve", request.to_dict())
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        service: SolverService | None = None,
        verbose: bool = False,
        **service_kwargs,
    ):
        self.service = service if service is not None else SolverService(**service_kwargs)
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self._httpd.service = self.service  # type: ignore[attr-defined]
        self._httpd.verbose = verbose  # type: ignore[attr-defined]
        self._thread: threading.Thread | None = None

    @property
    def address(self) -> tuple[str, int]:
        host, port = self._httpd.server_address[:2]
        return str(host), int(port)

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "SolverServer":
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-serve",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self, drain: bool = True) -> None:
        """Drain the service, then tear down the listener.  Idempotent.

        Ordering matters: closing the service first lets in-flight
        solves finish (and late arrivals fail fast with 503) before the
        socket goes away.
        """
        self.service.close(drain=drain)
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None

    def __enter__(self) -> "SolverServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


def main(argv=None) -> int:
    """Console-script entry point (``repro-serve``) — same as ``repro serve``."""
    from ..cli import main as cli_main

    return cli_main(["serve", *(argv if argv is not None else [])])


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
