"""Network topologies for the virtual cluster.

The paper's experiments run on VSC3, a fat-tree machine, and justify the
use of *contiguous blocks of ranks* for multi-node failures by noting
that a switch fault takes out exactly such a block.  This module builds
the fat tree explicitly (with :mod:`networkx`), provides hop distances
for the latency model, and exposes the switch → ranks mapping used by
:mod:`repro.cluster.failures` to generate switch-fault failure sets.

Simpler topologies (ring, fully connected) are available for tests and
for isolating the influence of hop-dependent latency.
"""

from __future__ import annotations

import math
from functools import lru_cache

import networkx as nx

from ..exceptions import ConfigurationError


class Topology:
    """Abstract base class: hop distances between compute nodes."""

    def __init__(self, n_nodes: int):
        if n_nodes < 1:
            raise ConfigurationError(f"n_nodes must be >= 1, got {n_nodes}")
        self.n_nodes = int(n_nodes)

    def hops(self, src: int, dst: int) -> int:
        """Number of network hops between ranks ``src`` and ``dst``."""
        raise NotImplementedError

    def _check(self, rank: int) -> int:
        if not 0 <= rank < self.n_nodes:
            raise ConfigurationError(f"rank {rank} outside [0, {self.n_nodes})")
        return int(rank)


class FullyConnected(Topology):
    """Every pair of distinct nodes is one hop apart."""

    def hops(self, src: int, dst: int) -> int:
        src, dst = self._check(src), self._check(dst)
        return 0 if src == dst else 1


class Ring(Topology):
    """Nodes on a bidirectional ring; hop count is the ring distance."""

    def hops(self, src: int, dst: int) -> int:
        src, dst = self._check(src), self._check(dst)
        forward = (dst - src) % self.n_nodes
        return min(forward, self.n_nodes - forward)


class FatTree(Topology):
    """Two-level fat tree: leaf switches with ``radix`` nodes each.

    Ranks are assigned to leaf switches in contiguous blocks (rank
    ``r`` sits under leaf switch ``r // radix``), the standard layout
    that makes a switch fault kill a contiguous block of ranks —
    precisely the failure pattern the paper injects.

    Hop counts: same node 0; same leaf switch 2 (node→switch→node);
    different leaf switches 4 (node→leaf→spine→leaf→node).
    """

    def __init__(self, n_nodes: int, radix: int = 8):
        super().__init__(n_nodes)
        if radix < 1:
            raise ConfigurationError(f"radix must be >= 1, got {radix}")
        self.radix = int(radix)
        self.n_leaves = math.ceil(self.n_nodes / self.radix)

    def leaf_of(self, rank: int) -> int:
        """Index of the leaf switch hosting ``rank``."""
        return self._check(rank) // self.radix

    def ranks_under_leaf(self, leaf: int) -> tuple[int, ...]:
        """All ranks hosted by leaf switch ``leaf`` (a contiguous block)."""
        if not 0 <= leaf < self.n_leaves:
            raise ConfigurationError(f"leaf {leaf} outside [0, {self.n_leaves})")
        lo = leaf * self.radix
        hi = min(self.n_nodes, lo + self.radix)
        return tuple(range(lo, hi))

    def hops(self, src: int, dst: int) -> int:
        src, dst = self._check(src), self._check(dst)
        if src == dst:
            return 0
        if self.leaf_of(src) == self.leaf_of(dst):
            return 2
        return 4

    def graph(self) -> nx.Graph:
        """The explicit fat-tree graph (nodes, leaf switches, one spine).

        Node names: ``("node", rank)``, ``("leaf", i)``, ``("spine", 0)``.
        Provided for visualisation/analysis; hop counts use the closed
        form above (they agree with shortest paths on this graph).
        """
        g = nx.Graph()
        g.add_node(("spine", 0), kind="spine")
        for leaf in range(self.n_leaves):
            g.add_node(("leaf", leaf), kind="leaf")
            g.add_edge(("leaf", leaf), ("spine", 0))
            for rank in self.ranks_under_leaf(leaf):
                g.add_node(("node", rank), kind="node")
                g.add_edge(("node", rank), ("leaf", leaf))
        return g

    @lru_cache(maxsize=None)
    def _shortest_path_hops(self, src: int, dst: int) -> int:
        """Hop count via explicit shortest path (cross-check for tests)."""
        return nx.shortest_path_length(self.graph(), ("node", src), ("node", dst))


def make_topology(name: str, n_nodes: int, **kwargs: int) -> Topology:
    """Factory: ``"fat_tree"``, ``"ring"`` or ``"full"``."""
    name = name.lower().replace("-", "_")
    if name in ("fat_tree", "fattree"):
        return FatTree(n_nodes, **kwargs)
    if name == "ring":
        return Ring(n_nodes)
    if name in ("full", "fully_connected"):
        return FullyConnected(n_nodes)
    raise ConfigurationError(f"unknown topology {name!r}; expected fat_tree|ring|full")
