"""Failure scenarios: what fails, and when.

The paper's §5 protocol:

* one failure event per run;
* the event kills a **contiguous block of ranks** ("a switch fault
  affects a branch of the fat-tree and, consequently, a contiguous
  block of ranks"), starting at rank 0 ("start") or rank N/2
  ("center");
* as many nodes fail simultaneously as the solver tolerates (ψ = ϕ);
* the failure is placed **two iterations before the end of the
  checkpoint interval containing iteration C/2** — the worst case, in
  which almost all progress since the last checkpoint is lost
  (the placement helper lives in :mod:`repro.harness.runner`, since it
  needs the strategy's notion of a checkpoint).

This module provides the event/schedule types, the contiguous-block and
switch-fault generators, and — for the interval ablation — a Poisson
(exponential inter-arrival, i.e. MTBF-driven) schedule generator.
"""

from __future__ import annotations

import dataclasses
from typing import Iterator, Sequence

import numpy as np

from ..exceptions import ConfigurationError
from .topology import FatTree


@dataclasses.dataclass(frozen=True)
class FailureEvent:
    """``ranks`` fail simultaneously during PCG iteration ``iteration``.

    Following DESIGN.md §3.1, "during iteration j" means immediately
    after the SpMV/ASpMV of iteration j has completed.
    """

    iteration: int
    ranks: tuple[int, ...]

    #: Fault-taxonomy tag (see :mod:`repro.faults`): which injected
    #: fault class this event realises.  Subclasses override it.
    fault_kind = "node_failure"

    def __post_init__(self) -> None:
        if self.iteration < 0:
            raise ConfigurationError(f"failure iteration must be >= 0, got {self.iteration}")
        ranks = tuple(sorted({int(r) for r in self.ranks}))
        if not ranks:
            raise ConfigurationError("a failure event needs at least one rank")
        object.__setattr__(self, "ranks", ranks)

    @property
    def width(self) -> int:
        """Number of simultaneously failing nodes (ψ in the paper)."""
        return len(self.ranks)

    def to_dict(self) -> dict:
        """JSON shape (the historical ``{iteration, ranks}`` form)."""
        return {"iteration": self.iteration, "ranks": list(self.ranks)}


class FailureSchedule:
    """An ordered collection of failure events consumed by the solver."""

    def __init__(self, events: Sequence[FailureEvent] = ()):
        self._events = sorted(events, key=lambda e: e.iteration)
        self._cursor = 0

    @property
    def events(self) -> tuple[FailureEvent, ...]:
        return tuple(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[FailureEvent]:
        return iter(self._events)

    def reset(self) -> None:
        """Rewind the schedule (for re-running the same scenario)."""
        self._cursor = 0

    def pop_due(self, iteration: int) -> FailureEvent | None:
        """Return the next event scheduled for ``iteration``, if any.

        Events are consumed at most once.  Because recovery rolls the
        solver *back*, re-executed iterations do not re-trigger an
        already-consumed event (the paper simulates one event per run).
        """
        if self._cursor < len(self._events):
            event = self._events[self._cursor]
            if event.iteration == iteration:
                self._cursor += 1
                return event
        return None

    def pop_corruptions(self, iteration: int) -> tuple:
        """Silent-corruption events due at ``iteration`` (none here).

        The fail-stop schedule carries no corruption events; the
        generalised :class:`repro.faults.events.FaultSchedule` overrides
        this, so the solver engine can poll one uniform interface.
        """
        return ()

    def pending(self) -> int:
        """Number of not-yet-consumed events."""
        return len(self._events) - self._cursor


# ------------------------------------------------------------------ generators


def contiguous_ranks(start: int, width: int, n_nodes: int) -> tuple[int, ...]:
    """A contiguous block of ``width`` ranks starting at ``start`` (mod N)."""
    if width < 1:
        raise ConfigurationError(f"width must be >= 1, got {width}")
    if width >= n_nodes:
        raise ConfigurationError(
            f"cannot fail {width} of {n_nodes} nodes: at least one survivor is required"
        )
    return tuple(sorted((start + i) % n_nodes for i in range(width)))


def block_failure_ranks(location: str, width: int, n_nodes: int) -> tuple[int, ...]:
    """The paper's two failure locations: ``"start"`` (rank 0) and
    ``"center"`` (rank N/2)."""
    location = location.lower()
    if location == "start":
        return contiguous_ranks(0, width, n_nodes)
    if location == "center":
        return contiguous_ranks(n_nodes // 2, width, n_nodes)
    raise ConfigurationError(f"unknown failure location {location!r}; expected start|center")


def switch_fault_ranks(topology: FatTree, leaf: int, width: int | None = None) -> tuple[int, ...]:
    """Ranks killed by a fault of leaf switch ``leaf`` of a fat tree.

    If ``width`` is given, only the first ``width`` ranks under the
    switch fail (e.g. a partial branch outage); otherwise the whole
    block goes down.  This realises the paper's justification for
    contiguous-block failures.
    """
    ranks = topology.ranks_under_leaf(leaf)
    if width is not None:
        if not 1 <= width <= len(ranks):
            raise ConfigurationError(
                f"width {width} outside [1, {len(ranks)}] for leaf {leaf}"
            )
        ranks = ranks[:width]
    if len(ranks) >= topology.n_nodes:
        raise ConfigurationError("switch fault would kill every node")
    return tuple(ranks)


def poisson_schedule(
    mtbf_iterations: float,
    horizon: int,
    width: int,
    n_nodes: int,
    seed: int | None = 0,
    min_gap: int = 1,
) -> FailureSchedule:
    """Random failure schedule with exponential inter-arrival times.

    ``mtbf_iterations`` is the mean number of iterations between
    failure events (the iteration-domain analogue of the MTBF used by
    Young's/Daly's formulas).  Each event kills a contiguous block of
    ``width`` ranks at a random start position.  Used by the
    checkpoint-interval ablation (A2 in DESIGN.md).
    """
    if mtbf_iterations <= 0:
        raise ConfigurationError("mtbf_iterations must be > 0")
    if horizon < 1:
        raise ConfigurationError("horizon must be >= 1")
    rng = np.random.default_rng(seed)
    events: list[FailureEvent] = []
    t = 0.0
    last = -min_gap
    while True:
        t += rng.exponential(mtbf_iterations)
        iteration = int(t)
        if iteration >= horizon:
            break
        if iteration - last < min_gap:
            continue
        start = int(rng.integers(0, n_nodes))
        events.append(FailureEvent(iteration, contiguous_ranks(start, width, n_nodes)))
        last = iteration
    return FailureSchedule(events)
