"""Per-node communication/computation accounting.

Beyond the simulated clock, the benchmarks report *why* a strategy is
slow: bytes moved by SpMV halos vs. ASpMV extras vs. checkpoints,
message counts, flops, and redundant-storage memory footprints.  The
:class:`ClusterStats` object accumulates these per node and per named
channel so ablation benches (e.g. A4 in DESIGN.md) can slice them.
"""

from __future__ import annotations

import dataclasses
from collections import defaultdict

import numpy as np


@dataclasses.dataclass
class ChannelTotals:
    """Aggregate traffic for one named channel (e.g. ``"spmv_halo"``)."""

    messages: int = 0
    bytes: int = 0

    def add(self, nbytes: int, messages: int = 1) -> None:
        self.messages += int(messages)
        self.bytes += int(nbytes)


class ClusterStats:
    """Accumulates per-node and per-channel statistics.

    Channels used by the library:

    ``spmv_halo``
        Vector entries exchanged for the plain sparse matrix-vector
        product (the communication a non-resilient solver pays anyway).
    ``aspmv_extra``
        Additional entries sent by the augmented SpMV to guarantee ϕ
        redundant copies (ESR/ESRP overhead traffic).
    ``checkpoint``
        Buddy-checkpoint traffic (IMCR overhead traffic).
    ``reduction``
        Allreduce/broadcast traffic for scalars.
    ``recovery``
        Data gathered/retrieved while reconstructing after a failure.
    """

    def __init__(self, n_nodes: int):
        self.n_nodes = int(n_nodes)
        #: Per-rank totals are numpy arrays so batched charges and
        #: compiled exchanges can bump whole rank sets in one fused
        #: operation (scalar indexing semantics are unchanged; integer
        #: counters use exact int64 arithmetic).
        self.flops = np.zeros(self.n_nodes, dtype=np.float64)
        self.bytes_sent = np.zeros(self.n_nodes, dtype=np.int64)
        self.bytes_received = np.zeros(self.n_nodes, dtype=np.int64)
        self.messages_sent = np.zeros(self.n_nodes, dtype=np.int64)
        self.local_copy_bytes = np.zeros(self.n_nodes, dtype=np.int64)
        self.redundancy_peak_bytes = np.zeros(self.n_nodes, dtype=np.int64)
        self.channels: dict[str, ChannelTotals] = defaultdict(ChannelTotals)
        #: Fault-subsystem counters (injections, detections, rollbacks)
        #: keyed by kind — see :mod:`repro.faults` for the taxonomy.
        self.faults: dict[str, int] = {}

    # -- recording -----------------------------------------------------------

    def record_compute(self, rank: int, flops: float) -> None:
        self.flops[rank] += float(flops)

    def record_message(self, src: int, dst: int, nbytes: int, channel: str) -> None:
        self.bytes_sent[src] += int(nbytes)
        self.bytes_received[dst] += int(nbytes)
        self.messages_sent[src] += 1
        self.channels[channel].add(nbytes)

    def record_payload(self, src: int, dst: int, nbytes: int, channel: str) -> None:
        """Extra payload merged into an existing message (no new message)."""
        self.bytes_sent[src] += int(nbytes)
        self.bytes_received[dst] += int(nbytes)
        self.channels[channel].add(nbytes, messages=0)

    def record_collective(self, nbytes: int, channel: str = "reduction") -> None:
        self.bytes_sent += int(nbytes)
        self.bytes_received += int(nbytes)
        self.channels[channel].add(nbytes * self.n_nodes, messages=self.n_nodes)

    def record_local_copy(self, rank: int, nbytes: int) -> None:
        self.local_copy_bytes[rank] += int(nbytes)

    def record_fault(self, kind: str, count: int = 1) -> None:
        """Count an injected fault / detection / rollback of ``kind``."""
        self.faults[kind] = self.faults.get(kind, 0) + int(count)

    def record_redundancy_footprint(self, rank: int, nbytes: int) -> None:
        """Track the peak bytes of redundant data resident on a node."""
        if nbytes > self.redundancy_peak_bytes[rank]:
            self.redundancy_peak_bytes[rank] = int(nbytes)

    # -- queries ---------------------------------------------------------------

    def total_bytes(self, channel: str | None = None) -> int:
        if channel is None:
            return sum(self.bytes_sent)
        return self.channels[channel].bytes

    def total_messages(self, channel: str | None = None) -> int:
        if channel is None:
            return sum(self.messages_sent)
        return self.channels[channel].messages

    def total_flops(self) -> float:
        return sum(self.flops)

    def summary(self) -> dict[str, float]:
        """Flat dictionary of headline totals, for reports and tests."""
        out: dict[str, float] = {
            "total_flops": self.total_flops(),
            "total_bytes": float(self.total_bytes()),
            "total_messages": float(self.total_messages()),
            "peak_redundancy_bytes": float(max(self.redundancy_peak_bytes, default=0)),
        }
        for name, totals in sorted(self.channels.items()):
            out[f"bytes[{name}]"] = float(totals.bytes)
            out[f"messages[{name}]"] = float(totals.messages)
        # Fault counters appear only when faults were injected, so
        # fail-stop-free runs keep their historical stats shape.
        for kind, count in sorted(self.faults.items()):
            out[f"faults[{kind}]"] = float(count)
        return out
