"""Simulated distributed-memory cluster substrate (S1 in DESIGN.md).

This package stands in for the MPI + unreliable-hardware layer of the
paper's C framework: per-node memories that can be wiped by failures,
point-to-point and collective communication with an α/β/γ cost model,
fat-tree topology, per-channel traffic accounting, and failure-scenario
generators.
"""

from .communicator import VirtualCluster
from .cost_model import BYTES_PER_FLOAT, CostModel, VSC3_LIKE, zero_cost_model
from .failures import (
    FailureEvent,
    FailureSchedule,
    block_failure_ranks,
    contiguous_ranks,
    poisson_schedule,
    switch_fault_ranks,
)
from .node import NodeState
from .statistics import ChannelTotals, ClusterStats
from .topology import FatTree, FullyConnected, Ring, Topology, make_topology

__all__ = [
    "BYTES_PER_FLOAT",
    "ChannelTotals",
    "ClusterStats",
    "CostModel",
    "FailureEvent",
    "FailureSchedule",
    "FatTree",
    "FullyConnected",
    "NodeState",
    "Ring",
    "Topology",
    "VSC3_LIKE",
    "VirtualCluster",
    "block_failure_ranks",
    "contiguous_ranks",
    "make_topology",
    "poisson_schedule",
    "switch_fault_ranks",
    "zero_cost_model",
]
