"""Per-node state of the virtual cluster.

A :class:`NodeState` owns everything that physically resides in one
node's memory and is therefore lost when the node fails:

* named local vector blocks (``store``) — e.g. the starred copies
  ``x*, r*, z*, p*`` of ESRP, or a node's own local checkpoint in IMCR;
* replicated scalars (``scalars``) — e.g. ``β*`` and ``β**``;
* the redundancy store — pieces of *other* nodes' search-direction
  entries received during augmented SpMVs, keyed by iteration and
  owning rank (the physical realisation of the paper's "redundant
  copies" p′);
* buddy checkpoints received from other nodes (IMCR).

Failure semantics follow the paper §4: "the nodes set to fail zero-out
all their vector entries, as well as the scalars they contain"; a
replacement node "starts without knowledge of the state of the node it
is replacing".
"""

from __future__ import annotations

from typing import Any

import numpy as np


class NodeState:
    """Dynamic memory of one virtual cluster node."""

    def __init__(self, rank: int):
        self.rank = int(rank)
        self.alive = True
        #: How many times this rank has been replaced by a spare node.
        self.incarnation = 0
        #: Named local vector blocks (starred copies, own checkpoints, ...).
        self.store: dict[str, np.ndarray] = {}
        #: Replicated scalar copies (β*, β**, checkpointed rz, ...).
        self.scalars: dict[str, float] = {}
        #: iteration -> owner rank -> (global indices, values) received via ASpMV.
        self.redundancy: dict[int, dict[int, tuple[np.ndarray, np.ndarray]]] = {}
        #: owner rank -> {name: block copy, "_scalars": {...}} received via IMCR.
        self.buddy_checkpoints: dict[int, dict[str, Any]] = {}

    # -- redundancy store ------------------------------------------------------

    def stash_redundant(
        self, iteration: int, owner: int, indices: np.ndarray, values: np.ndarray
    ) -> None:
        """Store (part of) owner's search-direction entries for ``iteration``.

        Multiple stashes for the same (iteration, owner) — the natural
        halo part and the ASpMV extras — are concatenated.
        """
        per_owner = self.redundancy.setdefault(int(iteration), {})
        if owner in per_owner:
            old_idx, old_val = per_owner[owner]
            indices = np.concatenate([old_idx, np.asarray(indices, dtype=np.int64)])
            values = np.concatenate([old_val, np.asarray(values, dtype=np.float64)])
        per_owner[int(owner)] = (
            np.asarray(indices, dtype=np.int64),
            np.asarray(values, dtype=np.float64),
        )

    def drop_redundant(self, iteration: int) -> None:
        """Release the redundant copy for ``iteration`` (queue eviction)."""
        self.redundancy.pop(int(iteration), None)

    def redundant_for(self, iteration: int, owner: int) -> tuple[np.ndarray, np.ndarray] | None:
        """Entries of ``owner``'s vector held here for ``iteration``, if any."""
        per_owner = self.redundancy.get(int(iteration))
        if per_owner is None:
            return None
        return per_owner.get(int(owner))

    def redundancy_bytes(self) -> int:
        """Total bytes of redundant data currently resident on this node."""
        total = 0
        for per_owner in self.redundancy.values():
            for indices, values in per_owner.values():
                total += indices.nbytes + values.nbytes
        for payload in self.buddy_checkpoints.values():
            for key, value in payload.items():
                if isinstance(value, np.ndarray):
                    total += value.nbytes
        for block in self.store.values():
            total += block.nbytes
        return total

    # -- failure semantics -------------------------------------------------------

    def wipe(self) -> None:
        """Lose all dynamic data (node failure)."""
        self.alive = False
        self.store.clear()
        self.scalars.clear()
        self.redundancy.clear()
        self.buddy_checkpoints.clear()

    def revive(self) -> None:
        """Bring a spare node up in place of this rank (empty memory)."""
        self.alive = True
        self.incarnation += 1
