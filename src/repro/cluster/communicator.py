"""The virtual cluster: N simulated nodes, clocks, accounting, failures.

:class:`VirtualCluster` plays the role MPI plays in the paper's C
framework.  It does **not** move data itself — the distribution layer
(:mod:`repro.distribution`) performs the actual numpy transfers — but
every transfer must be *declared* here so that:

* per-node simulated clocks advance according to the
  :class:`~repro.cluster.cost_model.CostModel` (this yields the
  "runtime" the benchmarks report),
* per-channel traffic statistics accumulate
  (:class:`~repro.cluster.statistics.ClusterStats`),
* failed nodes cannot be used (``DeadNodeError``), matching the MPI
  reality that a message to a dead rank never completes.

Clock semantics (a postal model):

* ``compute(rank, flops)`` advances only that node's clock;
* ``send(src, dst, nbytes)`` makes the sender busy for the message time
  and the receiver's clock at least the sender's finish time (receive
  completion);
* collectives synchronise all alive clocks to the common finish time —
  PCG's dot products are allreduces and act as barriers, which is what
  makes "max over nodes" the right makespan notion here.
"""

from __future__ import annotations

import weakref
from typing import TYPE_CHECKING, Iterable

import numpy as np

from ..exceptions import ClusterError, ConfigurationError, DeadNodeError
from .cost_model import CostModel
from .node import NodeState
from .statistics import ClusterStats
from .topology import FatTree, Topology

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..distribution.vector import DistributedVector
    from ..kernels.base import KernelBackend


class VirtualCluster:
    """A simulated distributed-memory machine with unreliable nodes."""

    def __init__(
        self,
        n_nodes: int,
        cost_model: CostModel | None = None,
        topology: Topology | None = None,
        seed: int | None = 0,
        kernels: "str | KernelBackend | None" = None,
    ):
        if n_nodes < 1:
            raise ConfigurationError(f"n_nodes must be >= 1, got {n_nodes}")
        self.n_nodes = int(n_nodes)
        self.cost_model = cost_model if cost_model is not None else CostModel()
        self.topology = topology if topology is not None else FatTree(self.n_nodes)
        if self.topology.n_nodes != self.n_nodes:
            raise ConfigurationError(
                f"topology is sized for {self.topology.n_nodes} nodes, cluster has {self.n_nodes}"
            )
        self.rng = np.random.default_rng(seed)
        self.nodes = [NodeState(rank) for rank in range(self.n_nodes)]
        self.clocks = np.zeros(self.n_nodes, dtype=np.float64)
        self.stats = ClusterStats(self.n_nodes)
        #: Vectors whose blocks must be wiped when a node fails.
        self._registered_vectors: list[weakref.ReferenceType] = []
        #: Number of currently failed nodes (fast-path guard).
        self._dead_count = 0
        #: Compiled (ranks, amounts, seconds) per charge profile.
        self._compiled_charges: dict[tuple, tuple] = {}
        self._compiled_memcpys: dict[tuple, tuple] = {}
        #: Compute-kernel backend spec; resolved lazily on first access
        #: (``None`` means the library default, currently "vectorized").
        self._kernels_spec: "str | KernelBackend | None" = kernels
        self._kernels: "KernelBackend | None" = None

    # ------------------------------------------------------------------ basics

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        dead = [n.rank for n in self.nodes if not n.alive]
        return f"VirtualCluster(n_nodes={self.n_nodes}, time={self.elapsed():.3e}s, dead={dead})"

    def node(self, rank: int) -> NodeState:
        """The :class:`NodeState` for ``rank`` (alive or not)."""
        if not 0 <= rank < self.n_nodes:
            raise ConfigurationError(f"rank {rank} outside [0, {self.n_nodes})")
        return self.nodes[rank]

    def require_alive(self, rank: int) -> NodeState:
        node = self.node(rank)
        if not node.alive:
            raise DeadNodeError(f"rank {rank} is failed")
        return node

    def alive_ranks(self) -> tuple[int, ...]:
        return tuple(n.rank for n in self.nodes if n.alive)

    def dead_ranks(self) -> tuple[int, ...]:
        return tuple(n.rank for n in self.nodes if not n.alive)

    def elapsed(self) -> float:
        """Simulated makespan so far (max over node clocks)."""
        return float(self.clocks.max())

    @property
    def kernels(self) -> "KernelBackend":
        """The compute-kernel backend executing this cluster's numerics.

        Resolved lazily from the spec given at construction (a name in
        the :data:`~repro.api.registry.KERNELS` registry or a backend
        instance); assignable at any time — switching backends between
        solves is safe because per-plan index caches live on the plan
        objects, not on the backend.
        """
        if self._kernels is None:
            from ..kernels import resolve_backend

            self._kernels = resolve_backend(self._kernels_spec)
        return self._kernels

    @kernels.setter
    def kernels(self, backend: "str | KernelBackend | None") -> None:
        from ..kernels import resolve_backend

        self._kernels = resolve_backend(backend)
        self._kernels_spec = self._kernels

    def reset_stats(self) -> None:
        """Zero the traffic statistics (clocks are left untouched)."""
        self.stats = ClusterStats(self.n_nodes)

    def reset(self, seed: int | None = None) -> None:
        """Return the cluster to its pristine t = 0 state.

        Fresh nodes (all alive, empty memory), zeroed clocks, fresh
        statistics, no registered vectors — indistinguishable from a
        newly constructed cluster, so a :class:`~repro.api.SolverSession`
        can reuse one cluster (and everything bound to it, like the
        distributed matrix) across many independent solves.  ``seed``
        restarts the noise RNG; ``None`` keeps the current stream.
        """
        if seed is not None:
            self.rng = np.random.default_rng(seed)
        self.nodes = [NodeState(rank) for rank in range(self.n_nodes)]
        self.clocks = np.zeros(self.n_nodes, dtype=np.float64)
        self.stats = ClusterStats(self.n_nodes)
        self._registered_vectors = []
        self._dead_count = 0

    # --------------------------------------------------------------- accounting

    def _charge(self, seconds: float) -> float:
        return self.cost_model.perturb(seconds, self.rng)

    def compute(self, rank: int, flops: float) -> None:
        """Charge ``flops`` of computation to ``rank``'s clock."""
        self.require_alive(rank)
        self.clocks[rank] += self._charge(self.cost_model.compute_time(flops))
        self.stats.record_compute(rank, flops)

    def memcpy(self, rank: int, nbytes: int) -> None:
        """Charge a local memory copy to ``rank``'s clock."""
        self.require_alive(rank)
        self.clocks[rank] += self._charge(self.cost_model.memcpy_time(nbytes))
        self.stats.record_local_copy(rank, nbytes)

    def charge(
        self,
        compute: Iterable[tuple[int, float]] = (),
        memcpy: Iterable[tuple[int, float]] = (),
    ) -> None:
        """Charge batches of per-rank costs declared analytically.

        ``compute`` is a sequence of ``(rank, flops)`` pairs, ``memcpy``
        a sequence of ``(rank, nbytes)`` pairs (all amounts >= 0).  The
        effect — clocks, statistics, liveness validation and cost-noise
        RNG draws — is exactly that of issuing the individual
        :meth:`compute` / :meth:`memcpy` calls in order (all compute
        items first, then all memcpy items); the loop is merely inlined
        so fused kernels can declare a whole operation's bill,
        precomputed from the communication plan, in one call instead of
        incurring it inside a per-rank numeric loop (see
        :mod:`repro.kernels`).
        """
        cost_model = self.cost_model
        gamma = cost_model.gamma
        mu = cost_model.mu
        noisy = cost_model.noise != 0.0
        clocks = self.clocks
        nodes = self.nodes
        stats = self.stats
        flops_totals = stats.flops
        copy_totals = stats.local_copy_bytes
        for rank, flops in compute:
            if not nodes[rank].alive:
                raise DeadNodeError(f"rank {rank} is failed")
            if flops < 0:
                raise ConfigurationError(f"flops must be >= 0, got {flops}")
            seconds = flops * gamma
            if noisy:
                seconds = cost_model.perturb(seconds, self.rng)
            clocks[rank] += seconds
            flops_totals[rank] += float(flops)
        for rank, nbytes in memcpy:
            if not nodes[rank].alive:
                raise DeadNodeError(f"rank {rank} is failed")
            if nbytes < 0:
                raise ConfigurationError(f"nbytes must be >= 0, got {nbytes}")
            seconds = nbytes * mu
            if noisy:
                seconds = cost_model.perturb(seconds, self.rng)
            clocks[rank] += seconds
            copy_totals[rank] += int(nbytes)

    def send(self, src: int, dst: int, nbytes: int, channel: str) -> None:
        """Charge one point-to-point message ``src -> dst``."""
        self.require_alive(src)
        self.require_alive(dst)
        if src == dst:
            raise ClusterError(f"rank {src} cannot send to itself")
        hops = self.topology.hops(src, dst)
        cost = self._charge(self.cost_model.message_time(nbytes, hops))
        self.clocks[src] += cost
        self.clocks[dst] = max(self.clocks[dst], self.clocks[src])
        self.stats.record_message(src, dst, nbytes, channel)

    def piggyback(self, src: int, dst: int, nbytes: int, channel: str) -> None:
        """Charge extra payload merged into an existing ``src -> dst`` message.

        No start-up latency — models ASpMV extras riding on a natural
        halo message ("ESR mainly adds on to existing communication").
        """
        self.require_alive(src)
        self.require_alive(dst)
        cost = self._charge(self.cost_model.payload_time(nbytes))
        self.clocks[src] += cost
        self.clocks[dst] = max(self.clocks[dst], self.clocks[src])
        self.stats.record_payload(src, dst, nbytes, channel)

    def exchange(
        self,
        messages: Iterable[tuple[int, int, int, str, bool]],
        piggyback: Iterable[tuple[int, int, int, str]] = (),
    ) -> None:
        """Charge one *concurrent* communication phase.

        ``messages``: ``(src, dst, nbytes, channel, ...)`` point-to-point
        messages that all start simultaneously (an SpMV halo exchange, a
        checkpoint round, a recovery gather).  ``piggyback``: extra
        payload merged into one of those messages (no start-up latency).

        Unlike chained :meth:`send` calls — where a receive pushes the
        receiver's clock and its *own* subsequent sends start later,
        serialising the whole phase across ranks — this models what MPI
        actually does: every sender injects all its messages starting
        from its clock at phase begin; a receiver resumes at
        ``max(own finish, latest arrival)``.
        """
        send_time: dict[int, float] = {}
        start: dict[int, float] = {}
        arrivals: dict[int, list[tuple[int, float]]] = {}

        def add(src: int, dst: int, nbytes: int, channel: str, merged: bool) -> None:
            self.require_alive(src)
            self.require_alive(dst)
            if src == dst:
                raise ClusterError(f"rank {src} cannot send to itself")
            if merged:
                cost = self.cost_model.payload_time(nbytes)
                self.stats.record_payload(src, dst, nbytes, channel)
            else:
                hops = self.topology.hops(src, dst)
                cost = self.cost_model.message_time(nbytes, hops)
                self.stats.record_message(src, dst, nbytes, channel)
            cost = self._charge(cost)
            start.setdefault(src, float(self.clocks[src]))
            send_time[src] = send_time.get(src, 0.0) + cost
            arrivals.setdefault(dst, []).append((src, cost))

        for src, dst, nbytes, channel, *rest in messages:
            add(src, dst, nbytes, channel, bool(rest[0]) if rest else False)
        for src, dst, nbytes, channel in piggyback:
            add(src, dst, nbytes, channel, True)

        # Senders finish all their injections.
        for src, total in send_time.items():
            self.clocks[src] = start[src] + total
        # Receivers wait for the latest arrival (conservatively, a
        # sender's messages all complete when its injection finishes).
        for dst, sources in arrivals.items():
            latest = max(start[src] + send_time[src] for src, _cost in sources)
            self.clocks[dst] = max(self.clocks[dst], latest)

    def charge_compute(self, profile: tuple[tuple[int, float], ...]) -> None:
        """Apply a fixed compute bill (``(rank, flops)`` pairs, e.g. a
        :meth:`~repro.distribution.partition.BlockRowPartition.charge_profile`).

        Equivalent to ``charge(compute=profile)``; repeated bills are
        compiled once per (profile, cost model) into fused numpy
        updates.  Falls back to the per-item loop under cost noise (RNG
        draw order) or with failed nodes present (liveness errors).
        """
        if self.cost_model.noise != 0.0 or self._dead_count:
            self.charge(compute=profile)
            return
        entry = self._compiled_charges.get(profile)
        if entry is None:
            ranks = np.array([rank for rank, _ in profile], dtype=np.intp)
            amounts = np.array([amount for _, amount in profile], dtype=np.float64)
            seconds = np.array(
                [amount * self.cost_model.gamma for _, amount in profile],
                dtype=np.float64,
            )
            entry = (ranks, amounts, seconds)
            self._compiled_charges[profile] = entry
        ranks, amounts, seconds = entry
        self.clocks[ranks] += seconds
        self.stats.flops[ranks] += amounts

    def charge_memcpy(self, profile: tuple[tuple[int, float], ...]) -> None:
        """Apply a fixed memcpy bill (``(rank, nbytes)`` pairs).

        The memcpy analogue of :meth:`charge_compute`.
        """
        if self.cost_model.noise != 0.0 or self._dead_count:
            self.charge(memcpy=profile)
            return
        entry = self._compiled_memcpys.get(profile)
        if entry is None:
            ranks = np.array([rank for rank, _ in profile], dtype=np.intp)
            amounts = np.array([int(amount) for _, amount in profile], dtype=np.int64)
            seconds = np.array(
                [amount * self.cost_model.mu for _, amount in profile],
                dtype=np.float64,
            )
            entry = (ranks, amounts, seconds)
            self._compiled_memcpys[profile] = entry
        ranks, amounts, seconds = entry
        self.clocks[ranks] += seconds
        self.stats.local_copy_bytes[ranks] += amounts

    def compile_exchange(
        self,
        messages: Iterable[tuple[int, int, int, str, bool]],
        piggyback: Iterable[tuple[int, int, int, str]] = (),
    ) -> "CompiledExchange":
        """Precompute the full effect of one fixed :meth:`exchange` phase.

        For message lists that never change — an SpMV halo exchange, the
        ASpMV redundancy phase — the per-message accounting (hop
        lookups, cost-model evaluation, statistics bumps) is identical
        every iteration.  This compiles it once into per-rank clock and
        statistics deltas; :meth:`exchange_compiled` then applies them
        in O(ranks) instead of O(messages).  Costs are accumulated at
        compile time in exactly the per-message order of
        :meth:`exchange`, so the resulting clocks are bit-identical.

        The compiled form is only valid for this cluster's cost model
        and topology (both immutable for a cluster's lifetime).
        """
        return CompiledExchange(self, tuple(messages), tuple(piggyback))

    def exchange_compiled(self, compiled: "CompiledExchange") -> None:
        """Apply a :meth:`compile_exchange` phase.

        Equivalent — clocks, statistics, liveness errors, RNG draws —
        to ``exchange(compiled.messages, compiled.piggyback)``.  Falls
        back to the generic path when cost noise is enabled (every
        message must draw from the RNG in order) or any involved node
        is dead (to reproduce the partial-accounting-then-raise
        semantics of the per-message loop exactly).
        """
        sends = compiled.sends
        if not sends:
            return
        if self.cost_model.noise != 0.0 or self._dead_count:
            self.exchange(compiled.messages, piggyback=compiled.piggyback)
            return
        clocks = self.clocks
        finishes = {}
        for src, total in sends:
            finish = clocks[src] + total
            clocks[src] = finish
            finishes[src] = finish
        for dst, srcs in compiled.arrivals:
            latest = finishes[srcs[0]]
            for src in srcs[1:]:
                candidate = finishes[src]
                if candidate > latest:
                    latest = candidate
            if latest > clocks[dst]:
                clocks[dst] = latest
        stats = self.stats
        ranks = compiled.ranks
        stats.bytes_sent[ranks] += compiled.sent_deltas
        stats.bytes_received[ranks] += compiled.received_deltas
        stats.messages_sent[ranks] += compiled.message_deltas
        for channel, (total_bytes, count) in compiled.channel_deltas:
            totals = stats.channels[channel]
            totals.bytes += total_bytes
            totals.messages += count

    def allreduce(self, nbytes: int, ranks: Iterable[int] | None = None) -> None:
        """Charge an allreduce across ``ranks`` (default: all alive nodes)."""
        if ranks is None and not self._dead_count:
            # Fast path: every node participates and none can raise.
            if self.n_nodes <= 1:
                return
            cost = self._charge(self.cost_model.allreduce_time(nbytes, self.n_nodes))
            clocks = self.clocks
            clocks[:] = clocks.max() + cost
            self.stats.record_collective(nbytes)
            return
        group = tuple(ranks) if ranks is not None else self.alive_ranks()
        for rank in group:
            self.require_alive(rank)
        if len(group) <= 1:
            return
        cost = self._charge(self.cost_model.allreduce_time(nbytes, len(group)))
        finish = max(self.clocks[list(group)]) + cost
        self.clocks[list(group)] = finish
        self.stats.record_collective(nbytes)

    def broadcast(self, nbytes: int, ranks: Iterable[int] | None = None) -> None:
        """Charge a broadcast across ``ranks`` (default: all alive nodes)."""
        group = tuple(ranks) if ranks is not None else self.alive_ranks()
        for rank in group:
            self.require_alive(rank)
        if len(group) <= 1:
            return
        cost = self._charge(self.cost_model.broadcast_time(nbytes, len(group)))
        finish = max(self.clocks[list(group)]) + cost
        self.clocks[list(group)] = finish
        self.stats.record_collective(nbytes)

    def barrier(self, ranks: Iterable[int] | None = None) -> None:
        """Synchronise clocks of ``ranks`` (default: all alive nodes)."""
        group = list(ranks) if ranks is not None else list(self.alive_ranks())
        if not group:
            return
        finish = max(self.clocks[group])
        self.clocks[group] = finish

    def advance(self, rank: int, seconds: float) -> None:
        """Advance one node's clock by a raw duration (already costed)."""
        self.require_alive(rank)
        if seconds < 0:
            raise ConfigurationError("cannot advance a clock backwards")
        self.clocks[rank] += seconds

    def snapshot_redundancy_footprint(self) -> None:
        """Record the current per-node redundant-memory footprint."""
        for node in self.nodes:
            if node.alive:
                self.stats.record_redundancy_footprint(node.rank, node.redundancy_bytes())

    # ------------------------------------------------------------------ faults

    def record_fault(self, kind: str, count: int = 1) -> None:
        """Count a fault-subsystem occurrence (injection/detection/rollback).

        Pure accounting: no clock movement, no liveness change.  The
        counters surface as ``faults[<kind>]`` keys in
        :meth:`ClusterStats.summary` (see :mod:`repro.faults`).
        """
        self.stats.record_fault(kind, count)

    def corrupt(self, rank: int, kind: str = "sdc") -> NodeState:
        """Declare a silent corruption strike on ``rank``.

        The environment flips bits; the node neither notices nor pays
        simulated time — the caller mutates the affected block in place
        (``SDCEvent.apply``).  Validates liveness (dead nodes hold no
        data to corrupt) and bumps the ``faults[<kind>]`` counter.
        """
        node = self.require_alive(rank)
        self.stats.record_fault(kind)
        return node

    # ------------------------------------------------------------------ failures

    def register_vector(self, vector: "DistributedVector") -> None:
        """Register a distributed vector whose blocks die with their node."""
        self._registered_vectors.append(weakref.ref(vector))

    def _live_vectors(self) -> list["DistributedVector"]:
        alive: list["DistributedVector"] = []
        kept: list[weakref.ReferenceType] = []
        for ref in self._registered_vectors:
            vec = ref()
            if vec is not None:
                alive.append(vec)
                kept.append(ref)
        self._registered_vectors = kept
        return alive

    def fail(self, ranks: Iterable[int]) -> tuple[int, ...]:
        """Simulate the simultaneous failure of ``ranks``.

        All dynamic data on those nodes is lost: their named stores,
        scalars, redundancy stashes, buddy checkpoints, and their blocks
        of every registered distributed vector (zeroed, as in the
        paper's framework).
        """
        failed = tuple(sorted({int(r) for r in ranks}))
        if not failed:
            raise ConfigurationError("fail() needs at least one rank")
        for rank in failed:
            self.require_alive(rank)
        if len(failed) >= self.n_nodes:
            raise ClusterError("cannot fail every node in the cluster")
        for rank in failed:
            self.nodes[rank].wipe()
        self._dead_count += len(failed)
        for vector in self._live_vectors():
            vector.wipe_blocks(failed)
        return failed

    def replace(self, ranks: Iterable[int]) -> None:
        """Bring spare nodes up in place of the failed ``ranks``.

        The replacement starts with empty memory and its clock set to
        the current makespan (it joins when recovery begins; the paper
        assumes spare nodes are already allocated and idle).
        """
        now = self.elapsed()
        for rank in ranks:
            node = self.node(rank)
            if node.alive:
                raise ClusterError(f"rank {rank} is alive; cannot replace it")
            node.revive()
            self._dead_count -= 1
            self.clocks[rank] = now


class CompiledExchange:
    """Precompiled effect of one fixed concurrent communication phase.

    Built by :meth:`VirtualCluster.compile_exchange` for message lists
    that repeat every iteration.  Holds the original message tuples
    (for the noise/failure fallback) plus the precomputed per-rank
    clock and statistics deltas:

    * ``sends`` — ``(src, total_cost)`` with the per-source message
      costs accumulated in the exact per-message order of
      :meth:`VirtualCluster.exchange` (floating-point order matters);
    * ``arrivals`` — ``(dst, (src, ...))`` receiver dependencies;
    * ``ranks`` / ``sent_deltas`` / ``received_deltas`` /
      ``message_deltas`` — aligned arrays of exact integer statistics
      bumps for the involved ranks;
    * ``channel_deltas`` — ``(channel, (bytes, messages))`` bumps.
    """

    __slots__ = (
        "messages",
        "piggyback",
        "sends",
        "arrivals",
        "channel_deltas",
        "ranks",
        "sent_deltas",
        "received_deltas",
        "message_deltas",
    )

    def __init__(
        self,
        cluster: VirtualCluster,
        messages: tuple[tuple[int, int, int, str, bool], ...],
        piggyback: tuple[tuple[int, int, int, str], ...],
    ):
        self.messages = messages
        self.piggyback = piggyback
        cost_model = cluster.cost_model
        topology = cluster.topology

        send_time: dict[int, float] = {}
        arrivals: dict[int, list[int]] = {}
        bytes_sent: dict[int, int] = {}
        bytes_received: dict[int, int] = {}
        message_counts: dict[int, int] = {}
        channels: dict[str, list[int]] = {}

        def add(src: int, dst: int, nbytes: int, channel: str, merged: bool) -> None:
            if src == dst:
                raise ClusterError(f"rank {src} cannot send to itself")
            if merged:
                cost = cost_model.payload_time(nbytes)
            else:
                cost = cost_model.message_time(nbytes, topology.hops(src, dst))
                message_counts[src] = message_counts.get(src, 0) + 1
            send_time[src] = send_time.get(src, 0.0) + cost
            dst_sources = arrivals.setdefault(dst, [])
            if src not in dst_sources:
                dst_sources.append(src)
            bytes_sent[src] = bytes_sent.get(src, 0) + int(nbytes)
            bytes_received[dst] = bytes_received.get(dst, 0) + int(nbytes)
            totals = channels.setdefault(channel, [0, 0])
            totals[0] += int(nbytes)
            if not merged:
                totals[1] += 1

        for src, dst, nbytes, channel, *rest in messages:
            add(src, dst, nbytes, channel, bool(rest[0]) if rest else False)
        for src, dst, nbytes, channel in piggyback:
            add(src, dst, nbytes, channel, True)

        self.sends = tuple(send_time.items())
        self.arrivals = tuple((dst, tuple(srcs)) for dst, srcs in arrivals.items())
        involved = sorted(set(bytes_sent) | set(bytes_received))
        self.ranks = np.array(involved, dtype=np.intp)
        self.sent_deltas = np.array(
            [bytes_sent.get(rank, 0) for rank in involved], dtype=np.int64
        )
        self.received_deltas = np.array(
            [bytes_received.get(rank, 0) for rank in involved], dtype=np.int64
        )
        self.message_deltas = np.array(
            [message_counts.get(rank, 0) for rank in involved], dtype=np.int64
        )
        self.channel_deltas = tuple(
            (channel, (totals[0], totals[1])) for channel, totals in channels.items()
        )
