"""The virtual cluster: N simulated nodes, clocks, accounting, failures.

:class:`VirtualCluster` plays the role MPI plays in the paper's C
framework.  It does **not** move data itself — the distribution layer
(:mod:`repro.distribution`) performs the actual numpy transfers — but
every transfer must be *declared* here so that:

* per-node simulated clocks advance according to the
  :class:`~repro.cluster.cost_model.CostModel` (this yields the
  "runtime" the benchmarks report),
* per-channel traffic statistics accumulate
  (:class:`~repro.cluster.statistics.ClusterStats`),
* failed nodes cannot be used (``DeadNodeError``), matching the MPI
  reality that a message to a dead rank never completes.

Clock semantics (a postal model):

* ``compute(rank, flops)`` advances only that node's clock;
* ``send(src, dst, nbytes)`` makes the sender busy for the message time
  and the receiver's clock at least the sender's finish time (receive
  completion);
* collectives synchronise all alive clocks to the common finish time —
  PCG's dot products are allreduces and act as barriers, which is what
  makes "max over nodes" the right makespan notion here.
"""

from __future__ import annotations

import weakref
from typing import TYPE_CHECKING, Iterable

import numpy as np

from ..exceptions import ClusterError, ConfigurationError, DeadNodeError
from .cost_model import CostModel
from .node import NodeState
from .statistics import ClusterStats
from .topology import FatTree, Topology

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..distribution.vector import DistributedVector


class VirtualCluster:
    """A simulated distributed-memory machine with unreliable nodes."""

    def __init__(
        self,
        n_nodes: int,
        cost_model: CostModel | None = None,
        topology: Topology | None = None,
        seed: int | None = 0,
    ):
        if n_nodes < 1:
            raise ConfigurationError(f"n_nodes must be >= 1, got {n_nodes}")
        self.n_nodes = int(n_nodes)
        self.cost_model = cost_model if cost_model is not None else CostModel()
        self.topology = topology if topology is not None else FatTree(self.n_nodes)
        if self.topology.n_nodes != self.n_nodes:
            raise ConfigurationError(
                f"topology is sized for {self.topology.n_nodes} nodes, cluster has {self.n_nodes}"
            )
        self.rng = np.random.default_rng(seed)
        self.nodes = [NodeState(rank) for rank in range(self.n_nodes)]
        self.clocks = np.zeros(self.n_nodes, dtype=np.float64)
        self.stats = ClusterStats(self.n_nodes)
        #: Vectors whose blocks must be wiped when a node fails.
        self._registered_vectors: list[weakref.ReferenceType] = []

    # ------------------------------------------------------------------ basics

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        dead = [n.rank for n in self.nodes if not n.alive]
        return f"VirtualCluster(n_nodes={self.n_nodes}, time={self.elapsed():.3e}s, dead={dead})"

    def node(self, rank: int) -> NodeState:
        """The :class:`NodeState` for ``rank`` (alive or not)."""
        if not 0 <= rank < self.n_nodes:
            raise ConfigurationError(f"rank {rank} outside [0, {self.n_nodes})")
        return self.nodes[rank]

    def require_alive(self, rank: int) -> NodeState:
        node = self.node(rank)
        if not node.alive:
            raise DeadNodeError(f"rank {rank} is failed")
        return node

    def alive_ranks(self) -> tuple[int, ...]:
        return tuple(n.rank for n in self.nodes if n.alive)

    def dead_ranks(self) -> tuple[int, ...]:
        return tuple(n.rank for n in self.nodes if not n.alive)

    def elapsed(self) -> float:
        """Simulated makespan so far (max over node clocks)."""
        return float(self.clocks.max())

    def reset_stats(self) -> None:
        """Zero the traffic statistics (clocks are left untouched)."""
        self.stats = ClusterStats(self.n_nodes)

    def reset(self, seed: int | None = None) -> None:
        """Return the cluster to its pristine t = 0 state.

        Fresh nodes (all alive, empty memory), zeroed clocks, fresh
        statistics, no registered vectors — indistinguishable from a
        newly constructed cluster, so a :class:`~repro.api.SolverSession`
        can reuse one cluster (and everything bound to it, like the
        distributed matrix) across many independent solves.  ``seed``
        restarts the noise RNG; ``None`` keeps the current stream.
        """
        if seed is not None:
            self.rng = np.random.default_rng(seed)
        self.nodes = [NodeState(rank) for rank in range(self.n_nodes)]
        self.clocks = np.zeros(self.n_nodes, dtype=np.float64)
        self.stats = ClusterStats(self.n_nodes)
        self._registered_vectors = []

    # --------------------------------------------------------------- accounting

    def _charge(self, seconds: float) -> float:
        return self.cost_model.perturb(seconds, self.rng)

    def compute(self, rank: int, flops: float) -> None:
        """Charge ``flops`` of computation to ``rank``'s clock."""
        self.require_alive(rank)
        self.clocks[rank] += self._charge(self.cost_model.compute_time(flops))
        self.stats.record_compute(rank, flops)

    def memcpy(self, rank: int, nbytes: int) -> None:
        """Charge a local memory copy to ``rank``'s clock."""
        self.require_alive(rank)
        self.clocks[rank] += self._charge(self.cost_model.memcpy_time(nbytes))
        self.stats.record_local_copy(rank, nbytes)

    def send(self, src: int, dst: int, nbytes: int, channel: str) -> None:
        """Charge one point-to-point message ``src -> dst``."""
        self.require_alive(src)
        self.require_alive(dst)
        if src == dst:
            raise ClusterError(f"rank {src} cannot send to itself")
        hops = self.topology.hops(src, dst)
        cost = self._charge(self.cost_model.message_time(nbytes, hops))
        self.clocks[src] += cost
        self.clocks[dst] = max(self.clocks[dst], self.clocks[src])
        self.stats.record_message(src, dst, nbytes, channel)

    def piggyback(self, src: int, dst: int, nbytes: int, channel: str) -> None:
        """Charge extra payload merged into an existing ``src -> dst`` message.

        No start-up latency — models ASpMV extras riding on a natural
        halo message ("ESR mainly adds on to existing communication").
        """
        self.require_alive(src)
        self.require_alive(dst)
        cost = self._charge(self.cost_model.payload_time(nbytes))
        self.clocks[src] += cost
        self.clocks[dst] = max(self.clocks[dst], self.clocks[src])
        self.stats.record_payload(src, dst, nbytes, channel)

    def exchange(
        self,
        messages: Iterable[tuple[int, int, int, str, bool]],
        piggyback: Iterable[tuple[int, int, int, str]] = (),
    ) -> None:
        """Charge one *concurrent* communication phase.

        ``messages``: ``(src, dst, nbytes, channel, ...)`` point-to-point
        messages that all start simultaneously (an SpMV halo exchange, a
        checkpoint round, a recovery gather).  ``piggyback``: extra
        payload merged into one of those messages (no start-up latency).

        Unlike chained :meth:`send` calls — where a receive pushes the
        receiver's clock and its *own* subsequent sends start later,
        serialising the whole phase across ranks — this models what MPI
        actually does: every sender injects all its messages starting
        from its clock at phase begin; a receiver resumes at
        ``max(own finish, latest arrival)``.
        """
        send_time: dict[int, float] = {}
        start: dict[int, float] = {}
        arrivals: dict[int, list[tuple[int, float]]] = {}

        def add(src: int, dst: int, nbytes: int, channel: str, merged: bool) -> None:
            self.require_alive(src)
            self.require_alive(dst)
            if src == dst:
                raise ClusterError(f"rank {src} cannot send to itself")
            if merged:
                cost = self.cost_model.payload_time(nbytes)
                self.stats.record_payload(src, dst, nbytes, channel)
            else:
                hops = self.topology.hops(src, dst)
                cost = self.cost_model.message_time(nbytes, hops)
                self.stats.record_message(src, dst, nbytes, channel)
            cost = self._charge(cost)
            start.setdefault(src, float(self.clocks[src]))
            send_time[src] = send_time.get(src, 0.0) + cost
            arrivals.setdefault(dst, []).append((src, cost))

        for src, dst, nbytes, channel, *rest in messages:
            add(src, dst, nbytes, channel, bool(rest[0]) if rest else False)
        for src, dst, nbytes, channel in piggyback:
            add(src, dst, nbytes, channel, True)

        # Senders finish all their injections.
        for src, total in send_time.items():
            self.clocks[src] = start[src] + total
        # Receivers wait for the latest arrival (conservatively, a
        # sender's messages all complete when its injection finishes).
        for dst, sources in arrivals.items():
            latest = max(start[src] + send_time[src] for src, _cost in sources)
            self.clocks[dst] = max(self.clocks[dst], latest)

    def allreduce(self, nbytes: int, ranks: Iterable[int] | None = None) -> None:
        """Charge an allreduce across ``ranks`` (default: all alive nodes)."""
        group = tuple(ranks) if ranks is not None else self.alive_ranks()
        for rank in group:
            self.require_alive(rank)
        if len(group) <= 1:
            return
        cost = self._charge(self.cost_model.allreduce_time(nbytes, len(group)))
        finish = max(self.clocks[list(group)]) + cost
        self.clocks[list(group)] = finish
        self.stats.record_collective(nbytes)

    def broadcast(self, nbytes: int, ranks: Iterable[int] | None = None) -> None:
        """Charge a broadcast across ``ranks`` (default: all alive nodes)."""
        group = tuple(ranks) if ranks is not None else self.alive_ranks()
        for rank in group:
            self.require_alive(rank)
        if len(group) <= 1:
            return
        cost = self._charge(self.cost_model.broadcast_time(nbytes, len(group)))
        finish = max(self.clocks[list(group)]) + cost
        self.clocks[list(group)] = finish
        self.stats.record_collective(nbytes)

    def barrier(self, ranks: Iterable[int] | None = None) -> None:
        """Synchronise clocks of ``ranks`` (default: all alive nodes)."""
        group = list(ranks) if ranks is not None else list(self.alive_ranks())
        if not group:
            return
        finish = max(self.clocks[group])
        self.clocks[group] = finish

    def advance(self, rank: int, seconds: float) -> None:
        """Advance one node's clock by a raw duration (already costed)."""
        self.require_alive(rank)
        if seconds < 0:
            raise ConfigurationError("cannot advance a clock backwards")
        self.clocks[rank] += seconds

    def snapshot_redundancy_footprint(self) -> None:
        """Record the current per-node redundant-memory footprint."""
        for node in self.nodes:
            if node.alive:
                self.stats.record_redundancy_footprint(node.rank, node.redundancy_bytes())

    # ------------------------------------------------------------------ failures

    def register_vector(self, vector: "DistributedVector") -> None:
        """Register a distributed vector whose blocks die with their node."""
        self._registered_vectors.append(weakref.ref(vector))

    def _live_vectors(self) -> list["DistributedVector"]:
        alive: list["DistributedVector"] = []
        kept: list[weakref.ReferenceType] = []
        for ref in self._registered_vectors:
            vec = ref()
            if vec is not None:
                alive.append(vec)
                kept.append(ref)
        self._registered_vectors = kept
        return alive

    def fail(self, ranks: Iterable[int]) -> tuple[int, ...]:
        """Simulate the simultaneous failure of ``ranks``.

        All dynamic data on those nodes is lost: their named stores,
        scalars, redundancy stashes, buddy checkpoints, and their blocks
        of every registered distributed vector (zeroed, as in the
        paper's framework).
        """
        failed = tuple(sorted({int(r) for r in ranks}))
        if not failed:
            raise ConfigurationError("fail() needs at least one rank")
        for rank in failed:
            self.require_alive(rank)
        if len(failed) >= self.n_nodes:
            raise ClusterError("cannot fail every node in the cluster")
        for rank in failed:
            self.nodes[rank].wipe()
        for vector in self._live_vectors():
            vector.wipe_blocks(failed)
        return failed

    def replace(self, ranks: Iterable[int]) -> None:
        """Bring spare nodes up in place of the failed ``ranks``.

        The replacement starts with empty memory and its clock set to
        the current makespan (it joins when recovery begins; the paper
        assumes spare nodes are already allocated and idle).
        """
        now = self.elapsed()
        for rank in ranks:
            node = self.node(rank)
            if node.alive:
                raise ClusterError(f"rank {rank} is alive; cannot replace it")
            node.revive()
            self.clocks[rank] = now
