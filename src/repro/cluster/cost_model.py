"""Machine cost model for the virtual cluster.

The paper measures wall-clock runtimes on 128 nodes of the VSC3 cluster.
We re-execute the distributed algorithms inside one Python process; real
wall-clock time would then be dominated by interpreter overhead rather
than by the communication/computation trade-offs the paper studies.  The
virtual cluster therefore advances *simulated* per-node clocks using the
classic postal/LogGP-flavoured model below, and the harness reports the
simulated makespan as "runtime".

Model
-----
* point-to-point message of ``b`` bytes over ``h`` hops:
  ``alpha * (1 + hop_penalty*(h-1)) + b * beta`` seconds
  (the sender is busy for the same duration; the receiver cannot proceed
  before the message arrived);
* ``f`` floating-point operations on one node: ``f * gamma`` seconds,
  where ``gamma`` is the reciprocal of an *effective* sparse-kernel flop
  rate (memory-bound, far below peak);
* local memory traffic of ``b`` bytes (e.g. checkpoint copies into a
  buddy buffer, starred copies): ``b * mu`` seconds;
* an allreduce of ``b`` bytes across ``n`` nodes costs
  ``2*ceil(log2 n) * (alpha + b*beta)`` (binomial reduce + broadcast);
* optional multiplicative log-normal noise emulates machine variability
  so the paper's "median of >= 5 repetitions" protocol is meaningful.

The default constants are calibrated in :mod:`repro.harness.calibration`
so that the *composition* of a failure-free PCG iteration (local SpMV
compute vs. halo exchange vs. reductions) at our reduced scale resembles
the regime of the paper's experiments.  Absolute times are not the
object of the reproduction; relative overheads are.
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np

from ..exceptions import ConfigurationError

#: Bytes per double-precision floating-point value.
BYTES_PER_FLOAT = 8


@dataclasses.dataclass(frozen=True)
class CostModel:
    """Immutable bundle of machine constants.

    Attributes
    ----------
    alpha:
        Message start-up latency in seconds.
    beta:
        Per-byte network transfer time in seconds (1/bandwidth).
    gamma:
        Per-flop compute time in seconds (1/effective flop rate).
    mu:
        Per-byte local memory-copy time in seconds.
    hop_penalty:
        Fractional latency increase per additional network hop beyond
        the first (``h`` hops cost ``alpha*(1+hop_penalty*(h-1))``).
    noise:
        Standard deviation of multiplicative log-normal noise applied to
        every charged cost; ``0`` disables noise and makes the simulated
        clock fully deterministic.
    """

    alpha: float = 6.0e-7
    beta: float = 1.6e-10
    gamma: float = 6.0e-10
    mu: float = 1.5e-11
    hop_penalty: float = 0.15
    noise: float = 0.0

    def __post_init__(self) -> None:
        for name in ("alpha", "beta", "gamma", "mu"):
            value = getattr(self, name)
            if value < 0:
                raise ConfigurationError(f"cost-model constant {name!r} must be >= 0, got {value}")
        if self.hop_penalty < 0:
            raise ConfigurationError("hop_penalty must be >= 0")
        if self.noise < 0:
            raise ConfigurationError("noise must be >= 0")

    # -- elementary charges -------------------------------------------------

    def message_time(self, nbytes: int, hops: int = 1) -> float:
        """Time for one point-to-point message of ``nbytes`` over ``hops``."""
        if nbytes < 0:
            raise ConfigurationError(f"nbytes must be >= 0, got {nbytes}")
        hops = max(1, int(hops))
        latency = self.alpha * (1.0 + self.hop_penalty * (hops - 1))
        return latency + nbytes * self.beta

    def payload_time(self, nbytes: int) -> float:
        """Incremental cost of adding ``nbytes`` to an *existing* message.

        Used for ASpMV extra entries that piggy-back on a natural halo
        message: no additional start-up latency is paid.
        """
        if nbytes < 0:
            raise ConfigurationError(f"nbytes must be >= 0, got {nbytes}")
        return nbytes * self.beta

    def compute_time(self, flops: float) -> float:
        """Time for ``flops`` floating-point operations on one node."""
        if flops < 0:
            raise ConfigurationError(f"flops must be >= 0, got {flops}")
        return flops * self.gamma

    def memcpy_time(self, nbytes: int) -> float:
        """Time for a local memory copy of ``nbytes`` on one node."""
        if nbytes < 0:
            raise ConfigurationError(f"nbytes must be >= 0, got {nbytes}")
        return nbytes * self.mu

    def allreduce_time(self, nbytes: int, n_nodes: int) -> float:
        """Time for an allreduce of ``nbytes`` across ``n_nodes``."""
        if n_nodes < 1:
            raise ConfigurationError(f"n_nodes must be >= 1, got {n_nodes}")
        if n_nodes == 1:
            return 0.0
        rounds = 2 * math.ceil(math.log2(n_nodes))
        return rounds * (self.alpha + nbytes * self.beta)

    def broadcast_time(self, nbytes: int, n_nodes: int) -> float:
        """Time for a binomial-tree broadcast of ``nbytes``."""
        if n_nodes < 1:
            raise ConfigurationError(f"n_nodes must be >= 1, got {n_nodes}")
        if n_nodes == 1:
            return 0.0
        rounds = math.ceil(math.log2(n_nodes))
        return rounds * (self.alpha + nbytes * self.beta)

    # -- noise ---------------------------------------------------------------

    def perturb(self, seconds: float, rng: np.random.Generator | None) -> float:
        """Apply multiplicative log-normal noise to a cost, if enabled."""
        if self.noise == 0.0 or rng is None or seconds == 0.0:
            return seconds
        return float(seconds * rng.lognormal(mean=0.0, sigma=self.noise))

    def with_noise(self, noise: float) -> "CostModel":
        """Return a copy of this model with a different noise level."""
        return dataclasses.replace(self, noise=float(noise))


#: Constants used by the paper-reproduction benchmarks.  See
#: :mod:`repro.harness.calibration` for the rationale.
VSC3_LIKE = CostModel()


def zero_cost_model() -> CostModel:
    """A model in which everything is free.

    Useful in tests that only care about numerical results and
    communication bookkeeping, not about timing.
    """
    return CostModel(alpha=0.0, beta=0.0, gamma=0.0, mu=0.0, hop_penalty=0.0, noise=0.0)
