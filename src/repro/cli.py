"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``solve``
    Run one resilient PCG solve on a built-in problem (or a local
    MatrixMarket file) with an optional injected failure, and print the
    outcome summary.
``experiment``
    Run the paper's Table-2/3 experiment grid for one problem and print
    the rendered table (quick mode by default from the CLI).
``campaign``
    Scenario-campaign sweeps (:mod:`repro.campaign`): ``campaign run``
    expands a declarative spec (built-in demo sweep, or a JSON file via
    ``--spec``) and executes it on a process pool (or through a durable
    queue via ``--queue-dir``); ``campaign report`` re-renders the
    Table-2-style overhead comparison from stored results, renders
    per-cell A/B overhead deltas against a second result file via
    ``--baseline``, and can export records to CSV.  The distributed
    path (:mod:`repro.queue`) is the ``submit`` → ``worker`` (×N, any
    host sharing the queue directory) → ``status`` / ``collect``
    subcommand family.
``info``
    List available problems, strategies and preconditioners.

Examples::

    python -m repro solve --problem emilia_923_like --scale tiny \
        --strategy esrp -T 10 --phi 2 --fail 40:0,1
    python -m repro experiment --problem emilia_923_like --quick
    python -m repro campaign run --workers 4 --out campaign.json
    python -m repro campaign report --results campaign.json --csv campaign.csv
    python -m repro campaign report --results new.json --baseline old.json
    python -m repro campaign submit --queue sweep.queue --spec sweep.json
    python -m repro campaign worker --queue sweep.queue
    python -m repro campaign status --queue sweep.queue
    python -m repro campaign collect --queue sweep.queue --out campaign.json
    python -m repro info

Development: the tier-1 test suite is ``python -m pytest -x -q`` from
the repository root (``pytest.ini`` puts ``src`` on the import path).
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Sequence

import numpy as np

from . import FailureEvent, __version__
from .api import SolveRequest, SolverSession
from .core.strategies import STRATEGY_NAMES, available_strategies
from .events import EventKind
from .exceptions import ConfigurationError, ReproError
from .matrices import available_problems, available_scales, read_matrix_market, suite
from .preconditioners import available_preconditioners


def _parse_failure(spec: str) -> FailureEvent:
    """Parse ``ITERATION:RANK[,RANK...]`` into a failure event."""
    try:
        iteration_part, ranks_part = spec.split(":", 1)
        iteration = int(iteration_part)
        ranks = tuple(int(r) for r in ranks_part.split(",") if r != "")
        return FailureEvent(iteration, ranks)
    except (ValueError, ConfigurationError) as exc:
        raise ConfigurationError(
            f"invalid --fail spec {spec!r} (expected ITER:RANK[,RANK...]): {exc}"
        ) from exc


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Algorithm-based checkpoint-recovery for PCG (ICPP 2020 reproduction)",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    commands = parser.add_subparsers(dest="command", required=True)

    solve_cmd = commands.add_parser("solve", help="run one resilient solve")
    solve_cmd.add_argument("--problem", default="emilia_923_like",
                           choices=available_problems())
    solve_cmd.add_argument("--scale", default="small", choices=available_scales())
    solve_cmd.add_argument("--matrix-file", default=None,
                           help="MatrixMarket file (overrides --problem)")
    solve_cmd.add_argument("--nodes", type=int, default=8)
    solve_cmd.add_argument("--strategy", default="esrp",
                           choices=STRATEGY_NAMES)
    solve_cmd.add_argument("-T", "--interval", type=int, default=20,
                           help="checkpoint/storage interval")
    solve_cmd.add_argument("--phi", type=int, default=1,
                           help="redundant copies / tolerated failures")
    solve_cmd.add_argument("--preconditioner", default="block_jacobi",
                           choices=available_preconditioners())
    solve_cmd.add_argument("--backend", default=None,
                           help="compute-kernel backend (looped|vectorized|"
                           "compiled; default: REPRO_BACKEND or vectorized)")
    solve_cmd.add_argument("--rtol", type=float, default=1e-8)
    solve_cmd.add_argument("--fail", action="append", default=[],
                           metavar="ITER:RANKS",
                           help="inject a failure, e.g. 500:0,1,2 (repeatable)")
    solve_cmd.add_argument("--seed", type=int, default=0)
    solve_cmd.add_argument("--events", action="store_true",
                           help="print the full event timeline")

    exp_cmd = commands.add_parser("experiment", help="run a paper table grid")
    exp_cmd.add_argument("--problem", default="emilia_923_like",
                         choices=available_problems())
    exp_cmd.add_argument("--quick", action="store_true", default=True)
    exp_cmd.add_argument("--full", dest="quick", action="store_false",
                         help="full paper constellation (slow)")

    campaign_cmd = commands.add_parser(
        "campaign",
        help="scenario-campaign sweeps (run / report)",
        description="Expand a declarative sweep spec into seeded runs, execute "
        "them on a process pool, and aggregate Table-2-style overhead reports. "
        "See the repro.campaign module docstring for the JSON spec schema.",
    )
    campaign_sub = campaign_cmd.add_subparsers(dest="campaign_command", required=True)

    run_cmd = campaign_sub.add_parser(
        "run", help="expand a campaign spec and execute every run"
    )
    run_cmd.add_argument("--spec", default=None, metavar="FILE",
                         help="JSON campaign spec (default: built-in demo sweep)")
    run_cmd.add_argument("--demo", default="paper", choices=("paper", "faults"),
                         help="built-in sweep used when no --spec is given: "
                         "the paper's Table-2 demo, or the fault-taxonomy "
                         "sweep (SDC + lossy checkpoints vs. pv/lossy_imcr)")
    run_cmd.add_argument("--out", default="campaign_results.json", metavar="FILE",
                         help="where to store the result records (JSON)")
    run_cmd.add_argument("--workers", type=int, default=None,
                         help="process-pool size (0/1 = serial; default: auto)")
    run_cmd.add_argument("--scale", default="tiny", choices=available_scales(),
                         help="matrix scale of the built-in demo sweep")
    run_cmd.add_argument("--repetitions", type=int, default=None,
                         help="override the spec's repetitions per cell")
    run_cmd.add_argument("--backends", default=None, metavar="NAMES",
                         help="comma-separated kernel backends to sweep "
                         "(overrides the spec, e.g. vectorized,compiled)")
    from .api.session import DEFAULT_CACHE_DIR

    run_cmd.add_argument("--cache-dir", nargs="?", const=DEFAULT_CACHE_DIR,
                         default=None, metavar="DIR",
                         help="spool reference trajectories to DIR so pool "
                         "workers share one copy per configuration "
                         "(default DIR when given without a value: "
                         f"{DEFAULT_CACHE_DIR})")
    run_cmd.add_argument("--list", action="store_true", dest="list_only",
                         help="print the expanded run list and exit")
    run_cmd.add_argument("--quiet", action="store_true",
                         help="suppress per-run progress lines")
    run_cmd.add_argument("--queue-dir", default=None, metavar="DIR",
                         help="execute through a durable on-disk queue rooted "
                         "at DIR (crash-resumable; external 'campaign worker' "
                         "processes may join) instead of an in-memory pool")

    submit_cmd = campaign_sub.add_parser(
        "submit",
        help="materialise a campaign spec as a durable on-disk task queue",
        description="Expand a campaign spec into claimable tasks under the "
        "queue directory (layout v3 batches them into per-shard segment "
        "files). Workers ('repro campaign worker') on any host sharing that "
        "directory then drain it; see the repro.queue module docstring for "
        "the layout and lease protocol.",
    )
    submit_cmd.add_argument("--queue", required=True, metavar="DIR",
                            help="queue directory (must not hold a queue yet)")
    submit_cmd.add_argument("--spec", default=None, metavar="FILE",
                            help="JSON campaign spec (default: built-in demo)")
    submit_cmd.add_argument("--demo", default="paper",
                            choices=("paper", "faults"),
                            help="built-in sweep used when no --spec is given")
    submit_cmd.add_argument("--scale", default="tiny", choices=available_scales(),
                            help="matrix scale of the built-in demo sweep")
    submit_cmd.add_argument("--repetitions", type=int, default=None,
                            help="override the spec's repetitions per cell")
    submit_cmd.add_argument("--backends", default=None, metavar="NAMES",
                            help="comma-separated kernel backends to sweep")
    submit_cmd.add_argument("--max-attempts", type=int, default=None, metavar="N",
                            help="retry policy: dead-letter a task after N "
                            "failed (exception-raising) attempts (default: 3)")
    submit_cmd.add_argument("--retry-backoff", type=float, default=None,
                            metavar="SECONDS",
                            help="base of the jittered exponential backoff a "
                            "failed task sits out before it is claimable "
                            "again (default: 0.05)")
    submit_cmd.add_argument("--layout", default="v3", choices=("v2", "v3"),
                            help="on-disk task-store layout: v3 (default) "
                            "batches tasks into per-shard RQS1 segments; v2 "
                            "writes the legacy one-JSON-file-per-task store "
                            "(both stay readable by workers and collect)")
    submit_cmd.add_argument("--shard-size", type=int, default=None, metavar="N",
                            help="max tasks per layout-v3 task segment "
                            "(default: 1024; ignored under --layout v2)")

    worker_cmd = campaign_sub.add_parser(
        "worker",
        help="claim and execute tasks from a submitted queue until drained",
    )
    worker_cmd.add_argument("--queue", required=True, metavar="DIR")
    worker_cmd.add_argument("--id", default=None, metavar="NAME", dest="worker_id",
                            help="worker id (default: host-pid-nonce)")
    worker_cmd.add_argument("--ttl", type=float, default=None, metavar="SECONDS",
                            help="lease time-to-live (default: 60)")
    worker_cmd.add_argument("--max-tasks", type=int, default=None, metavar="N",
                            help="stop after N claimed tasks (time slicing)")
    worker_cmd.add_argument("--wait", action="store_true",
                            help="keep polling until every task is terminal "
                            "(outlive peers whose leases may expire)")
    worker_cmd.add_argument("--cache-dir", nargs="?", const=DEFAULT_CACHE_DIR,
                            default=None, metavar="DIR",
                            help="share reference trajectories on disk "
                            "(same contract as 'campaign run --cache-dir')")
    worker_cmd.add_argument("--quiet", action="store_true",
                            help="suppress per-task progress/ETA lines")
    worker_cmd.add_argument("--no-affine", action="store_false", dest="affine",
                            help="claim tasks in plain scan order instead of "
                            "configuration-affine chunks")
    worker_cmd.add_argument("--compact-every", type=int, default=None,
                            metavar="N",
                            help="fold the spool shard into a compacted "
                            "segment every N completed records "
                            "(default: 256; 0 disables compaction)")

    retry_cmd = campaign_sub.add_parser(
        "retry",
        help="resurrect a queue's dead-lettered tasks after a fix",
        description="Clear every failed/ marker and retry ledger so the "
        "tasks are claimable again with a fresh attempt budget; the full "
        "failure provenance is preserved as audit manifests under "
        "retried-manifests/ first. Run workers again afterwards.",
    )
    retry_cmd.add_argument("--queue", required=True, metavar="DIR")

    status_cmd = campaign_sub.add_parser(
        "status", help="summarise a queue's task/lease/spool state"
    )
    status_cmd.add_argument("--queue", required=True, metavar="DIR")
    status_cmd.add_argument("--json", action="store_true", dest="as_json",
                            help="machine-readable QueueStatus JSON")

    collect_cmd = campaign_sub.add_parser(
        "collect",
        help="merge a drained queue's spool shards into one result file",
    )
    collect_cmd.add_argument("--queue", required=True, metavar="DIR")
    collect_cmd.add_argument("--out", default="campaign_results.json",
                             metavar="FILE",
                             help="where to store the merged records (JSON)")
    collect_cmd.add_argument("--csv", default=None, metavar="FILE",
                             help="additionally export the records to CSV")
    collect_cmd.add_argument("--allow-partial", action="store_true",
                             help="collect whatever completed even if tasks "
                             "are missing or failed")
    collect_cmd.add_argument("--quiet", action="store_true",
                             help="suppress the rendered summary table")

    report_cmd = campaign_sub.add_parser(
        "report", help="render the overhead comparison from stored results"
    )
    report_cmd.add_argument("--results", required=True, metavar="FILE",
                           help="JSON file written by 'campaign run'")
    report_cmd.add_argument("--baseline", default=None, metavar="FILE",
                           help="second result file: render per-cell A/B "
                           "overhead deltas (results minus baseline) instead "
                           "of the plain summary")
    report_cmd.add_argument("--channels", action="store_true",
                           help="with --baseline: additionally render "
                           "per-channel communication-volume deltas")
    report_cmd.add_argument("--csv", default=None, metavar="FILE",
                           help="additionally export the raw records to CSV")

    serve_cmd = commands.add_parser(
        "serve",
        help="run the pooled HTTP solver service (see repro.serve)",
    )
    serve_cmd.add_argument("--host", default="127.0.0.1")
    serve_cmd.add_argument("--port", type=int, default=8765,
                           help="listen port (0 = ephemeral)")
    serve_cmd.add_argument("--pool-size", type=int, default=None, metavar="N",
                           help="max concurrently cached solver sessions")
    serve_cmd.add_argument("--max-batch", type=int, default=None, metavar="N",
                           help="max requests drained into one solve_many batch")
    serve_cmd.add_argument("--cache-dir", nargs="?", const=DEFAULT_CACHE_DIR,
                           default=None, metavar="DIR",
                           help="disk trajectory cache for warm session "
                           "restarts (flag alone uses the default cache)")
    serve_cmd.add_argument("--load", action="store_true",
                           help="self-test: start the server, fire a "
                           "concurrent load run against it, print the "
                           "measurements and exit")
    serve_cmd.add_argument("--requests", type=int, default=32, metavar="N",
                           help="with --load: number of requests to fire")
    serve_cmd.add_argument("--clients", type=int, default=4, metavar="N",
                           help="with --load: concurrent client threads")
    serve_cmd.add_argument("--quiet", action="store_true",
                           help="suppress per-request HTTP logging")

    commands.add_parser("info", help="list problems/strategies/preconditioners")
    return parser


def _cmd_solve(args: argparse.Namespace) -> int:
    if args.matrix_file:
        matrix = read_matrix_market(args.matrix_file)
        rng = np.random.default_rng(args.seed)
        b = matrix @ rng.standard_normal(matrix.shape[0])
        label = args.matrix_file
    else:
        matrix, b, meta = suite.load(args.problem, scale=args.scale)
        label = f"{meta.name} (scale={meta.scale}, n={meta.n}, nnz={meta.nnz})"

    failures = [_parse_failure(spec) for spec in args.fail]
    # Declarative request against a one-shot session; the request
    # validates every input eagerly before any setup work happens.
    request = SolveRequest(
        strategy=args.strategy,
        T=args.interval,
        phi=args.phi,
        preconditioner=args.preconditioner,
        rtol=args.rtol,
        failures=failures,
        seed=args.seed,
        backend=args.backend,
        n_nodes=args.nodes,
    )
    session = SolverSession(matrix, b, n_nodes=args.nodes, seed=args.seed)
    result = session.solve(request).result
    print(f"problem:            {label}")
    print(f"strategy:           {result.strategy} (T={args.interval}, phi={args.phi})")
    print(f"converged:          {result.converged}")
    print(f"iterations:         {result.iterations} "
          f"(+{result.wasted_iterations} re-executed)")
    print(f"relative residual:  {result.relative_residual:.3e}")
    print(f"modeled runtime:    {result.modeled_time * 1e3:.3f} ms")
    print(f"recovery time:      {result.recovery_time * 1e3:.3f} ms")
    print(f"wall time:          {result.wall_time:.3f} s")
    failures_seen = result.events.of_kind(EventKind.NODE_FAILURE)
    if failures_seen:
        print(f"failures survived:  {len(failures_seen)}")
    if args.events:
        print("\nevent timeline:")
        for event in result.events:
            print(f"  t={event.time * 1e3:9.3f} ms  j={event.iteration:>6d}  "
                  f"{event.kind.value:15s} {event.detail}")
    return 0 if result.converged else 1


def _cmd_experiment(args: argparse.Namespace) -> int:
    from .harness import paper_table_config, render_overhead_table
    from .harness.paper import PAPER_TABLE2, PAPER_TABLE3
    from .harness.runner import ExperimentRunner

    config = paper_table_config(args.problem, quick=args.quick)
    print(f"running {args.problem} grid: scale={config.scale}, "
          f"N={config.n_nodes}, reps={config.repetitions} ...", flush=True)
    runner = ExperimentRunner(config)
    results = runner.run_table()
    paper = PAPER_TABLE2 if "emilia" in args.problem else PAPER_TABLE3
    print(render_overhead_table(
        results,
        phis=config.phis,
        locations=config.locations,
        title=f"Overheads for {args.problem}",
        paper=paper,
    ))
    return 0


def _campaign_spec_from_args(args: argparse.Namespace):
    """Shared spec assembly for ``campaign run`` and ``campaign submit``."""
    import dataclasses

    from .campaign import CampaignSpec, demo_spec, faults_spec

    if args.spec:
        spec = CampaignSpec.from_json(args.spec)
    elif getattr(args, "demo", "paper") == "faults":
        spec = faults_spec(scale=args.scale)
    else:
        spec = demo_spec(scale=args.scale)
    if args.repetitions is not None:
        spec = dataclasses.replace(spec, repetitions=args.repetitions)
    if args.backends is not None:
        names = tuple(n.strip() for n in args.backends.split(",") if n.strip())
        spec = dataclasses.replace(spec, backends=names)
    return spec


def _worker_progress_printer(worker_id: str):
    """Per-task progress/ETA line for ``repro campaign worker``."""
    def progress(summary, status, record):
        label = record.run_id if record is not None else "(failed/abandoned)"
        rate = summary.seconds_per_task
        if rate and status.remaining:
            # Crude but honest: assume every currently-leased worker
            # (plus this one) sustains this worker's observed rate.
            active = max(1, status.claimed + 1)
            eta = f", eta ~{status.remaining * rate / active:.0f}s"
        else:
            eta = ""
        print(
            f"  [{worker_id}] done {summary.done}"
            + (f" retried {summary.retried}" if summary.retried else "")
            + (f" dead {summary.failed}" if summary.failed else "")
            + (f" abandoned {summary.abandoned}" if summary.abandoned else "")
            + f" | queue: {status.render()}"
            + (f" | {rate:.2f} s/task{eta}" if rate else "")
            + f" | {label}",
            flush=True,
        )
    return progress


def _cmd_campaign_queue(args: argparse.Namespace) -> int:
    """The durable-queue subcommands: submit / worker / status / collect."""
    import json as _json
    import os

    from .queue import QueueStore, collect, default_worker_id, run_worker
    from .queue.store import (
        DEFAULT_MAX_ATTEMPTS,
        DEFAULT_RETRY_BACKOFF,
        DEFAULT_TTL,
    )
    from .queue.worker import DEFAULT_COMPACT_EVERY

    if args.campaign_command == "submit":
        spec = _campaign_spec_from_args(args)
        max_attempts = (
            args.max_attempts if args.max_attempts is not None
            else DEFAULT_MAX_ATTEMPTS
        )
        retry_backoff = (
            args.retry_backoff if args.retry_backoff is not None
            else DEFAULT_RETRY_BACKOFF
        )
        from .queue.store import DEFAULT_SHARD_SIZE

        layout = int(args.layout.lstrip("v"))
        shard_size = (
            args.shard_size if args.shard_size is not None
            else DEFAULT_SHARD_SIZE
        )
        store = QueueStore.submit(
            spec, args.queue,
            max_attempts=max_attempts, retry_backoff=retry_backoff,
            layout=layout, shard_size=shard_size,
        )
        print(f"campaign {spec.name!r}: {store.n_tasks} tasks submitted "
              f"to {store.queue_dir} (layout v{layout}, "
              f"max {max_attempts} attempt(s)/task)")
        print("next: repro campaign worker --queue "
              f"{store.queue_dir}  (repeat per core / host)")
        return 0

    if args.campaign_command == "retry":
        store = QueueStore(args.queue)
        resurrected = store.retry_dead_letters()
        if not resurrected:
            print(f"queue {args.queue}: no dead-lettered tasks to retry")
            return 0
        for outcome in resurrected:
            print(f"requeued {outcome.run_id} "
                  f"(had {outcome.attempts} failed attempt(s))")
        print(f"resurrected {len(resurrected)} task(s); provenance kept in "
              f"{store.manifests_dir()}")
        print(f"next: repro campaign worker --queue {store.queue_dir}")
        return 0

    if args.campaign_command == "worker":
        worker_id = args.worker_id or default_worker_id()
        ttl = args.ttl if args.ttl is not None else DEFAULT_TTL
        progress = None if args.quiet else _worker_progress_printer(worker_id)
        cache_dir = os.path.expanduser(args.cache_dir) if args.cache_dir else None
        if args.compact_every is None:
            compact_every = DEFAULT_COMPACT_EVERY
        else:
            compact_every = args.compact_every if args.compact_every > 0 else None
        print(f"worker {worker_id} draining {args.queue} (ttl={ttl:g}s) ...",
              flush=True)
        summary = run_worker(
            args.queue,
            worker_id=worker_id,
            ttl=ttl,
            max_tasks=args.max_tasks,
            wait=args.wait,
            cache_dir=cache_dir,
            progress=progress,
            affine=args.affine,
            compact_every=compact_every,
        )
        print(f"worker {worker_id}: {summary.done} done, "
              f"{summary.retried} retried, {summary.failed} dead-lettered, "
              f"{summary.abandoned} abandoned "
              f"({summary.busy_seconds:.1f}s busy)")
        return 0 if summary.failed == 0 else 1

    if args.campaign_command == "status":
        status = QueueStore(args.queue).status(with_workers=True)
        if args.as_json:
            print(_json.dumps(status.to_dict(), indent=2, sort_keys=True))
        else:
            print(f"queue {args.queue}: {status.render()}")
            for worker_id, count in sorted(status.workers.items()):
                print(f"  {worker_id}: {count} done")
        return 0 if status.failed == 0 else 1

    # campaign collect
    store = QueueStore(args.queue)
    result = collect(args.queue, allow_partial=args.allow_partial)
    if not args.quiet:
        print(result.render_summary())
        print()
    if args.allow_partial:
        # Surface what the partial collect skipped: dead-lettered
        # tasks (with their provenance) are silent data loss otherwise.
        for outcome in store.failed_outcomes():
            last = (outcome.error or "").strip().splitlines()
            print(f"DEAD-LETTERED after {outcome.attempts} attempt(s): "
                  f"{outcome.run_id}" + (f" ({last[-1]})" if last else ""))
    path = result.to_json(args.out)
    print(f"wrote {len(result)} records to {path}")
    if args.csv:
        csv_path = result.to_csv(args.csv)
        print(f"wrote {len(result)} records to {csv_path}")
    return 0 if all(record.converged for record in result) else 1


def _cmd_campaign(args: argparse.Namespace) -> int:
    from .campaign import CampaignResult, execute_campaign
    from .campaign.executor import default_workers
    from .campaign.spec import expand_spec

    if args.campaign_command in ("submit", "worker", "retry", "status", "collect"):
        return _cmd_campaign_queue(args)

    if args.campaign_command == "report":
        result = CampaignResult.from_json(args.results)
        if args.baseline:
            baseline = CampaignResult.from_json(args.baseline)
            print(result.render_comparison(baseline))
            if args.channels:
                print()
                print(result.render_communication_comparison(baseline))
        else:
            print(result.render_summary())
        if args.csv:
            path = result.to_csv(args.csv)
            print(f"\nwrote {len(result)} records to {path}")
        return 0

    # campaign run
    spec = _campaign_spec_from_args(args)
    runs = expand_spec(spec)
    if not runs:
        raise ConfigurationError(
            f"campaign {spec.name!r} expands to zero runs "
            "(a reference-only strategy list prunes every failure scenario)"
        )
    if args.list_only:
        for run in runs:
            print(run.run_id)
        print(f"\n{len(runs)} runs")
        return 0
    workers = args.workers if args.workers is not None else default_workers(len(runs))
    where = "a serial loop" if workers <= 1 else f"{workers} pool workers"
    if args.queue_dir:
        where = f"{workers} queue worker(s) via {args.queue_dir}"
    print(f"campaign {spec.name!r}: {len(runs)} runs on {where} ...", flush=True)
    progress = None
    if not args.quiet and not args.queue_dir:
        def progress(done, total, record):  # noqa: E306
            status = "ok " if record.converged else "FAIL"
            print(f"  [{done:>3d}/{total}] {status} {record.run_id} "
                  f"(+{100 * record.total_overhead:.1f}%)", flush=True)
    import os

    cache_dir = os.path.expanduser(args.cache_dir) if args.cache_dir else None
    result = execute_campaign(
        spec, workers=workers, progress=progress, cache_dir=cache_dir,
        queue_dir=args.queue_dir,
    )
    print()
    print(result.render_summary())
    path = result.to_json(args.out)
    print(f"\nwrote {len(result)} records to {path}")
    return 0 if all(record.converged for record in result) else 1


def _cmd_info(_args: argparse.Namespace) -> int:
    from .kernels import available_backends

    print(f"repro {__version__} — ICPP 2020 ESRP reproduction")
    print(f"problems:         {', '.join(available_problems())}")
    print(f"scales:           {', '.join(available_scales())}")
    print(f"strategies:       {', '.join(available_strategies())}")
    print(f"preconditioners:  {', '.join(available_preconditioners())}")
    print(f"kernel backends:  {', '.join(available_backends())}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .serve import ServeRequest, SolverServer, run_load
    from .serve.service import DEFAULT_MAX_BATCH, DEFAULT_POOL_SIZE

    server = SolverServer(
        host=args.host,
        port=args.port,
        pool_size=args.pool_size or DEFAULT_POOL_SIZE,
        max_batch=args.max_batch or DEFAULT_MAX_BATCH,
        cache_dir=args.cache_dir,
        verbose=not args.quiet,
    )
    server.start()
    host, port = server.address
    pool = server.service.pool
    print(f"repro serve listening on http://{host}:{port} "
          f"(pool={pool.capacity}, max_batch={server.service.max_batch})",
          flush=True)
    if args.load:
        # Self-test: a config-skewed load run against our own endpoint,
        # mirroring what benchmarks/bench_serve.py gates in CI.
        payloads = [
            ServeRequest(
                request=SolveRequest(
                    strategy="esrp" if i % 2 else "esr",
                    T=10,
                    preconditioner="jacobi" if i % 4 else "block_jacobi",
                ),
            ).to_dict()
            for i in range(args.requests)
        ]
        report = run_load(server.url, payloads, clients=args.clients)
        server.stop()
        print(f"requests:      {report.ok} ok / {report.errors} failed "
              f"({report.clients} clients)")
        print(f"throughput:    {report.requests_per_second:.1f} req/s")
        print(f"latency:       p50={report.p50_latency * 1e3:.1f} ms  "
              f"p99={report.p99_latency * 1e3:.1f} ms")
        print(f"pool hit rate: {report.pool.get('hit_rate', 0.0):.0%}")
        print(f"digests:       "
              f"{'consistent' if report.digests_consistent else 'INCONSISTENT'}")
        return 0 if report.errors == 0 and report.digests_consistent else 1
    try:
        while True:
            time.sleep(3600)
    except KeyboardInterrupt:
        print("draining ...", flush=True)
        server.stop()
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "solve":
            return _cmd_solve(args)
        if args.command == "experiment":
            return _cmd_experiment(args)
        if args.command == "campaign":
            return _cmd_campaign(args)
        if args.command == "serve":
            return _cmd_serve(args)
        if args.command == "info":
            return _cmd_info(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0  # pragma: no cover - argparse enforces the choices


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
