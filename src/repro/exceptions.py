"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError`, so
applications can catch library failures with a single ``except`` clause
while still distinguishing the interesting sub-cases (unrecoverable node
failures, configuration mistakes, ...).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all errors raised by :mod:`repro`."""


class ConfigurationError(ReproError):
    """A user-supplied configuration value is invalid or inconsistent."""


class PartitionError(ConfigurationError):
    """A block-row partition could not be constructed or is inconsistent."""


class ClusterError(ReproError):
    """The virtual cluster was used in an invalid way."""


class DeadNodeError(ClusterError):
    """An operation addressed a node that is currently failed.

    A failed node's memory is gone; sending to it, receiving from it or
    reading its vector blocks is a logic error in the caller.
    """


class NodeFailureError(ReproError):
    """Raised by non-resilient components when a node failure strikes.

    The reference PCG solver has no recovery strategy: a node failure
    during its run is fatal, exactly as it would be for a plain MPI job
    without fault-tolerance middleware.
    """

    def __init__(self, iteration: int, ranks: tuple[int, ...]):
        self.iteration = int(iteration)
        self.ranks = tuple(int(r) for r in ranks)
        super().__init__(
            f"unrecoverable node failure of ranks {self.ranks} "
            f"at iteration {self.iteration}"
        )


class RecoveryError(ReproError):
    """State recovery after a node failure failed."""


class IrrecoverableDataLossError(RecoveryError):
    """Redundant copies do not cover the lost index range.

    This happens when more nodes fail than the configured redundancy ϕ
    supports, or when a second failure destroys the only surviving copy
    before the next storage stage replenished the queue.
    """


class ReconstructionUnsupportedError(RecoveryError):
    """The preconditioner does not support exact state reconstruction.

    ESR/ESRP (Alg. 2 of the paper) must solve ``P_ff r_f = v`` for the
    rows/columns of the failed nodes.  That requires the preconditioner
    to be representable as a node-aligned block-diagonal operator
    (identity, Jacobi, block Jacobi).  Global preconditioners such as
    SSOR or incomplete Cholesky cannot be restricted this way; IMCR
    remains available for them.
    """


class ConvergenceError(ReproError):
    """An iterative solve did not reach its tolerance within the budget."""

    def __init__(self, what: str, iterations: int, achieved: float, target: float):
        self.what = str(what)
        self.iterations = int(iterations)
        self.achieved = float(achieved)
        self.target = float(target)
        super().__init__(
            f"{what} did not converge within {iterations} iterations: "
            f"relative residual {achieved:.3e} > target {target:.3e}"
        )
