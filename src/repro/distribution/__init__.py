"""Block-row data distribution, distributed vectors/matrices, SpMV/ASpMV.

Implements S2–S4 of DESIGN.md: the PETSc-style consecutive block-row
distribution (§1.2 of the paper), the distributed sparse matrix-vector
product with explicit halo communication, and the augmented SpMV that
guarantees ϕ redundant copies of the input vector (§2.2).
"""

from .aspmv import (
    ASpMVExecutor,
    EXTRA_CHANNEL,
    ExtraTransfer,
    RECOVERY_CHANNEL,
    RedundancyPlan,
    eq1_destinations,
    gather_redundant_copy,
    switch_aware_destinations,
)
from .comm_plan import SendDescriptor, SpMVPlan
from .matrix import DistributedMatrix
from .partition import BlockRowPartition
from .spmv import HALO_CHANNEL, SpMVExecutor
from .vector import DistributedVector

__all__ = [
    "ASpMVExecutor",
    "BlockRowPartition",
    "DistributedMatrix",
    "DistributedVector",
    "EXTRA_CHANNEL",
    "ExtraTransfer",
    "HALO_CHANNEL",
    "RECOVERY_CHANNEL",
    "RedundancyPlan",
    "SendDescriptor",
    "SpMVExecutor",
    "SpMVPlan",
    "eq1_destinations",
    "gather_redundant_copy",
    "switch_aware_destinations",
]
