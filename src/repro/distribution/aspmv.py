"""Augmented sparse matrix-vector product (ASpMV) — §2.2 of the paper.

The plain SpMV already copies some entries of the input vector ``p`` to
other nodes (the halo).  The *augmented* product additionally sends the
entries that would otherwise reach fewer than ϕ other nodes, so that
after the product **every entry of p is held by at least ϕ nodes other
than its owner** — enough to survive ϕ simultaneous node failures.

Destination choice (Eq. 1): the ϕ nearest neighbours of node ``s``::

    d_{s,k} = (s + ceil(k/2)) mod N   if k odd
            = (s - k/2)       mod N   if k even

Selection rule ``Rc_{s,k}`` (which entries to send additionally to
``d_{s,k}``): the paper prints ``m(i) - g(i) < ϕ - k``, where ``m(i)``
is the number of nodes entry ``i`` is naturally sent to, and ``g(i)``
how many of those are designated destinations.  As printed, the rule
violates its own invariant (with ϕ=1 and an entry that is sent nowhere,
``0 < 0`` fails and the entry is never replicated).  We implement the
corrected rule ``m(i) - g(i) <= ϕ - k``:

    Let c = m - g (copies at non-designated nodes).  Entry i is sent to
    the designated nodes d_k with k <= ϕ - c (those not already natural
    recipients).  Counting holders: c non-designated + g natural
    designated + (ϕ - c - g') added designated, where g' <= g of the
    natural designated fall into k <= ϕ - c.  Total >= c + g + ϕ - c -
    g' >= ϕ.  ∎

A ``greedy`` variant keeps a running copy counter and sends the minimal
number of extras; both rules are property-tested for the invariant.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, Protocol

import numpy as np

from ..exceptions import ConfigurationError, IrrecoverableDataLossError
from .comm_plan import SpMVPlan
from .matrix import DistributedMatrix
from .partition import BlockRowPartition
from .spmv import HALO_CHANNEL, SpMVExecutor
from .vector import DistributedVector

#: Statistics channel for the redundancy traffic added by ASpMV.
EXTRA_CHANNEL = "aspmv_extra"
#: Statistics channel for recovery-time gathering of redundant copies.
RECOVERY_CHANNEL = "recovery"


class SupportsPush(Protocol):
    """Anything that behaves like the redundancy queue of §3."""

    def push(self, iteration: int) -> int | None:  # pragma: no cover - protocol
        """Record a new redundant copy; return the evicted iteration, if any."""
        ...


def eq1_destinations(src: int, phi: int, n_nodes: int) -> tuple[int, ...]:
    """The ϕ designated destination nodes of ``src`` per Eq. (1).

    After modular wraparound, candidates equal to ``src`` or already
    chosen are skipped (relevant only for small clusters); ϕ is capped
    at ``n_nodes - 1`` since there are no more distinct destinations.
    """
    if phi < 0:
        raise ConfigurationError(f"phi must be >= 0, got {phi}")
    wanted = min(phi, n_nodes - 1)
    chosen: list[int] = []
    k = 0
    while len(chosen) < wanted:
        k += 1
        if k > 4 * n_nodes:  # pragma: no cover - defensive, unreachable
            raise ConfigurationError("could not find enough distinct destinations")
        if k % 2 == 1:
            candidate = (src + (k + 1) // 2) % n_nodes
        else:
            candidate = (src - k // 2) % n_nodes
        if candidate != src and candidate not in chosen:
            chosen.append(candidate)
    return tuple(chosen)


def switch_aware_destinations(
    src: int, phi: int, n_nodes: int, topology
) -> tuple[int, ...]:
    """Failure-domain-aware variant of Eq. (1) (extension, paper §2.2).

    The paper motivates contiguous-block failures with switch faults —
    but Eq. (1) places the redundant copies on the *nearest* ranks,
    which sit under the *same* leaf switch: exactly the nodes that die
    together with the owner.  This selector walks the Eq.-(1) candidate
    order but prefers destinations under a different leaf switch, so a
    whole-switch fault can never take out an entry together with all of
    its copies.  ("Optimization of our strategies taking ... the
    network topology of the cluster into consideration ... is ongoing
    work" — §2.2.1.)

    Falls back to same-leaf candidates only when fewer than ϕ
    cross-leaf nodes exist.
    """
    if phi < 0:
        raise ConfigurationError(f"phi must be >= 0, got {phi}")
    wanted = min(phi, n_nodes - 1)
    src_leaf = topology.leaf_of(src)
    preferred: list[int] = []
    fallback: list[int] = []
    k = 0
    while len(preferred) < wanted and k < 4 * n_nodes:
        k += 1
        if k % 2 == 1:
            candidate = (src + (k + 1) // 2) % n_nodes
        else:
            candidate = (src - k // 2) % n_nodes
        if candidate == src or candidate in preferred or candidate in fallback:
            continue
        if topology.leaf_of(candidate) != src_leaf:
            preferred.append(candidate)
        else:
            fallback.append(candidate)
    chosen = (preferred + fallback)[:wanted]
    return tuple(chosen)


@dataclasses.dataclass(frozen=True)
class ExtraTransfer:
    """Redundancy entries ``src`` must send to ``dst`` on top of the halo."""

    src: int
    dst: int
    local_indices: np.ndarray
    global_indices: np.ndarray
    #: True if a natural halo message src->dst exists (extras piggy-back).
    piggyback: bool

    @property
    def count(self) -> int:
        return int(self.local_indices.size)


class RedundancyPlan:
    """Which extra entries each node sends where, for a target ϕ.

    Precomputed once per (matrix plan, ϕ, rule); reused by every
    augmented product.
    """

    def __init__(
        self,
        plan: SpMVPlan,
        phi: int,
        rule: str = "paper",
        destinations: str = "eq1",
        topology=None,
    ):
        if rule not in ("paper", "greedy"):
            raise ConfigurationError(f"unknown ASpMV rule {rule!r}; expected paper|greedy")
        if destinations not in ("eq1", "switch_aware"):
            raise ConfigurationError(
                f"unknown destination policy {destinations!r}; expected eq1|switch_aware"
            )
        if destinations == "switch_aware" and topology is None:
            raise ConfigurationError("switch_aware destinations need a FatTree topology")
        if phi < 1:
            raise ConfigurationError(f"phi must be >= 1 for redundancy, got {phi}")
        self.plan = plan
        self.partition = plan.partition
        self.rule = rule
        self.destination_policy = destinations
        self.phi_requested = int(phi)
        self.phi = min(int(phi), plan.n_nodes - 1)
        self.extras: list[list[ExtraTransfer]] = []
        self.designated: list[tuple[int, ...]] = []

        for src in range(plan.n_nodes):
            lo, _ = self.partition.bounds(src)
            n_local = self.partition.size_of(src)
            if destinations == "switch_aware":
                dests = switch_aware_destinations(src, self.phi, plan.n_nodes, topology)
                # Failure-domain-aware multiplicity: natural copies under
                # the owner's own leaf switch die together with it, so
                # they must not count towards the redundancy target.
                src_leaf = topology.leaf_of(src)
                m = np.zeros(n_local, dtype=np.int64)
                for descriptor in plan.sends[src]:
                    if topology.leaf_of(descriptor.dst) != src_leaf:
                        m[descriptor.local_indices] += 1
            else:
                dests = eq1_destinations(src, self.phi, plan.n_nodes)
                m = plan.multiplicity(src)
            self.designated.append(dests)
            natural = {d.dst: d for d in plan.sends[src]}

            member = np.zeros((len(dests), n_local), dtype=bool)
            for row, dst in enumerate(dests):
                descriptor = natural.get(dst)
                if descriptor is not None:
                    member[row, descriptor.local_indices] = True
            g = member.sum(axis=0)

            transfers: list[ExtraTransfer] = []
            if self.rule == "greedy":
                copies = m.copy()
                for row, dst in enumerate(dests):
                    mask = (~member[row]) & (copies < self.phi)
                    copies[mask] += 1
                    transfers.append(self._make_transfer(src, dst, mask, lo, natural))
            else:
                for row, dst in enumerate(dests):
                    k = row + 1
                    mask = (~member[row]) & (m - g <= self.phi - k)
                    transfers.append(self._make_transfer(src, dst, mask, lo, natural))
            self.extras.append([t for t in transfers if t.count > 0])

        #: Fused-kernel cache (built lazily; see :meth:`flat_cache`).
        self._flat_cache: FlatRedundancyCache | None = None

    def flat_cache(self) -> "FlatRedundancyCache":
        """Precomputed gather/stash/message caches for the fused ASpMV."""
        if self._flat_cache is None:
            self._flat_cache = FlatRedundancyCache(self)
        return self._flat_cache

    @staticmethod
    def _make_transfer(
        src: int,
        dst: int,
        mask: np.ndarray,
        lo: int,
        natural: dict[int, object],
    ) -> ExtraTransfer:
        local = np.flatnonzero(mask).astype(np.int64)
        descriptor = natural.get(dst)
        piggyback = descriptor is not None and descriptor.count > 0  # type: ignore[attr-defined]
        return ExtraTransfer(
            src=src,
            dst=dst,
            local_indices=local,
            global_indices=local + lo,
            piggyback=piggyback,
        )

    # ------------------------------------------------------------------ queries

    def extra_entries(self, src: int | None = None) -> int:
        """Extra vector entries sent per augmented product."""
        sources = range(self.plan.n_nodes) if src is None else (src,)
        return sum(t.count for s in sources for t in self.extras[s])

    def copy_holders(self, src: int) -> list[set[int]]:
        """For each local index of ``src``: the set of non-owner holders.

        Combines natural halo recipients and extra destinations — used
        by tests to verify the ≥ϕ invariant.
        """
        holders: list[set[int]] = [set() for _ in range(self.partition.size_of(src))]
        for descriptor in self.plan.sends[src]:
            for li in descriptor.local_indices:
                holders[li].add(descriptor.dst)
        for transfer in self.extras[src]:
            for li in transfer.local_indices:
                holders[li].add(transfer.dst)
        return holders

    def min_copies(self) -> int:
        """Minimum non-owner copy count over all entries (≥ ϕ required)."""
        lowest = None
        for src in range(self.plan.n_nodes):
            holders = self.copy_holders(src)
            for entry_holders in holders:
                count = len(entry_holders)
                lowest = count if lowest is None else min(lowest, count)
        return 0 if lowest is None else lowest


class FlatRedundancyCache:
    """Index and message caches for the fused augmented product.

    Mirrors the traversal order of the per-rank reference loop exactly
    — for each source rank in ascending order: the non-empty natural
    send descriptors, then the extra redundancy transfers — so that the
    fused execution stashes the same pieces, charges the same message
    phase and fills the same ghost entries, bit for bit.

    * ``stash_gather`` — global indices whose single fused gather
      ``packed = x_flat[stash_gather]`` yields every communicated piece
      back to back;
    * ``pieces`` — ``(dst, src, start, stop, global_indices)`` views
      into ``packed``, one per stash the reference loop performs;
    * ``messages`` / ``merged`` — the exchange's message and piggyback
      payload lists (natural halo entries on the halo channel, extras
      on the redundancy channel).
    """

    def __init__(self, redundancy: "RedundancyPlan"):
        plan = redundancy.plan
        gather_parts: list[np.ndarray] = []
        pieces: list[tuple[int, int, int, int, np.ndarray]] = []
        messages: list[tuple[int, int, int, str, bool]] = []
        merged: list[tuple[int, int, int, str]] = []
        offset = 0
        for src in range(plan.n_nodes):
            for descriptor in plan.sends[src]:
                if descriptor.count == 0:
                    continue
                nbytes = descriptor.count * 8
                messages.append((src, descriptor.dst, nbytes, HALO_CHANNEL, False))
                gather_parts.append(descriptor.global_indices)
                pieces.append(
                    (
                        descriptor.dst,
                        src,
                        offset,
                        offset + descriptor.count,
                        descriptor.global_indices,
                    )
                )
                offset += descriptor.count
            for transfer in redundancy.extras[src]:
                nbytes = transfer.count * 8
                if transfer.piggyback:
                    merged.append((src, transfer.dst, nbytes, EXTRA_CHANNEL))
                else:
                    messages.append((src, transfer.dst, nbytes, EXTRA_CHANNEL, False))
                gather_parts.append(transfer.global_indices)
                pieces.append(
                    (
                        transfer.dst,
                        src,
                        offset,
                        offset + transfer.count,
                        transfer.global_indices,
                    )
                )
                offset += transfer.count
        self.stash_gather = (
            np.concatenate(gather_parts).astype(np.int64)
            if gather_parts
            else np.empty(0, dtype=np.int64)
        )
        self.pieces = tuple(pieces)
        self.messages = tuple(messages)
        self.merged = tuple(merged)
        #: CompiledExchange for (messages, merged); built lazily by the
        #: vectorized backend against the owning cluster.
        self.compiled = None


class ASpMVExecutor(SpMVExecutor):
    """SpMV that additionally materialises a redundant copy of ``p``.

    ``multiply_augmented(x, iteration, queue)`` performs the plain
    product *and*:

    * stashes every naturally communicated piece of ``x`` in the
      recipient's redundancy store under key ``iteration`` (these
      copies count towards ϕ),
    * sends/stashes the extra entries of the redundancy plan,
      piggy-backing on natural messages where possible,
    * pushes ``iteration`` into the redundancy queue and drops evicted
      iterations from every node's store.
    """

    def __init__(
        self,
        matrix: DistributedMatrix,
        phi: int,
        rule: str = "paper",
        destinations: str = "eq1",
    ):
        super().__init__(matrix)
        topology = matrix.cluster.topology if destinations == "switch_aware" else None
        self.redundancy = RedundancyPlan(
            matrix.plan, phi, rule=rule, destinations=destinations, topology=topology
        )

    @property
    def phi(self) -> int:
        return self.redundancy.phi

    def multiply_augmented(
        self,
        x: DistributedVector,
        iteration: int,
        queue: SupportsPush,
        out: DistributedVector | None = None,
    ) -> DistributedVector:
        """``out = A @ x`` while storing a redundant copy of ``x``."""
        if out is None:
            out = DistributedVector(self.matrix.cluster, self.matrix.partition)
        self.kernels.aspmv(self, x, iteration, queue, out)
        return out


def gather_redundant_copy(
    cluster,
    partition: BlockRowPartition,
    iteration: int,
    failed_ranks: Iterable[int],
    channel: str = RECOVERY_CHANNEL,
) -> dict[int, np.ndarray]:
    """Collect ``p'^{(iteration)}_{I_f}`` from the surviving nodes.

    For every failed rank (whose replacement is alive but empty), every
    surviving node sends whatever pieces of that rank's entries it holds
    for ``iteration``.  Returns ``{rank: local block of p}``.

    Raises
    ------
    IrrecoverableDataLossError
        If some lost entry is not covered by any surviving copy (more
        failures than ϕ, or the queue no longer holds the iteration).
    """
    failed = tuple(sorted({int(r) for r in failed_ranks}))
    out: dict[int, np.ndarray] = {}
    messages = []
    coverage: dict[int, np.ndarray] = {}
    for rank in failed:
        n_local = partition.size_of(rank)
        lo, _ = partition.bounds(rank)
        values = np.full(n_local, np.nan, dtype=np.float64)
        covered = np.zeros(n_local, dtype=bool)
        for node in cluster.nodes:
            if not node.alive or node.rank == rank or node.rank in failed:
                continue
            piece = node.redundant_for(iteration, rank)
            if piece is None:
                continue
            indices, piece_values = piece
            local = indices - lo
            messages.append(
                (node.rank, rank, indices.nbytes + piece_values.nbytes, channel, False)
            )
            values[local] = piece_values
            covered[local] = True
        out[rank] = values
        coverage[rank] = covered
    if messages:
        cluster.exchange(messages)
    for rank in failed:
        covered = coverage[rank]
        n_local = partition.size_of(rank)
        if not covered.all():
            missing = int((~covered).sum())
            raise IrrecoverableDataLossError(
                f"no surviving copy for {missing} of {n_local} entries of rank {rank} "
                f"at iteration {iteration}; redundancy phi was too small for this failure"
            )
    return out
