"""Distributed vectors under a block-row partition.

A :class:`DistributedVector` owns one contiguous flat numpy array
(``data``) whose per-node block *views* (``blocks``) realise the
block-row distribution, and routes every arithmetic operation through
the cluster's compute-kernel backend (:mod:`repro.kernels`) so that
computation and reduction costs are charged to the simulated clocks.
The numerics are *real*: dot products, axpys and norms operate on the
actual data exactly as the distributed algorithm would — the ``looped``
backend node by node, the ``vectorized`` backend as fused whole-array
operations with analytically declared billing (bit-identical results
either way; see :mod:`repro.kernels.base` for the contract).

Vectors register themselves with the cluster: when nodes fail, their
blocks are zeroed (the paper's failure simulation wipes all vector
entries of the affected ranks).
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

import numpy as np

from ..cluster.communicator import VirtualCluster
from ..exceptions import ConfigurationError
from .partition import BlockRowPartition


class DistributedVector:
    """A dense vector distributed over the cluster in block rows."""

    def __init__(
        self,
        cluster: VirtualCluster,
        partition: BlockRowPartition,
        blocks: Sequence[np.ndarray] | None = None,
        register: bool = True,
    ):
        if partition.n_nodes != cluster.n_nodes:
            raise ConfigurationError(
                f"partition has {partition.n_nodes} blocks, cluster has {cluster.n_nodes} nodes"
            )
        self.cluster = cluster
        self.partition = partition
        #: Fused storage: one flat array; ``blocks`` are views into it.
        self.data = np.zeros(partition.n, dtype=np.float64)
        self.blocks = [
            self.data[partition.bounds(rank)[0] : partition.bounds(rank)[1]]
            for rank in range(partition.n_nodes)
        ]
        if blocks is not None:
            blocks = list(blocks)
            if len(blocks) != partition.n_nodes:
                raise ConfigurationError(
                    f"expected {partition.n_nodes} blocks, got {len(blocks)}"
                )
            for rank, block in enumerate(blocks):
                block = np.asarray(block, dtype=np.float64)
                if block.shape != (partition.size_of(rank),):
                    raise ConfigurationError(
                        f"block {rank} has shape {block.shape}, expected "
                        f"({partition.size_of(rank)},)"
                    )
                self.blocks[rank][:] = block
        if register:
            cluster.register_vector(self)

    # ------------------------------------------------------------ constructors

    @classmethod
    def from_global(
        cls,
        cluster: VirtualCluster,
        partition: BlockRowPartition,
        values: np.ndarray,
        register: bool = True,
    ) -> "DistributedVector":
        """Scatter a global numpy vector into per-node blocks."""
        values = np.asarray(values, dtype=np.float64).ravel()
        if values.size != partition.n:
            raise ConfigurationError(
                f"global vector has {values.size} entries, partition expects {partition.n}"
            )
        vector = cls(cluster, partition, register=register)
        vector.data[:] = values
        return vector

    @classmethod
    def zeros_like(cls, other: "DistributedVector", register: bool = True) -> "DistributedVector":
        return cls(other.cluster, other.partition, register=register)

    def copy(self, charge: bool = False, register: bool = True) -> "DistributedVector":
        """Deep copy.  ``charge=True`` bills a local memcpy per node."""
        clone = DistributedVector(self.cluster, self.partition, register=register)
        clone.data[:] = self.data
        if charge:
            for rank, block in enumerate(self.blocks):
                self.cluster.memcpy(rank, block.nbytes)
        return clone

    # -------------------------------------------------------------- block access

    @property
    def n(self) -> int:
        return self.partition.n

    @property
    def kernels(self):
        """The cluster's current compute-kernel backend."""
        return self.cluster.kernels

    def block(self, rank: int) -> np.ndarray:
        """The local block owned by ``rank`` (a live view, not a copy)."""
        return self.blocks[rank]

    def set_block(self, rank: int, values: np.ndarray) -> None:
        values = np.asarray(values, dtype=np.float64)
        if values.shape != self.blocks[rank].shape:
            raise ConfigurationError(
                f"block {rank} has shape {self.blocks[rank].shape}, got {values.shape}"
            )
        self.blocks[rank][:] = values

    def wipe_blocks(self, ranks: Iterable[int]) -> None:
        """Zero the blocks of failed ranks (called by the cluster)."""
        for rank in ranks:
            self.blocks[rank][:] = 0.0

    def to_global(self) -> np.ndarray:
        """Gather into one numpy array.  Diagnostic only — never charged."""
        return self.data.copy()

    def get_global_entries(self, indices: np.ndarray) -> np.ndarray:
        """Read entries by global index.  Diagnostic only — never charged."""
        return self.data[np.asarray(indices, dtype=np.int64)]

    # ------------------------------------------------------------- arithmetic

    def _each_rank(self) -> range:
        return range(self.partition.n_nodes)

    def fill(self, value: float) -> None:
        self.data[:] = value

    def axpy(self, a: float, x: "DistributedVector") -> None:
        """``self += a * x`` (2 flops per entry)."""
        self._check_compatible(x)
        self.kernels.axpy(self, a, x)

    def aypx(self, a: float, x: "DistributedVector") -> None:
        """``self = x + a * self`` — the PCG update ``p = z + beta p``."""
        self._check_compatible(x)
        self.kernels.aypx(self, a, x)

    def scale(self, a: float) -> None:
        """``self *= a`` (1 flop per entry)."""
        self.kernels.scale(self, a)

    def subtract(self, a: "DistributedVector", b: "DistributedVector") -> None:
        """``self = a - b`` (1 flop per entry) — e.g. ``r = b - A x``."""
        self._check_compatible(a)
        self._check_compatible(b)
        self.kernels.subtract(self, a, b)

    def assign(self, other: "DistributedVector", charge: bool = True) -> None:
        """``self[:] = other`` blockwise; optionally bill the memcpy."""
        self._check_compatible(other)
        self.kernels.assign(self, other, charge)

    def apply_blockwise(self, func: Callable[[int, np.ndarray], np.ndarray], flops_per_entry: float = 0.0) -> None:
        """In-place ``block <- func(rank, block)`` with optional flop billing."""
        for rank in self._each_rank():
            self.blocks[rank][:] = func(rank, self.blocks[rank])
            if flops_per_entry:
                self.cluster.compute(rank, flops_per_entry * self.blocks[rank].size)

    # -------------------------------------------------------------- reductions

    def dot(self, other: "DistributedVector") -> float:
        """Global dot product: local parts + one allreduce."""
        return self.dot_many([other])[0]

    def dot_many(self, others: Sequence["DistributedVector"]) -> list[float]:
        """Several dot products fused into a single allreduce.

        PCG needs ``r·z`` and ``‖r‖²`` in the same iteration; real codes
        fuse them into one 16-byte allreduce, and so do we.  Partial
        sums accumulate per node block in ascending rank order — that
        order is part of the backend contract (every kernel backend
        reproduces it bit for bit).
        """
        for other in others:
            self._check_compatible(other)
        return self.kernels.dot_many(self, others)

    def norm2(self) -> float:
        """Global 2-norm (one fused allreduce)."""
        return float(np.sqrt(max(self.dot(self), 0.0)))

    def _check_compatible(self, other: "DistributedVector") -> None:
        if other.partition != self.partition:
            raise ConfigurationError("vectors live on different partitions")
        if other.cluster is not self.cluster:
            raise ConfigurationError("vectors live on different clusters")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DistributedVector(n={self.n}, n_nodes={self.partition.n_nodes})"
