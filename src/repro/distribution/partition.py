"""Block-row data distribution (S2 in DESIGN.md).

The paper (§1.2) distributes disjoint subsets ``I_s`` of *consecutive*
indices over the N nodes — the block-row distribution used by PETSc.
Node ``s`` owns the matrix rows and vector entries whose indices lie in
``I_s``; scalars are replicated everywhere.

:class:`BlockRowPartition` is the single source of truth for index
ownership throughout the library.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from ..exceptions import PartitionError


class BlockRowPartition:
    """Partition of ``range(n)`` into N consecutive index blocks.

    Parameters
    ----------
    offsets:
        Monotone array of length ``N+1`` with ``offsets[0] == 0`` and
        ``offsets[N] == n``; node ``s`` owns indices
        ``[offsets[s], offsets[s+1])``.  Empty blocks are allowed only
        for degenerate problems (``n < N``) and are rejected by default
        because the paper's algorithms assume every node owns rows.
    """

    def __init__(self, offsets: Sequence[int], allow_empty: bool = False):
        offsets_arr = np.asarray(offsets, dtype=np.int64)
        if offsets_arr.ndim != 1 or offsets_arr.size < 2:
            raise PartitionError("offsets must be a 1-D array of length >= 2")
        if offsets_arr[0] != 0:
            raise PartitionError(f"offsets must start at 0, got {offsets_arr[0]}")
        if np.any(np.diff(offsets_arr) < 0):
            raise PartitionError("offsets must be non-decreasing")
        if not allow_empty and np.any(np.diff(offsets_arr) == 0):
            raise PartitionError(
                "empty blocks are not allowed (every node must own at least one row); "
                "reduce the node count or pass allow_empty=True"
            )
        self.offsets = offsets_arr
        self.n_nodes = int(offsets_arr.size - 1)
        self.n = int(offsets_arr[-1])
        #: Cached per-rank billing profiles (see :meth:`charge_profile`).
        self._charge_profiles: dict[float, tuple[tuple[int, float], ...]] = {}

    def charge_profile(self, per_entry: float) -> tuple[tuple[int, float], ...]:
        """Cached ``(rank, per_entry * block_size)`` pairs, rank ascending.

        The analytic bill of one elementwise operation costing
        ``per_entry`` flops (or bytes) per vector entry — what fused
        kernels hand to :meth:`~repro.cluster.communicator.VirtualCluster.charge`
        instead of billing inside a per-rank loop.
        """
        profile = self._charge_profiles.get(per_entry)
        if profile is None:
            profile = tuple(
                (rank, per_entry * int(self.offsets[rank + 1] - self.offsets[rank]))
                for rank in range(self.n_nodes)
            )
            self._charge_profiles[per_entry] = profile
        return profile

    # ------------------------------------------------------------ constructors

    @classmethod
    def uniform(cls, n: int, n_nodes: int) -> "BlockRowPartition":
        """Split ``n`` indices over ``n_nodes`` as evenly as possible.

        The first ``n % n_nodes`` blocks get one extra index, matching
        the usual MPI decomposition.
        """
        if n_nodes < 1:
            raise PartitionError(f"n_nodes must be >= 1, got {n_nodes}")
        if n < n_nodes:
            raise PartitionError(f"cannot give {n_nodes} nodes at least one of {n} rows")
        base, extra = divmod(n, n_nodes)
        sizes = [base + (1 if s < extra else 0) for s in range(n_nodes)]
        return cls(np.concatenate([[0], np.cumsum(sizes)]))

    @classmethod
    def from_sizes(cls, sizes: Iterable[int]) -> "BlockRowPartition":
        """Build from explicit per-node block sizes."""
        sizes_arr = np.asarray(list(sizes), dtype=np.int64)
        return cls(np.concatenate([[0], np.cumsum(sizes_arr)]))

    @classmethod
    def aligned_to_blocks(cls, n: int, n_nodes: int, block: int) -> "BlockRowPartition":
        """Uniform partition whose boundaries are multiples of ``block``.

        Useful for vector-valued problems (e.g. 3 dofs per grid point)
        where splitting a physical point across nodes would be
        unnatural.  The last node absorbs the remainder.
        """
        if block < 1:
            raise PartitionError(f"block must be >= 1, got {block}")
        if n % block != 0:
            raise PartitionError(f"n={n} is not a multiple of block={block}")
        groups = n // block
        if groups < n_nodes:
            raise PartitionError(f"cannot give {n_nodes} nodes at least one of {groups} blocks")
        base, extra = divmod(groups, n_nodes)
        sizes = [(base + (1 if s < extra else 0)) * block for s in range(n_nodes)]
        return cls(np.concatenate([[0], np.cumsum(sizes)]))

    # ------------------------------------------------------------------ queries

    def size_of(self, rank: int) -> int:
        """Number of indices owned by ``rank``."""
        self._check_rank(rank)
        return int(self.offsets[rank + 1] - self.offsets[rank])

    def bounds(self, rank: int) -> tuple[int, int]:
        """Half-open global index range ``[lo, hi)`` owned by ``rank``."""
        self._check_rank(rank)
        return int(self.offsets[rank]), int(self.offsets[rank + 1])

    def indices(self, rank: int) -> np.ndarray:
        """The global indices ``I_s`` owned by ``rank`` (ascending)."""
        lo, hi = self.bounds(rank)
        return np.arange(lo, hi, dtype=np.int64)

    def indices_of(self, ranks: Iterable[int]) -> np.ndarray:
        """Union of ``I_s`` for the given ranks (``I_f`` for a failure set)."""
        parts = [self.indices(r) for r in sorted(set(int(r) for r in ranks))]
        if not parts:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(parts)

    def complement_indices(self, ranks: Iterable[int]) -> np.ndarray:
        """``I \\ I_f``: indices owned by every node *not* in ``ranks``."""
        excluded = {int(r) for r in ranks}
        parts = [self.indices(r) for r in range(self.n_nodes) if r not in excluded]
        if not parts:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(parts)

    def owner(self, index: int) -> int:
        """The rank owning global index ``index``."""
        if not 0 <= index < self.n:
            raise PartitionError(f"index {index} outside [0, {self.n})")
        return int(np.searchsorted(self.offsets, index, side="right") - 1)

    def owners(self, indices: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`owner` for an array of global indices."""
        indices = np.asarray(indices, dtype=np.int64)
        if indices.size and (indices.min() < 0 or indices.max() >= self.n):
            raise PartitionError("index array contains out-of-range entries")
        return np.searchsorted(self.offsets, indices, side="right") - 1

    def to_local(self, rank: int, global_indices: np.ndarray) -> np.ndarray:
        """Translate global indices owned by ``rank`` to local offsets."""
        lo, hi = self.bounds(rank)
        global_indices = np.asarray(global_indices, dtype=np.int64)
        if global_indices.size and (
            global_indices.min() < lo or global_indices.max() >= hi
        ):
            raise PartitionError(f"indices not all owned by rank {rank}")
        return global_indices - lo

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.n_nodes:
            raise PartitionError(f"rank {rank} outside [0, {self.n_nodes})")

    # ----------------------------------------------------------------- plumbing

    def __eq__(self, other: object) -> bool:
        if other is self:
            return True
        return isinstance(other, BlockRowPartition) and np.array_equal(
            self.offsets, other.offsets
        )

    def __hash__(self) -> int:
        return hash(self.offsets.tobytes())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BlockRowPartition(n={self.n}, n_nodes={self.n_nodes})"
