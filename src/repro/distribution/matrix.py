"""Distributed sparse matrices under a block-row partition.

The *dynamic* data of the solver lives in distributed vectors; the
matrix is **static** data which, following the paper, survives failures
("the reconstruction procedure assumes that the static solver data can
be retrieved from safe storage").  :class:`DistributedMatrix` therefore
keeps the global CSR form (the safe-storage master copy, used for
reconstruction and diagnostics) alongside the per-node column-compressed
row blocks used by the actual distributed product.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np
import scipy.sparse as sp

from ..cluster.communicator import VirtualCluster
from ..exceptions import ConfigurationError
from .comm_plan import SpMVPlan
from .partition import BlockRowPartition


class DistributedMatrix:
    """A square sparse matrix distributed by block rows."""

    def __init__(
        self,
        cluster: VirtualCluster,
        partition: BlockRowPartition,
        matrix: sp.spmatrix,
    ):
        if partition.n_nodes != cluster.n_nodes:
            raise ConfigurationError(
                f"partition has {partition.n_nodes} blocks, cluster has {cluster.n_nodes} nodes"
            )
        csr = sp.csr_matrix(matrix)
        if csr.shape[0] != csr.shape[1]:
            raise ConfigurationError(f"matrix must be square, got {csr.shape}")
        if csr.shape[0] != partition.n:
            raise ConfigurationError(
                f"matrix is {csr.shape[0]}x{csr.shape[0]}, partition expects {partition.n}"
            )
        self.cluster = cluster
        self.partition = partition
        #: Safe-storage master copy (static data; survives node failures).
        self.global_csr = csr
        self.plan = SpMVPlan(csr, partition)

    # ------------------------------------------------------------------ queries

    @property
    def n(self) -> int:
        return self.partition.n

    @property
    def nnz(self) -> int:
        return int(self.global_csr.nnz)

    def local_nnz(self, rank: int) -> int:
        """Non-zeros of rank's row block (for flop accounting)."""
        return self.plan.local_nnz[rank]

    def row_block(self, ranks: Iterable[int]) -> sp.csr_matrix:
        """``A[I_f, :]`` for a set of ranks — retrieved from safe storage."""
        indices = self.partition.indices_of(ranks)
        return self.global_csr[indices, :].tocsr()

    def submatrix(self, ranks: Iterable[int]) -> sp.csr_matrix:
        """``A[I_f, I_f]`` — the inner system operator of Alg. 2 line 8."""
        indices = self.partition.indices_of(ranks)
        return self.global_csr[np.ix_(indices, indices)].tocsr()

    def coupling_block(self, ranks: Iterable[int]) -> sp.csr_matrix:
        """``A[I_f, I \\ I_f]`` — couples lost rows to surviving entries."""
        lost = self.partition.indices_of(ranks)
        kept = self.partition.complement_indices(ranks)
        return self.global_csr[np.ix_(lost, kept)].tocsr()

    def diagonal_block(self, rank: int) -> sp.csr_matrix:
        """``A[I_s, I_s]`` for one rank (used by block preconditioners)."""
        lo, hi = self.partition.bounds(rank)
        return self.global_csr[lo:hi, lo:hi].tocsr()

    def diagonal(self) -> np.ndarray:
        """The matrix diagonal (used by the Jacobi preconditioner)."""
        return self.global_csr.diagonal()

    def bandwidth(self) -> int:
        """Maximum |i - j| over stored non-zeros (sparsity bandedness)."""
        coo = self.global_csr.tocoo()
        if coo.nnz == 0:
            return 0
        return int(np.abs(coo.row - coo.col).max())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DistributedMatrix(n={self.n}, nnz={self.nnz}, "
            f"n_nodes={self.partition.n_nodes})"
        )
