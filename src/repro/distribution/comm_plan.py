"""Communication plan for the distributed sparse matrix-vector product.

Given a sparse matrix ``A`` and a block-row partition, node ``l`` needs,
besides its own block of the input vector, the entries of ``p`` whose
global indices appear as *off-block column indices* in its row block
``A[I_l, :]``.  The paper calls the set of indices owned by ``s`` and
needed by ``l`` the set ``I_{s,l}`` (§2.2.1); these sets drive both the
plain SpMV halo exchange and the redundancy analysis of the augmented
SpMV.

:class:`SpMVPlan` precomputes, once per (matrix, partition):

* for every ordered pair ``(s, l)``: the global indices ``I_{s,l}``,
  their local offsets in ``s``'s block (for packing), and their
  positions in ``l``'s ghost buffer (for unpacking);
* for every node: the sorted ghost-column index list and a
  column-compressed local CSR matrix whose columns are
  ``[own block | ghost block]``, so the local product is a single
  ``csr @ dense`` call.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import scipy.sparse as sp

from ..exceptions import ConfigurationError
from .partition import BlockRowPartition


@dataclasses.dataclass(frozen=True)
class SendDescriptor:
    """One (src → dst) leg of the halo exchange."""

    src: int
    dst: int
    #: Global indices ``I_{src,dst}`` (sorted ascending).
    global_indices: np.ndarray
    #: The same indices as offsets into src's local block.
    local_indices: np.ndarray
    #: Positions of these entries inside dst's ghost buffer.
    ghost_positions: np.ndarray

    @property
    def count(self) -> int:
        return int(self.global_indices.size)


class SpMVPlan:
    """Precomputed halo-exchange plan for one (matrix, partition) pair."""

    def __init__(self, matrix: sp.csr_matrix, partition: BlockRowPartition):
        matrix = sp.csr_matrix(matrix)
        if matrix.shape[0] != matrix.shape[1]:
            raise ConfigurationError(f"matrix must be square, got {matrix.shape}")
        if matrix.shape[0] != partition.n:
            raise ConfigurationError(
                f"matrix is {matrix.shape[0]}x{matrix.shape[0]}, partition expects {partition.n}"
            )
        self.partition = partition
        n_nodes = partition.n_nodes

        #: sends[src] = list of SendDescriptor, ordered by dst.
        self.sends: list[list[SendDescriptor]] = [[] for _ in range(n_nodes)]
        #: recvs[dst] = list of SendDescriptor, ordered by src (same objects).
        self.recvs: list[list[SendDescriptor]] = [[] for _ in range(n_nodes)]
        #: ghost_globals[dst] = sorted global indices of dst's ghost columns.
        self.ghost_globals: list[np.ndarray] = []
        #: local_matrices[rank] = column-compressed CSR of A[I_rank, :].
        self.local_matrices: list[sp.csr_matrix] = []
        #: nnz of each row block (for flop accounting).
        self.local_nnz: list[int] = []

        descriptors: dict[tuple[int, int], dict[str, np.ndarray]] = {}
        for dst in range(n_nodes):
            lo, hi = partition.bounds(dst)
            block = matrix[lo:hi, :].tocsr()
            self.local_nnz.append(int(block.nnz))
            needed = np.unique(block.indices)
            ghosts = needed[(needed < lo) | (needed >= hi)]
            self.ghost_globals.append(ghosts.astype(np.int64))

            # Column compression: [own | ghosts] -> local column ids.
            col_map = np.empty(partition.n, dtype=np.int64)
            n_local = hi - lo
            col_map[lo:hi] = np.arange(n_local)
            col_map[ghosts] = n_local + np.arange(ghosts.size)
            compressed = sp.csr_matrix(
                (block.data, col_map[block.indices], block.indptr),
                shape=(n_local, n_local + ghosts.size),
            )
            self.local_matrices.append(compressed)

            if ghosts.size:
                owners = partition.owners(ghosts)
                boundaries = np.flatnonzero(np.diff(owners)) + 1
                for chunk_idx, chunk in zip(
                    np.split(np.arange(ghosts.size), boundaries),
                    np.split(ghosts, boundaries),
                ):
                    src = int(owners[chunk_idx[0]])
                    descriptors[(src, dst)] = {
                        "global": chunk,
                        "positions": chunk_idx,
                    }

        for (src, dst), payload in sorted(descriptors.items()):
            descriptor = SendDescriptor(
                src=src,
                dst=dst,
                global_indices=payload["global"],
                local_indices=partition.to_local(src, payload["global"]),
                ghost_positions=payload["positions"],
            )
            self.sends[src].append(descriptor)
            self.recvs[dst].append(descriptor)

        # Fused-kernel caches (built lazily; see the accessors below).
        self._flat_cache: FlatPlanCache | None = None
        self._message_templates: dict[str, tuple] = {}
        #: channel -> CompiledExchange (valid for the owning cluster;
        #: a plan lives inside one DistributedMatrix, which binds it to
        #: exactly one cluster).
        self._compiled_exchanges: dict[str, object] = {}

    # ------------------------------------------------------------------ queries

    @property
    def n_nodes(self) -> int:
        return self.partition.n_nodes

    def halo_indices(self, src: int, dst: int) -> np.ndarray:
        """``I_{src,dst}``: global indices src sends to dst (may be empty)."""
        for descriptor in self.sends[src]:
            if descriptor.dst == dst:
                return descriptor.global_indices
        return np.empty(0, dtype=np.int64)

    def natural_destinations(self, src: int) -> tuple[int, ...]:
        """Nodes that receive a (non-empty) natural halo message from src."""
        return tuple(d.dst for d in self.sends[src] if d.count > 0)

    def multiplicity(self, src: int) -> np.ndarray:
        """m(i) for every local index of src.

        m(i) is the number of nodes that entry i is sent to during the
        plain SpMV (§2.2.1); entries with m(i) == 0 would have no
        off-node copy at all without augmentation.
        """
        counts = np.zeros(self.partition.size_of(src), dtype=np.int64)
        for descriptor in self.sends[src]:
            counts[descriptor.local_indices] += 1
        return counts

    def total_halo_entries(self) -> int:
        """Total vector entries moved per SpMV (all node pairs)."""
        return sum(d.count for sends in self.sends for d in sends)

    # --------------------------------------------------- fused-kernel caches

    def flat_cache(self) -> "FlatPlanCache":
        """Precomputed gather indices and the stacked operator.

        Built once per plan on first use by the ``vectorized`` kernel
        backend; see :class:`FlatPlanCache` for the invariants that make
        the fused execution bit-identical to the per-rank loops.
        """
        if self._flat_cache is None:
            self._flat_cache = FlatPlanCache(self)
        return self._flat_cache

    def message_template(self, channel: str) -> tuple:
        """The halo exchange's message list, precomputed per channel.

        Identical — same order, same ``(src, dst, nbytes, channel,
        merged)`` tuples — to the list the per-rank loop assembles on
        every call: for each source rank in ascending order, one entry
        per non-empty send descriptor.
        """
        template = self._message_templates.get(channel)
        if template is None:
            template = tuple(
                (src, d.dst, d.count * 8, channel, False)
                for src in range(self.n_nodes)
                for d in self.sends[src]
                if d.count > 0
            )
            self._message_templates[channel] = template
        return template


class FlatPlanCache:
    """Index/operator caches for the fused (vectorized) SpMV.

    * ``ghost_offsets[r]`` — where rank ``r``'s ghost buffer begins in
      the fused ghost array (rank-major, each buffer in sorted
      ghost-index order, exactly like the per-rank buffers).
    * ``ghost_gather`` — global indices such that
      ``ghost_flat = x_flat[ghost_gather]`` fills every rank's ghost
      buffer in one gather.  Each ghost entry has exactly one owner, so
      this covers the fused buffer exactly once and yields the same
      values the per-descriptor scatter produces.
    * ``stacked_matrix`` — the ``(n, n + G)`` CSR operator whose rows
      are the per-rank column-compressed row blocks with columns
      remapped onto ``[x_flat | ghost_flat]``.  The per-row data order
      of the local matrices is preserved, so
      ``stacked_matrix @ concat(x_flat, ghost_flat)`` accumulates every
      row in the same order as the per-rank products — bit-identical
      results.
    * ``local_flops`` — the per-rank SpMV bill ``(rank, 2 * nnz_r)``
      for the batched :meth:`~repro.cluster.communicator.VirtualCluster.charge`.
    """

    def __init__(self, plan: SpMVPlan):
        partition = plan.partition
        n = partition.n
        sizes = [int(g.size) for g in plan.ghost_globals]
        self.ghost_offsets = np.concatenate([[0], np.cumsum(sizes)]).astype(np.int64)
        self.total_ghosts = int(self.ghost_offsets[-1])
        self.ghost_gather = (
            np.concatenate(plan.ghost_globals)
            if self.total_ghosts
            else np.empty(0, dtype=np.int64)
        ).astype(np.int64)

        data_parts: list[np.ndarray] = []
        index_parts: list[np.ndarray] = []
        indptr_parts: list[np.ndarray] = [np.zeros(1, dtype=np.int64)]
        running = 0
        for rank, local in enumerate(plan.local_matrices):
            lo, hi = partition.bounds(rank)
            n_local = hi - lo
            cols = local.indices.astype(np.int64)
            remapped = np.where(
                cols < n_local,
                cols + lo,
                cols - n_local + n + int(self.ghost_offsets[rank]),
            )
            data_parts.append(local.data)
            index_parts.append(remapped)
            indptr_parts.append(local.indptr[1:].astype(np.int64) + running)
            running += int(local.indptr[-1])
        self.stacked_matrix = sp.csr_matrix(
            (
                np.concatenate(data_parts) if data_parts else np.empty(0),
                np.concatenate(index_parts) if index_parts else np.empty(0, dtype=np.int64),
                np.concatenate(indptr_parts),
            ),
            shape=(n, n + self.total_ghosts),
        )
        self.local_flops = tuple(
            (rank, 2 * int(nnz)) for rank, nnz in enumerate(plan.local_nnz)
        )
        self._fused_matrix: sp.csr_matrix | None = None

    def fused_matrix(self) -> sp.csr_matrix:
        """The ``(n, n)`` operator with the plan's per-row data order.

        Remaps the stacked operator's ghost columns through
        ``ghost_gather`` (each ghost column reads the entry its gather
        would have copied), so ``fused_matrix @ x_flat`` needs neither
        the ghost gather nor the stacked-input copy — halo assembly and
        matvec collapse into one traversal.  Per-row data order (and
        with it every row's summation order) is untouched, so the
        product is bit-identical to the stacked one.  Built lazily: only
        the ``compiled`` backend pays for the second index array.
        """
        if self._fused_matrix is None:
            stacked = self.stacked_matrix
            n = stacked.shape[0]
            indices = stacked.indices.astype(np.int64, copy=True)
            ghost = indices >= n
            if ghost.any():
                indices[ghost] = self.ghost_gather[indices[ghost] - n]
            self._fused_matrix = sp.csr_matrix(
                (stacked.data, indices, stacked.indptr), shape=(n, n)
            )
        return self._fused_matrix
