"""Communication plan for the distributed sparse matrix-vector product.

Given a sparse matrix ``A`` and a block-row partition, node ``l`` needs,
besides its own block of the input vector, the entries of ``p`` whose
global indices appear as *off-block column indices* in its row block
``A[I_l, :]``.  The paper calls the set of indices owned by ``s`` and
needed by ``l`` the set ``I_{s,l}`` (§2.2.1); these sets drive both the
plain SpMV halo exchange and the redundancy analysis of the augmented
SpMV.

:class:`SpMVPlan` precomputes, once per (matrix, partition):

* for every ordered pair ``(s, l)``: the global indices ``I_{s,l}``,
  their local offsets in ``s``'s block (for packing), and their
  positions in ``l``'s ghost buffer (for unpacking);
* for every node: the sorted ghost-column index list and a
  column-compressed local CSR matrix whose columns are
  ``[own block | ghost block]``, so the local product is a single
  ``csr @ dense`` call.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import scipy.sparse as sp

from ..exceptions import ConfigurationError
from .partition import BlockRowPartition


@dataclasses.dataclass(frozen=True)
class SendDescriptor:
    """One (src → dst) leg of the halo exchange."""

    src: int
    dst: int
    #: Global indices ``I_{src,dst}`` (sorted ascending).
    global_indices: np.ndarray
    #: The same indices as offsets into src's local block.
    local_indices: np.ndarray
    #: Positions of these entries inside dst's ghost buffer.
    ghost_positions: np.ndarray

    @property
    def count(self) -> int:
        return int(self.global_indices.size)


class SpMVPlan:
    """Precomputed halo-exchange plan for one (matrix, partition) pair."""

    def __init__(self, matrix: sp.csr_matrix, partition: BlockRowPartition):
        matrix = sp.csr_matrix(matrix)
        if matrix.shape[0] != matrix.shape[1]:
            raise ConfigurationError(f"matrix must be square, got {matrix.shape}")
        if matrix.shape[0] != partition.n:
            raise ConfigurationError(
                f"matrix is {matrix.shape[0]}x{matrix.shape[0]}, partition expects {partition.n}"
            )
        self.partition = partition
        n_nodes = partition.n_nodes

        #: sends[src] = list of SendDescriptor, ordered by dst.
        self.sends: list[list[SendDescriptor]] = [[] for _ in range(n_nodes)]
        #: recvs[dst] = list of SendDescriptor, ordered by src (same objects).
        self.recvs: list[list[SendDescriptor]] = [[] for _ in range(n_nodes)]
        #: ghost_globals[dst] = sorted global indices of dst's ghost columns.
        self.ghost_globals: list[np.ndarray] = []
        #: local_matrices[rank] = column-compressed CSR of A[I_rank, :].
        self.local_matrices: list[sp.csr_matrix] = []
        #: nnz of each row block (for flop accounting).
        self.local_nnz: list[int] = []

        descriptors: dict[tuple[int, int], dict[str, np.ndarray]] = {}
        for dst in range(n_nodes):
            lo, hi = partition.bounds(dst)
            block = matrix[lo:hi, :].tocsr()
            self.local_nnz.append(int(block.nnz))
            needed = np.unique(block.indices)
            ghosts = needed[(needed < lo) | (needed >= hi)]
            self.ghost_globals.append(ghosts.astype(np.int64))

            # Column compression: [own | ghosts] -> local column ids.
            col_map = np.empty(partition.n, dtype=np.int64)
            n_local = hi - lo
            col_map[lo:hi] = np.arange(n_local)
            col_map[ghosts] = n_local + np.arange(ghosts.size)
            compressed = sp.csr_matrix(
                (block.data, col_map[block.indices], block.indptr),
                shape=(n_local, n_local + ghosts.size),
            )
            self.local_matrices.append(compressed)

            if ghosts.size:
                owners = partition.owners(ghosts)
                boundaries = np.flatnonzero(np.diff(owners)) + 1
                for chunk_idx, chunk in zip(
                    np.split(np.arange(ghosts.size), boundaries),
                    np.split(ghosts, boundaries),
                ):
                    src = int(owners[chunk_idx[0]])
                    descriptors[(src, dst)] = {
                        "global": chunk,
                        "positions": chunk_idx,
                    }

        for (src, dst), payload in sorted(descriptors.items()):
            descriptor = SendDescriptor(
                src=src,
                dst=dst,
                global_indices=payload["global"],
                local_indices=partition.to_local(src, payload["global"]),
                ghost_positions=payload["positions"],
            )
            self.sends[src].append(descriptor)
            self.recvs[dst].append(descriptor)

    # ------------------------------------------------------------------ queries

    @property
    def n_nodes(self) -> int:
        return self.partition.n_nodes

    def halo_indices(self, src: int, dst: int) -> np.ndarray:
        """``I_{src,dst}``: global indices src sends to dst (may be empty)."""
        for descriptor in self.sends[src]:
            if descriptor.dst == dst:
                return descriptor.global_indices
        return np.empty(0, dtype=np.int64)

    def natural_destinations(self, src: int) -> tuple[int, ...]:
        """Nodes that receive a (non-empty) natural halo message from src."""
        return tuple(d.dst for d in self.sends[src] if d.count > 0)

    def multiplicity(self, src: int) -> np.ndarray:
        """m(i) for every local index of src.

        m(i) is the number of nodes that entry i is sent to during the
        plain SpMV (§2.2.1); entries with m(i) == 0 would have no
        off-node copy at all without augmentation.
        """
        counts = np.zeros(self.partition.size_of(src), dtype=np.int64)
        for descriptor in self.sends[src]:
            counts[descriptor.local_indices] += 1
        return counts

    def total_halo_entries(self) -> int:
        """Total vector entries moved per SpMV (all node pairs)."""
        return sum(d.count for sends in self.sends for d in sends)
