"""Distributed sparse matrix-vector product with explicit communication.

``ϱ = SpMV(A, p)`` per the paper: each node packs the vector entries its
neighbours need (per the precomputed :class:`~repro.distribution.comm_plan.SpMVPlan`),
the messages are charged to the virtual cluster, and each node then
multiplies its column-compressed row block against
``[own block | ghost buffer]``.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ConfigurationError
from .matrix import DistributedMatrix
from .vector import DistributedVector

#: Statistics channel for natural halo traffic.
HALO_CHANNEL = "spmv_halo"


class SpMVExecutor:
    """Executes the plain distributed SpMV for one matrix.

    Reusable across iterations: ghost buffers are allocated once.
    """

    def __init__(self, matrix: DistributedMatrix):
        self.matrix = matrix
        self.cluster = matrix.cluster
        self.plan = matrix.plan
        self._ghost_buffers = [
            np.zeros(g.size, dtype=np.float64) for g in self.plan.ghost_globals
        ]

    # ------------------------------------------------------------------ phases

    def exchange_halo(self, x: DistributedVector, channel: str = HALO_CHANNEL) -> None:
        """Phase 1: communicate the ghost entries of ``x``.

        Every non-empty ``I_{src,dst}`` becomes one message of
        ``count * 8`` bytes; the payload really is copied into the
        destination's ghost buffer.  All messages belong to one
        concurrent phase (charged via :meth:`VirtualCluster.exchange`).
        """
        messages = []
        for src in range(self.plan.n_nodes):
            for descriptor in self.plan.sends[src]:
                if descriptor.count == 0:
                    continue
                values = x.blocks[src][descriptor.local_indices]
                messages.append((src, descriptor.dst, values.nbytes, channel, False))
                self._ghost_buffers[descriptor.dst][descriptor.ghost_positions] = values
        if messages:
            self.cluster.exchange(messages)

    def local_multiply(self, x: DistributedVector, out: DistributedVector) -> None:
        """Phase 2: per-node ``A_local @ [own | ghosts]`` with flop billing."""
        for rank in range(self.plan.n_nodes):
            local = self.plan.local_matrices[rank]
            buf = np.concatenate([x.blocks[rank], self._ghost_buffers[rank]])
            out.blocks[rank][:] = local @ buf
            self.cluster.compute(rank, 2 * self.matrix.local_nnz(rank))

    # ------------------------------------------------------------------ public

    def multiply(
        self,
        x: DistributedVector,
        out: DistributedVector | None = None,
        channel: str = HALO_CHANNEL,
    ) -> DistributedVector:
        """``out = A @ x`` with communication and computation charged."""
        if x.partition != self.matrix.partition:
            raise ConfigurationError("vector partition does not match matrix partition")
        if out is None:
            out = DistributedVector(self.matrix.cluster, self.matrix.partition)
        self.exchange_halo(x, channel=channel)
        self.local_multiply(x, out)
        return out
