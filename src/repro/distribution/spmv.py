"""Distributed sparse matrix-vector product with explicit communication.

``ϱ = SpMV(A, p)`` per the paper: each node packs the vector entries its
neighbours need (per the precomputed :class:`~repro.distribution.comm_plan.SpMVPlan`),
the messages are charged to the virtual cluster, and each node then
multiplies its column-compressed row block against
``[own block | ghost buffer]``.

*How* the two phases execute is delegated to the cluster's
compute-kernel backend (:mod:`repro.kernels`): the ``looped`` backend
walks the send descriptors and node blocks one by one; the
``vectorized`` backend performs the ghost fill as a single precomputed
gather and the local products as one stacked CSR matvec, with the same
messages charged and bit-identical results.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ConfigurationError
from .matrix import DistributedMatrix
from .vector import DistributedVector

#: Statistics channel for natural halo traffic.
HALO_CHANNEL = "spmv_halo"


class SpMVExecutor:
    """Executes the plain distributed SpMV for one matrix.

    Reusable across iterations: the ghost buffers are allocated once as
    one fused array (``_ghost_flat``) with per-rank views
    (``_ghost_buffers``), so both kernel backends share the same
    storage.
    """

    def __init__(self, matrix: DistributedMatrix):
        self.matrix = matrix
        self.cluster = matrix.cluster
        self.plan = matrix.plan
        cache = self.plan.flat_cache()
        n = self.matrix.partition.n
        #: Reusable ``[x_flat | ghost_flat]`` input of the stacked
        #: matvec.  The ghost storage *aliases its tail*, so the halo
        #: fill lands directly in matvec position and the per-iteration
        #: ghost copy disappears (the large-n stacked matvec is
        #: memory-bound; every avoided pass over the ghost block counts).
        self._spmv_input = np.zeros(n + cache.total_ghosts, dtype=np.float64)
        self._ghost_flat = self._spmv_input[n:]
        self._ghost_buffers = [
            self._ghost_flat[cache.ghost_offsets[rank] : cache.ghost_offsets[rank + 1]]
            for rank in range(self.plan.n_nodes)
        ]

    @property
    def kernels(self):
        """The cluster's current compute-kernel backend."""
        return self.cluster.kernels

    def compiled_halo(self, channel: str):
        """The halo exchange of ``channel`` as a precompiled phase.

        Compiled once per (plan, channel) against the owning cluster's
        cost model and topology; used by the vectorized backend to
        declare the whole message phase analytically.
        """
        compiled = self.plan._compiled_exchanges.get(channel)
        if compiled is None:
            compiled = self.cluster.compile_exchange(
                self.plan.message_template(channel)
            )
            self.plan._compiled_exchanges[channel] = compiled
        return compiled

    # ------------------------------------------------------------------ phases

    def exchange_halo(self, x: DistributedVector, channel: str = HALO_CHANNEL) -> None:
        """Phase 1: communicate the ghost entries of ``x``.

        Every non-empty ``I_{src,dst}`` becomes one message of
        ``count * 8`` bytes; the payload really is copied into the
        destination's ghost buffer.  All messages belong to one
        concurrent phase (charged via :meth:`VirtualCluster.exchange`).
        """
        self.kernels.halo_exchange(self, x, channel)

    def local_multiply(self, x: DistributedVector, out: DistributedVector) -> None:
        """Phase 2: per-node ``A_local @ [own | ghosts]`` with flop billing."""
        self.kernels.spmv_local(self, x, out)

    # ------------------------------------------------------------------ public

    def multiply(
        self,
        x: DistributedVector,
        out: DistributedVector | None = None,
        channel: str = HALO_CHANNEL,
    ) -> DistributedVector:
        """``out = A @ x`` with communication and computation charged."""
        if x.partition != self.matrix.partition:
            raise ConfigurationError("vector partition does not match matrix partition")
        if out is None:
            out = DistributedVector(self.matrix.cluster, self.matrix.partition)
        self.exchange_halo(x, channel=channel)
        self.local_multiply(x, out)
        return out
