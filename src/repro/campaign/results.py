"""Typed campaign result store: records, persistence, aggregation.

A :class:`CampaignRunRecord` is the flat, JSON/CSV-friendly outcome of
one :class:`~repro.campaign.spec.RunSpec`; a :class:`CampaignResult`
bundles the spec with all records and knows how to

* round-trip itself through JSON (lossless) and CSV (records only),
* aggregate medians per (strategy, T, ϕ, scenario) cell,
* render a Table-2-shaped run-time-overhead comparison.

Records are **canonically ordered**: a :class:`CampaignResult` sorts
its records by run key at construction, so the JSON/CSV it writes is
independent of execution order (serial loop, process pool, or
distributed queue workers finishing in any order all produce the same
bytes).  Records deliberately carry no measured host wall-clock time —
every field is a deterministic function of the :class:`RunSpec`, which
is what makes stored results comparable across runs and lets the queue
collector verify duplicate records by equality.
"""

from __future__ import annotations

import csv
import dataclasses
import json
import pathlib
from typing import Any, Iterable, Mapping

from ..exceptions import ConfigurationError
from ..harness.metrics import median
from .scenarios import ScenarioSpec

#: ``faults[...]`` counter keys (see
#: :class:`~repro.cluster.statistics.ClusterStats`) that count *injected*
#: faults, as opposed to the solver's reactions to them.
_INJECTED_FAULT_KINDS = ("node_failure", "sdc", "churn")


def _cell_median(values: Iterable[Any]) -> float | None:
    """Median over the non-``None`` entries of a cell, ``None`` if empty.

    Stored baseline files may carry ``null`` for fields their code
    revision could not compute (e.g. overheads of a run that never got
    a reference); a report cell over such records renders "no data"
    rather than crashing the whole comparison.
    """
    present = [v for v in values if v is not None]
    return median(present) if present else None


def _faults_injected(stats: Mapping[str, float]) -> float:
    """Total injected-fault count recorded in one run's stats."""
    return sum(
        stats.get(f"faults[{kind}]", 0.0) for kind in _INJECTED_FAULT_KINDS
    )


@dataclasses.dataclass(frozen=True)
class CampaignRunRecord:
    """Outcome of one campaign run (all fields JSON/CSV representable)."""

    run_id: str
    problem: str
    scale: str
    n_nodes: int
    preconditioner: str
    strategy: str
    T: int
    phi: int
    scenario_kind: str
    scenario_params: dict[str, Any]
    repetition: int
    seed: int
    converged: bool
    iterations: int
    executed_iterations: int
    relative_residual: float
    modeled_time: float
    recovery_time: float
    reference_time: float
    reference_iterations: int
    total_overhead: float
    recovery_overhead: float
    n_failures: int
    failure_iterations: tuple[int, ...]
    solution_error: float
    #: Per-channel communication statistics of the virtual cluster
    #: (``bytes[spmv_halo]``, ``messages[aspmv_extra]``, ... — see
    #: :class:`repro.cluster.statistics.ClusterStats`), so
    #: communication-volume regressions can be swept campaign-style.
    stats: dict[str, float] = dataclasses.field(default_factory=dict)
    #: Compute-kernel backend that executed the run (records stored
    #: before backends existed load as the then-only ``"vectorized"``
    #: semantics, i.e. the per-rank reference numerics — the two are
    #: bit-identical by contract, so the label is interchangeable).
    backend: str = "vectorized"

    @property
    def wasted_iterations(self) -> int:
        return self.executed_iterations - self.iterations

    @property
    def scenario_label(self) -> str:
        """Same formatter as :attr:`ScenarioSpec.label` (labels must not drift
        between stored run_ids and freshly aggregated report rows)."""
        return ScenarioSpec.make(self.scenario_kind, **self.scenario_params).label

    def to_dict(self) -> dict[str, Any]:
        data = dataclasses.asdict(self)
        data["failure_iterations"] = list(self.failure_iterations)
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CampaignRunRecord":
        payload = dict(data)
        payload["scenario_params"] = dict(payload.get("scenario_params") or {})
        payload["failure_iterations"] = tuple(
            int(i) for i in payload.get("failure_iterations") or ()
        )
        # Records written before the stats column existed load as {};
        # records without a backend column load as the default backend.
        payload["stats"] = dict(payload.get("stats") or {})
        payload.setdefault("backend", "vectorized")
        # Records written while a measured host wall-clock column still
        # existed load without it (it was nondeterministic noise).
        payload.pop("wall_time", None)
        return cls(**payload)


#: CSV value converters per column (CSV stringifies everything).
_CSV_CONVERTERS: dict[str, Any] = {
    "n_nodes": int,
    "T": int,
    "phi": int,
    "repetition": int,
    "seed": int,
    "iterations": int,
    "executed_iterations": int,
    "reference_iterations": int,
    "n_failures": int,
    "relative_residual": float,
    "modeled_time": float,
    "recovery_time": float,
    "reference_time": float,
    "total_overhead": float,
    "recovery_overhead": float,
    "solution_error": float,
    "converged": lambda raw: raw in ("True", "true", "1"),
    "scenario_params": json.loads,
    "failure_iterations": lambda raw: tuple(int(i) for i in raw.split(";") if i),
    "stats": lambda raw: json.loads(raw) if raw else {},
}


def run_sort_key(record: CampaignRunRecord) -> str:
    """The canonical record order: lexicographic by run id.

    The run id is the stable, fully-resolved run identity (see
    :attr:`~repro.campaign.spec.RunSpec.run_id`), so sorting by it is
    deterministic across processes, hosts and execution order.
    """
    return record.run_id


class CampaignResult:
    """All records of one campaign plus the spec that produced them.

    Records are kept in canonical order (sorted by run key) regardless
    of the order they were produced or loaded in, so two results over
    the same runs always serialise byte-identically.
    """

    def __init__(self, spec: Mapping[str, Any], records: Iterable[CampaignRunRecord]):
        self.spec = dict(spec)
        self.records = sorted(records, key=run_sort_key)

    @classmethod
    def merge(
        cls, spec: Mapping[str, Any], parts: Iterable[Iterable[CampaignRunRecord]]
    ) -> "CampaignResult":
        """Merge record shards (e.g. per-worker queue spools) into one result.

        Duplicate run ids are allowed **only** when the records are
        equal — campaign records are deterministic functions of their
        :class:`RunSpec`, so a crash-recovered re-execution of an
        already-spooled task yields the identical record; anything else
        is a determinism bug worth failing loudly on.
        """
        by_id: dict[str, CampaignRunRecord] = {}
        for part in parts:
            for record in part:
                existing = by_id.get(record.run_id)
                if existing is None:
                    by_id[record.run_id] = record
                elif existing != record:
                    raise ConfigurationError(
                        f"conflicting duplicate records for run {record.run_id!r} "
                        "(two shards disagree; campaign runs are expected to be "
                        "deterministic)"
                    )
        return cls(spec=spec, records=by_id.values())

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    @property
    def name(self) -> str:
        return str(self.spec.get("name", "campaign"))

    # ----------------------------------------------------------- persistence

    def to_json(self, path) -> pathlib.Path:
        path = pathlib.Path(path)
        payload = {
            "spec": self.spec,
            "records": [record.to_dict() for record in self.records],
        }
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        return path

    @classmethod
    def from_json(cls, path) -> "CampaignResult":
        try:
            payload = json.loads(pathlib.Path(path).read_text())
        except OSError as exc:
            raise ConfigurationError(f"cannot read campaign results {path}: {exc}") from exc
        except json.JSONDecodeError as exc:
            raise ConfigurationError(f"{path} is not valid campaign JSON: {exc}") from exc
        return cls(
            spec=payload.get("spec", {}),
            records=[CampaignRunRecord.from_dict(r) for r in payload.get("records", [])],
        )

    def to_csv(self, path) -> pathlib.Path:
        path = pathlib.Path(path)
        fields = [f.name for f in dataclasses.fields(CampaignRunRecord)]
        with path.open("w", newline="") as handle:
            writer = csv.DictWriter(handle, fieldnames=fields)
            writer.writeheader()
            for record in self.records:
                row = record.to_dict()
                row["scenario_params"] = json.dumps(
                    record.scenario_params, sort_keys=True
                )
                row["failure_iterations"] = ";".join(
                    str(i) for i in record.failure_iterations
                )
                row["stats"] = json.dumps(record.stats, sort_keys=True)
                writer.writerow(row)
        return path

    @classmethod
    def from_csv(cls, path, spec: Mapping[str, Any] | None = None) -> "CampaignResult":
        records = []
        try:
            handle = pathlib.Path(path).open(newline="")
        except OSError as exc:
            raise ConfigurationError(f"cannot read campaign CSV {path}: {exc}") from exc
        with handle:
            for row in csv.DictReader(handle):
                payload = {
                    key: _CSV_CONVERTERS.get(key, str)(value)
                    for key, value in row.items()
                }
                records.append(CampaignRunRecord.from_dict(payload))
        return cls(spec=spec or {}, records=records)

    # ----------------------------------------------------------- aggregation

    def problems(self) -> tuple[str, ...]:
        return tuple(sorted({r.problem for r in self.records}))

    def overhead_rows(self, problem: str | None = None) -> list[dict[str, Any]]:
        """Median overheads per (strategy, T, scenario, ϕ) cell.

        The campaign analogue of the paper's Table-2 cells: each row
        carries the median total overhead vs. the reference solver and
        the median reconstruction (recovery) overhead, over the
        repetitions that landed in the cell.
        """
        groups: dict[tuple, list[CampaignRunRecord]] = {}
        for record in self.records:
            if problem is not None and record.problem != problem:
                continue
            if record.strategy == "reference":
                continue
            key = (
                record.strategy,
                record.T,
                record.scenario_label,
                record.phi,
                record.backend,
            )
            groups.setdefault(key, []).append(record)
        rows = []
        for (strategy, T, scenario, phi, backend), cell in sorted(groups.items()):
            rows.append(
                {
                    "strategy": strategy,
                    "T": T,
                    "scenario": scenario,
                    "phi": phi,
                    "backend": backend,
                    "runs": len(cell),
                    "converged": all(r.converged for r in cell),
                    "total_overhead": _cell_median([r.total_overhead for r in cell]),
                    "recovery_overhead": _cell_median(
                        [r.recovery_overhead for r in cell]
                    ),
                    "wasted_iterations": _cell_median(
                        [float(r.wasted_iterations) for r in cell]
                    ),
                    "faults_injected": _cell_median(
                        [_faults_injected(r.stats) for r in cell]
                    ),
                    "faults_detected": _cell_median(
                        [r.stats.get("faults[sdc_detected]", 0.0) for r in cell]
                    ),
                    "rollbacks": _cell_median(
                        [r.stats.get("faults[rollback]", 0.0) for r in cell]
                    ),
                }
            )
        return rows

    def backends(self) -> tuple[str, ...]:
        """Distinct kernel backends appearing in the records."""
        return tuple(sorted({r.backend for r in self.records}))

    def communication_rows(self, problem: str | None = None) -> list[dict[str, Any]]:
        """Median per-channel traffic per (strategy, T, scenario, ϕ) cell.

        One row per cell and channel, with median byte and message
        counts over the repetitions — the sweepable form of the
        :class:`~repro.cluster.statistics.ClusterStats` channels
        (``spmv_halo``, ``aspmv_extra``, ``checkpoint``, ...).
        """
        groups: dict[tuple, list[CampaignRunRecord]] = {}
        for record in self.records:
            if problem is not None and record.problem != problem:
                continue
            if not record.stats:
                continue
            key = (
                record.strategy,
                record.T,
                record.scenario_label,
                record.phi,
                record.backend,
            )
            groups.setdefault(key, []).append(record)
        rows = []
        for (strategy, T, scenario, phi, backend), cell in sorted(groups.items()):
            channels = sorted(
                {
                    key[len("bytes["):-1]
                    for record in cell
                    for key in record.stats
                    if key.startswith("bytes[")
                }
            )
            for channel in channels:
                rows.append(
                    {
                        "strategy": strategy,
                        "T": T,
                        "scenario": scenario,
                        "phi": phi,
                        "backend": backend,
                        "channel": channel,
                        "runs": len(cell),
                        "bytes": median(
                            [r.stats.get(f"bytes[{channel}]", 0.0) for r in cell]
                        ),
                        "messages": median(
                            [r.stats.get(f"messages[{channel}]", 0.0) for r in cell]
                        ),
                    }
                )
        return rows

    # -------------------------------------------------------------- comparison

    def compare(
        self, baseline: "CampaignResult", problem: str | None = None
    ) -> list[dict[str, Any]]:
        """Per-cell overhead deltas of ``self`` against a ``baseline``.

        The A/B view for two stored campaign result files (two code
        revisions, two machine models): cells are matched on
        (strategy, T, scenario, ϕ, backend); each row carries both
        medians and their difference in percentage points (``None``
        where a cell exists on only one side).
        """
        ours = {
            (r["strategy"], r["T"], r["scenario"], r["phi"], r["backend"]): r
            for r in self.overhead_rows(problem)
        }
        theirs = {
            (r["strategy"], r["T"], r["scenario"], r["phi"], r["backend"]): r
            for r in baseline.overhead_rows(problem)
        }
        rows: list[dict[str, Any]] = []
        for key in sorted(set(ours) | set(theirs)):
            strategy, T, scenario, phi, backend = key
            a, b = ours.get(key), theirs.get(key)

            def _side(row, field: str):
                # ``.get``: rows computed from old stored baselines may
                # lack newer columns; the cell then reads "no data"
                # instead of raising.
                return row.get(field) if row else None

            def _delta(field: str):
                va, vb = _side(a, field), _side(b, field)
                if va is None or vb is None:
                    return None
                return va - vb

            rows.append(
                {
                    "strategy": strategy,
                    "T": T,
                    "scenario": scenario,
                    "phi": phi,
                    "backend": backend,
                    "runs": a["runs"] if a else 0,
                    "baseline_runs": b["runs"] if b else 0,
                    "total_overhead": _side(a, "total_overhead"),
                    "baseline_total_overhead": _side(b, "total_overhead"),
                    "delta_total_overhead": _delta("total_overhead"),
                    "recovery_overhead": _side(a, "recovery_overhead"),
                    "baseline_recovery_overhead": _side(b, "recovery_overhead"),
                    "delta_recovery_overhead": _delta("recovery_overhead"),
                }
            )
        return rows

    def compare_communication(
        self, baseline: "CampaignResult", problem: str | None = None
    ) -> list[dict[str, Any]]:
        """Per-cell, per-channel communication-volume deltas vs. a baseline.

        The communication analogue of :meth:`compare`: cells are
        matched on (strategy, T, scenario, ϕ, backend, channel); each
        row carries the median byte/message counts of both sides and
        their absolute and relative deltas (``None`` where a cell
        exists on only one side; relative deltas are against the
        baseline volume and ``None`` when the baseline is zero).
        """
        def keyed(result: "CampaignResult") -> dict[tuple, dict[str, Any]]:
            return {
                (
                    r["strategy"], r["T"], r["scenario"], r["phi"],
                    r["backend"], r["channel"],
                ): r
                for r in result.communication_rows(problem)
            }

        ours, theirs = keyed(self), keyed(baseline)
        rows: list[dict[str, Any]] = []
        for key in sorted(set(ours) | set(theirs)):
            strategy, T, scenario, phi, backend, channel = key
            a, b = ours.get(key), theirs.get(key)

            def _delta(field: str):
                if a is None or b is None:
                    return None
                return a[field] - b[field]

            def _ratio(field: str):
                if a is None or b is None or not b[field]:
                    return None
                return (a[field] - b[field]) / b[field]

            rows.append(
                {
                    "strategy": strategy,
                    "T": T,
                    "scenario": scenario,
                    "phi": phi,
                    "backend": backend,
                    "channel": channel,
                    "runs": a["runs"] if a else 0,
                    "baseline_runs": b["runs"] if b else 0,
                    "bytes": a["bytes"] if a else None,
                    "baseline_bytes": b["bytes"] if b else None,
                    "delta_bytes": _delta("bytes"),
                    "rel_bytes": _ratio("bytes"),
                    "messages": a["messages"] if a else None,
                    "baseline_messages": b["messages"] if b else None,
                    "delta_messages": _delta("messages"),
                    "rel_messages": _ratio("messages"),
                }
            )
        return rows

    def render_communication_comparison(self, baseline: "CampaignResult") -> str:
        """A/B text report of per-channel communication volumes."""
        lines = [
            f"communication volume: campaign {self.name!r} vs. "
            f"baseline {baseline.name!r}"
        ]
        problems = tuple(sorted(set(self.problems()) | set(baseline.problems())))
        multi_backend = len(set(self.backends()) | set(baseline.backends())) > 1
        for problem in problems:
            rows = self.compare_communication(baseline, problem=problem)
            if not rows:
                continue
            if multi_backend:
                rows = [
                    {**row, "scenario": f"{row['scenario']} [{row['backend']}]"}
                    for row in rows
                ]
            lines.append("")
            lines.append(f"problem {problem}")
            header = (
                f"{'Strategy':9s} {'T':>4s} | {'Scenario':34s} | {'phi':>3s} | "
                f"{'Channel':12s} | {'bytes':>12s} {'base':>12s} {'Δ%':>7s} | "
                f"{'msgs':>9s} {'base':>9s} {'Δ%':>7s}"
            )
            lines.append(header)
            lines.append("-" * len(header))

            def num(value, width):
                return f"{value:{width}.0f}" if value is not None else " " * (width - 1) + "-"

            def pct(value, width=7):
                return f"{100 * value:{width}.2f}" if value is not None else " " * (width - 1) + "-"

            for row in rows:
                lines.append(
                    f"{row['strategy']:9s} {row['T']:>4d} | {row['scenario']:34s} | "
                    f"{row['phi']:>3d} | {row['channel']:12s} | "
                    f"{num(row['bytes'], 12)} {num(row['baseline_bytes'], 12)} "
                    f"{pct(row['rel_bytes'])} | "
                    f"{num(row['messages'], 9)} {num(row['baseline_messages'], 9)} "
                    f"{pct(row['rel_messages'])}"
                )
        if len(lines) == 1:
            lines.append("")
            lines.append("no per-channel statistics found in either campaign")
        return "\n".join(lines)

    def render_comparison(self, baseline: "CampaignResult") -> str:
        """A/B text report: per-cell overhead deltas against ``baseline``."""
        if not self.records and not baseline.records:
            raise ConfigurationError("both campaigns are empty; nothing to compare")
        lines = [
            f"campaign {self.name!r} ({len(self.records)} runs) vs. "
            f"baseline {baseline.name!r} ({len(baseline.records)} runs)"
        ]
        problems = tuple(sorted(set(self.problems()) | set(baseline.problems())))
        multi_backend = len(set(self.backends()) | set(baseline.backends())) > 1
        for problem in problems:
            rows = self.compare(baseline, problem=problem)
            if not rows:
                continue
            if multi_backend:
                rows = [
                    {**row, "scenario": f"{row['scenario']} [{row['backend']}]"}
                    for row in rows
                ]
            lines.append("")
            lines.append(f"problem {problem}")
            header = (
                f"{'Strategy':9s} {'T':>4s} | {'Scenario':34s} | {'phi':>3s} | "
                f"{'total%':>8s} {'base%':>8s} {'Δpp':>7s} | "
                f"{'recov%':>8s} {'base%':>8s} {'Δpp':>7s}"
            )
            lines.append(header)
            lines.append("-" * len(header))

            def cell(value, scale=100.0, width=8):
                return f"{scale * value:{width}.2f}" if value is not None else " " * (width - 1) + "-"

            for row in rows:
                lines.append(
                    f"{row['strategy']:9s} {row['T']:>4d} | {row['scenario']:34s} | "
                    f"{row['phi']:>3d} | "
                    f"{cell(row['total_overhead'])} "
                    f"{cell(row['baseline_total_overhead'])} "
                    f"{cell(row['delta_total_overhead'], width=7)} | "
                    f"{cell(row['recovery_overhead'])} "
                    f"{cell(row['baseline_recovery_overhead'])} "
                    f"{cell(row['delta_recovery_overhead'], width=7)}"
                )
        if len(lines) == 1:
            lines.append("")
            lines.append("no overlapping or comparable cells found")
        return "\n".join(lines)

    # -------------------------------------------------------------- rendering

    def render_summary(self) -> str:
        """Table-2-shaped text report: overheads per strategy/T/scenario/ϕ."""
        if not self.records:
            raise ConfigurationError("campaign has no records to summarise")
        lines: list[str] = []
        converged = sum(1 for r in self.records if r.converged)
        lines.append(
            f"campaign {self.name!r}: {len(self.records)} runs, "
            f"{converged} converged"
        )
        for problem in self.problems():
            sample = next(r for r in self.records if r.problem == problem)
            t0 = (
                f"{sample.reference_time:.4g} s"
                if sample.reference_time is not None
                else "-"
            )
            lines.append("")
            lines.append(
                f"problem {problem} (scale={sample.scale}, N={sample.n_nodes}, "
                f"t0 = {t0}, C = {sample.reference_iterations})"
            )
            phis = sorted(
                {r.phi for r in self.records
                 if r.problem == problem and r.strategy != "reference"}
            )
            total_hdr = " ".join(f"phi={phi:<3d}" for phi in phis)
            header = (
                f"{'Strategy':9s} {'T':>4s} | {'Scenario':34s} | "
                f"{'Total overhead [%]':^{max(len(total_hdr), 20)}s} | "
                f"{'Reconstruction [%]':^{max(len(total_hdr), 20)}s} | "
                f"{'wasted':>7s} | {'inj':>5s} {'det':>5s} {'rb':>5s}"
            )
            lines.append(header)
            lines.append("-" * len(header))
            rows = self.overhead_rows(problem)
            multi_backend = len(self.backends()) > 1
            cells: dict[tuple, dict[int, dict]] = {}
            for row in rows:
                scenario = row["scenario"]
                if multi_backend:
                    scenario = f"{scenario} [{row['backend']}]"
                key = (row["strategy"], row["T"], scenario)
                cells.setdefault(key, {})[row["phi"]] = row
            last_strategy_T = None
            for (strategy, T, scenario), by_phi in sorted(
                cells.items(), key=lambda item: (item[0][0] != "esr", item[0])
            ):
                label = "ESR" if strategy == "esr" and T == 1 else strategy.upper()
                first = (strategy, T) != last_strategy_T
                last_strategy_T = (strategy, T)

                def band(field: str) -> str:
                    # One cell per ϕ; "no data" for an absent ϕ *or* a
                    # cell whose median could not be computed (all-None
                    # records from an old baseline file).
                    cells = []
                    for phi in phis:
                        value = by_phi.get(phi, {}).get(field)
                        cells.append(
                            f"{100 * value:6.1f} " if value is not None else "    -  "
                        )
                    return " ".join(cells)

                def peak(field: str) -> float:
                    return max(
                        (
                            row[field]
                            for row in by_phi.values()
                            if row.get(field) is not None
                        ),
                        default=0.0,
                    )

                total = band("total_overhead")
                rec = band("recovery_overhead")
                lines.append(
                    f"{label if first else '':9s} {(str(T) if first else ''):>4s} | "
                    f"{scenario:34s} | "
                    f"{total:^{max(len(total_hdr), 20)}s} | "
                    f"{rec:^{max(len(total_hdr), 20)}s} | "
                    f"{peak('wasted_iterations'):7.1f} | "
                    f"{peak('faults_injected'):5.1f} "
                    f"{peak('faults_detected'):5.1f} "
                    f"{peak('rollbacks'):5.1f}"
                )
        return "\n".join(lines)
