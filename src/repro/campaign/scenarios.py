"""Failure-scenario generators for campaign sweeps.

A scenario spec names a *generator kind* plus its parameters; the
concrete :class:`~repro.cluster.failures.FailureSchedule` is resolved
per run, because the paper anchors failure timing to the reference
iteration count C of the problem at hand ("the interval containing
iteration C/2", MTBF expressed in iterations, ...).

Kinds
-----
``failure_free``
    No failures (baseline / failure-free-overhead rows).
``worst_case``
    The paper's §5 protocol: one contiguous block of ψ = ϕ ranks fails
    two iterations before the end of the checkpoint interval containing
    C/2 (placement from :func:`repro.harness.runner.place_worst_case_failure`).
``fraction``
    One contiguous-block failure at iteration ``fraction * C``.
``multi_node``
    Simultaneous multi-node failure (arXiv:1907.13077 regime): a block
    of ``width`` ranks fails at once at a chosen iteration fraction.
``storm``
    ``count`` separate failure events spread evenly over the solve,
    with rotating block positions (the repeated-failure stress regime).
``mtbf``
    Exponential inter-arrival (Poisson) schedule driven by a mean time
    between failures expressed in iterations or as a fraction of C.
``sdc``
    Silent-data-corruption strikes from seeded per-node Bernoulli
    trials (:class:`repro.faults.sdc.SDCModel`); pair with the ``pv``
    detection strategies.
``lossy``
    Fail-stop events that exercise lossy-checkpoint restores, carrying
    the compressor's ``error_bound``/``ratio`` parameters
    (:class:`repro.faults.lossy.LossyCheckpointModel`); pair with
    ``lossy_imcr``.
``churn``
    Epoch-based node leave/rejoin churn with critical/sufficient
    cluster-size accounting (:class:`repro.faults.churn.ChurnModel`).

Every generator clamps the failing-block width to ``min(width, ϕ,
N - 1)`` so the produced scenario is recoverable by construction —
campaign rows measure overhead, not data loss.  The fault-taxonomy
kinds delegate to the registered models in :mod:`repro.faults`.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Mapping

from ..cluster.failures import (
    FailureEvent,
    FailureSchedule,
    block_failure_ranks,
    contiguous_ranks,
    poisson_schedule,
)
from ..exceptions import ConfigurationError


@dataclasses.dataclass(frozen=True)
class ScenarioContext:
    """Per-run facts a generator may anchor to."""

    n_nodes: int
    phi: int
    strategy: str
    T: int
    #: Reference iteration count C of this problem configuration.
    reference_iterations: int
    #: Run-derived seed for stochastic generators.
    seed: int

    def clamp_width(self, width: int | None) -> int:
        """Recoverable block width: at least 1, at most min(ϕ, N-1)."""
        limit = max(1, min(self.phi, self.n_nodes - 1))
        if width is None:
            return limit
        if width < 1:
            raise ConfigurationError(f"scenario width must be >= 1, got {width}")
        return min(int(width), limit)

    def clamp_iteration(self, iteration: int) -> int:
        """Keep the event inside the undisturbed trajectory [1, C-1]."""
        upper = max(self.reference_iterations - 1, 1)
        return max(1, min(int(iteration), upper))


@dataclasses.dataclass(frozen=True)
class ScenarioSpec:
    """A named generator plus its parameters (hashable, JSON-friendly)."""

    kind: str
    #: Sorted ``(key, value)`` pairs — kept as a tuple so RunSpecs hash.
    params: tuple[tuple[str, Any], ...] = ()

    @classmethod
    def make(cls, kind: str, **params: Any) -> "ScenarioSpec":
        if kind not in SCENARIO_KINDS:
            raise ConfigurationError(
                f"unknown scenario kind {kind!r}; available: {', '.join(scenario_kinds())}"
            )
        # Sequence-valued parameters (e.g. per-node corruption_chances)
        # arrive as JSON lists; coerce to tuples so RunSpecs stay
        # hashable (json re-serialises tuples as lists, so round-trips
        # are stable).
        params = {
            key: tuple(value) if isinstance(value, list) else value
            for key, value in params.items()
        }
        return cls(kind=kind, params=tuple(sorted(params.items())))

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioSpec":
        payload = dict(data)
        try:
            kind = payload.pop("kind")
        except KeyError as exc:
            raise ConfigurationError(f"scenario spec {data!r} lacks 'kind'") from exc
        return cls.make(kind, **payload)

    def to_dict(self) -> dict[str, Any]:
        return {"kind": self.kind, **dict(self.params)}

    @property
    def injects_failures(self) -> bool:
        return self.kind != "failure_free"

    @property
    def label(self) -> str:
        """Compact stable label used inside run ids."""
        if not self.params:
            return self.kind
        inner = ",".join(f"{k}={v}" for k, v in self.params)
        return f"{self.kind}({inner})"


# ----------------------------------------------------------------- generators


def _failure_free(ctx: ScenarioContext) -> FailureSchedule:
    return FailureSchedule()


def _worst_case(
    ctx: ScenarioContext, location: str = "start", width: int | None = None
) -> FailureSchedule:
    # Imported here: harness.runner imports strategy/solver layers that
    # in turn are campaign consumers — keep the module graph acyclic.
    from ..harness.runner import place_worst_case_failure

    width = ctx.clamp_width(width)
    iteration = ctx.clamp_iteration(
        place_worst_case_failure(ctx.strategy, ctx.T, ctx.reference_iterations)
    )
    ranks = block_failure_ranks(location, width, ctx.n_nodes)
    return FailureSchedule([FailureEvent(iteration, ranks)])


def _fraction(
    ctx: ScenarioContext,
    fraction: float = 0.5,
    location: str = "start",
    width: int | None = None,
) -> FailureSchedule:
    # Delegates to the registered fail-stop fault model (imported
    # lazily to keep the module graph acyclic); the produced schedule
    # is identical to the historical inline generator.
    from ..faults.node_failure import NodeFailureModel

    model = NodeFailureModel(fraction=fraction, location=location, width=width)
    return model.schedule(ctx)


def _multi_node(
    ctx: ScenarioContext,
    width: int | None = None,
    fraction: float = 0.5,
    start: int = 0,
) -> FailureSchedule:
    if not 0.0 < fraction < 1.0:
        raise ConfigurationError(f"fraction must be in (0, 1), got {fraction}")
    width = ctx.clamp_width(width)
    iteration = ctx.clamp_iteration(round(fraction * ctx.reference_iterations))
    ranks = contiguous_ranks(int(start) % ctx.n_nodes, width, ctx.n_nodes)
    return FailureSchedule([FailureEvent(iteration, ranks)])


def _storm(
    ctx: ScenarioContext,
    count: int = 3,
    width: int | None = None,
    first_fraction: float = 0.25,
    last_fraction: float = 0.75,
) -> FailureSchedule:
    """``count`` block failures spread evenly across the solve.

    Block positions rotate around the ring so successive events hit
    different nodes (replacements included), like a rolling outage.
    """
    if count < 1:
        raise ConfigurationError(f"storm count must be >= 1, got {count}")
    if not 0.0 < first_fraction <= last_fraction < 1.0:
        raise ConfigurationError(
            f"need 0 < first_fraction <= last_fraction < 1, got "
            f"({first_fraction}, {last_fraction})"
        )
    width = ctx.clamp_width(width)
    C = ctx.reference_iterations
    upper = max(C - 1, 1)
    events: list[FailureEvent] = []
    used: set[int] = set()
    for i in range(count):
        if count == 1:
            frac = first_fraction
        else:
            frac = first_fraction + (last_fraction - first_fraction) * i / (count - 1)
        iteration = ctx.clamp_iteration(round(frac * C))
        while iteration in used and iteration <= upper:
            iteration += 1  # keep events on distinct iterations
        if iteration > upper:
            # The trajectory is too short to hold more distinct events;
            # emit fewer rather than place events that can never fire.
            continue
        used.add(iteration)
        start = (i * width) % ctx.n_nodes
        events.append(FailureEvent(iteration, contiguous_ranks(start, width, ctx.n_nodes)))
    return FailureSchedule(events)


def _mtbf(
    ctx: ScenarioContext,
    mtbf_iterations: int | None = None,
    mtbf_fraction: float = 0.5,
    mtbf_floor: int = 1,
    width: int | None = None,
    min_gap: int | None = None,
    min_gap_floor: int = 2,
) -> FailureSchedule:
    """MTBF-driven exponential schedule (Young/Daly regime).

    The MTBF is ``max(mtbf_floor, mtbf_fraction * C)`` unless an
    absolute ``mtbf_iterations`` is given; events are at least
    ``max(T, min_gap_floor)`` iterations apart unless ``min_gap``
    overrides that too.  The floors let small quick-mode problems keep
    the failure density of the full-scale regime.
    """
    if mtbf_iterations is None:
        if mtbf_fraction <= 0:
            raise ConfigurationError(f"mtbf_fraction must be > 0, got {mtbf_fraction}")
        mtbf_iterations = max(
            1, mtbf_floor, round(mtbf_fraction * ctx.reference_iterations)
        )
    width = ctx.clamp_width(width)
    if min_gap is None:
        min_gap = max(ctx.T, min_gap_floor, 2)
    schedule = poisson_schedule(
        mtbf_iterations=mtbf_iterations,
        horizon=max(ctx.reference_iterations - 1, 1),
        width=width,
        n_nodes=ctx.n_nodes,
        seed=ctx.seed,
        min_gap=min_gap,
    )
    # poisson_schedule may draw an arrival inside iteration 0; campaign
    # events must fire strictly inside the solve (iteration >= 1).
    return FailureSchedule([e for e in schedule if e.iteration >= 1])


def _sdc(ctx: ScenarioContext, **params: Any) -> FailureSchedule:
    """Silent-corruption strikes (see :class:`repro.faults.sdc.SDCModel`)."""
    from ..faults import make_fault_model

    return make_fault_model("sdc", **params).schedule(ctx)


def _lossy(ctx: ScenarioContext, **params: Any) -> FailureSchedule:
    """Lossy-checkpoint regime (see :class:`repro.faults.lossy.LossyCheckpointModel`)."""
    from ..faults import make_fault_model

    return make_fault_model("lossy_checkpoint", **params).schedule(ctx)


def _churn(ctx: ScenarioContext, **params: Any) -> FailureSchedule:
    """Epoch-based churn (see :class:`repro.faults.churn.ChurnModel`)."""
    from ..faults import make_fault_model

    return make_fault_model("churn", **params).schedule(ctx)


SCENARIO_KINDS: dict[str, Callable[..., FailureSchedule]] = {
    "failure_free": _failure_free,
    "worst_case": _worst_case,
    "fraction": _fraction,
    "multi_node": _multi_node,
    "storm": _storm,
    "mtbf": _mtbf,
    "sdc": _sdc,
    "lossy": _lossy,
    "churn": _churn,
}


def scenario_kinds() -> tuple[str, ...]:
    """Names accepted by :meth:`ScenarioSpec.make`."""
    return tuple(sorted(SCENARIO_KINDS))


def generate_schedule(spec: ScenarioSpec, ctx: ScenarioContext) -> FailureSchedule:
    """Resolve a scenario spec into a concrete failure schedule."""
    try:
        generator = SCENARIO_KINDS[spec.kind]
    except KeyError as exc:
        raise ConfigurationError(
            f"unknown scenario kind {spec.kind!r}; available: {', '.join(scenario_kinds())}"
        ) from exc
    try:
        return generator(ctx, **dict(spec.params))
    except TypeError as exc:
        raise ConfigurationError(
            f"bad parameters for scenario {spec.kind!r}: {exc}"
        ) from exc
