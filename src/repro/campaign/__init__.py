"""Scenario-campaign engine: declarative sweeps over the experiment space.

The paper's contribution is an *empirical comparison* of ESR/ESRP/IMCR
under varying failure scenarios.  This package turns that comparison
into a first-class subsystem: one declarative spec describes a whole
sweep, the engine expands it into a deterministic list of runs,
executes them on a process pool, and aggregates the results into the
paper's overhead tables.

Pipeline
--------
1. :class:`CampaignSpec` (:mod:`repro.campaign.spec`) — the declarative
   sweep description (matrices × preconditioners × strategies ×
   failure scenarios × checkpoint intervals × ϕ × repetitions);
2. :func:`expand_spec` — deterministic, duplicate-free expansion into
   :class:`RunSpec` objects, each with its own derived seed;
3. :func:`execute_campaign` (:mod:`repro.campaign.executor`) — run the
   specs serially, on a ``concurrent.futures.ProcessPoolExecutor``, or
   (``queue_dir=...``) through the durable on-disk work queue of
   :mod:`repro.queue`, which is crash-resumable and shareable across
   hosts (``repro campaign submit / worker / status / collect``);
4. :class:`CampaignResult` (:mod:`repro.campaign.results`) — typed
   record store with JSON/CSV export and Table-2-style overhead
   aggregation.

Spec schema (JSON)
------------------
A campaign spec file is a single JSON object::

    {
      "name": "demo",                      # campaign label
      "problems": [                        # matrices to sweep
        {"name": "emilia_923_like", "scale": "tiny"}
      ],
      "n_nodes": 8,                        # virtual cluster size
      "preconditioners": ["block_jacobi"], # preconditioner names
      "strategies": [                      # (strategy, interval) rows
        {"name": "esr"},                   #   T defaults to 1
        {"name": "esrp", "intervals": [20, 50]},
        {"name": "imcr", "intervals": [20]}
      ],
      "phis": [1, 2],                      # redundancy counts ϕ
      "scenarios": [                       # failure-scenario generators
        {"kind": "failure_free"},
        {"kind": "worst_case", "location": "start"},
        {"kind": "fraction", "fraction": 0.5, "location": "center"},
        {"kind": "multi_node", "width": 2},
        {"kind": "storm", "count": 3},
        {"kind": "mtbf", "mtbf_fraction": 0.4},
        {"kind": "sdc", "probability": 0.01},
        {"kind": "lossy", "error_bound": 1e-4, "ratio": 4.0},
        {"kind": "churn", "epoch_fraction": 0.2}
      ],
      "repetitions": 2,                    # seeded repetitions per cell
      "seed": 2020,                        # campaign base seed
      "rtol": 1e-08,                       # solver tolerance
      "backends": ["vectorized"]           # compute-kernel backends
    }                                      #   (list several to A/B them)

Every scenario ``kind`` accepts the keyword parameters of the matching
generator in :mod:`repro.campaign.scenarios` (``scenario_kinds()``
lists them).  Scenario timing is resolved *per run* against the
reference iteration count C of that run's problem, exactly like the
paper places its failures relative to C.

Quickstart::

    from repro.campaign import demo_spec, execute_campaign

    result = execute_campaign(demo_spec(), workers=4)
    print(result.render_summary())
    result.to_json("campaign.json")

or from the command line::

    python -m repro campaign run --workers 4 --out campaign.json
    python -m repro campaign report --results campaign.json
"""

from __future__ import annotations

from .executor import execute_campaign, run_one
from .results import CampaignResult, CampaignRunRecord
from .scenarios import (
    SCENARIO_KINDS,
    ScenarioContext,
    ScenarioSpec,
    generate_schedule,
    scenario_kinds,
)
from .spec import (
    CampaignSpec,
    RunSpec,
    StrategySpec,
    demo_spec,
    expand_spec,
    faults_spec,
)

__all__ = [
    "CampaignResult",
    "CampaignRunRecord",
    "CampaignSpec",
    "RunSpec",
    "SCENARIO_KINDS",
    "ScenarioContext",
    "ScenarioSpec",
    "StrategySpec",
    "demo_spec",
    "execute_campaign",
    "expand_spec",
    "faults_spec",
    "generate_schedule",
    "run_one",
    "scenario_kinds",
]
