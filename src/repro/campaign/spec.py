"""Declarative campaign specs and their deterministic expansion.

A :class:`CampaignSpec` is the cartesian sweep description; a
:class:`RunSpec` is one fully-resolved solver run.  Expansion is

* **deterministic** — the same spec always yields the same runs in the
  same order (the order is the sorted cartesian product, not dict or
  set iteration order);
* **duplicate-free** — aliases that collapse to the same configuration
  (e.g. ``esrp`` with T = 1 *is* ESR; the reference solver ignores
  T/ϕ/scenario) are merged;
* **seeded** — every run derives its own RNG seed from the campaign
  base seed and a stable hash of the run identity, so repetitions and
  distinct configurations decorrelate while re-expansion reproduces
  the exact same seeds (the hash is SHA-256, not Python's randomized
  ``hash``).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Any, Iterable, Mapping

from ..exceptions import ConfigurationError
from .scenarios import ScenarioSpec


@dataclasses.dataclass(frozen=True)
class StrategySpec:
    """One strategy row family: a name plus its interval sweep."""

    name: str
    intervals: tuple[int, ...] = (1,)

    def __post_init__(self) -> None:
        if not self.intervals:
            raise ConfigurationError(f"strategy {self.name!r} needs >= 1 interval")
        for T in self.intervals:
            if T < 1:
                raise ConfigurationError(f"interval must be >= 1, got {T}")

    @classmethod
    def from_dict(cls, data: Mapping[str, Any] | str) -> "StrategySpec":
        if isinstance(data, str):
            return cls(name=data)
        payload = dict(data)
        name = payload.pop("name", None)
        if name is None:
            raise ConfigurationError(f"strategy spec {data!r} lacks 'name'")
        intervals = payload.pop("intervals", None)
        if "T" in payload:  # scalar convenience form
            intervals = [payload.pop("T")]
        if payload:
            raise ConfigurationError(f"unknown strategy spec keys: {sorted(payload)}")
        if intervals is None:
            intervals = (1,)
        return cls(name=str(name), intervals=tuple(int(T) for T in intervals))

    def to_dict(self) -> dict[str, Any]:
        return {"name": self.name, "intervals": list(self.intervals)}


@dataclasses.dataclass(frozen=True)
class RunSpec:
    """One fully-resolved solver run (picklable: crosses process pools)."""

    problem: str
    scale: str
    n_nodes: int
    preconditioner: str
    strategy: str
    T: int
    phi: int
    scenario: ScenarioSpec
    repetition: int
    #: Per-run seed (cluster noise, stochastic scenario generators).
    seed: int
    #: Campaign base seed (matrix generation — same matrix for all runs).
    problem_seed: int
    rtol: float
    #: Compute-kernel backend executing the run's numerics.
    backend: str = "vectorized"

    @property
    def run_id(self) -> str:
        """Stable human-readable identity (also the dedup/seed key).

        The backend suffix appears only for non-default backends, so
        run ids (and the seeds derived from them) of default-backend
        runs match those of records stored before backends existed.
        """
        backend = "" if self.backend == "vectorized" else f":{self.backend}"
        return self.seed_key + backend

    @property
    def config_key(self) -> str:
        """The session-defining part of the run identity.

        Two runs with the same config key share all per-worker warm-up
        state: the :class:`~repro.api.session.SolverSession` (matrix,
        cluster, partition, factorised preconditioners) is memoised on
        (problem, scale, n_nodes) and the reference-trajectory cache on
        the preconditioner, so this prefix of :attr:`seed_key` is what
        configuration-affine queue claiming groups by.
        """
        return (
            f"{self.problem}:{self.scale}:n{self.n_nodes}:{self.preconditioner}"
        )

    @property
    def seed_key(self) -> str:
        """Run identity *without* the backend (the seed-derivation key).

        Deriving the per-run seed from the backend-free identity gives
        the same cell the same noise stream under every backend, so a
        backend A/B sweep compares bit-identical trajectories instead
        of re-rolled ones.
        """
        return (
            f"{self.config_key}:{self.strategy}:T{self.T}:phi{self.phi}"
            f":{self.scenario.label}:rep{self.repetition}"
        )

    def to_dict(self) -> dict[str, Any]:
        data = dataclasses.asdict(self)
        data["scenario"] = self.scenario.to_dict()
        data["run_id"] = self.run_id
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunSpec":
        payload = {k: v for k, v in data.items() if k != "run_id"}
        payload["scenario"] = ScenarioSpec.from_dict(payload["scenario"])
        payload.setdefault("backend", "vectorized")
        return cls(**payload)


def derive_seed(base_seed: int, run_key: str) -> int:
    """Per-run seed: stable across processes and interpreter restarts."""
    digest = hashlib.sha256(f"{base_seed}|{run_key}".encode()).digest()
    return int.from_bytes(digest[:4], "big")


@dataclasses.dataclass(frozen=True)
class CampaignSpec:
    """Declarative sweep description (see :mod:`repro.campaign` docstring)."""

    name: str = "campaign"
    problems: tuple[tuple[str, str], ...] = (("emilia_923_like", "tiny"),)
    n_nodes: int = 8
    preconditioners: tuple[str, ...] = ("block_jacobi",)
    strategies: tuple[StrategySpec, ...] = (
        StrategySpec("esr"),
        StrategySpec("esrp", (20,)),
        StrategySpec("imcr", (20,)),
    )
    phis: tuple[int, ...] = (1, 2)
    scenarios: tuple[ScenarioSpec, ...] = (
        ScenarioSpec.make("failure_free"),
        ScenarioSpec.make("worst_case", location="start"),
    )
    repetitions: int = 1
    seed: int = 2020
    rtol: float = 1e-8
    #: Compute-kernel backends to sweep (usually just the default; list
    #: several — e.g. ``("looped", "vectorized")`` — to A/B backends
    #: within one campaign).
    backends: tuple[str, ...] = ("vectorized",)

    def __post_init__(self) -> None:
        if not self.backends:
            raise ConfigurationError("campaign needs at least one kernel backend")
        if self.n_nodes < 2:
            raise ConfigurationError("campaigns need at least 2 nodes")
        if self.repetitions < 1:
            raise ConfigurationError("repetitions must be >= 1")
        if not self.problems:
            raise ConfigurationError("campaign needs at least one problem")
        if not self.strategies:
            raise ConfigurationError("campaign needs at least one strategy")
        if not self.scenarios:
            raise ConfigurationError("campaign needs at least one scenario")
        for phi in self.phis:
            if not 1 <= phi < self.n_nodes:
                raise ConfigurationError(
                    f"phi={phi} out of range [1, {self.n_nodes - 1}] for "
                    f"{self.n_nodes} nodes"
                )

    # ------------------------------------------------------------ (de)serialise

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CampaignSpec":
        payload = dict(data)
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise ConfigurationError(f"unknown campaign spec keys: {sorted(unknown)}")
        if "problems" in payload:
            payload["problems"] = tuple(
                _parse_problem(p) for p in payload["problems"]
            )
        if "strategies" in payload:
            payload["strategies"] = tuple(
                StrategySpec.from_dict(s) for s in payload["strategies"]
            )
        if "scenarios" in payload:
            payload["scenarios"] = tuple(
                ScenarioSpec.from_dict(s) for s in payload["scenarios"]
            )
        for key in ("preconditioners", "phis", "backends"):
            if key in payload:
                payload[key] = tuple(payload[key])
        return cls(**payload)

    @classmethod
    def from_json(cls, path) -> "CampaignSpec":
        try:
            with open(path, encoding="utf-8") as handle:
                return cls.from_dict(json.load(handle))
        except OSError as exc:
            raise ConfigurationError(f"cannot read campaign spec {path}: {exc}") from exc
        except json.JSONDecodeError as exc:
            raise ConfigurationError(f"{path} is not valid spec JSON: {exc}") from exc

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "problems": [{"name": p, "scale": s} for p, s in self.problems],
            "n_nodes": self.n_nodes,
            "preconditioners": list(self.preconditioners),
            "strategies": [s.to_dict() for s in self.strategies],
            "phis": list(self.phis),
            "scenarios": [s.to_dict() for s in self.scenarios],
            "repetitions": self.repetitions,
            "seed": self.seed,
            "rtol": self.rtol,
            "backends": list(self.backends),
        }


def _parse_problem(p) -> tuple[str, str]:
    """One 'problems' entry: a name, {"name", "scale"}, or a (name, scale) pair."""
    if isinstance(p, str):
        return (p, "tiny")
    if isinstance(p, Mapping):
        if "name" not in p:
            raise ConfigurationError(f"problem spec {p!r} lacks 'name'")
        return (str(p["name"]), str(p.get("scale", "tiny")))
    pair = tuple(p)
    if len(pair) != 2:
        raise ConfigurationError(
            f"problem spec {p!r} must be a name, a {{name, scale}} object, "
            "or a (name, scale) pair"
        )
    return (str(pair[0]), str(pair[1]))


def _canonical_strategy(name: str, T: int) -> tuple[str, int]:
    """Collapse aliases so duplicates merge during expansion.

    ESRP with T <= 2 degenerates to ESR (paper §3), and ESR itself is
    interval-free (every iteration stores), so its canonical T is 1.
    """
    key = name.lower().replace("-", "_")
    if key == "esrp" and T <= 2:
        key = "esr"
    if key in ("esr", "reference"):
        T = 1
    return key, T


def expand_spec(spec: CampaignSpec) -> list[RunSpec]:
    """Deterministic, duplicate-free expansion into concrete runs.

    The reference strategy, when present, is only paired with the
    failure-free scenario (a node failure is fatal to it), and ϕ is
    pinned to 1 since it stores nothing.
    """
    runs: dict[str, RunSpec] = {}
    for problem, scale in spec.problems:
        for preconditioner in spec.preconditioners:
            for strategy_spec in spec.strategies:
                for T_raw in strategy_spec.intervals:
                    for phi in spec.phis:
                        for scenario in spec.scenarios:
                            for backend in spec.backends:
                                strategy, T = _canonical_strategy(
                                    strategy_spec.name, T_raw
                                )
                                if strategy == "reference":
                                    if scenario.injects_failures:
                                        continue
                                    phi = 1
                                for repetition in range(spec.repetitions):
                                    run = RunSpec(
                                        problem=problem,
                                        scale=scale,
                                        n_nodes=spec.n_nodes,
                                        preconditioner=preconditioner,
                                        strategy=strategy,
                                        T=T,
                                        phi=phi,
                                        scenario=scenario,
                                        repetition=repetition,
                                        seed=0,
                                        problem_seed=spec.seed,
                                        rtol=spec.rtol,
                                        backend=backend,
                                    )
                                    seed = derive_seed(spec.seed, run.seed_key)
                                    run = dataclasses.replace(run, seed=seed)
                                    runs.setdefault(run.run_id, run)
    return list(runs.values())


def demo_spec(
    scale: str = "tiny",
    repetitions: int = 2,
    n_nodes: int = 8,
) -> CampaignSpec:
    """The built-in demo sweep used by ``repro campaign run``.

    3 resilient strategies × 2 ϕ × 2 scenario generators × 2
    repetitions = 24 runs, covering the paper's worst-case single
    failure and the MTBF-driven multi-failure regime.
    """
    return CampaignSpec(
        name=f"demo-{scale}",
        problems=(("emilia_923_like", scale),),
        n_nodes=n_nodes,
        strategies=(
            StrategySpec("esr"),
            StrategySpec("esrp", (20,)),
            StrategySpec("imcr", (20,)),
        ),
        phis=(1, 2),
        scenarios=(
            ScenarioSpec.make("worst_case", location="start"),
            ScenarioSpec.make("mtbf", mtbf_fraction=0.4),
        ),
        repetitions=repetitions,
    )


def faults_spec(
    scale: str = "tiny",
    repetitions: int = 2,
    n_nodes: int = 8,
) -> CampaignSpec:
    """The fault-taxonomy demo sweep (``repro campaign run --demo faults``).

    A/Bs the detection/lossy strategies against the paper's baselines
    under the new fault regimes: ``pv``/``pv_forward`` vs ESR/ESRP
    under silent corruption, and ``lossy_imcr`` vs exact IMCR under
    the lossy-checkpoint regime.  The report's Table-2-style overhead
    columns gain the ``inj``/``det``/``rb`` fault counters.
    """
    return CampaignSpec(
        name=f"faults-{scale}",
        problems=(("emilia_923_like", scale),),
        n_nodes=n_nodes,
        strategies=(
            StrategySpec("esr"),
            StrategySpec("esrp", (20,)),
            StrategySpec("pv", (10,)),
            StrategySpec("pv_forward", (10,)),
            StrategySpec("imcr", (20,)),
            StrategySpec("lossy_imcr", (20,)),
        ),
        phis=(1,),
        scenarios=(
            ScenarioSpec.make("sdc", probability=0.01, mode="bitflip"),
            ScenarioSpec.make("lossy", fraction=0.5, error_bound=1e-4, ratio=4.0),
        ),
        repetitions=repetitions,
    )


def iter_run_dicts(runs: Iterable[RunSpec]) -> list[dict[str, Any]]:
    """JSON-friendly view of an expanded run list (debugging/reports)."""
    return [run.to_dict() for run in runs]
