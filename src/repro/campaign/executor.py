"""Campaign execution: per-run worker plus serial/process-pool drivers.

Design notes
------------
* :func:`run_one` is a **module-level** function taking one picklable
  :class:`RunSpec`, so it crosses ``ProcessPoolExecutor`` boundaries
  under both fork and spawn start methods.
* Matrix generation and the reference solve are memoised **per worker
  process** (``functools.lru_cache``): a campaign re-uses one matrix
  and one reference trajectory per problem configuration instead of
  recomputing them for all of its runs.
* All randomness is derived from seeds carried by the ``RunSpec``
  (cluster noise and stochastic scenarios from ``run.seed``, matrix
  generation from ``run.problem_seed``), so pool execution is
  result-for-result identical to serial execution regardless of
  worker count or scheduling order.
"""

from __future__ import annotations

import concurrent.futures
import functools
import os
from typing import Callable, Iterable, Sequence

import numpy as np

from ..cluster.failures import FailureSchedule
from ..exceptions import ConfigurationError
from .results import CampaignResult, CampaignRunRecord
from .scenarios import ScenarioContext, generate_schedule
from .spec import CampaignSpec, RunSpec, expand_spec

#: Callback signature: (finished_count, total, record).
ProgressFn = Callable[[int, int, CampaignRunRecord], None]


@functools.lru_cache(maxsize=8)
def _load_problem(problem: str, scale: str, seed: int):
    from ..matrices import suite

    return suite.load(problem, scale=scale, seed=seed)


@functools.lru_cache(maxsize=32)
def _reference(
    problem: str,
    scale: str,
    n_nodes: int,
    preconditioner: str,
    rtol: float,
    problem_seed: int,
):
    """(t0, C, x_ref) of the non-resilient reference solver."""
    import repro
    from ..harness.calibration import BENCH_COST_MODEL

    matrix, b, _meta = _load_problem(problem, scale, problem_seed)
    result = repro.solve(
        matrix,
        b,
        n_nodes=n_nodes,
        strategy="reference",
        preconditioner=preconditioner,
        rtol=rtol,
        cost_model=BENCH_COST_MODEL,
        seed=problem_seed,
    )
    return result.modeled_time, result.iterations, result.x


def run_one(run: RunSpec) -> CampaignRunRecord:
    """Execute one fully-resolved run and flatten it into a record."""
    import repro
    from ..harness.calibration import BENCH_COST_MODEL

    matrix, b, _meta = _load_problem(run.problem, run.scale, run.problem_seed)
    t0, C, x_ref = _reference(
        run.problem, run.scale, run.n_nodes, run.preconditioner,
        run.rtol, run.problem_seed,
    )

    if run.strategy == "reference":
        schedule = FailureSchedule()
    else:
        ctx = ScenarioContext(
            n_nodes=run.n_nodes,
            phi=run.phi,
            strategy=run.strategy,
            T=run.T,
            reference_iterations=C,
            seed=run.seed,
        )
        schedule = generate_schedule(run.scenario, ctx)
    failure_iterations = tuple(event.iteration for event in schedule)

    result = repro.solve(
        matrix,
        b,
        n_nodes=run.n_nodes,
        strategy=run.strategy,
        T=run.T,
        phi=run.phi,
        preconditioner=run.preconditioner,
        rtol=run.rtol,
        failures=schedule,
        cost_model=BENCH_COST_MODEL,
        seed=run.seed,
    )

    ref_norm = float(np.linalg.norm(x_ref))
    solution_error = (
        float(np.linalg.norm(result.x - x_ref)) / ref_norm if ref_norm else 0.0
    )
    return CampaignRunRecord(
        run_id=run.run_id,
        problem=run.problem,
        scale=run.scale,
        n_nodes=run.n_nodes,
        preconditioner=run.preconditioner,
        strategy=run.strategy,
        T=run.T,
        phi=run.phi,
        scenario_kind=run.scenario.kind,
        scenario_params=dict(run.scenario.params),
        repetition=run.repetition,
        seed=run.seed,
        converged=result.converged,
        iterations=result.iterations,
        executed_iterations=result.executed_iterations,
        relative_residual=result.relative_residual,
        modeled_time=result.modeled_time,
        recovery_time=result.recovery_time,
        wall_time=result.wall_time,
        reference_time=t0,
        reference_iterations=C,
        total_overhead=(result.modeled_time - t0) / t0,
        recovery_overhead=result.recovery_time / t0,
        n_failures=len(schedule),
        failure_iterations=failure_iterations,
        solution_error=solution_error,
    )


def default_workers(n_runs: int) -> int:
    """Pool size heuristic: one worker per run, capped by the host."""
    return max(1, min(n_runs, os.cpu_count() or 1, 8))


def execute_runs(
    runs: Sequence[RunSpec],
    workers: int = 0,
    progress: ProgressFn | None = None,
) -> list[CampaignRunRecord]:
    """Execute runs; ``workers <= 1`` is serial, otherwise a process pool.

    The returned list is always in the order of ``runs``, independent
    of pool scheduling.
    """
    if workers < 0:
        raise ConfigurationError(f"workers must be >= 0, got {workers}")
    records: list[CampaignRunRecord] = []
    if workers <= 1:
        for index, run in enumerate(runs):
            record = run_one(run)
            records.append(record)
            if progress is not None:
                progress(index + 1, len(runs), record)
        return records
    with concurrent.futures.ProcessPoolExecutor(max_workers=workers) as pool:
        for index, record in enumerate(pool.map(run_one, runs, chunksize=1)):
            records.append(record)
            if progress is not None:
                progress(index + 1, len(runs), record)
    return records


def execute_campaign(
    spec: CampaignSpec,
    workers: int | None = None,
    progress: ProgressFn | None = None,
) -> CampaignResult:
    """Expand a campaign spec and execute every run.

    ``workers=None`` picks :func:`default_workers`; pass ``0``/``1``
    to force serial execution (e.g. inside tests comparing the two).
    """
    runs = expand_spec(spec)
    if not runs:
        raise ConfigurationError(f"campaign {spec.name!r} expands to zero runs")
    if workers is None:
        workers = default_workers(len(runs))
    records = execute_runs(runs, workers=workers, progress=progress)
    return CampaignResult(spec=spec.to_dict(), records=records)
