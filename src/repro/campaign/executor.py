"""Campaign execution: per-run worker plus serial/process-pool drivers.

Design notes
------------
* :func:`run_one` is a **module-level** function taking one picklable
  :class:`RunSpec`, so it crosses ``ProcessPoolExecutor`` boundaries
  under both fork and spawn start methods.
* Each worker process keeps a memoised
  :class:`~repro.api.session.SolverSession` per problem configuration
  (``functools.lru_cache``): the matrix, cluster, partition,
  distributed matrix, factorised preconditioners and the reference
  trajectory are set up once per worker and reused by every run
  against the same configuration.
* All randomness is derived from seeds carried by the ``RunSpec``
  (cluster noise and stochastic scenarios from ``run.seed``, matrix
  generation from ``run.problem_seed``), so pool execution is
  result-for-result identical to serial execution regardless of
  worker count or scheduling order.
"""

from __future__ import annotations

import concurrent.futures
import contextlib
import functools
import os
from typing import Callable, Sequence

from ..api.request import SolveRequest
from ..exceptions import ConfigurationError
from .results import CampaignResult, CampaignRunRecord
from .scenarios import ScenarioContext, generate_schedule
from .spec import CampaignSpec, RunSpec, expand_spec

#: Callback signature: (finished_count, total, record).
ProgressFn = Callable[[int, int, CampaignRunRecord], None]


#: Environment variable through which the campaign driver hands the
#: reference-trajectory spool directory to its pool workers (set before
#: the pool starts, so both fork and spawn children inherit it).
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


@contextlib.contextmanager
def cache_dir_env(cache_dir):
    """Export ``CACHE_DIR_ENV`` for a scope, restoring the old value.

    The shared save/set/restore dance of every campaign entry point
    (pool driver here, queue workers in :mod:`repro.queue.worker`);
    ``None`` leaves the environment untouched.
    """
    if cache_dir is None:
        yield
        return
    previous = os.environ.get(CACHE_DIR_ENV)
    os.environ[CACHE_DIR_ENV] = os.fspath(cache_dir)
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop(CACHE_DIR_ENV, None)
        else:
            os.environ[CACHE_DIR_ENV] = previous


@functools.lru_cache(maxsize=8)
def _session_for(
    problem: str,
    scale: str,
    n_nodes: int,
    problem_seed: int,
    cache_dir: str | None,
):
    """Per-worker-process session cache (one per problem configuration).

    When a spool directory is given (via ``REPRO_CACHE_DIR``), each
    session additionally spools computed reference trajectories there,
    so N pool workers compute one copy between them instead of N.  The
    directory is part of the memoisation key, so campaigns with
    different (or no) spool directories never share a session.
    """
    from ..api.session import SolverSession
    from ..harness.calibration import BENCH_COST_MODEL

    return SolverSession.from_problem(
        problem,
        scale=scale,
        n_nodes=n_nodes,
        cost_model=BENCH_COST_MODEL,
        seed=problem_seed,
        problem_seed=problem_seed,
        cache_dir=cache_dir,
    )


def run_one(run: RunSpec) -> CampaignRunRecord:
    """Execute one fully-resolved run and flatten it into a record."""
    session = _session_for(
        run.problem,
        run.scale,
        run.n_nodes,
        run.problem_seed,
        os.environ.get(CACHE_DIR_ENV) or None,
    )
    reference = session.reference(preconditioner=run.preconditioner, rtol=run.rtol)

    if run.strategy == "reference":
        failures = ()
    else:
        ctx = ScenarioContext(
            n_nodes=run.n_nodes,
            phi=run.phi,
            strategy=run.strategy,
            T=run.T,
            reference_iterations=reference.C,
            seed=run.seed,
        )
        failures = generate_schedule(run.scenario, ctx)

    # The lossy regime's error-model parameters ride on the scenario;
    # hand them to the strategy builder (non-lossy strategies ignore
    # them, so the same scenario A/Bs cleanly against exact baselines).
    strategy_params: dict = {}
    if run.scenario.kind == "lossy" and run.strategy != "reference":
        params = dict(run.scenario.params)
        strategy_params = {
            "error_bound": params.get("error_bound", 1e-4),
            "ratio": params.get("ratio", 4.0),
            "seed": run.seed,
        }

    request = SolveRequest(
        strategy=run.strategy,
        T=run.T,
        phi=run.phi,
        preconditioner=run.preconditioner,
        rtol=run.rtol,
        failures=failures,
        strategy_params=strategy_params,
        seed=run.seed,
        n_nodes=run.n_nodes,
        backend=run.backend,
        label=run.run_id,
    )
    report = session.solve(request, with_reference=True)

    return CampaignRunRecord(
        run_id=run.run_id,
        problem=run.problem,
        scale=run.scale,
        n_nodes=run.n_nodes,
        preconditioner=run.preconditioner,
        strategy=run.strategy,
        T=run.T,
        phi=run.phi,
        backend=report.backend or run.backend,
        scenario_kind=run.scenario.kind,
        scenario_params=dict(run.scenario.params),
        repetition=run.repetition,
        seed=run.seed,
        converged=report.converged,
        iterations=report.iterations,
        executed_iterations=report.executed_iterations,
        relative_residual=report.relative_residual,
        modeled_time=report.modeled_time,
        recovery_time=report.recovery_time,
        reference_time=report.reference_time,
        reference_iterations=report.reference_iterations,
        total_overhead=report.total_overhead,
        recovery_overhead=report.recovery_overhead,
        n_failures=report.n_failures,
        failure_iterations=report.failure_iterations,
        solution_error=report.solution_error,
        stats=dict(report.stats),
    )


def default_workers(n_runs: int) -> int:
    """Pool size heuristic: one worker per run, capped by the host."""
    return max(1, min(n_runs, os.cpu_count() or 1, 8))


def execute_runs(
    runs: Sequence[RunSpec],
    workers: int = 0,
    progress: ProgressFn | None = None,
) -> list[CampaignRunRecord]:
    """Execute runs; ``workers <= 1`` is serial, otherwise a process pool.

    The returned list is always in the order of ``runs``, independent
    of pool scheduling.
    """
    if workers < 0:
        raise ConfigurationError(f"workers must be >= 0, got {workers}")
    records: list[CampaignRunRecord] = []
    if workers <= 1:
        for index, run in enumerate(runs):
            record = run_one(run)
            records.append(record)
            if progress is not None:
                progress(index + 1, len(runs), record)
        return records
    with concurrent.futures.ProcessPoolExecutor(max_workers=workers) as pool:
        for index, record in enumerate(pool.map(run_one, runs, chunksize=1)):
            records.append(record)
            if progress is not None:
                progress(index + 1, len(runs), record)
    return records


def _queue_worker_entry(queue_dir: str) -> dict:
    """Module-level (picklable) pool target: drain the queue fully.

    ``wait=True`` so a resumed queue that still carries an orphaned
    (unexpired) lease from a killed driver is polled until the lease
    times out and the task is reclaimed, instead of being abandoned.
    """
    from ..queue.worker import run_worker

    summary = run_worker(queue_dir, wait=True)
    return {"done": summary.done, "failed": summary.failed}


def execute_queued(
    spec: CampaignSpec,
    queue_dir,
    workers: int,
    max_attempts: int | None = None,
) -> CampaignResult:
    """Run a campaign through an on-disk queue with a local worker pool.

    The durable-queue analogue of :func:`execute_runs`: the spec is
    submitted as a task store under ``queue_dir``, ``workers``
    independent worker processes drain it, and the spool shards are
    collected into the canonical result — byte-identical to a serial
    run, but resumable: if this process dies, re-running against the
    same ``queue_dir`` (or pointing ``repro campaign worker`` at it,
    from any host sharing the filesystem) picks up where it left off.

    ``max_attempts`` is the queue's retry bound for *failing* (raising)
    tasks; when resuming an existing queue the policy recorded at
    submit time is authoritative and the argument is ignored.
    """
    from ..queue.collect import collect
    from ..queue.store import DEFAULT_MAX_ATTEMPTS, QueueStore
    from ..queue.worker import run_worker

    store = QueueStore(queue_dir)
    if store.spec_path.exists():
        # Resuming an existing queue: the spec on disk is authoritative
        # (and must be the same sweep).
        if store.spec_dict != spec.to_dict():
            raise ConfigurationError(
                f"{queue_dir} holds a different campaign "
                f"({store.spec.name!r}); refusing to mix sweeps"
            )
    else:
        store = QueueStore.submit(
            spec, queue_dir,
            max_attempts=(
                DEFAULT_MAX_ATTEMPTS if max_attempts is None else max_attempts
            ),
        )
    if workers <= 1:
        run_worker(queue_dir, wait=True)
    else:
        with concurrent.futures.ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [
                pool.submit(_queue_worker_entry, os.fspath(queue_dir))
                for _ in range(workers)
            ]
            for future in futures:
                future.result()  # surface worker-process crashes
    return collect(queue_dir)


def execute_campaign(
    spec: CampaignSpec,
    workers: int | None = None,
    progress: ProgressFn | None = None,
    cache_dir: str | None = None,
    queue_dir=None,
    max_attempts: int | None = None,
) -> CampaignResult:
    """Expand a campaign spec and execute every run.

    ``workers=None`` picks :func:`default_workers`; pass ``0``/``1``
    to force serial execution (e.g. inside tests comparing the two).
    ``cache_dir`` names a directory where workers spool reference
    trajectories to disk (exported as ``REPRO_CACHE_DIR`` for the
    duration of the campaign, so every worker — fork or spawn — shares
    one copy per configuration instead of computing its own; the
    previous value is restored afterwards).

    ``queue_dir`` switches to the durable-queue execution mode
    (:mod:`repro.queue`): tasks are materialised on disk, ``workers``
    queue workers drain them, and the result is collected from the
    spool shards — same records, but crash-resumable and joinable by
    external ``repro campaign worker`` processes, with failing tasks
    retried up to ``max_attempts`` times before dead-lettering.
    Per-run ``progress`` callbacks are not available in this mode
    (workers stream to disk, not to the driver); use ``repro campaign
    status`` for observation.
    """
    runs = expand_spec(spec)
    if not runs:
        raise ConfigurationError(f"campaign {spec.name!r} expands to zero runs")
    if workers is None:
        workers = default_workers(len(runs))
    with cache_dir_env(cache_dir):
        if queue_dir is not None:
            return execute_queued(
                spec, queue_dir, workers=workers, max_attempts=max_attempts
            )
        records = execute_runs(runs, workers=workers, progress=progress)
    return CampaignResult(spec=spec.to_dict(), records=records)
