"""Structured event log shared by the cluster, solver engine and harness.

The paper's experiments reason about *phases* of a run (failure-free
iterations, checkpoint/storage stages, the failure itself, reconstruction,
re-executed iterations).  Instead of scattering ad-hoc prints, every
component appends :class:`Event` records to an :class:`EventLog`; the
harness later slices the log to attribute modeled time to phases (e.g.
the "reconstruction overhead" columns of Tables 2 and 3).
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Any, Iterator


class EventKind(enum.Enum):
    """Classification of run events."""

    SOLVE_START = "solve_start"
    SOLVE_END = "solve_end"
    ITERATION = "iteration"
    STORAGE_STAGE = "storage_stage"
    CHECKPOINT = "checkpoint"
    NODE_FAILURE = "node_failure"
    SDC = "sdc"
    SDC_DETECTED = "sdc_detected"
    VERIFICATION = "verification"
    RECOVERY_START = "recovery_start"
    RECOVERY_END = "recovery_end"
    ROLLBACK = "rollback"
    RESTART = "restart"
    WARNING = "warning"


@dataclasses.dataclass(frozen=True)
class Event:
    """A single timestamped event.

    Attributes
    ----------
    kind:
        What happened.
    iteration:
        PCG iteration index at which the event occurred (-1 if not
        applicable, e.g. for ``SOLVE_START``).
    time:
        Simulated cluster time (seconds) when the event was recorded.
    detail:
        Free-form payload (ranks, queue contents, tolerances, ...).
    """

    kind: EventKind
    iteration: int
    time: float
    detail: dict[str, Any] = dataclasses.field(default_factory=dict)


class EventLog:
    """Append-only sequence of :class:`Event` records."""

    def __init__(self) -> None:
        self._events: list[Event] = []

    def record(
        self,
        kind: EventKind,
        iteration: int = -1,
        time: float = 0.0,
        **detail: Any,
    ) -> Event:
        """Append an event and return it."""
        event = Event(kind=kind, iteration=int(iteration), time=float(time), detail=detail)
        self._events.append(event)
        return event

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    def __getitem__(self, index: int) -> Event:
        return self._events[index]

    def of_kind(self, kind: EventKind) -> list[Event]:
        """All events of the given kind, in record order."""
        return [e for e in self._events if e.kind is kind]

    def first(self, kind: EventKind) -> Event | None:
        """First event of the given kind, or ``None``."""
        for event in self._events:
            if event.kind is kind:
                return event
        return None

    def last(self, kind: EventKind) -> Event | None:
        """Last event of the given kind, or ``None``."""
        for event in reversed(self._events):
            if event.kind is kind:
                return event
        return None

    def recovery_time(self) -> float:
        """Total simulated time spent between recovery start/end pairs.

        This is the quantity reported in the "Reconstruction overhead"
        columns of the paper's Tables 2 and 3 (collecting data at the
        replacement nodes and reconstructing the state for ESRP; buddy
        transfers for IMCR), expressed in seconds rather than percent.
        """
        total = 0.0
        start: float | None = None
        for event in self._events:
            if event.kind is EventKind.RECOVERY_START:
                start = event.time
            elif event.kind is EventKind.RECOVERY_END and start is not None:
                total += event.time - start
                start = None
        return total
