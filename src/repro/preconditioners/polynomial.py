"""Polynomial (truncated Neumann) preconditioner — a *global* operator.

``P = Σ_{k=0}^{d} (I - ω D⁻¹ A)^k · ω D⁻¹``, applied with Horner's
rule: each application performs ``d`` distributed SpMVs (halo exchanges
included).  With ``ω < 1`` and an SPD, Jacobi-scalable ``A`` the
operator is SPD (partial geometric sum of a contraction).

Unlike the block preconditioners, ``P`` couples entries across node
boundaries: ``P_{I_f, I\\I_f} ≠ 0`` and ``P_ff`` is not available as a
local operator, so **exact state reconstruction cannot use it**
(``supports_reconstruction = False``).  It exists precisely to
demonstrate that trade-off in the preconditioner ablation: IMCR accepts
it, ESR/ESRP refuses it.
"""

from __future__ import annotations

import numpy as np

from ..distribution.matrix import DistributedMatrix
from ..distribution.spmv import SpMVExecutor
from ..distribution.vector import DistributedVector
from ..exceptions import ConfigurationError
from .base import Preconditioner

#: Statistics channel for the halo traffic of preconditioner SpMVs.
PRECOND_HALO_CHANNEL = "precond_halo"


class PolynomialPreconditioner(Preconditioner):
    """Truncated Neumann-series preconditioner of degree ``d``."""

    name = "polynomial"
    supports_reconstruction = False

    def __init__(self, degree: int = 2, omega: float = 0.9):
        super().__init__()
        if degree < 1:
            raise ConfigurationError(f"degree must be >= 1, got {degree}")
        if not 0.0 < omega <= 1.0:
            raise ConfigurationError(f"omega must be in (0, 1], got {omega}")
        self.degree = int(degree)
        self.omega = float(omega)

    def _setup_impl(self, matrix: DistributedMatrix) -> None:
        diagonal = matrix.diagonal()
        if np.any(diagonal <= 0):
            raise ConfigurationError("polynomial preconditioner needs a positive diagonal")
        partition = matrix.partition
        self._scaled_inv_diag = [
            self.omega / diagonal[partition.bounds(rank)[0] : partition.bounds(rank)[1]]
            for rank in range(partition.n_nodes)
        ]
        self._executor = SpMVExecutor(matrix)
        self._work = DistributedVector(matrix.cluster, partition)
        self._acc = DistributedVector(matrix.cluster, partition)

    def apply(self, r: DistributedVector, out: DistributedVector) -> None:
        """Horner evaluation: z ← ωD⁻¹r; repeat z ← z + ωD⁻¹(r − A z)."""
        cluster = self.matrix.cluster
        n_nodes = self.matrix.partition.n_nodes
        acc = self._acc
        for rank in range(n_nodes):
            acc.blocks[rank][:] = self._scaled_inv_diag[rank] * r.blocks[rank]
            cluster.compute(rank, acc.blocks[rank].size)
        for _ in range(self.degree):
            self._executor.multiply(acc, out=self._work, channel=PRECOND_HALO_CHANNEL)
            for rank in range(n_nodes):
                residual = r.blocks[rank] - self._work.blocks[rank]
                acc.blocks[rank] += self._scaled_inv_diag[rank] * residual
                cluster.compute(rank, 3 * acc.blocks[rank].size)
        for rank in range(n_nodes):
            out.blocks[rank][:] = acc.blocks[rank]
