"""Preconditioner interface.

The paper treats the preconditioner as a linear operator ``P`` with
``z = P r`` (P ≈ A⁻¹).  Two capabilities matter for resilience:

* **apply** — needed by every PCG iteration (charged to the owning
  node's clock);
* **restriction to failed rows** — ESR/ESRP reconstruction (Alg. 2)
  must solve ``P_ff r_f = v``.  That is possible exactly and locally
  when ``P`` is *node-aligned block diagonal* (``P_{I_f, I\\I_f} = 0``
  and ``P_ff`` invertible per node): identity, Jacobi, block Jacobi and
  the block-local SSOR/IC(0) variants all qualify.  Global operators
  (e.g. the polynomial/Neumann preconditioner) do not —
  ``supports_reconstruction`` is ``False`` and ESR/ESRP refuses them
  with :class:`~repro.exceptions.ReconstructionUnsupportedError`, while
  IMCR accepts them (checkpointing is algorithm-agnostic about ``P``).
"""

from __future__ import annotations

import abc
from typing import Iterable

import numpy as np

from ..distribution.matrix import DistributedMatrix
from ..distribution.vector import DistributedVector
from ..exceptions import ConfigurationError, ReconstructionUnsupportedError


class Preconditioner(abc.ABC):
    """Abstract preconditioner operating on distributed vectors."""

    #: Short identifier used in configs and reports.
    name: str = "abstract"
    #: Whether ESR/ESRP reconstruction can restrict this operator.
    supports_reconstruction: bool = False

    def __init__(self) -> None:
        self._matrix: DistributedMatrix | None = None

    # ------------------------------------------------------------------ set-up

    def setup(self, matrix: DistributedMatrix) -> None:
        """Bind to a matrix and precompute factorisations.

        Re-binding to the *same* matrix object is a no-op, so a cached,
        already-factorised preconditioner can be handed to many engines
        (a :class:`~repro.api.SolverSession` does exactly that) without
        paying the factorisation again.
        """
        if self._matrix is matrix:
            return
        self._matrix = matrix
        self._charge_profile: tuple[tuple[int, float], ...] | None = None
        self._setup_impl(matrix)

    @abc.abstractmethod
    def _setup_impl(self, matrix: DistributedMatrix) -> None: ...

    @property
    def matrix(self) -> DistributedMatrix:
        if self._matrix is None:
            raise ConfigurationError(f"preconditioner {self.name!r} was not set up")
        return self._matrix

    # ------------------------------------------------------------------- apply

    @abc.abstractmethod
    def apply(self, r: DistributedVector, out: DistributedVector) -> None:
        """``out = P r`` with per-node cost charging."""

    # -------------------------------------------------------- reconstruction

    def solve_restricted(self, ranks: Iterable[int], v: np.ndarray) -> np.ndarray:
        """Solve ``P_ff r_f = v`` for the rows of the failed ``ranks``.

        ``v`` is the concatenation of per-rank segments in ascending
        rank / local order; the result uses the same layout.  Only
        meaningful when :attr:`supports_reconstruction` is ``True``.
        """
        raise ReconstructionUnsupportedError(
            f"preconditioner {self.name!r} is not node-aligned block diagonal; "
            "exact state reconstruction cannot restrict it (use IMCR instead)"
        )

    def reconstruction_flops(self, ranks: Iterable[int]) -> float:
        """Flop estimate of :meth:`solve_restricted` (for cost charging)."""
        return 0.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"


class BlockDiagonalPreconditioner(Preconditioner):
    """Base for node-aligned block-diagonal preconditioners.

    Subclasses provide, per node ``s``, a pair of local linear actions:

    * ``_apply_local(s, r_s)`` — the preconditioner action ``P_s r_s``;
    * ``_apply_inverse_local(s, v_s)`` — the action of ``M_s = P_s⁻¹``
      (used to solve ``P_ff r_f = v`` exactly in Alg. 2 line 6).
    """

    supports_reconstruction = True

    @abc.abstractmethod
    def _apply_local(self, rank: int, values: np.ndarray) -> np.ndarray: ...

    @abc.abstractmethod
    def _apply_inverse_local(self, rank: int, values: np.ndarray) -> np.ndarray: ...

    @abc.abstractmethod
    def _apply_flops(self, rank: int) -> float:
        """Flops of one local application (for clock charging)."""

    def apply(self, r: DistributedVector, out: DistributedVector) -> None:
        """``out = P r``, executed by the cluster's kernel backend.

        The ``looped`` backend applies :meth:`_apply_local` node by
        node; the ``vectorized`` backend uses :meth:`flat_apply` when
        the subclass provides one (falling back to the per-rank path
        otherwise).  Billing is identical either way.
        """
        self.matrix.cluster.kernels.precond_apply(self, r, out)

    def flat_apply(self, values: np.ndarray) -> np.ndarray | None:
        """Fused ``P @ values`` on the full flat vector, or ``None``.

        Subclasses whose action is expressible as one fused operation
        (a stacked block-diagonal matvec, a diagonal scale) override
        this; the result must be bit-identical to concatenating the
        per-rank :meth:`_apply_local` outputs.  Returning ``None``
        makes every backend use the per-rank reference path.
        """
        return None

    def charge_profile(self) -> tuple[tuple[int, float], ...]:
        """Cached ``(rank, flops)`` bill of one application (rank ascending)."""
        profile = getattr(self, "_charge_profile", None)
        if profile is None:
            profile = tuple(
                (rank, self._apply_flops(rank))
                for rank in range(self.matrix.partition.n_nodes)
            )
            self._charge_profile = profile
        return profile

    def solve_restricted(self, ranks: Iterable[int], v: np.ndarray) -> np.ndarray:
        ranks = tuple(sorted({int(r) for r in ranks}))
        partition = self.matrix.partition
        expected = sum(partition.size_of(r) for r in ranks)
        v = np.asarray(v, dtype=np.float64)
        if v.size != expected:
            raise ConfigurationError(
                f"restricted RHS has {v.size} entries, failed rows have {expected}"
            )
        pieces: list[np.ndarray] = []
        offset = 0
        for rank in ranks:
            size = partition.size_of(rank)
            pieces.append(self._apply_inverse_local(rank, v[offset : offset + size]))
            offset += size
        return np.concatenate(pieces) if pieces else np.empty(0)

    def reconstruction_flops(self, ranks: Iterable[int]) -> float:
        return float(sum(self._apply_flops(r) for r in set(ranks)))
