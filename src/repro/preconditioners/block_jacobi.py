"""Block Jacobi preconditioner — the paper's choice (§5).

"We use a block Jacobi preconditioner, with non-overlapping blocks and
all rows of a block belonging to a single node.  The blocks are
uniformly sized and we use as few of them as possible, with a maximum
block size of 10."

Within each node's row range we therefore split the local rows into
``ceil(n_local / max_block_size)`` nearly equal blocks, factor the
corresponding diagonal sub-blocks of ``A`` (dense Cholesky — blocks are
tiny), and assemble two sparse block-diagonal operators per node:

* ``P_s`` — the preconditioner action (inverses of the blocks),
* ``M_s = P_s⁻¹`` — the original blocks, used to solve ``P_ff r_f = v``
  exactly during reconstruction (Alg. 2 line 6).

Applying either is a single local CSR matvec per node per iteration.
"""

from __future__ import annotations

import numpy as np
import scipy.linalg
import scipy.sparse as sp

from ..distribution.matrix import DistributedMatrix
from ..exceptions import ConfigurationError
from .base import BlockDiagonalPreconditioner


def split_into_blocks(n_local: int, max_block_size: int) -> list[tuple[int, int]]:
    """Uniform partition of ``range(n_local)`` into blocks of size ≤ max.

    "As few blocks as possible, uniformly sized": ``ceil(n/max)`` blocks
    whose sizes differ by at most one.
    """
    if max_block_size < 1:
        raise ConfigurationError(f"max_block_size must be >= 1, got {max_block_size}")
    if n_local == 0:
        return []
    n_blocks = -(-n_local // max_block_size)
    base, extra = divmod(n_local, n_blocks)
    bounds: list[tuple[int, int]] = []
    start = 0
    for b in range(n_blocks):
        size = base + (1 if b < extra else 0)
        bounds.append((start, start + size))
        start += size
    return bounds


class BlockJacobiPreconditioner(BlockDiagonalPreconditioner):
    """Non-overlapping, node-aligned block Jacobi (max block size 10)."""

    name = "block_jacobi"

    def __init__(self, max_block_size: int = 10):
        super().__init__()
        if max_block_size < 1:
            raise ConfigurationError(f"max_block_size must be >= 1, got {max_block_size}")
        self.max_block_size = int(max_block_size)

    def _setup_impl(self, matrix: DistributedMatrix) -> None:
        partition = matrix.partition
        self._forward: list[sp.csr_matrix] = []  # P_s (block inverses)
        self._backward: list[sp.csr_matrix] = []  # M_s (original blocks)
        self._flops: list[float] = []
        for rank in range(partition.n_nodes):
            local = matrix.diagonal_block(rank).toarray()
            n_local = local.shape[0]
            inverse_blocks: list[np.ndarray] = []
            original_blocks: list[np.ndarray] = []
            for lo, hi in split_into_blocks(n_local, self.max_block_size):
                block = local[lo:hi, lo:hi]
                try:
                    chol = scipy.linalg.cho_factor(block, lower=True)
                    inverse = scipy.linalg.cho_solve(chol, np.eye(hi - lo))
                except scipy.linalg.LinAlgError as exc:
                    raise ConfigurationError(
                        f"diagonal block of rank {rank} rows [{lo},{hi}) is not SPD: {exc}"
                    ) from exc
                inverse_blocks.append(inverse)
                original_blocks.append(block)
            if inverse_blocks:
                self._forward.append(sp.block_diag(inverse_blocks, format="csr"))
                self._backward.append(sp.block_diag(original_blocks, format="csr"))
            else:  # pragma: no cover - empty partitions are rejected upstream
                self._forward.append(sp.csr_matrix((0, 0)))
                self._backward.append(sp.csr_matrix((0, 0)))
            self._flops.append(2.0 * self._forward[-1].nnz)
        self._stacked: sp.csr_matrix | None = None

    def _apply_local(self, rank: int, values: np.ndarray) -> np.ndarray:
        return self._forward[rank] @ values

    def flat_apply(self, values: np.ndarray) -> np.ndarray:
        # One stacked block-diagonal matvec over all nodes.  Row entries
        # stay in ascending column order, as in the per-rank operators,
        # so the row sums are bit-identical to _apply_local.
        if self._stacked is None:
            self._stacked = sp.block_diag(self._forward, format="csr")
        return self._stacked @ values

    def _apply_inverse_local(self, rank: int, values: np.ndarray) -> np.ndarray:
        return self._backward[rank] @ values

    def _apply_flops(self, rank: int) -> float:
        return self._flops[rank]

    def block_bounds(self, rank: int) -> list[tuple[int, int]]:
        """The local block layout of one node (for tests/diagnostics)."""
        n_local = self.matrix.partition.size_of(rank)
        return split_into_blocks(n_local, self.max_block_size)
