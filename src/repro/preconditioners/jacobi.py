"""Jacobi (diagonal) preconditioner."""

from __future__ import annotations

import numpy as np

from ..distribution.matrix import DistributedMatrix
from ..exceptions import ConfigurationError
from .base import BlockDiagonalPreconditioner


class JacobiPreconditioner(BlockDiagonalPreconditioner):
    """``P = diag(A)⁻¹`` — the cheapest non-trivial preconditioner.

    Node-aligned block diagonal with 1×1 blocks, hence fully
    reconstruction-compatible: ``P_ff r_f = v  ⇔  r_f = diag(A)_f · v``.
    """

    name = "jacobi"

    def _setup_impl(self, matrix: DistributedMatrix) -> None:
        diagonal = matrix.diagonal()
        if np.any(diagonal <= 0):
            raise ConfigurationError(
                "Jacobi preconditioner requires a strictly positive diagonal "
                "(is the matrix SPD?)"
            )
        partition = matrix.partition
        self._diag_blocks = [
            diagonal[partition.bounds(rank)[0] : partition.bounds(rank)[1]]
            for rank in range(partition.n_nodes)
        ]
        self._inv_blocks = [1.0 / d for d in self._diag_blocks]
        self._inv_flat = np.concatenate(self._inv_blocks)

    def _apply_local(self, rank: int, values: np.ndarray) -> np.ndarray:
        return values * self._inv_blocks[rank]

    def flat_apply(self, values: np.ndarray) -> np.ndarray:
        return values * self._inv_flat

    def _apply_inverse_local(self, rank: int, values: np.ndarray) -> np.ndarray:
        return values * self._diag_blocks[rank]

    def _apply_flops(self, rank: int) -> float:
        return float(self._diag_blocks[rank].size)
