"""Identity preconditioner: plain CG in PCG clothing."""

from __future__ import annotations

import numpy as np

from ..distribution.matrix import DistributedMatrix
from .base import BlockDiagonalPreconditioner


class IdentityPreconditioner(BlockDiagonalPreconditioner):
    """``P = I`` — turns PCG into unpreconditioned CG."""

    name = "identity"

    def _setup_impl(self, matrix: DistributedMatrix) -> None:
        pass

    def _apply_local(self, rank: int, values: np.ndarray) -> np.ndarray:
        return values

    def flat_apply(self, values: np.ndarray) -> np.ndarray:
        return values

    def _apply_inverse_local(self, rank: int, values: np.ndarray) -> np.ndarray:
        return values

    def _apply_flops(self, rank: int) -> float:
        return 0.0
