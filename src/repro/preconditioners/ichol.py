"""Block-local incomplete Cholesky IC(0) preconditioner.

Per node ``s``, factor the diagonal block ``A_ss ≈ L_s L_sᵀ`` with zero
fill-in (the factor keeps exactly the lower-triangular sparsity pattern
of ``A_ss``).  The preconditioner action is ``P_s = (L_s L_sᵀ)⁻¹`` via
two triangular solves; the inverse action needed for reconstruction is
``M_s v = L_s (L_sᵀ v)`` (two matvecs).

IC(0) can break down (non-positive pivot) on matrices that are SPD but
not H-matrices; we then apply the standard remedy of a diagonal shift
``A + σ·diag(A)``, growing σ by 10× per attempt.
"""

from __future__ import annotations

import math

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from ..distribution.matrix import DistributedMatrix
from ..exceptions import ConfigurationError
from .base import BlockDiagonalPreconditioner


def ic0_factor(block: sp.csr_matrix, max_shift_attempts: int = 8) -> sp.csr_matrix:
    """IC(0) factor ``L`` of an SPD sparse matrix (zero fill-in).

    Returns a lower-triangular CSR matrix with the sparsity pattern of
    ``tril(block)`` such that ``L Lᵀ ≈ block``.
    """
    n = block.shape[0]
    base = sp.tril(block, k=0, format="csr")
    diagonal = block.diagonal()
    if np.any(diagonal <= 0):
        raise ConfigurationError("IC(0) requires positive diagonal entries")

    shift = 0.0
    for attempt in range(max_shift_attempts):
        try:
            return _ic0_attempt(base, diagonal, shift, n)
        except _PivotBreakdown:
            shift = 1e-3 if shift == 0.0 else shift * 10.0
    raise ConfigurationError(
        f"IC(0) broke down even with diagonal shift {shift:.1e}"
    )


class _PivotBreakdown(Exception):
    pass


def _ic0_attempt(
    lower_csr: sp.csr_matrix, diagonal: np.ndarray, shift: float, n: int
) -> sp.csr_matrix:
    """One IC(0) factorisation attempt with diagonal shift ``shift``."""
    indptr = lower_csr.indptr
    indices = lower_csr.indices
    data = lower_csr.data.copy()
    if shift:
        # Shift is applied to the diagonal entries of the working copy.
        for i in range(n):
            for kk in range(indptr[i], indptr[i + 1]):
                if indices[kk] == i:
                    data[kk] += shift * diagonal[i]

    # Row-wise up-looking IC(0): rows store the already-computed L values.
    rows: list[dict[int, float]] = [dict() for _ in range(n)]
    values = np.zeros_like(data)
    for i in range(n):
        row_pattern = indices[indptr[i] : indptr[i + 1]]
        row_values = data[indptr[i] : indptr[i + 1]]
        li = rows[i]
        for pos, j in enumerate(row_pattern):
            a_ij = row_values[pos]
            lj = rows[j]
            if j < i:
                # L[i,j] = (a_ij - sum_k L[i,k] L[j,k]) / L[j,j]
                acc = a_ij
                if len(li) <= len(lj):
                    for k, lik in li.items():
                        if k < j:
                            ljk = lj.get(k)
                            if ljk is not None:
                                acc -= lik * ljk
                else:
                    for k, ljk in lj.items():
                        if k < j:
                            lik = li.get(k)
                            if lik is not None:
                                acc -= lik * ljk
                lij = acc / lj[j]
                li[j] = lij
                values[indptr[i] + pos] = lij
            else:  # j == i, the pivot
                acc = a_ij
                for k, lik in li.items():
                    if k < i:
                        acc -= lik * lik
                if acc <= 0.0 or not math.isfinite(acc):
                    raise _PivotBreakdown()
                lii = math.sqrt(acc)
                li[i] = lii
                values[indptr[i] + pos] = lii
    return sp.csr_matrix((values, indices.copy(), indptr.copy()), shape=(n, n))


class BlockICholPreconditioner(BlockDiagonalPreconditioner):
    """Node-local IC(0) preconditioner."""

    name = "block_ichol"

    def _setup_impl(self, matrix: DistributedMatrix) -> None:
        self._factors: list[sp.csr_matrix] = []
        self._factors_t: list[sp.csr_matrix] = []
        self._flops: list[float] = []
        for rank in range(matrix.partition.n_nodes):
            block = matrix.diagonal_block(rank)
            factor = ic0_factor(block)
            self._factors.append(factor)
            self._factors_t.append(factor.T.tocsr())
            self._flops.append(4.0 * factor.nnz)

    def _apply_local(self, rank: int, values: np.ndarray) -> np.ndarray:
        y = spla.spsolve_triangular(self._factors[rank], values, lower=True)
        return spla.spsolve_triangular(self._factors_t[rank], y, lower=False)

    def _apply_inverse_local(self, rank: int, values: np.ndarray) -> np.ndarray:
        return self._factors[rank] @ (self._factors_t[rank] @ values)

    def _apply_flops(self, rank: int) -> float:
        return self._flops[rank]
