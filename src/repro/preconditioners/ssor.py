"""Block-local SSOR preconditioner.

Distributed codes commonly localise SSOR to each node's diagonal block
(an "inexact block Jacobi with SSOR blocks"): per node ``s`` with
``A_ss = L + D + Lᵀ``,

    M_s = (D/ω + L) · ((2-ω)/ω · D)⁻¹ · (D/ω + L)ᵀ,   0 < ω < 2,

and the preconditioner action is ``P_s = M_s⁻¹`` via two triangular
solves.  Because M_s is node-local and SPD, this operator is
node-aligned block diagonal and therefore reconstruction-compatible:
``P_ff r_f = v`` is solved by applying ``M_s`` (two matvecs + a diagonal
scale) per failed node.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from ..distribution.matrix import DistributedMatrix
from ..exceptions import ConfigurationError
from .base import BlockDiagonalPreconditioner


class BlockSSORPreconditioner(BlockDiagonalPreconditioner):
    """Node-local symmetric SOR (SSOR) preconditioner."""

    name = "block_ssor"

    def __init__(self, omega: float = 1.2):
        super().__init__()
        if not 0.0 < omega < 2.0:
            raise ConfigurationError(f"omega must be in (0, 2), got {omega}")
        self.omega = float(omega)

    def _setup_impl(self, matrix: DistributedMatrix) -> None:
        omega = self.omega
        self._lower: list[sp.csr_matrix] = []  # D/ω + L  (lower triangular)
        self._mid: list[np.ndarray] = []  # ((2-ω)/ω) · diag
        self._flops: list[float] = []
        for rank in range(matrix.partition.n_nodes):
            block = matrix.diagonal_block(rank)
            diagonal = block.diagonal()
            if np.any(diagonal <= 0):
                raise ConfigurationError(
                    f"SSOR requires positive diagonal entries (rank {rank})"
                )
            strict_lower = sp.tril(block, k=-1, format="csr")
            lower = (strict_lower + sp.diags_array(diagonal / omega, format="csr")).tocsr()
            self._lower.append(lower)
            self._mid.append((2.0 - omega) / omega * diagonal)
            # two triangular solves + diagonal scale per application
            self._flops.append(4.0 * lower.nnz + diagonal.size)

    def _apply_local(self, rank: int, values: np.ndarray) -> np.ndarray:
        lower = self._lower[rank]
        y = spla.spsolve_triangular(lower, values, lower=True)
        y *= self._mid[rank]
        return spla.spsolve_triangular(lower.T.tocsr(), y, lower=False)

    def _apply_inverse_local(self, rank: int, values: np.ndarray) -> np.ndarray:
        lower = self._lower[rank]
        y = lower.T @ values
        y /= self._mid[rank]
        return lower @ y

    def _apply_flops(self, rank: int) -> float:
        return self._flops[rank]
