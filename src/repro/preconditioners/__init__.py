"""Preconditioners (S6 in DESIGN.md) and their factory.

The paper uses node-aligned block Jacobi with block size ≤ 10; the
other operators support the preconditioner ablation the paper lists as
future work, including one (polynomial/Neumann) that is deliberately
*not* reconstruction-compatible.
"""

from __future__ import annotations

from ..exceptions import ConfigurationError
from .base import BlockDiagonalPreconditioner, Preconditioner
from .block_jacobi import BlockJacobiPreconditioner, split_into_blocks
from .ichol import BlockICholPreconditioner, ic0_factor
from .identity import IdentityPreconditioner
from .jacobi import JacobiPreconditioner
from .polynomial import PRECOND_HALO_CHANNEL, PolynomialPreconditioner
from .ssor import BlockSSORPreconditioner

_FACTORY = {
    "identity": IdentityPreconditioner,
    "jacobi": JacobiPreconditioner,
    "block_jacobi": BlockJacobiPreconditioner,
    "block_ssor": BlockSSORPreconditioner,
    "block_ichol": BlockICholPreconditioner,
    "polynomial": PolynomialPreconditioner,
}


def available_preconditioners() -> tuple[str, ...]:
    """Names accepted by :func:`make_preconditioner`."""
    return tuple(sorted(_FACTORY))


def make_preconditioner(name: str, **kwargs) -> Preconditioner:
    """Instantiate a preconditioner by name (kwargs go to its constructor)."""
    try:
        factory = _FACTORY[name.lower()]
    except KeyError:
        raise ConfigurationError(
            f"unknown preconditioner {name!r}; available: "
            f"{', '.join(available_preconditioners())}"
        ) from None
    return factory(**kwargs)


__all__ = [
    "BlockDiagonalPreconditioner",
    "BlockICholPreconditioner",
    "BlockJacobiPreconditioner",
    "BlockSSORPreconditioner",
    "IdentityPreconditioner",
    "JacobiPreconditioner",
    "PRECOND_HALO_CHANNEL",
    "PolynomialPreconditioner",
    "Preconditioner",
    "available_preconditioners",
    "ic0_factor",
    "make_preconditioner",
    "split_into_blocks",
]
