"""Preconditioners (S6 in DESIGN.md) and their factory.

The paper uses node-aligned block Jacobi with block size ≤ 10; the
other operators support the preconditioner ablation the paper lists as
future work, including one (polynomial/Neumann) that is deliberately
*not* reconstruction-compatible.

The built-in operators are ordinary registrations in the pluggable
preconditioner registry (:data:`repro.api.registry.PRECONDITIONERS`);
third-party operators join via ``@register_preconditioner``.
"""

from __future__ import annotations

from ..api.registry import PRECONDITIONERS
from .base import BlockDiagonalPreconditioner, Preconditioner
from .block_jacobi import BlockJacobiPreconditioner, split_into_blocks
from .ichol import BlockICholPreconditioner, ic0_factor
from .identity import IdentityPreconditioner
from .jacobi import JacobiPreconditioner
from .polynomial import PRECOND_HALO_CHANNEL, PolynomialPreconditioner
from .ssor import BlockSSORPreconditioner

PRECONDITIONERS.register("identity", IdentityPreconditioner)
PRECONDITIONERS.register("jacobi", JacobiPreconditioner, aliases=("diagonal",))
PRECONDITIONERS.register("block_jacobi", BlockJacobiPreconditioner, aliases=("bj",))
PRECONDITIONERS.register("block_ssor", BlockSSORPreconditioner)
PRECONDITIONERS.register("block_ichol", BlockICholPreconditioner, aliases=("ic0",))
PRECONDITIONERS.register("polynomial", PolynomialPreconditioner, aliases=("neumann",))


def available_preconditioners() -> tuple[str, ...]:
    """Names accepted by :func:`make_preconditioner` (built-ins + plugins)."""
    return PRECONDITIONERS.names()


def make_preconditioner(name: str, **kwargs) -> Preconditioner:
    """Instantiate a preconditioner by name (kwargs go to its constructor)."""
    return PRECONDITIONERS.create(name, **kwargs)


__all__ = [
    "BlockDiagonalPreconditioner",
    "BlockICholPreconditioner",
    "BlockJacobiPreconditioner",
    "BlockSSORPreconditioner",
    "IdentityPreconditioner",
    "JacobiPreconditioner",
    "PRECOND_HALO_CHANNEL",
    "PolynomialPreconditioner",
    "Preconditioner",
    "available_preconditioners",
    "ic0_factor",
    "make_preconditioner",
    "split_into_blocks",
]
