"""ESRP — exact state reconstruction with periodic storage (Alg. 3, §3).

The paper's main contribution.  Redundant copies of the search
direction are created only during a two-iteration *storage stage* every
T iterations:

* iteration j ≡ 0 (mod T), j > 2 — ASpMV pushes p′^{(j)}; after the β
  update of this iteration, every node duplicates β** ← β^{(j)};
* iteration j ≡ 1 (mod T), j > 2 — ASpMV pushes p′^{(j)}; every node
  duplicates its local blocks x*, r*, z*, p* ← state^{(j)} and promotes
  β* ← β** (= β^{(j-1)}).  The storage stage is complete: iteration j
  becomes the recovery point ĵ.

The queue holds **three** redundant copies so that a failure *between*
the two pushes of a storage stage still finds the previous complete
pair (Fig. 1).

On failure: surviving nodes roll back to their starred copies,
replacements reconstruct via Alg. 2 from p′^{(ĵ-1)}, p′^{(ĵ)} and β*;
the solver resumes at ĵ, re-executing (wasting) the iterations since.

See DESIGN.md §3.2 for the hook-ordering resolution of the printed
algorithm (β^{(j)} does not exist yet at the *top* of iteration j).
"""

from __future__ import annotations

import numpy as np

from ..cluster.failures import FailureEvent
from ..distribution.aspmv import ASpMVExecutor, gather_redundant_copy
from ..events import EventKind
from ..exceptions import ConfigurationError, IrrecoverableDataLossError
from ..solvers.engine import ResilienceStrategy
from ..solvers.state import PCGState, STATE_VECTOR_NAMES
from .reconstruction import reconstruct_lost_state, require_reconstruction_support
from .recovery import begin_recovery, end_recovery, fallback_restart
from .redundancy import RedundancyQueue

#: Node-store key prefix for the starred vector copies.
STAR_PREFIX = "esrp_star_"
#: Node-scalar keys for the duplicated betas.
BETA_STAR = "esrp_beta_star"
BETA_DOUBLE_STAR = "esrp_beta_double_star"


class ESRPStrategy(ResilienceStrategy):
    """Exact state reconstruction with periodic storage (interval T)."""

    name = "esrp"

    def __init__(
        self, T: int, phi: int = 1, rule: str = "paper", destinations: str = "eq1"
    ):
        super().__init__()
        if T < 3:
            raise ConfigurationError(
                f"ESRP requires T >= 3 (got {T}); for T in {{1, 2}} the paper "
                "prescribes plain ESR — use ESRStrategy or make_strategy()"
            )
        if phi < 1:
            raise ConfigurationError(f"phi must be >= 1, got {phi}")
        self.T = int(T)
        self.phi = int(phi)
        self.rule = rule
        self.destinations = destinations
        self.queue = RedundancyQueue(capacity=3)
        #: Iteration ĵ of the last *completed* storage stage, or None.
        self.recovery_point: int | None = None

    def _setup(self) -> None:
        require_reconstruction_support(self._engine)
        self._aspmv = ASpMVExecutor(
            self._engine.matrix, self.phi, rule=self.rule,
            destinations=self.destinations,
        )

    # ------------------------------------------------------------------- hooks

    def _is_first_storage_iteration(self, j: int) -> bool:
        return j % self.T == 0 and j > 2

    def _is_second_storage_iteration(self, j: int) -> bool:
        return (j - 1) % self.T == 0 and j > 2

    def spmv(self, j: int, state: PCGState) -> None:
        engine = self._engine
        if self._is_first_storage_iteration(j):
            self._aspmv.multiply_augmented(state.p, j, self.queue, out=state.rho)
            engine.log.record(
                EventKind.STORAGE_STAGE,
                iteration=j,
                time=engine.cluster.elapsed(),
                phase="first_push",
                queue=self.queue.render(),
            )
        elif self._is_second_storage_iteration(j):
            self._aspmv.multiply_augmented(state.p, j, self.queue, out=state.rho)
            self._make_starred_copies(j, state)
            self.recovery_point = j
            engine.cluster.snapshot_redundancy_footprint()
            engine.log.record(
                EventKind.STORAGE_STAGE,
                iteration=j,
                time=engine.cluster.elapsed(),
                phase="complete",
                queue=self.queue.render(),
                recovery_point=j,
            )
        else:
            self._aspmv.multiply(state.p, out=state.rho)

    def post_iteration(self, j: int, state: PCGState) -> None:
        # β** ← β^{(j)} right after it is computed (Alg. 3 line 6; the
        # printed "top-of-loop" placement is impossible — DESIGN.md §3.2).
        if self._is_first_storage_iteration(j):
            for node in self._engine.cluster.nodes:
                if node.alive:
                    node.scalars[BETA_DOUBLE_STAR] = float(state.beta)  # type: ignore[arg-type]

    def _make_starred_copies(self, j: int, state: PCGState) -> None:
        """x*,r*,z*,p* ← state^{(j)}; β* ← β** (local, no communication)."""
        cluster = self._engine.cluster
        for rank in range(self._engine.partition.n_nodes):
            node = cluster.node(rank)
            if not node.alive:  # pragma: no cover - all alive during spmv
                continue
            nbytes = 0
            for name in STATE_VECTOR_NAMES:
                block = state.vector(name).blocks[rank]
                node.store[STAR_PREFIX + name] = block.copy()
                nbytes += block.nbytes
            cluster.memcpy(rank, nbytes)
            if BETA_DOUBLE_STAR in node.scalars:
                node.scalars[BETA_STAR] = node.scalars[BETA_DOUBLE_STAR]

    # ---------------------------------------------------------------- recovery

    def recover(self, j: int, event: FailureEvent, state: PCGState) -> int:
        engine = self._engine
        begin_recovery(engine, j, event, strategy=self.name)

        target = self.recovery_point
        if target is None:
            resume = fallback_restart(
                engine, state, j, "failure before the first complete storage stage"
            )
            end_recovery(engine, j, resume, strategy=self.name)
            return resume

        survivors = [
            r for r in range(engine.partition.n_nodes) if r not in event.ranks
        ]
        beta_star = self._replicated_scalar(survivors, BETA_STAR)
        if beta_star is None or not self.queue.holds_pair(target - 1, target):
            resume = fallback_restart(
                engine, state, j, "storage-stage data incomplete at failure time"
            )
            end_recovery(engine, j, resume, strategy=self.name)
            return resume

        try:
            p_curr = gather_redundant_copy(
                engine.cluster, engine.partition, target, event.ranks
            )
            p_prev = gather_redundant_copy(
                engine.cluster, engine.partition, target - 1, event.ranks
            )
        except IrrecoverableDataLossError as exc:
            resume = fallback_restart(engine, state, j, str(exc))
            end_recovery(engine, j, resume, strategy=self.name)
            return resume

        # Surviving nodes roll back to their starred copies (local).
        for rank in survivors:
            node = engine.cluster.node(rank)
            nbytes = 0
            for name in STATE_VECTOR_NAMES:
                stored = node.store[STAR_PREFIX + name]
                state.vector(name).blocks[rank][:] = stored
                nbytes += stored.nbytes
            engine.cluster.memcpy(rank, nbytes)

        # Replacements fetch the replicated scalars (β*, β**, rz, ...).
        engine.fetch_replicated_scalar(event.ranks, count=3)

        report = reconstruct_lost_state(
            engine,
            state,
            event.ranks,
            target_iteration=target,
            p_curr=p_curr,
            p_prev=p_prev,
            beta_prev=beta_star,
        )

        # The replacements now hold the state of iteration ĵ: they adopt
        # the starred copies and scalars so a later failure of a
        # *different* node can still roll everything back to ĵ.
        beta_double = self._replicated_scalar(survivors, BETA_DOUBLE_STAR)
        for rank in event.ranks:
            node = engine.cluster.node(rank)
            nbytes = 0
            for name in STATE_VECTOR_NAMES:
                block = state.vector(name).blocks[rank]
                node.store[STAR_PREFIX + name] = block.copy()
                nbytes += block.nbytes
            engine.cluster.memcpy(rank, nbytes)
            node.scalars[BETA_STAR] = beta_star
            if beta_double is not None:
                node.scalars[BETA_DOUBLE_STAR] = beta_double

        # The solver continues from ĵ with β^{(ĵ-1)} = β*.
        state.beta = beta_star

        end_recovery(
            engine,
            j,
            target,
            strategy=self.name,
            inner_iterations=report.inner_iterations,
            lost_rows=report.lost_rows,
        )
        return target

    def _replicated_scalar(self, survivors: list[int], key: str) -> float | None:
        for rank in survivors:
            node = self._engine.cluster.node(rank)
            if key in node.scalars:
                return float(node.scalars[key])
        return None
