"""Shared recovery plumbing used by the resilience strategies.

Keeps the strategy classes focused on *what* they store and rebuild;
the common mechanics — spare-node replacement, recovery-phase event
bracketing, and the restart-from-scratch fallback — live here.
"""

from __future__ import annotations

from typing import Any

from ..cluster.failures import FailureEvent
from ..events import EventKind
from ..solvers.engine import PCGEngine
from ..solvers.state import PCGState


def begin_recovery(engine: PCGEngine, j: int, event: FailureEvent, **detail: Any) -> None:
    """Bring up spare nodes for the failed ranks and open a recovery span.

    The paper assumes spare nodes are pre-allocated and the middleware
    costs of detection/communicator reconstruction are comparable
    between strategies (§4 "Beyond node-failure simulation"); those are
    therefore not charged.
    """
    engine.cluster.replace(event.ranks)
    engine.log.record(
        EventKind.RECOVERY_START,
        iteration=j,
        time=engine.cluster.elapsed(),
        ranks=event.ranks,
        **detail,
    )


def end_recovery(engine: PCGEngine, j: int, resume_iteration: int, **detail: Any) -> None:
    """Close a recovery span (synchronising all nodes first).

    Recovery ends with every node agreeing on the restored state, which
    in MPI terms is at least a barrier on the new communicator.
    """
    engine.cluster.barrier()
    engine.log.record(
        EventKind.RECOVERY_END,
        iteration=j,
        time=engine.cluster.elapsed(),
        resume_iteration=resume_iteration,
        **detail,
    )


def fallback_restart(engine: PCGEngine, state: PCGState, j: int, reason: str) -> int:
    """Restart from the initial guess when recovery data is unavailable.

    Used when a failure strikes before the first storage
    stage/checkpoint completed, or when a second failure destroyed the
    only surviving copies.  Static data is safe, so the solve restarts
    cleanly at iteration 0; the cost is all progress so far.
    """
    engine.log.record(
        EventKind.WARNING,
        iteration=j,
        time=engine.cluster.elapsed(),
        reason=reason,
        action="full restart from initial guess",
    )
    engine.reinitialize_state(state)
    return 0
