"""Exact state reconstruction — Alg. 2 of the paper.

Runs on the replacement nodes after a failure.  Given the two stored
search directions ``p′^{(ĵ-1)}, p′^{(ĵ)}`` (gathered from the surviving
redundancy stores), the replicated scalar ``β^{(ĵ-1)}`` and the
surviving entries of ``x^{(ĵ)}`` and ``r^{(ĵ)}``, it rebuilds the lost
blocks of the full state for iteration ĵ:

1. ``z_f = p_f − β^{(ĵ-1)} · p_prev_f``                      (line 4)
2. ``v = z_f − P_{f,s} r_s``; for node-aligned block-diagonal
   preconditioners ``P_{f,s} = 0``, so ``v = z_f``             (line 5)
3. solve ``P_ff r_f = v`` — exact & local for block-diagonal P (line 6)
4. ``w = b_f − r_f − A_{f,s} x_s``                            (line 7)
5. solve ``A_ff x_f = w`` with inner PCG to 1e-14             (line 8)

Static data (matrix rows, preconditioner blocks, ``b_f``) comes from
safe storage; per the paper's §4 measurement protocol its reload time
is *not* charged.  Everything dynamic — gathering surviving entries,
redundant copies, the inner solves — is charged to the simulated
clocks.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..cluster.cost_model import BYTES_PER_FLOAT
from ..distribution.aspmv import RECOVERY_CHANNEL
from ..exceptions import ReconstructionUnsupportedError
from ..solvers.engine import PCGEngine
from ..solvers.inner import INNER_RTOL, inner_pcg
from ..solvers.state import PCGState


@dataclasses.dataclass(frozen=True)
class ReconstructionReport:
    """What the reconstruction did (for logging and cost validation)."""

    target_iteration: int
    failed_ranks: tuple[int, ...]
    lost_rows: int
    inner_iterations: int
    inner_relative_residual: float
    gathered_x_entries: int


def require_reconstruction_support(engine: PCGEngine) -> None:
    """Fail fast if the preconditioner cannot be restricted (Alg. 2)."""
    if not engine.preconditioner.supports_reconstruction:
        raise ReconstructionUnsupportedError(
            f"preconditioner {engine.preconditioner.name!r} is not node-aligned "
            "block diagonal; ESR/ESRP cannot reconstruct with it — use IMCR"
        )


def reconstruct_lost_state(
    engine: PCGEngine,
    state: PCGState,
    failed_ranks: tuple[int, ...],
    target_iteration: int,
    p_curr: dict[int, np.ndarray],
    p_prev: dict[int, np.ndarray],
    beta_prev: float,
    inner_rtol: float = INNER_RTOL,
    inner_block_size: int = 10,
) -> ReconstructionReport:
    """Rebuild the lost blocks of (x, r, z, p) for ``target_iteration``.

    Preconditions: the failed ranks have been replaced (alive, empty),
    the *surviving* blocks of ``state`` already hold the state of
    ``target_iteration`` (ESR: unchanged; ESRP: rolled back from the
    starred copies), and ``p_curr``/``p_prev`` hold the gathered lost
    blocks of ``p^{(ĵ)}`` and ``p^{(ĵ-1)}``.
    """
    require_reconstruction_support(engine)
    cluster = engine.cluster
    partition = engine.partition
    matrix = engine.matrix
    failed = tuple(sorted(failed_ranks))
    failed_set = set(failed)
    psi = len(failed)

    # Line 4: z_f = p_f - beta * p_prev_f   (on each replacement).
    z_segments: list[np.ndarray] = []
    for rank in failed:
        z_rank = p_curr[rank] - beta_prev * p_prev[rank]
        z_segments.append(z_rank)
        cluster.compute(rank, 2 * z_rank.size)
    z_f = np.concatenate(z_segments)

    # Lines 5-6: P_{f,s} = 0 for supported preconditioners, so v = z_f;
    # solve P_ff r_f = v exactly via the local inverse action.
    r_f = engine.preconditioner.solve_restricted(failed, z_f)
    per_rank_flops = engine.preconditioner.reconstruction_flops(failed) / max(psi, 1)
    for rank in failed:
        cluster.compute(rank, per_rank_flops)

    # Line 7: w = b_f - r_f - A_{f,s} x_s.
    # Gather the surviving x entries appearing in the failed rows' halo
    # (one concurrent phase).
    gathered = 0
    messages = []
    for rank in failed:
        for descriptor in matrix.plan.recvs[rank]:
            if descriptor.src in failed_set or descriptor.count == 0:
                continue
            nbytes = descriptor.count * BYTES_PER_FLOAT
            messages.append((descriptor.src, rank, nbytes, RECOVERY_CHANNEL, False))
            gathered += descriptor.count
    if messages:
        cluster.exchange(messages)

    lost_indices = partition.indices_of(failed)
    x_masked = state.x.to_global()
    x_masked[lost_indices] = 0.0  # only surviving entries contribute
    rows = matrix.row_block(failed)  # A[I_f, :] from safe storage
    b_f = np.concatenate([engine.b.blocks[rank] for rank in failed])
    w = b_f - r_f - rows @ x_masked
    for rank in failed:
        cluster.compute(rank, (2.0 * rows.nnz + 2.0 * w.size) / psi)

    # Line 8: solve A_ff x_f = w with inner PCG (paper: rtol 1e-14,
    # block Jacobi <= 10 on the inner system too).
    a_ff = matrix.submatrix(failed)
    x_f, report = inner_pcg(
        a_ff, w, rtol=inner_rtol, max_block_size=inner_block_size
    )
    _charge_inner_solve(engine, failed, report.flops, report.iterations)

    # Scatter the reconstructed blocks into the solver state.
    offset = 0
    for rank in failed:
        size = partition.size_of(rank)
        segment = slice(offset, offset + size)
        state.x.blocks[rank][:] = x_f[segment]
        state.r.blocks[rank][:] = r_f[segment]
        state.z.blocks[rank][:] = z_f[segment]
        state.p.blocks[rank][:] = p_curr[rank]
        offset += size

    return ReconstructionReport(
        target_iteration=int(target_iteration),
        failed_ranks=failed,
        lost_rows=int(lost_indices.size),
        inner_iterations=report.iterations,
        inner_relative_residual=report.relative_residual,
        gathered_x_entries=gathered,
    )


def _charge_inner_solve(
    engine: PCGEngine,
    failed: tuple[int, ...],
    flops: float,
    iterations: int,
) -> None:
    """Charge the distributed cost of the inner solve.

    The inner system spans the replacement group: computation is split
    across the ψ replacements, and each inner iteration needs the two
    PCG reductions within the group (charged as allreduce time).
    """
    cluster = engine.cluster
    psi = len(failed)
    per_rank = flops / max(psi, 1)
    reduction = 0.0
    if psi > 1:
        reduction = iterations * 2 * cluster.cost_model.allreduce_time(
            BYTES_PER_FLOAT, psi
        )
    for rank in failed:
        cluster.compute(rank, per_rank)
        if reduction:
            cluster.advance(rank, reduction)
