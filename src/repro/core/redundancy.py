"""The redundancy queue of §3 (Fig. 1 of the paper).

ESR/ESRP abstract the redundant copies p′ created by the augmented SpMV
as entries of a fixed-capacity queue:

* ESR  — capacity 2: every iteration pushes, the queue always holds the
  two most recent consecutive search directions;
* ESRP — capacity 3: pushes happen in pairs every T iterations, and the
  third slot guarantees that when a failure strikes *between* the two
  pushes of a storage stage, the previous complete pair is still
  available (Fig. 1).

The queue tracks iteration numbers only; the physical entry data lives
scattered in the per-node redundancy stores
(:attr:`repro.cluster.node.NodeState.redundancy`).  Eviction from the
queue triggers the corresponding drops there (done by the ASpMV
executor, which observes the evicted id returned from :meth:`push`).
"""

from __future__ import annotations

from ..exceptions import ConfigurationError


class RedundancyQueue:
    """Fixed-capacity FIFO of iteration numbers with redundant copies."""

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._items: list[int] = []

    # ---------------------------------------------------------------- mutation

    def push(self, iteration: int) -> int | None:
        """Push a redundant copy for ``iteration``; return evicted id.

        Idempotent: re-pushing an iteration already in the queue (which
        happens when the solver re-executes a storage iteration after a
        rollback) is a no-op.
        """
        iteration = int(iteration)
        if iteration in self._items:
            return None
        self._items.append(iteration)
        if len(self._items) > self.capacity:
            return self._items.pop(0)
        return None

    def clear(self) -> None:
        self._items.clear()

    # ----------------------------------------------------------------- queries

    @property
    def items(self) -> tuple[int, ...]:
        """Iteration numbers currently held, oldest first."""
        return tuple(self._items)

    def __contains__(self, iteration: int) -> bool:
        return int(iteration) in self._items

    def __len__(self) -> int:
        return len(self._items)

    def holds_pair(self, older: int, newer: int) -> bool:
        """True if both iterations of a consecutive pair are present."""
        return older in self and newer in self

    def latest_consecutive_pair(self) -> tuple[int, int] | None:
        """The newest pair (j, j+1) fully contained in the queue.

        This is the recovery point: ESR reconstructs iteration j+1 from
        p′^{(j)} and p′^{(j+1)}.
        """
        best: tuple[int, int] | None = None
        present = set(self._items)
        for j in present:
            if j + 1 in present:
                if best is None or j + 1 > best[1]:
                    best = (j, j + 1)
        return best

    def render(self) -> str:
        """Fig.-1-style rendering, e.g. ``[_, p'(20), p'(21)]``."""
        slots = ["_"] * (self.capacity - len(self._items)) + [
            f"p'({j})" for j in self._items
        ]
        return "[" + ", ".join(slots) + "]"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RedundancyQueue(capacity={self.capacity}, items={self._items})"
