"""Periodic-verification CG for silent-data-corruption detection.

Self-stabilising CG in the spirit of arXiv:1511.04478: every T
iterations the solver *verifies* its state by recomputing the true
residual ``b - A x`` and comparing it against the recurrence residual
r.  In exact arithmetic the two are equal; a silent corruption of any
state vector breaks the invariant, and the relative gap
``‖(b - A x) - r‖ / ‖b‖`` exposes it.  On detection:

``backward``
    Roll back to the last *verified* checkpoint (stored locally on
    every node at each passing verification — SDC destroys no nodes,
    so local copies suffice; no buddy traffic).  A repeated detection
    at the same iteration (a persistent gap that rollback cannot
    clear, e.g. a too-tight threshold) escalates to forward recovery,
    which restores the invariant by construction.
``forward``
    Reconstruct instead of rolling back: adopt the recomputed true
    residual, re-apply the preconditioner, restart the search
    direction, and continue from the current iterate.  The corrupted x
    simply becomes the new starting point — CG converges from any
    iterate whose residual is consistent, so no progress before the
    corruption is wasted (at the price of a Krylov-space restart).

Verification is charged honestly: one extra SpMV, one vector subtract,
and one norm allreduce per verification point — the overhead the
interval ablation (``bench_ablation_verification_interval``) sweeps.

Against *fail-stop* failures PV keeps no redundancy; a node failure
falls back to a full restart (use ESR/ESRP/IMCR for that regime — the
campaign A/Bs them side by side).
"""

from __future__ import annotations

from ..cluster.failures import FailureEvent
from ..distribution.spmv import SpMVExecutor
from ..distribution.vector import DistributedVector
from ..events import EventKind
from ..exceptions import ConfigurationError
from ..solvers.engine import ResilienceStrategy
from ..solvers.state import PCGState, STATE_VECTOR_NAMES

from .recovery import begin_recovery, end_recovery, fallback_restart

#: Node-store key prefix for the locally held verified checkpoint.
PV_CKPT_PREFIX = "pv_ckpt_"
#: Default detection threshold on the relative residual gap.
PV_THRESHOLD = 1e-8
#: Verification modes.
PV_MODES = ("backward", "forward")


class PeriodicVerificationStrategy(ResilienceStrategy):
    """Recomputed-residual verification every T iterations."""

    name = "pv"

    def __init__(
        self,
        T: int = 10,
        phi: int = 1,
        threshold: float = PV_THRESHOLD,
        mode: str = "backward",
    ):
        super().__init__()
        if T < 1:
            raise ConfigurationError(f"T must be >= 1, got {T}")
        if threshold <= 0:
            raise ConfigurationError(f"threshold must be > 0, got {threshold}")
        if mode not in PV_MODES:
            raise ConfigurationError(f"pv mode must be one of {PV_MODES}, got {mode!r}")
        self.T = int(T)
        self.phi = int(phi)  # kept for interface uniformity; PV stores locally
        self.threshold = float(threshold)
        self.mode = mode
        #: Iteration of the last verified checkpoint (backward mode).
        self.checkpoint_iteration: int | None = None
        self._ckpt_rz: float = 0.0
        self._ckpt_beta: float | None = None
        #: Iteration of the last detection (repeat => escalate forward).
        self._last_detection: int | None = None

    def _setup(self) -> None:
        engine = self._engine
        self._executor = SpMVExecutor(engine.matrix)
        # Scratch vectors for the recomputed residual and the gap;
        # unregistered — they hold no algorithm state worth wiping.
        self._true_r = DistributedVector(engine.cluster, engine.partition, register=False)
        self._gap = DistributedVector(engine.cluster, engine.partition, register=False)

    # ------------------------------------------------------------------- hooks

    def spmv(self, j: int, state: PCGState) -> None:
        self._executor.multiply(state.p, out=state.rho)

    def verify(self, j: int, state: PCGState) -> int | None:
        if (j + 1) % self.T != 0:
            return None
        engine = self._engine
        cluster = engine.cluster
        cluster.record_fault("verification")
        # True residual b - A x (one extra SpMV), gap against the
        # recurrence residual, relative to ‖b‖ — all charged.
        self._executor.multiply(state.x, out=self._true_r)
        self._true_r.subtract(engine.b, self._true_r)
        self._gap.subtract(self._true_r, state.r)
        gap = self._gap.norm2()
        if state.b_norm > 0.0:
            gap /= state.b_norm
        engine.log.record(
            EventKind.VERIFICATION,
            iteration=j,
            time=cluster.elapsed(),
            gap=gap,
            threshold=self.threshold,
        )
        if gap <= self.threshold:
            self._last_detection = None
            if self.mode == "backward":
                self._store_checkpoint(j, state)
            return None

        cluster.record_fault("sdc_detected")
        engine.log.record(
            EventKind.SDC_DETECTED,
            iteration=j,
            time=cluster.elapsed(),
            gap=gap,
            mode=self.mode,
        )
        if (
            self.mode == "forward"
            or self.checkpoint_iteration is None
            or self._last_detection == j
        ):
            # Forward reconstruction — also the escape hatch when
            # backward has no checkpoint yet, or when a rollback failed
            # to clear the gap (re-detection at the same iteration).
            self._last_detection = j
            return self._forward_recovery(j, state)
        self._last_detection = j
        return self._restore_checkpoint(j, state)

    # -------------------------------------------------------------- checkpoint

    def _store_checkpoint(self, j: int, state: PCGState) -> None:
        """Every node keeps a local copy of its verified state (charged)."""
        engine = self._engine
        cluster = engine.cluster
        for rank in range(engine.partition.n_nodes):
            node = cluster.node(rank)
            nbytes = 0
            for name in STATE_VECTOR_NAMES:
                block = state.vector(name).blocks[rank]
                node.store[PV_CKPT_PREFIX + name] = block.copy()
                nbytes += block.nbytes
            cluster.memcpy(rank, nbytes)
        self._ckpt_rz = float(state.rz)
        self._ckpt_beta = state.beta
        self.checkpoint_iteration = j
        cluster.snapshot_redundancy_footprint()
        engine.log.record(
            EventKind.CHECKPOINT,
            iteration=j,
            time=cluster.elapsed(),
            verified=True,
        )

    def _restore_checkpoint(self, j: int, state: PCGState) -> int:
        """Backward recovery: roll every node back to the verified copy."""
        engine = self._engine
        cluster = engine.cluster
        assert self.checkpoint_iteration is not None
        for rank in range(engine.partition.n_nodes):
            node = cluster.node(rank)
            nbytes = 0
            for name in STATE_VECTOR_NAMES:
                stored = node.store[PV_CKPT_PREFIX + name]
                state.vector(name).blocks[rank][:] = stored
                nbytes += stored.nbytes
            cluster.memcpy(rank, nbytes)
        state.rz = self._ckpt_rz
        state.beta = self._ckpt_beta
        return self.checkpoint_iteration + 1

    def _forward_recovery(self, j: int, state: PCGState) -> int:
        """Adopt the recomputed residual; restart the Krylov direction."""
        engine = self._engine
        state.r.assign(self._true_r, charge=True)
        engine.preconditioner.apply(state.r, state.z)
        state.p.assign(state.z, charge=False)
        state.rz = state.r.dot(state.z)
        state.beta = None
        return j + 1

    # ---------------------------------------------------------------- recovery

    def recover(self, j: int, event: FailureEvent, state: PCGState) -> int:
        engine = self._engine
        begin_recovery(engine, j, event, strategy=self.name)
        # PV keeps no cross-node redundancy: the failed ranks' local
        # copies died with them, so the surviving checkpoint is
        # incomplete — invalidate it and restart.
        self.checkpoint_iteration = None
        self._last_detection = None
        resume = fallback_restart(
            engine, state, j, "pv keeps no node-failure redundancy"
        )
        end_recovery(engine, j, resume, strategy=self.name)
        return resume
