"""Lossy buddy checkpointing — IMCR through a compression model.

The lossy-checkpointing regime (arXiv:1804.11268): checkpoints pass
through an absolute-error-bound compressor, so the per-checkpoint
volume (local copies, buddy messages, recovery transfers) shrinks by
the modelled ratio — but a restored state is only accurate to the
error bound, and that error re-enters CG as a perturbed iterate.  CG
is self-correcting for such bounded perturbations (it simply resumes
from a slightly different point on the energy-norm landscape), so the
trade is extra iterations against cheaper checkpoints — exactly the
overhead balance the campaign report A/Bs against exact IMCR and
ESR/ESRP.

The strategy reuses the whole IMCR machinery via the two
checkpoint-content hooks (:meth:`IMCRStrategy._checkpoint_block` /
:meth:`IMCRStrategy._checkpoint_nbytes`); only what is *stored* and
how big it is on the wire change.  The quantiser is seeded and purely
elementwise, so trajectories are deterministic and backend-invariant.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ConfigurationError
from ..faults.lossy import CompressionModel
from .imcr import IMCRStrategy


class LossyIMCRStrategy(IMCRStrategy):
    """IMCR with SZ-style error-bounded checkpoint compression."""

    name = "lossy_imcr"

    def __init__(
        self,
        T: int,
        phi: int = 1,
        error_bound: float = 1e-4,
        ratio: float = 4.0,
        seed: int = 0,
    ):
        super().__init__(T=T, phi=phi)
        if error_bound <= 0:
            raise ConfigurationError(f"error_bound must be > 0, got {error_bound}")
        self.compressor = CompressionModel(error_bound=error_bound, ratio=ratio, seed=seed)

    def _checkpoint_block(self, block: np.ndarray) -> np.ndarray:
        # Decompressed-on-arrival representation: the quantised values
        # (|error| <= error_bound) are what a restore hands back to CG.
        return self.compressor.compress(block)

    def _checkpoint_nbytes(self, nbytes: int) -> int:
        return self.compressor.compressed_bytes(nbytes)
