"""The paper's contribution (S7-S9) and its extensions (E1-E5).

Exact state reconstruction (ESR), ESR with periodic storage (ESRP —
the paper's algorithm-based checkpoint-restart), the in-memory buddy
checkpoint-restart baseline (IMCR), approximate-recovery baselines from
the related work, the no-spare-nodes variant, and the classic optimal
checkpoint-interval formulas.
"""

from .baselines import (
    FullRestartStrategy,
    LeastSquaresRecovery,
    LinearInterpolationRecovery,
)
from .esr import ESRStrategy
from .esrp import BETA_DOUBLE_STAR, BETA_STAR, ESRPStrategy, STAR_PREFIX
from .imcr import CHECKPOINT_CHANNEL, IMCRStrategy
from .interval import (
    daly_interval,
    expected_waste_fraction,
    optimal_interval_iterations,
    young_interval,
)
from .no_spare import NoSpareOutcome, solve_without_spares
from .reconstruction import (
    ReconstructionReport,
    reconstruct_lost_state,
    require_reconstruction_support,
)
from .recovery import begin_recovery, end_recovery, fallback_restart
from .redundancy import RedundancyQueue
from .strategies import STRATEGY_NAMES, make_strategy

__all__ = [
    "BETA_DOUBLE_STAR",
    "BETA_STAR",
    "CHECKPOINT_CHANNEL",
    "ESRPStrategy",
    "ESRStrategy",
    "FullRestartStrategy",
    "IMCRStrategy",
    "LeastSquaresRecovery",
    "LinearInterpolationRecovery",
    "NoSpareOutcome",
    "ReconstructionReport",
    "RedundancyQueue",
    "STAR_PREFIX",
    "STRATEGY_NAMES",
    "begin_recovery",
    "daly_interval",
    "end_recovery",
    "expected_waste_fraction",
    "fallback_restart",
    "make_strategy",
    "optimal_interval_iterations",
    "reconstruct_lost_state",
    "recovery",
    "require_reconstruction_support",
    "solve_without_spares",
    "young_interval",
]

from . import recovery  # noqa: E402  (re-export module for helpers)
