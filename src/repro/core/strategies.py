"""Strategy registry and factory.

Central place that maps configuration names to resilience strategies,
including the paper's prescription that ESRP with T ∈ {1, 2} *is* ESR
(§3: "For T = 2 it no longer makes sense... for T = 1 ... this
corresponds to regular ESR").
"""

from __future__ import annotations

from ..exceptions import ConfigurationError
from ..solvers.engine import NoResilience, ResilienceStrategy
from .baselines import (
    FullRestartStrategy,
    LeastSquaresRecovery,
    LinearInterpolationRecovery,
)
from .esr import ESRStrategy
from .esrp import ESRPStrategy
from .imcr import IMCRStrategy

#: Canonical strategy names (aliases resolved by :func:`make_strategy`).
STRATEGY_NAMES = (
    "reference",
    "esr",
    "esrp",
    "imcr",
    "full_restart",
    "linear_interpolation",
    "least_squares",
)

_ALIASES = {
    "none": "reference",
    "pcg": "reference",
    "cr": "imcr",
    "checkpoint": "imcr",
    "lininterp": "linear_interpolation",
    "li": "linear_interpolation",
    "lsq": "least_squares",
}


def make_strategy(
    name: str,
    T: int = 1,
    phi: int = 1,
    rule: str = "paper",
    destinations: str = "eq1",
) -> ResilienceStrategy:
    """Instantiate a resilience strategy by name.

    Parameters
    ----------
    name:
        One of :data:`STRATEGY_NAMES` (or an alias).
    T:
        Checkpoint/storage interval (ESRP and IMCR).
    phi:
        Number of redundant copies / supported simultaneous failures.
    rule:
        ASpMV extra-entry selection rule: ``"paper"`` (corrected closed
        form) or ``"greedy"`` (minimal sends).
    destinations:
        Designated-destination policy for redundant copies: ``"eq1"``
        (the paper's nearest neighbours) or ``"switch_aware"`` (prefer
        other fat-tree leaves — survives whole-switch faults).
    """
    key = name.lower().replace("-", "_")
    key = _ALIASES.get(key, key)
    if key == "reference":
        return NoResilience()
    if key == "esr":
        return ESRStrategy(phi=phi, rule=rule, destinations=destinations)
    if key == "esrp":
        if T <= 2:
            # The paper's degenerate cases: ESRP with T in {1,2} is ESR.
            return ESRStrategy(phi=phi, rule=rule, destinations=destinations)
        return ESRPStrategy(T=T, phi=phi, rule=rule, destinations=destinations)
    if key == "imcr":
        return IMCRStrategy(T=max(T, 1), phi=phi)
    if key == "full_restart":
        return FullRestartStrategy()
    if key == "linear_interpolation":
        return LinearInterpolationRecovery()
    if key == "least_squares":
        return LeastSquaresRecovery()
    raise ConfigurationError(
        f"unknown strategy {name!r}; available: {', '.join(STRATEGY_NAMES)}"
    )
