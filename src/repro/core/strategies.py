"""Strategy registrations and factory.

The built-in resilience strategies are ordinary registrations in the
pluggable strategy registry (:data:`repro.api.registry.STRATEGIES`);
third-party strategies join via ``@register_strategy``.  The paper's
prescription that ESRP with T ∈ {1, 2} *is* ESR (§3: "For T = 2 it no
longer makes sense... for T = 1 ... this corresponds to regular ESR")
lives in the ``esrp`` builder.
"""

from __future__ import annotations

from ..api.registry import STRATEGIES, register_strategy
from ..solvers.engine import NoResilience, ResilienceStrategy
from .baselines import (
    FullRestartStrategy,
    LeastSquaresRecovery,
    LinearInterpolationRecovery,
)
from .esr import ESRStrategy
from .esrp import ESRPStrategy
from .imcr import IMCRStrategy
from .lossy import LossyIMCRStrategy
from .pv import PV_THRESHOLD, PeriodicVerificationStrategy

#: Canonical built-in strategy names (kept for backward compatibility;
#: the authoritative list — including plugins — is
#: :func:`available_strategies`).
STRATEGY_NAMES = (
    "reference",
    "esr",
    "esrp",
    "imcr",
    "full_restart",
    "linear_interpolation",
    "least_squares",
    "pv",
    "pv_forward",
    "lossy_imcr",
)


def available_strategies() -> tuple[str, ...]:
    """Names accepted by :func:`make_strategy` (built-ins + plugins)."""
    return STRATEGIES.names()


@register_strategy("reference", aliases=("none", "pcg"))
def _build_reference(**_) -> ResilienceStrategy:
    return NoResilience()


@register_strategy("esr")
def _build_esr(phi: int = 1, rule: str = "paper", destinations: str = "eq1", **_):
    return ESRStrategy(phi=phi, rule=rule, destinations=destinations)


@register_strategy("esrp")
def _build_esrp(
    T: int = 1, phi: int = 1, rule: str = "paper", destinations: str = "eq1", **_
):
    if T <= 2:
        # The paper's degenerate cases: ESRP with T in {1,2} is ESR.
        return ESRStrategy(phi=phi, rule=rule, destinations=destinations)
    return ESRPStrategy(T=T, phi=phi, rule=rule, destinations=destinations)


@register_strategy("imcr", aliases=("cr", "checkpoint"))
def _build_imcr(T: int = 1, phi: int = 1, **_) -> ResilienceStrategy:
    return IMCRStrategy(T=max(T, 1), phi=phi)


@register_strategy("full_restart")
def _build_full_restart(**_) -> ResilienceStrategy:
    return FullRestartStrategy()


@register_strategy("linear_interpolation", aliases=("lininterp", "li"))
def _build_linear_interpolation(**_) -> ResilienceStrategy:
    return LinearInterpolationRecovery()


@register_strategy("least_squares", aliases=("lsq",))
def _build_least_squares(**_) -> ResilienceStrategy:
    return LeastSquaresRecovery()


@register_strategy("pv", aliases=("periodic_verification",))
def _build_pv(
    T: int = 1, phi: int = 1, threshold: float = PV_THRESHOLD, mode: str = "backward", **_
) -> ResilienceStrategy:
    return PeriodicVerificationStrategy(
        T=max(T, 1), phi=phi, threshold=threshold, mode=mode
    )


@register_strategy("pv_forward", aliases=("pvf",))
def _build_pv_forward(
    T: int = 1, phi: int = 1, threshold: float = PV_THRESHOLD, **_
) -> ResilienceStrategy:
    return PeriodicVerificationStrategy(
        T=max(T, 1), phi=phi, threshold=threshold, mode="forward"
    )


@register_strategy("lossy_imcr", aliases=("lossy_cr",))
def _build_lossy_imcr(
    T: int = 1,
    phi: int = 1,
    error_bound: float = 1e-4,
    ratio: float = 4.0,
    seed: int = 0,
    **_,
) -> ResilienceStrategy:
    return LossyIMCRStrategy(
        T=max(T, 1), phi=phi, error_bound=error_bound, ratio=ratio, seed=seed
    )


def make_strategy(
    name: str,
    T: int = 1,
    phi: int = 1,
    rule: str = "paper",
    destinations: str = "eq1",
    **extra,
) -> ResilienceStrategy:
    """Instantiate a resilience strategy by registered name.

    Parameters
    ----------
    name:
        A name (or alias) registered in the strategy registry; the
        built-ins are :data:`STRATEGY_NAMES`.
    T:
        Checkpoint/storage interval (ESRP and IMCR).
    phi:
        Number of redundant copies / supported simultaneous failures.
    rule:
        ASpMV extra-entry selection rule: ``"paper"`` (corrected closed
        form) or ``"greedy"`` (minimal sends).
    destinations:
        Designated-destination policy for redundant copies: ``"eq1"``
        (the paper's nearest neighbours) or ``"switch_aware"`` (prefer
        other fat-tree leaves — survives whole-switch faults).
    **extra:
        Strategy-specific parameters forwarded verbatim to the builder
        (e.g. ``threshold``/``mode`` for ``pv``, ``error_bound``/
        ``ratio`` for ``lossy_imcr``); builders ignore what they don't
        take.
    """
    return STRATEGIES.create(
        name, T=T, phi=phi, rule=rule, destinations=destinations, **extra
    )
