"""IMCR — in-memory buddy checkpoint-restart (§3.1 of the paper).

The comparison baseline: once every T iterations each node copies the
local parts of all four state vectors (plus the replicated scalars)
and ships the copy to its ϕ "buddy" nodes — the same Eq. (1) neighbour
destinations the ASpMV uses.  Unlike ESR/ESRP, this introduces a
completely new round of communication per checkpoint, but recovery is
trivial: surviving nodes roll back from their own local copy and each
replacement retrieves one message from a surviving buddy — no
reconstruction mathematics at all (hence the ≈0 "reconstruction
overhead" columns of Tables 2 and 3).

IMCR is algorithm-agnostic about the preconditioner: it works with
operators that ESR/ESRP cannot restrict (e.g. the polynomial
preconditioner), which the preconditioner ablation exercises.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..cluster.cost_model import BYTES_PER_FLOAT
from ..cluster.failures import FailureEvent
from ..distribution.aspmv import RECOVERY_CHANNEL, eq1_destinations
from ..distribution.spmv import SpMVExecutor
from ..events import EventKind
from ..exceptions import ConfigurationError
from ..solvers.engine import ResilienceStrategy
from ..solvers.state import PCGState, STATE_VECTOR_NAMES

from .recovery import begin_recovery, end_recovery, fallback_restart

#: Statistics channel for buddy-checkpoint traffic.
CHECKPOINT_CHANNEL = "checkpoint"
#: Node-store key prefix for a node's own local checkpoint copy.
CKPT_PREFIX = "imcr_ckpt_"
#: Node-scalar key for the checkpointed β.
CKPT_BETA = "imcr_ckpt_beta"
#: Node-scalar key for the checkpoint iteration.
CKPT_ITERATION = "imcr_ckpt_iteration"


class IMCRStrategy(ResilienceStrategy):
    """In-memory buddy checkpoint-restart with interval T and ϕ buddies."""

    name = "imcr"

    def __init__(self, T: int, phi: int = 1):
        super().__init__()
        if T < 1:
            raise ConfigurationError(f"T must be >= 1, got {T}")
        if phi < 1:
            raise ConfigurationError(f"phi must be >= 1, got {phi}")
        self.T = int(T)
        self.phi = int(phi)
        #: Iteration of the most recent checkpoint, or None.
        self.checkpoint_iteration: int | None = None

    def _setup(self) -> None:
        engine = self._engine
        self._executor = SpMVExecutor(engine.matrix)
        n_nodes = engine.partition.n_nodes
        phi = min(self.phi, n_nodes - 1)
        self._buddies = [
            eq1_destinations(rank, phi, n_nodes) for rank in range(n_nodes)
        ]

    # ------------------------------------------------------------------- hooks

    def spmv(self, j: int, state: PCGState) -> None:
        if j % self.T == 0 and j > 0 and j != self.checkpoint_iteration:
            self._take_checkpoint(j, state)
        self._executor.multiply(state.p, out=state.rho)

    # Checkpoint-content hooks: lossy variants (repro.core.lossy)
    # override these to compress what is stored and what crosses the
    # wire.  The base class stores exact copies at full size.

    def _checkpoint_block(self, block: np.ndarray) -> np.ndarray:
        """The stored/shipped representation of one state block."""
        return block.copy()

    def _checkpoint_nbytes(self, nbytes: int) -> int:
        """The wire/copy size of an ``nbytes`` checkpoint payload."""
        return nbytes

    def _take_checkpoint(self, j: int, state: PCGState) -> None:
        """Copy the local state and ship it to the buddies (charged)."""
        engine = self._engine
        cluster = engine.cluster
        beta = float(state.beta) if state.beta is not None else 0.0
        messages = []
        for rank in range(engine.partition.n_nodes):
            node = cluster.node(rank)
            payload: dict[str, Any] = {"iteration": j, "beta": beta}
            nbytes = 2 * BYTES_PER_FLOAT
            for name in STATE_VECTOR_NAMES:
                block = state.vector(name).blocks[rank]
                stored = self._checkpoint_block(block)
                payload[name] = stored
                node.store[CKPT_PREFIX + name] = stored.copy()
                nbytes += block.nbytes
            node.scalars[CKPT_BETA] = beta
            node.scalars[CKPT_ITERATION] = float(j)
            wire_bytes = self._checkpoint_nbytes(nbytes)
            cluster.memcpy(rank, wire_bytes)
            for buddy in self._buddies[rank]:
                messages.append((rank, buddy, wire_bytes, CHECKPOINT_CHANNEL, False))
                cluster.node(buddy).buddy_checkpoints[rank] = dict(payload)
        # one concurrent communication round ("a completely new round of
        # communication in each storage iteration", §3.1)
        cluster.exchange(messages)
        self.checkpoint_iteration = j
        cluster.snapshot_redundancy_footprint()
        engine.log.record(
            EventKind.CHECKPOINT,
            iteration=j,
            time=cluster.elapsed(),
            buddies=self.phi,
        )

    # ---------------------------------------------------------------- recovery

    def recover(self, j: int, event: FailureEvent, state: PCGState) -> int:
        engine = self._engine
        begin_recovery(engine, j, event, strategy=self.name)

        target = self.checkpoint_iteration
        if target is None:
            resume = fallback_restart(engine, state, j, "failure before first checkpoint")
            end_recovery(engine, j, resume, strategy=self.name)
            return resume

        cluster = engine.cluster
        survivors = [r for r in range(engine.partition.n_nodes) if r not in event.ranks]

        # Replacements retrieve the checkpoint from a surviving buddy.
        for rank in event.ranks:
            restored = False
            for buddy in self._buddies[rank]:
                node = cluster.node(buddy)
                if not node.alive:
                    continue
                payload = node.buddy_checkpoints.get(rank)
                if payload is None or payload["iteration"] != target:
                    continue
                nbytes = 2 * BYTES_PER_FLOAT + sum(
                    payload[name].nbytes for name in STATE_VECTOR_NAMES
                )
                cluster.send(buddy, rank, self._checkpoint_nbytes(nbytes), RECOVERY_CHANNEL)
                replacement = cluster.node(rank)
                for name in STATE_VECTOR_NAMES:
                    state.vector(name).blocks[rank][:] = payload[name]
                    replacement.store[CKPT_PREFIX + name] = payload[name].copy()
                replacement.scalars[CKPT_BETA] = payload["beta"]
                replacement.scalars[CKPT_ITERATION] = float(target)
                restored = True
                break
            if not restored:
                resume = fallback_restart(
                    engine,
                    state,
                    j,
                    f"no surviving buddy holds the checkpoint of rank {rank}",
                )
                end_recovery(engine, j, resume, strategy=self.name)
                return resume

        # Survivors roll back from their own local copies.
        for rank in survivors:
            node = cluster.node(rank)
            nbytes = 0
            for name in STATE_VECTOR_NAMES:
                stored = node.store[CKPT_PREFIX + name]
                state.vector(name).blocks[rank][:] = stored
                nbytes += stored.nbytes
            cluster.memcpy(rank, nbytes)

        beta = cluster.node(survivors[0]).scalars.get(CKPT_BETA, 0.0)
        state.beta = float(beta) if beta != 0.0 else None

        end_recovery(engine, j, target, strategy=self.name)
        return target
