"""Optimal checkpoint-interval formulas (Young [28], Daly [8]).

The paper frames ESRP as algorithm-based checkpoint-restart with a
tunable interval T and cites the classic literature on choosing it.
These helpers compute the optima for the interval ablation (A2 in
DESIGN.md), both in seconds and — more useful for an iterative solver —
in iterations.

Notation: δ = cost of one checkpoint, M = mean time between failures
(same unit as δ).
"""

from __future__ import annotations

import math

from ..exceptions import ConfigurationError


def young_interval(checkpoint_cost: float, mtbf: float) -> float:
    """Young's first-order optimum: ``T = sqrt(2 δ M)`` [28].

    Valid when δ ≪ M; returns the *compute* interval between
    checkpoints (excluding the checkpoint itself).
    """
    _validate(checkpoint_cost, mtbf)
    return math.sqrt(2.0 * checkpoint_cost * mtbf)


def daly_interval(checkpoint_cost: float, mtbf: float) -> float:
    """Daly's higher-order optimum [8].

    ``T = sqrt(2 δ M) · [1 + (1/3)·sqrt(δ/(2M)) + (1/9)·(δ/(2M))] − δ``
    for δ < 2M, else ``T = M``.
    """
    _validate(checkpoint_cost, mtbf)
    if checkpoint_cost >= 2.0 * mtbf:
        return float(mtbf)
    ratio = checkpoint_cost / (2.0 * mtbf)
    base = math.sqrt(2.0 * checkpoint_cost * mtbf)
    return base * (1.0 + math.sqrt(ratio) / 3.0 + ratio / 9.0) - checkpoint_cost


def optimal_interval_iterations(
    checkpoint_cost_seconds: float,
    mtbf_seconds: float,
    seconds_per_iteration: float,
    formula: str = "daly",
    minimum: int = 3,
) -> int:
    """Optimal ESRP/IMCR interval T expressed in solver iterations.

    ``minimum`` defaults to 3 because ESRP requires T ≥ 3 (T ∈ {1,2}
    degenerate to ESR).
    """
    if seconds_per_iteration <= 0:
        raise ConfigurationError("seconds_per_iteration must be > 0")
    if formula == "young":
        seconds = young_interval(checkpoint_cost_seconds, mtbf_seconds)
    elif formula == "daly":
        seconds = daly_interval(checkpoint_cost_seconds, mtbf_seconds)
    else:
        raise ConfigurationError(f"unknown formula {formula!r}; expected young|daly")
    return max(int(minimum), int(round(seconds / seconds_per_iteration)))


def expected_waste_fraction(
    interval: float, checkpoint_cost: float, mtbf: float
) -> float:
    """First-order expected overhead fraction of a checkpointing run.

    ``waste(T) ≈ δ/T + T/(2M)`` — checkpointing cost plus expected
    rollback loss.  Minimised at Young's T; used by the interval
    ablation to compare the analytic curve with simulated results.
    """
    if interval <= 0:
        raise ConfigurationError("interval must be > 0")
    _validate(checkpoint_cost, mtbf)
    return checkpoint_cost / interval + interval / (2.0 * mtbf)


def _validate(checkpoint_cost: float, mtbf: float) -> None:
    if checkpoint_cost < 0:
        raise ConfigurationError("checkpoint_cost must be >= 0")
    if mtbf <= 0:
        raise ConfigurationError("mtbf must be > 0")
