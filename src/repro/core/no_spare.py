"""ESR without spare/replacement nodes (Pachajoa et al. [22], extension E4).

The paper's §1.3 and §4 note that ESR can also proceed *without* spare
nodes: the lost information is reconstructed and the solver continues
on the surviving nodes only.  This module implements that variant on
top of the library's exact-reconstruction machinery:

1. run ESR normally (ASpMV every iteration) until the failure strikes;
2. reconstruct the lost state blocks exactly (Alg. 2 mathematics on the
   gathered redundant copies — identical math, performed on the
   shrunken survivor group);
3. repartition the problem over the ``N − ψ`` survivors, migrate the
   exact state (charged as an all-to-all style redistribution), and
   continue on the smaller cluster.

One subtlety: the node-aligned block-Jacobi preconditioner is defined
by the partition, so shrinking the cluster *changes the operator P*.
Continuing the CG recursion with vectors built under the old P loses
conjugacy and can stall; the correct hand-off is therefore to restart
the recursion (fresh r, z, p) from the **exactly reconstructed
iterand** — no accuracy is lost, but the Krylov space is rebuilt, so
the continuation costs roughly as many iterations as a fresh solve
started from the recovered x.  (A fixed, partition-independent
preconditioner would preserve the trajectory exactly; that trade-off is
inherent to no-spare operation and absent with spare nodes.)
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..cluster.communicator import VirtualCluster
from ..cluster.cost_model import BYTES_PER_FLOAT
from ..cluster.failures import FailureEvent, FailureSchedule
from ..distribution.matrix import DistributedMatrix
from ..distribution.partition import BlockRowPartition
from ..events import EventKind, EventLog
from ..exceptions import ConfigurationError
from ..preconditioners import make_preconditioner
from ..preconditioners.base import Preconditioner
from ..solvers.engine import PCGEngine, SolveOptions, SolveResult
from .esr import ESRStrategy


@dataclasses.dataclass(frozen=True)
class NoSpareOutcome:
    """Result of a no-spare run: the final result plus phase bookkeeping."""

    result: SolveResult
    failure_iteration: int | None
    survivors: int
    migrated_bytes: int
    phase1_events: EventLog | None


def solve_without_spares(
    matrix_csr,
    b: np.ndarray,
    n_nodes: int,
    failure: FailureEvent | None,
    preconditioner_name: str = "block_jacobi",
    phi: int = 1,
    options: SolveOptions | None = None,
    cluster_seed: int | None = 0,
    cost_model=None,
) -> NoSpareOutcome:
    """Solve ``A x = b`` with ESR resilience but no spare nodes.

    ``failure`` (one event, as in the paper's protocol) is recovered by
    shrinking the cluster instead of replacing the lost nodes.  Passing
    ``failure=None`` runs the failure-free case (identical to ESR).
    """
    options = options or SolveOptions()
    cluster = VirtualCluster(n_nodes, cost_model=cost_model, seed=cluster_seed)
    partition = BlockRowPartition.uniform(matrix_csr.shape[0], n_nodes)
    matrix = DistributedMatrix(cluster, partition, matrix_csr)
    precond: Preconditioner = make_preconditioner(preconditioner_name)

    if failure is None:
        engine = PCGEngine(
            matrix=matrix,
            b=b,
            preconditioner=precond,
            strategy=ESRStrategy(phi=phi),
            options=options,
        )
        result = engine.solve()
        return NoSpareOutcome(result, None, n_nodes, 0, None)

    # Phase 1: run ESR up to (and including) the failure iteration.  The
    # ESR recovery reconstructs the exact state in place (on the
    # temporarily revived ranks); the iteration cap then stops the run so
    # we can migrate that state to the shrunken cluster.
    cap_options = dataclasses.replace(
        options, maxiter=failure.iteration + 1, require_convergence=False
    )
    engine = PCGEngine(
        matrix=matrix,
        b=b,
        preconditioner=precond,
        strategy=ESRStrategy(phi=phi),
        options=cap_options,
        failures=FailureSchedule([failure]),
    )
    phase1 = engine.solve()
    if phase1.converged:
        # Converged before the failure ever struck; nothing to migrate.
        return NoSpareOutcome(phase1, None, n_nodes, 0, engine.log)

    # The ESR recovery inside phase 1 already rebuilt the exact state at
    # the failure iteration (on the revived ranks).  Gather it.
    failed = set(failure.ranks)
    survivors = n_nodes - len(failed)
    if survivors < 1:
        raise ConfigurationError("at least one survivor is required")

    # Phase 2: continue on a cluster of the survivors only, carrying
    # the simulated clock forward and charging the state migration.
    # The iterand is exact; the recursion restarts (see module docstring).
    state = engine.final_state
    if state is None:  # pragma: no cover - solve() always sets it
        raise ConfigurationError("phase 1 did not produce a state")
    recovered_x = state.x.to_global()
    migrated = 4 * matrix_csr.shape[0] * BYTES_PER_FLOAT

    cluster2 = VirtualCluster(survivors, cost_model=cost_model, seed=cluster_seed)
    cluster2.clocks[:] = engine.cluster.elapsed()
    # Redistribution: every entry moves once, pipelined across nodes.
    per_node = migrated / survivors
    for rank in range(survivors):
        cluster2.advance(rank, cluster2.cost_model.message_time(int(per_node)))
    partition2 = BlockRowPartition.uniform(matrix_csr.shape[0], survivors)
    matrix2 = DistributedMatrix(cluster2, partition2, matrix_csr)
    precond2 = make_preconditioner(preconditioner_name)
    engine2 = PCGEngine(
        matrix=matrix2,
        b=b,
        preconditioner=precond2,
        strategy=ESRStrategy(phi=min(phi, survivors - 1)) if survivors > 1 else _plain(),
        options=options,
    )
    engine2.log.record(
        EventKind.RECOVERY_END,
        iteration=failure.iteration,
        time=cluster2.elapsed(),
        survivors=survivors,
        migrated_bytes=migrated,
    )
    result = engine2.solve(x0=recovered_x)
    return NoSpareOutcome(
        result=result,
        failure_iteration=failure.iteration,
        survivors=survivors,
        migrated_bytes=migrated,
        phase1_events=engine.log,
    )


def _plain():
    from ..solvers.engine import NoResilience

    return NoResilience()
