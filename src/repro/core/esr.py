"""ESR — exact state reconstruction with per-iteration storage (§2.3).

The previously-existing method the paper starts from (Chen [7],
Pachajoa et al. [20, 21]): *every* iteration runs the augmented SpMV,
so the redundancy queue (capacity 2) always holds the search directions
of the two most recent iterations and a failure during iteration j is
recovered *in place* — the surviving nodes keep their current state,
the replacements reconstruct iteration j, and no work is lost.

Equivalent to ESRP with T = 1 (the paper evaluates it as such).
"""

from __future__ import annotations

from ..cluster.failures import FailureEvent
from ..distribution.aspmv import ASpMVExecutor, gather_redundant_copy
from ..exceptions import ConfigurationError, IrrecoverableDataLossError
from ..solvers.engine import ResilienceStrategy
from ..solvers.state import PCGState
from .reconstruction import reconstruct_lost_state, require_reconstruction_support
from .recovery import begin_recovery, end_recovery, fallback_restart
from .redundancy import RedundancyQueue


class ESRStrategy(ResilienceStrategy):
    """Exact state reconstruction, redundant storage in every iteration."""

    name = "esr"

    def __init__(self, phi: int = 1, rule: str = "paper", destinations: str = "eq1"):
        super().__init__()
        if phi < 1:
            raise ConfigurationError(f"phi must be >= 1, got {phi}")
        self.phi = int(phi)
        self.rule = rule
        self.destinations = destinations
        self.queue = RedundancyQueue(capacity=2)

    def _setup(self) -> None:
        require_reconstruction_support(self._engine)
        self._aspmv = ASpMVExecutor(
            self._engine.matrix, self.phi, rule=self.rule,
            destinations=self.destinations,
        )

    # --------------------------------------------------------------------- run

    def spmv(self, j: int, state: PCGState) -> None:
        self._aspmv.multiply_augmented(state.p, j, self.queue, out=state.rho)

    # ---------------------------------------------------------------- recovery

    def recover(self, j: int, event: FailureEvent, state: PCGState) -> int:
        begin_recovery(self._engine, j, event, strategy=self.name)
        engine = self._engine

        if j == 0 or state.beta is None or not self.queue.holds_pair(j - 1, j):
            # No two consecutive copies yet (failure in iteration 0):
            # nothing meaningful is lost; restart from the initial guess.
            resume = fallback_restart(engine, state, j, "failure before first ESR pair")
            end_recovery(engine, j, resume, strategy=self.name)
            return resume

        try:
            p_curr = gather_redundant_copy(
                engine.cluster, engine.partition, j, event.ranks
            )
            p_prev = gather_redundant_copy(
                engine.cluster, engine.partition, j - 1, event.ranks
            )
        except IrrecoverableDataLossError as exc:
            resume = fallback_restart(engine, state, j, str(exc))
            end_recovery(engine, j, resume, strategy=self.name)
            return resume

        # β^{(j-1)} and the other replicated scalars survive on every
        # surviving node; the replacements fetch them with one message.
        engine.fetch_replicated_scalar(event.ranks, count=2)

        report = reconstruct_lost_state(
            engine,
            state,
            event.ranks,
            target_iteration=j,
            p_curr=p_curr,
            p_prev=p_prev,
            beta_prev=state.beta,
        )
        end_recovery(
            engine,
            j,
            j,
            strategy=self.name,
            inner_iterations=report.inner_iterations,
            lost_rows=report.lost_rows,
        )
        # Surviving nodes keep their state; the solver re-enters
        # iteration j (recomputing ϱ = A p with the restored p).
        return j
