"""Approximate-recovery baselines from the related work (§1.3).

These strategies pay **no** failure-free overhead (plain SpMV, no
redundant storage), but cannot reconstruct the state exactly — they
rebuild an approximation of the *iterand only* and then restart the CG
recursion (fresh r, z, p) from it, discarding the Krylov subspace:

* :class:`FullRestartStrategy` — restart from the initial guess; the
  worst case, motivating ESR (§2.1: a restarted CG may need up to M
  further iterations; cf. [19]);
* :class:`LinearInterpolationRecovery` — Langou et al. [15]: recover
  the lost iterand entries by solving the local system
  ``A_ff x_f = b_f − A_{f,s} x_s`` (residual-norm growth bounded by a
  constant factor);
* :class:`LeastSquaresRecovery` — Agullo et al. [1]: recover the lost
  entries by least-squares minimisation
  ``x_f = argmin ‖(b − A_{:,s} x_s) − A_{:,f} x_f‖₂`` (residual norm
  never increases).

The recovery-quality ablation (A3 in DESIGN.md) compares them against
ESR's exact reconstruction.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from ..cluster.cost_model import BYTES_PER_FLOAT
from ..cluster.failures import FailureEvent
from ..distribution.aspmv import RECOVERY_CHANNEL
from ..distribution.spmv import SpMVExecutor
from ..solvers.engine import ResilienceStrategy
from ..solvers.inner import inner_pcg
from ..solvers.state import PCGState
from .recovery import begin_recovery, end_recovery


class _ApproximateRecoveryBase(ResilienceStrategy):
    """Shared plumbing: plain SpMV + iterand-only recovery + CG restart."""

    def _setup(self) -> None:
        self._executor = SpMVExecutor(self._engine.matrix)

    def spmv(self, j: int, state: PCGState) -> None:
        self._executor.multiply(state.p, out=state.rho)

    # -- recovery ---------------------------------------------------------

    def recover(self, j: int, event: FailureEvent, state: PCGState) -> int:
        engine = self._engine
        begin_recovery(engine, j, event, strategy=self.name)
        self._rebuild_iterand(j, event, state)
        self._restart_recursion(state)
        end_recovery(engine, j, j, strategy=self.name)
        return j

    def _rebuild_iterand(self, j: int, event: FailureEvent, state: PCGState) -> None:
        raise NotImplementedError

    def _restart_recursion(self, state: PCGState) -> None:
        """Fresh CG recursion from the current iterand (charged)."""
        engine = self._engine
        cluster = engine.cluster
        self._executor.multiply(state.x, out=state.rho)
        for rank in range(engine.partition.n_nodes):
            state.r.blocks[rank][:] = engine.b.blocks[rank] - state.rho.blocks[rank]
            cluster.compute(rank, state.r.blocks[rank].size)
        engine.preconditioner.apply(state.r, state.z)
        state.p.assign(state.z, charge=False)
        state.beta = None

    # -- helpers ------------------------------------------------------------

    def _gather_surviving_x(self, event: FailureEvent, state: PCGState) -> np.ndarray:
        """Surviving iterand entries, with lost entries zeroed (charged)."""
        engine = self._engine
        failed_set = set(event.ranks)
        messages = []
        for rank in event.ranks:
            for descriptor in engine.matrix.plan.recvs[rank]:
                if descriptor.src in failed_set or descriptor.count == 0:
                    continue
                messages.append(
                    (
                        descriptor.src,
                        rank,
                        descriptor.count * BYTES_PER_FLOAT,
                        RECOVERY_CHANNEL,
                        False,
                    )
                )
        if messages:
            engine.cluster.exchange(messages)
        x_masked = state.x.to_global()
        x_masked[engine.partition.indices_of(event.ranks)] = 0.0
        return x_masked

    def _scatter_lost_x(self, event: FailureEvent, state: PCGState, x_f: np.ndarray) -> None:
        offset = 0
        for rank in sorted(event.ranks):
            size = self._engine.partition.size_of(rank)
            state.x.blocks[rank][:] = x_f[offset : offset + size]
            offset += size


class FullRestartStrategy(_ApproximateRecoveryBase):
    """Discard everything; restart PCG from the zero initial guess."""

    name = "full_restart"

    def _rebuild_iterand(self, j: int, event: FailureEvent, state: PCGState) -> None:
        for rank in range(self._engine.partition.n_nodes):
            state.x.blocks[rank][:] = 0.0


class LinearInterpolationRecovery(_ApproximateRecoveryBase):
    """Langou-style local solve for the lost iterand entries [15]."""

    name = "linear_interpolation"

    def _rebuild_iterand(self, j: int, event: FailureEvent, state: PCGState) -> None:
        engine = self._engine
        failed = tuple(sorted(event.ranks))
        x_masked = self._gather_surviving_x(event, state)
        rows = engine.matrix.row_block(failed)
        b_f = np.concatenate([engine.b.blocks[rank] for rank in failed])
        rhs = b_f - rows @ x_masked
        a_ff = engine.matrix.submatrix(failed)
        # [15] solves the local system; machine precision is not needed
        # for an approximation, 1e-12 keeps it deterministic and cheap.
        x_f, report = inner_pcg(a_ff, rhs, rtol=1e-12)
        psi = len(failed)
        for rank in failed:
            engine.cluster.compute(rank, report.flops / psi)
        self._scatter_lost_x(event, state, x_f)


class LeastSquaresRecovery(_ApproximateRecoveryBase):
    """Agullo-style least-squares recovery of the lost entries [1]."""

    name = "least_squares"

    def _rebuild_iterand(self, j: int, event: FailureEvent, state: PCGState) -> None:
        engine = self._engine
        failed = tuple(sorted(event.ranks))
        lost = engine.partition.indices_of(failed)
        x_masked = self._gather_surviving_x(event, state)
        b_global = engine.b.to_global()
        rhs = b_global - engine.matrix.global_csr @ x_masked
        columns = sp.csr_matrix(engine.matrix.global_csr[:, lost])
        result = spla.lsqr(columns, rhs, atol=1e-12, btol=1e-12)
        x_f = result[0]
        flops = 4.0 * columns.nnz * max(result[2], 1)  # itn count
        psi = len(failed)
        for rank in failed:
            engine.cluster.compute(rank, flops / psi)
        self._scatter_lost_x(event, state, x_f)
