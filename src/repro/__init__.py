"""repro — Algorithm-Based Checkpoint-Recovery for the Conjugate Gradient Method.

A production-quality reproduction of Pachajoa, Pacher, Levonyak &
Gansterer, *"Algorithm-Based Checkpoint-Recovery for the Conjugate
Gradient Method"*, ICPP 2020 (DOI 10.1145/3404397.3404438):

* a simulated distributed-memory cluster with node failures and an
  α/β/γ cost model (:mod:`repro.cluster`),
* block-row distributed sparse linear algebra with an explicit SpMV
  halo exchange and the paper's *augmented* SpMV (:mod:`repro.distribution`),
* resilient preconditioned CG with pluggable recovery strategies —
  ESR, ESRP (the paper's contribution), in-memory buddy CR, and
  approximate-recovery baselines (:mod:`repro.solvers`, :mod:`repro.core`),
* the experiment harness that regenerates every table and figure of the
  paper's evaluation (:mod:`repro.harness`),
* a service-style API (:mod:`repro.api`): reusable
  :class:`~repro.api.SolverSession` objects, declarative
  :class:`~repro.api.SolveRequest`/:class:`~repro.api.SolveReport`
  pairs, and decorator-based plugin registries.

Quickstart — a session sets the problem up once (cluster, partition,
distributed matrix, factorised preconditioner, cached reference
trajectory) and serves many solves against it::

    import repro

    session = repro.SolverSession.from_problem("emilia_923_like",
                                               scale="small", n_nodes=8)
    request = repro.SolveRequest(
        strategy="esrp", T=20, phi=2,
        failures=[repro.FailureEvent(iteration=50, ranks=(0, 1))],
    )
    report = session.solve(request, with_reference=True)
    print(report.iterations, report.total_overhead, report.converged)

    # sweep the same problem without re-paying setup:
    reports = session.solve_many(
        [repro.SolveRequest(strategy=s, T=20, phi=2)
         for s in ("esr", "esrp", "imcr")],
        with_reference=True,
    )

For one-shot use the classic convenience wrapper still works — it is a
thin shim over a throwaway session::

    A, b, meta = repro.matrices.load("emilia_923_like", scale="small")
    result = repro.solve(
        A, b, n_nodes=8, strategy="esrp", T=20, phi=2,
        failures=[repro.FailureEvent(iteration=50, ranks=(0, 1))],
    )
    print(result.iterations, result.modeled_time, result.converged)

Third-party components plug in via the registries::

    from repro.api import register_strategy

    @register_strategy("my_strategy")
    def build(T=1, phi=1, **_):
        return MyStrategy(T=T, phi=phi)
"""

from __future__ import annotations

import numpy as np

from . import cluster, core, distribution, harness, kernels, matrices, preconditioners, solvers
from .cluster import (
    CostModel,
    FailureEvent,
    FailureSchedule,
    FatTree,
    Ring,
    VirtualCluster,
    block_failure_ranks,
    poisson_schedule,
)
from .distribution import (
    ASpMVExecutor,
    BlockRowPartition,
    DistributedMatrix,
    DistributedVector,
    SpMVExecutor,
)
from .events import Event, EventKind, EventLog
from .exceptions import (
    ClusterError,
    ConfigurationError,
    ConvergenceError,
    DeadNodeError,
    IrrecoverableDataLossError,
    NodeFailureError,
    PartitionError,
    ReconstructionUnsupportedError,
    RecoveryError,
    ReproError,
)
from .core import (
    ESRPStrategy,
    ESRStrategy,
    IMCRStrategy,
    RedundancyQueue,
    make_strategy,
    solve_without_spares,
)
from .preconditioners import Preconditioner, make_preconditioner
from .solvers import PCGEngine, SolveOptions, SolveResult, solve_reference
from . import api
from .api import (
    SolveReport,
    SolveRequest,
    SolverSession,
    register_backend,
    register_matrix,
    register_preconditioner,
    register_strategy,
)
from .kernels import KernelBackend

__version__ = "1.2.0"

__all__ = [
    "ASpMVExecutor",
    "BlockRowPartition",
    "campaign",
    "ClusterError",
    "ConfigurationError",
    "ConvergenceError",
    "CostModel",
    "DeadNodeError",
    "DistributedMatrix",
    "DistributedVector",
    "ESRPStrategy",
    "ESRStrategy",
    "Event",
    "EventKind",
    "EventLog",
    "FailureEvent",
    "FailureSchedule",
    "FatTree",
    "IMCRStrategy",
    "IrrecoverableDataLossError",
    "KernelBackend",
    "NodeFailureError",
    "PCGEngine",
    "PartitionError",
    "Preconditioner",
    "ReconstructionUnsupportedError",
    "RecoveryError",
    "RedundancyQueue",
    "ReproError",
    "Ring",
    "SolveOptions",
    "SolveReport",
    "SolveRequest",
    "SolveResult",
    "SolverSession",
    "SpMVExecutor",
    "VirtualCluster",
    "api",
    "block_failure_ranks",
    "cluster",
    "core",
    "distribution",
    "harness",
    "kernels",
    "make_preconditioner",
    "make_strategy",
    "matrices",
    "poisson_schedule",
    "preconditioners",
    "register_backend",
    "register_matrix",
    "register_preconditioner",
    "register_strategy",
    "solve",
    "solve_reference",
    "solve_without_spares",
    "solvers",
]


def solve(
    matrix,
    b: np.ndarray,
    n_nodes: int = 8,
    strategy: str = "esrp",
    T: int = 20,
    phi: int = 1,
    preconditioner: str = "block_jacobi",
    rtol: float = 1e-8,
    maxiter: int | None = None,
    failures=None,
    cluster: VirtualCluster | None = None,
    cost_model: CostModel | None = None,
    seed: int | None = 0,
    rule: str = "paper",
    destinations: str = "eq1",
    backend: str | None = None,
    **precond_kwargs,
) -> SolveResult:
    """One-call convenience API: solve ``A x = b`` resiliently.

    Parameters
    ----------
    matrix:
        Square SPD matrix (anything :mod:`scipy.sparse` accepts).
    b:
        Right-hand side vector.
    n_nodes:
        Number of virtual cluster nodes (ignored if ``cluster`` given).
    strategy:
        ``"reference"``, ``"esr"``, ``"esrp"``, ``"imcr"``,
        ``"full_restart"``, ``"linear_interpolation"``,
        ``"least_squares"`` (see :func:`repro.core.make_strategy`).
    T, phi:
        Checkpoint/storage interval and redundancy count.
    preconditioner:
        Name for :func:`repro.preconditioners.make_preconditioner`;
        extra keyword arguments are forwarded to it.
    failures:
        ``FailureSchedule`` or iterable of ``FailureEvent``.
    cluster:
        Reuse an existing :class:`VirtualCluster` (clock/stats continue).
    cost_model, seed:
        Machine model and noise seed for a freshly created cluster.
    rule:
        ASpMV extra-entry selection rule (``"paper"`` or ``"greedy"``).
    backend:
        Compute-kernel backend (``"looped"``, ``"vectorized"`` or
        ``"compiled"``; any registered name).  ``None`` keeps the
        default (``REPRO_BACKEND`` or vectorized) — or, with an
        adopted ``cluster``, that cluster's backend.

    Inputs are validated eagerly: unknown strategy/preconditioner
    names, ``maxiter < 1`` and ``phi >= n_nodes`` raise
    :class:`ConfigurationError` before any setup work happens.
    """
    request = api.SolveRequest(
        strategy=strategy,
        T=T,
        phi=phi,
        preconditioner=preconditioner,
        precond_params=precond_kwargs,
        rtol=rtol,
        maxiter=maxiter,
        failures=failures,
        rule=rule,
        destinations=destinations,
        seed=seed,
        backend=backend,
        n_nodes=cluster.n_nodes if cluster is not None else n_nodes,
    )
    session = api.SolverSession(
        matrix,
        b,
        n_nodes=n_nodes,
        cost_model=cost_model,
        seed=seed,
        cluster=cluster,
    )
    return session.solve(request).result


# Imported last: the campaign workers call back into :func:`solve`.
from . import campaign  # noqa: E402
