"""Collecting a drained queue into one canonical :class:`CampaignResult`.

The collector reads every per-worker spool shard, deduplicates by run
id (crash recovery can legitimately execute a task twice — determinism
makes the duplicate records byte-equal, which is verified), checks
completeness against the task store, and hands the records to
:class:`~repro.campaign.results.CampaignResult`, whose canonical
ordering makes the serialised output independent of which worker
finished what in which order — byte-identical to a serial
:func:`~repro.campaign.executor.execute_campaign` of the same spec.
"""

from __future__ import annotations

import json
import pathlib
from typing import Iterator

from ..campaign.results import CampaignResult, CampaignRunRecord
from ..exceptions import ConfigurationError
from .store import QueueStore


def iter_shard_records(shard: pathlib.Path) -> Iterator[CampaignRunRecord]:
    """Parse one JSONL spool shard, ignoring a torn trailing line.

    A worker killed mid-append can leave a final partial line; every
    *complete* line was fsynced before its task's done marker, so a
    torn tail always belongs to a task that is still claimable and
    will be re-executed — skipping it loses nothing.
    """
    try:
        text = shard.read_text()
    except FileNotFoundError:
        return
    lines = text.splitlines()
    for lineno, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            payload = json.loads(line)
        except json.JSONDecodeError:
            if lineno == len(lines) and not text.endswith("\n"):
                continue  # torn final append of a killed worker
            raise ConfigurationError(
                f"{shard}:{lineno} holds invalid record JSON"
            ) from None
        yield CampaignRunRecord.from_dict(payload)


def collect(queue_dir, allow_partial: bool = False) -> CampaignResult:
    """Merge a queue's spool shards into one canonical campaign result.

    Raises :class:`~repro.exceptions.ConfigurationError` if tasks are
    missing or failed, unless ``allow_partial`` (which returns whatever
    completed — useful for inspecting a half-drained sweep).
    """
    store = QueueStore(queue_dir)
    shards = sorted(store._dir("spool").glob("*.jsonl"))
    result = CampaignResult.merge(
        spec=store.spec_dict,
        parts=(iter_shard_records(shard) for shard in shards),
    )

    collected = {record.run_id for record in result.records}
    expected: dict[str, str] = {}  # task_id -> run_id
    for task in store.iter_tasks():
        expected[task.task_id] = task.run_id
    failures = [o for o in store.outcomes() if o.status == "failed"]
    missing = sorted(set(expected.values()) - collected)
    if not allow_partial:
        if failures:
            detail = "; ".join(
                f"{o.run_id} ({(o.error or '').strip().splitlines()[-1] if o.error else 'unknown error'})"
                for o in failures[:5]
            )
            raise ConfigurationError(
                f"queue {store.queue_dir} has {len(failures)} failed task(s): "
                f"{detail}{' ...' if len(failures) > 5 else ''} "
                "(use allow_partial / --allow-partial to collect the rest)"
            )
        if missing:
            raise ConfigurationError(
                f"queue {store.queue_dir} is not drained: "
                f"{len(missing)}/{len(expected)} run(s) lack records "
                f"(first missing: {missing[0]}); run more workers or pass "
                "allow_partial / --allow-partial"
            )
    # Spool records for runs the task store does not know would mean a
    # stale shard from a different sweep leaked into this directory —
    # never acceptable, partial collection or not.
    stray = sorted(collected - set(expected.values()))
    if stray:
        raise ConfigurationError(
            f"spool shards contain {len(stray)} record(s) not in the task "
            f"store (first: {stray[0]}); the queue directory is corrupt"
        )
    return result
