"""Collecting a drained queue into one canonical :class:`CampaignResult`.

The collector merges every compacted segment and every residual
per-worker spool shard into one record stream, deduplicating by run id
(crash recovery can legitimately execute a task twice — determinism
makes the duplicate records byte-equal, which is verified), checks
completeness against the task store, and hands the records to
:class:`~repro.campaign.results.CampaignResult`, whose canonical
ordering makes the serialised output independent of which worker
finished what in which order — byte-identical to a serial
:func:`~repro.campaign.executor.execute_campaign` of the same spec.

The merge itself runs in bounded memory: compacted segments are sorted
by run id and streamed record by record, residual shards are bounded
by the workers' compaction cadence, and the duplicate check is a
peek-at-the-previous-record comparison inside a ``heapq.merge`` of the
sorted streams — never an all-records-by-id dictionary and never a
whole shard slurped as text.  The collected
:class:`~repro.campaign.results.CampaignResult` still materialises the
(deduplicated) record list — that is its contract — so end-to-end
collect memory is one record object per run, not one per spooled copy.
"""

from __future__ import annotations

import heapq
import json
import pathlib
from typing import Iterator

from ..campaign.results import CampaignResult, CampaignRunRecord
from ..exceptions import ConfigurationError
from .segment import iter_payloads, read_footer
from .store import QueueStore


def iter_shard_records(shard: pathlib.Path) -> Iterator[CampaignRunRecord]:
    """Parse one JSONL spool shard, ignoring a torn trailing line.

    A worker killed mid-append can leave a final partial line; every
    *complete* line was fsynced before its task's done marker, so a
    torn tail always belongs to a task that is still claimable and
    will be re-executed — skipping it loses nothing.  Lines are
    streamed, not slurped, so a shard never has to fit in memory
    twice.
    """
    try:
        handle = shard.open("rb")
    except FileNotFoundError:
        return
    with handle:
        for lineno, raw in enumerate(handle, start=1):
            terminated = raw.endswith(b"\n")
            line = raw.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError:
                if not terminated:
                    continue  # torn final append of a killed worker
                raise ConfigurationError(
                    f"{shard}:{lineno} holds invalid record JSON"
                ) from None
            yield CampaignRunRecord.from_dict(payload)


def read_segment_footer(path: pathlib.Path) -> dict:
    """Validate a compacted segment's trailer and return its footer index.

    A thin alias of :func:`repro.queue.segment.read_footer`, kept under
    its historical name for importers.
    """
    return read_footer(path)


def iter_segment_records(path: pathlib.Path) -> Iterator[CampaignRunRecord]:
    """Stream one compacted segment's records (sorted by run id).

    Records are length-prefixed, so the reader never holds more than
    one record in memory; the footer index is validated first, and the
    record region must end exactly where the footer begins (all
    enforced by :func:`repro.queue.segment.iter_payloads`).
    """
    for payload in iter_payloads(path):
        yield CampaignRunRecord.from_dict(json.loads(payload))


def _sorted_shard_records(shard: pathlib.Path) -> list[CampaignRunRecord]:
    """Residual (uncompacted) shard records, sorted for the k-way merge.

    Residuals are bounded by each worker's compaction cadence, so this
    in-memory sort is the small tail, not the sweep.
    """
    records = list(iter_shard_records(shard))
    records.sort(key=lambda record: record.run_id)
    return records


def iter_queue_records(store: QueueStore) -> Iterator[CampaignRunRecord]:
    """Merged, deduplicated record stream of a queue's segments + shards.

    A ``heapq.merge`` over the per-file sorted streams; duplicates
    (crash-induced re-executions, or a compaction interrupted between
    segment publication and shard truncate) are adjacent in the merged
    order, verified equal, and folded into one.
    """
    streams: list[Iterator[CampaignRunRecord]] = [
        iter_segment_records(path) for path in store.segment_paths()
    ]
    streams.extend(
        iter(_sorted_shard_records(shard))
        for shard in sorted(store._dir("spool").glob("*.jsonl"))
    )
    previous: CampaignRunRecord | None = None
    for record in heapq.merge(*streams, key=lambda r: r.run_id):
        if previous is not None and previous.run_id == record.run_id:
            if previous != record:
                raise ConfigurationError(
                    f"conflicting duplicate records for run {record.run_id!r} "
                    "(two spool sources disagree; campaign runs are expected "
                    "to be deterministic)"
                )
            continue
        previous = record
        yield record


def collect(queue_dir, allow_partial: bool = False) -> CampaignResult:
    """Merge a queue's spooled records into one canonical campaign result.

    Raises :class:`~repro.exceptions.ConfigurationError` if tasks are
    missing or dead-lettered, unless ``allow_partial`` (which returns
    whatever completed — useful for inspecting a half-drained sweep, or
    for salvaging a sweep whose dead-lettered tasks are being triaged).
    """
    store = QueueStore(queue_dir)
    result = CampaignResult(spec=store.spec_dict, records=iter_queue_records(store))

    collected = {record.run_id for record in result.records}
    expected: dict[str, str] = {}  # task_id -> run_id
    for task in store.iter_tasks():
        expected[task.task_id] = task.run_id
    failures = store.failed_outcomes()
    missing = sorted(set(expected.values()) - collected)
    if not allow_partial:
        if failures:
            detail = "; ".join(
                f"{o.run_id} after {o.attempts} attempt(s) "
                f"({(o.error or '').strip().splitlines()[-1] if o.error else 'unknown error'})"
                for o in failures[:5]
            )
            raise ConfigurationError(
                f"queue {store.queue_dir} has {len(failures)} dead-lettered "
                f"task(s): {detail}{' ...' if len(failures) > 5 else ''} "
                "(use allow_partial / --allow-partial to collect the rest)"
            )
        if missing:
            raise ConfigurationError(
                f"queue {store.queue_dir} is not drained: "
                f"{len(missing)}/{len(expected)} run(s) lack records "
                f"(first missing: {missing[0]}); run more workers or pass "
                "allow_partial / --allow-partial"
            )
    # Spool records for runs the task store does not know would mean a
    # stale shard from a different sweep leaked into this directory —
    # never acceptable, partial collection or not.
    stray = sorted(collected - set(expected.values()))
    if stray:
        raise ConfigurationError(
            f"spool shards contain {len(stray)} record(s) not in the task "
            f"store (first: {stray[0]}); the queue directory is corrupt"
        )
    return result
